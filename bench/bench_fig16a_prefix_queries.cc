// Fig. 16(a): prefix sharing while the number of queries sharing a
// length-3 prefix grows from 2 to 6.
//
// Expected shape (Sec. 6.3.1): PrefixShare (PreTree) consistently wins
// around 2x over unshared A-Seq, with the absolute saving per event growing
// with the workload size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"

namespace aseq {
namespace bench {
namespace {

const size_t kNumEvents = ScaledEvents(30000);
constexpr int64_t kMaxGapMs = 4;
constexpr Timestamp kWindowMs = 2000;
constexpr size_t kPrefixLen = 3;
constexpr size_t kTotalLen = 5;

const MultiBench& Bench(size_t num_queries) {
  static std::unique_ptr<MultiBench> cache[8];
  if (cache[num_queries] == nullptr) {
    SharedWorkload workload = MakePrefixSharedWorkload(
        num_queries, kPrefixLen, kTotalLen, kWindowMs);
    cache[num_queries] = MakeMultiBench(workload, kNumEvents, kMaxGapMs);
  }
  return *cache[num_queries];
}

void BM_NonShare(benchmark::State& state) {
  const MultiBench& mb = Bench(static_cast<size_t>(state.range(0)));
  auto engine = NonSharedEngine::CreateAseq(mb.queries);
  RunMultiAndReport(state, mb.events, engine->get());
}
BENCHMARK(BM_NonShare)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_PrefixShare(benchmark::State& state) {
  const MultiBench& mb = Bench(static_cast<size_t>(state.range(0)));
  auto engine = PreTreeEngine::Create(mb.queries);
  RunMultiAndReport(state, mb.events, engine->get());
}
BENCHMARK(BM_PrefixShare)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Fig. 16(a)",
      "prefix sharing vs #queries (k = 2..6, shared prefix = 3, |pattern| = "
      "5)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
