// Ablation: cost of the K-slack out-of-order front-end (our extension of
// the paper's Sec. 8 future work).
//
// The reorder buffer adds one heap push/pop per event; the wrapped A-Seq
// engine is unchanged. Slack size affects only buffer depth (memory /
// result delay), not asymptotic throughput — this ablation quantifies the
// constant-factor overhead vs processing the same in-order stream raw.

#include <benchmark/benchmark.h>

#include "aseq/aseq_engine.h"
#include "bench/bench_util.h"
#include "engine/reordering_engine.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

constexpr size_t kNumEvents = 120000;
constexpr int64_t kMaxGapMs = 6;

const BenchStream& Stream() {
  static const BenchStream* stream =
      MakeStockStream(kNumEvents, kMaxGapMs).release();
  return *stream;
}

CompiledQuery Compile() {
  Schema schema = Stream().schema;
  Analyzer analyzer(&schema);
  return std::move(analyzer.AnalyzeText(
                       "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1s"))
      .value();
}

void BM_Raw(benchmark::State& state) {
  CompiledQuery cq = Compile();
  auto engine = CreateAseqEngine(cq);
  RunAndReport(state, Stream().events, engine->get());
}
BENCHMARK(BM_Raw)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_WithKSlack(benchmark::State& state) {
  CompiledQuery cq = Compile();
  auto inner = CreateAseqEngine(cq);
  ReorderingEngine engine(std::move(*inner), /*slack_ms=*/state.range(0));
  double total_seconds = 0;
  uint64_t total_events = 0;
  for (auto _ : state) {
    RunResult result =
        Runtime::RunEvents(Stream().events, &engine, /*collect_outputs=*/false);
    std::vector<Output> tail;
    StopWatch watch;
    engine.Finish(&tail);
    total_seconds += result.elapsed_seconds + watch.ElapsedSeconds();
    total_events += result.events;
  }
  state.counters["ms_per_slide"] = benchmark::Counter(
      total_seconds * 1e3 / static_cast<double>(total_events));
  state.counters["peak_objects"] =
      benchmark::Counter(static_cast<double>(engine.stats().objects.peak()));
}
BENCHMARK(BM_WithKSlack)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Ablation: K-slack reordering front-end",
      "A-Seq on a 120k-event stream, raw vs wrapped with slack 10/100/1000ms");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
