// Fig. 14(a): A-Seq scalability where the stack-based baseline fails
// (memory overflow in the paper's system): pattern length 6..10 with the
// window extended to 2000ms, on the full 120k-event stream.
//
// Expected shape (Sec. 6.2): no significant degradation even at
// length=10 / window=2000ms; the paper reports 0.0219 ms/event at the
// extreme point — about the baseline's cost at its *lightest* point
// (l=2, win=100ms).

#include <benchmark/benchmark.h>

#include "aseq/aseq_engine.h"
#include "bench/bench_util.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

constexpr size_t kNumEvents = 120000;  // the paper's full trace portion
constexpr int64_t kMaxGapMs = 6;
constexpr Timestamp kWindowMs = 2000;

const BenchStream& Stream() {
  static const BenchStream* stream =
      MakeStockStream(kNumEvents, kMaxGapMs).release();
  return *stream;
}

void BM_ASeq_Scalability(benchmark::State& state) {
  Schema schema = Stream().schema;
  Analyzer analyzer(&schema);
  auto cq = analyzer.Analyze(
      MakeTickerQuery(static_cast<size_t>(state.range(0)), kWindowMs));
  auto engine = CreateAseqEngine(*cq);
  RunAndReport(state, Stream().events, engine->get());
}
BENCHMARK(BM_ASeq_Scalability)
    ->DenseRange(6, 10)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Fig. 14(a)",
      "A-Seq scalability (l = 6..10, window = 2000ms, 120k events); the "
      "stack-based baseline cannot run this regime (memory overflow)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
