// Shard sweep: the partition-parallel executor over a shards x batch-size
// grid on the Fig. 13 grouped workload (GROUP BY traderId, COUNT, high
// trader cardinality — the regime hash-partitioning is built for).
//
// Two metrics per configuration:
//   - wall ms/slide: end-to-end time including routing and merge. On a
//     single-core container this cannot beat serial (N workers time-slice
//     one core), so it mostly measures coordination overhead.
//   - critical-path ms/slide: max over shards of per-worker busy time,
//     divided by events — the run's wall time on a machine with >= N idle
//     cores. speedup_vs_serial = serial busy / max-shard busy is the
//     hardware-independent scaling number; the acceptance gate is >= 2x at
//     8 shards.
//
//   ./build/bench/bench_shard_sweep --benchmark_out=BENCH_shard_sweep.json
//       --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>

#include "aseq/aseq_engine.h"
#include "bench/bench_util.h"
#include "exec/execution_policy.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

const size_t kNumEvents = ScaledEvents(100000);
constexpr int64_t kMaxGapMs = 2;
constexpr size_t kNumTraders = 1000;

const BenchStream& Stream() {
  static const BenchStream* stream =
      MakeStockStream(kNumEvents, kMaxGapMs, /*seed=*/42, kNumTraders)
          .release();
  return *stream;
}

const CompiledQuery& Query() {
  static const CompiledQuery* query = [] {
    Schema schema = Stream().schema;  // copy: analysis must not mutate shared
    Analyzer analyzer(&schema);
    return new CompiledQuery(std::move(
        analyzer.AnalyzeText(
            "PATTERN SEQ(DELL, IPIX, AMAT) GROUP BY traderId "
            "AGG COUNT WITHIN 2s"))
        .value());
  }();
  return *query;
}

/// Serial critical path (== busy == wall for one thread) per batch size,
/// recorded by the shards=1 runs; the grid runs serial-first so later
/// configurations can report speedup_vs_serial.
std::map<size_t, double>& SerialBusyByBatch() {
  static std::map<size_t, double> busy;
  return busy;
}

void BM_ShardSweep(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t batch_size = static_cast<size_t>(state.range(1));
  const CompiledQuery& cq = Query();

  RunOptions options;
  options.collect_outputs = false;
  options.batch_size = batch_size;
  options.num_shards = shards;

  double total_seconds = 0;
  double busy_max = 0;
  double busy_total = 0;
  uint64_t total_events = 0;
  for (auto _ : state) {
    // Fresh policy (and therefore fresh engines) per iteration: a run
    // consumes the stream from seq 0, so engine state must not carry over.
    std::string reason;
    auto policy = exec::MakePolicy(
        cq, [&cq] { return CreateAseqEngine(cq); }, options, &reason);
    if (!policy.ok() || !reason.empty()) {
      state.SkipWithError(("policy: " + reason).c_str());
      return;
    }
    RunResult result = (*policy)->RunEvents(Stream().events);
    total_seconds += result.elapsed_seconds;
    total_events += result.events;
    for (double busy : (*policy)->shard_busy_seconds()) {
      busy_max = std::max(busy_max, busy);
      busy_total += busy;
    }
  }
  const double events = static_cast<double>(total_events);
  state.counters["shards"] = benchmark::Counter(static_cast<double>(shards));
  state.counters["batch_size"] =
      benchmark::Counter(static_cast<double>(batch_size));
  state.counters["ms_per_slide"] =
      benchmark::Counter(events == 0 ? 0 : total_seconds * 1e3 / events);
  state.counters["critical_path_ms_per_slide"] =
      benchmark::Counter(events == 0 ? 0 : busy_max * 1e3 / events);
  state.counters["busy_total_seconds"] = benchmark::Counter(busy_total);
  if (shards == 1) {
    SerialBusyByBatch()[batch_size] = busy_max;
  } else {
    auto it = SerialBusyByBatch().find(batch_size);
    if (it != SerialBusyByBatch().end() && busy_max > 0) {
      state.counters["speedup_vs_serial"] =
          benchmark::Counter(it->second / busy_max);
    }
  }
}
BENCHMARK(BM_ShardSweep)
    ->ArgsProduct({{1, 2, 4, 8}, {64, 256, 1024}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Shard sweep",
      "partition-parallel executor: shards x batch size on the grouped "
      "workload (critical-path speedup vs serial)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
