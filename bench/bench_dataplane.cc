// Dataplane dispatch gauge: the sharded executor's coordinator→worker
// handoff protocol, before (PR 7: mutex + condition_variable + deque per
// lane) vs after (SPSC ring + parked-flag wake, exec/spsc_ring.h,
// docs/internals.md §16).
//
// The container CI runs on has one core, so a threaded throughput number
// would only measure the scheduler. Instead the gauge replays the exact
// per-publication synchronization sequence of each dataplane single-
// threaded and deterministic — same item payloads, same burst/drain
// cadence, same free-list recycling — so the measured delta is purely the
// protocol cost (lock/notify/deque vs two acquire-release atomics):
//
//   dispatch_mutex — faithful replica of the PR 7 lane: push takes the
//                    lane mutex, re-checks capacity under it, mirrors the
//                    depth atomic, notify_all()s; pop takes the mutex,
//                    recycles the drained vector under it, notify_all()s
//   dispatch_ring  — the live protocol: SpscRing TryPush/TryPop plus the
//                    parked-flag wake check, free vectors recycled over
//                    the reverse ring
//   dispatch_ring_clock
//                  — the ring protocol plus the per-item busy-time
//                    StopWatch the live worker has had since PR 8
//                    (telemetry off: elapsed folds into a double)
//   dispatch_ring_metrics
//                  — the same pass recording every telemetry cell site the
//                    live hot path hits when --metrics-out is given
//                    (obs::ShardCell/CoordCell counters, gauges, and
//                    histograms; docs/internals.md §17)
//   sharded_e2e    — the real 8-shard executor end-to-end on the grouped
//                    workload (wall + critical-path throughput). On a
//                    single-core host wall time measures coordination
//                    overhead, so this entry is informative, not gated.
//
// Gates (CI perf smoke, --check): dispatch_ring must stay >= 1.2x
// dispatch_mutex (PR 8's acceptance ratio); dispatch_ring_metrics must
// stay >= 0.97x dispatch_ring_clock (PR 9's <= 3% telemetry-overhead
// acceptance); and the dispatch_* entries must not regress more than
// --tolerance vs the committed BENCH_dataplane.json. sharded_e2e is
// written but never checked — its wall time on a shared single-core
// runner is scheduler noise.
//
// Usage:
//   bench_dataplane [--quick] [--reps N] [--warmup N] [--only WORKLOAD]
//                   [--out FILE] [--label NAME]
//                   [--check BENCH_dataplane.json] [--tolerance 0.2]
//
// --out writes flat JSON entries keyed "<mode>/<label>/<workload>" with an
// "events_per_sec" field (one event = one dispatched op), the same format
// the other perf-smoke gauges commit.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "bench/bench_util.h"
#include "exec/execution_policy.h"
#include "exec/spsc_ring.h"
#include "metrics/metrics.h"
#include "obs/telemetry.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

/// Mirrors the executor's LaneItem: a tag plus a batch of ops (the op
/// payload is a stand-in of the same shape; the protocols move it, never
/// copy it).
struct Item {
  uint64_t tag = 0;
  std::vector<uint64_t> ops;
};

constexpr size_t kLanes = 8;          // the acceptance point: 8 shards
constexpr size_t kCapacity = 16;      // shard_detail::kMaxQueuedItems
constexpr size_t kBurst = 12;         // the default overload watermark
constexpr size_t kOpsPerItem = 8;     // ops per publication

/// PR 7 lane replica: every push and every pop is a mutex round-trip with
/// a capacity/empty re-check under the lock, a depth-mirror store, and a
/// notify_all — exactly what the executor did per publication before the
/// ring dataplane.
struct MutexLane {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Item> queue;
  std::vector<std::vector<uint64_t>> free_ops;
  std::atomic<size_t> depth{0};
};

double MutexPass(size_t rounds) {
  std::vector<MutexLane> lanes(kLanes);
  Item item;
  StopWatch watch;
  for (size_t r = 0; r < rounds; ++r) {
    for (auto& lane : lanes) {
      for (size_t b = 0; b < kBurst; ++b) {
        item.tag = r;
        {
          std::unique_lock<std::mutex> lk(lane.mu);
          lane.cv.wait(lk, [&] { return lane.queue.size() < kCapacity; });
          if (!lane.free_ops.empty()) {
            item.ops = std::move(lane.free_ops.back());
            lane.free_ops.pop_back();
          }
          item.ops.resize(kOpsPerItem, r);
          lane.queue.push_back(std::move(item));
          lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
        }
        lane.cv.notify_all();
      }
    }
    for (auto& lane : lanes) {
      for (size_t b = 0; b < kBurst; ++b) {
        {
          std::unique_lock<std::mutex> lk(lane.mu);
          lane.cv.wait(lk, [&] { return !lane.queue.empty(); });
          item = std::move(lane.queue.front());
          lane.queue.pop_front();
          lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
          item.ops.clear();
          lane.free_ops.push_back(std::move(item.ops));
        }
        lane.cv.notify_all();
      }
    }
  }
  return watch.ElapsedSeconds();
}

/// The live protocol: ring push/pop plus the parked-flag wake check
/// (nobody is ever parked here, which is also the live fast path).
struct RingLane {
  exec::SpscRing<Item> ring{kCapacity};
  exec::SpscRing<std::vector<uint64_t>> free_ring{kCapacity};
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> consumer_parked{false};
  std::atomic<bool> producer_parked{false};
};

double RingPass(size_t rounds) {
  std::vector<RingLane> lanes(kLanes);
  Item item;
  StopWatch watch;
  for (size_t r = 0; r < rounds; ++r) {
    for (auto& lane : lanes) {
      for (size_t b = 0; b < kBurst; ++b) {
        item.tag = r;
        lane.free_ring.TryPop(&item.ops);
        item.ops.resize(kOpsPerItem, r);
        while (!lane.ring.TryPush(item)) {
          exec::CpuRelax();  // never taken: burst <= capacity
        }
        if (lane.consumer_parked.load(std::memory_order_acquire)) {
          { std::lock_guard<std::mutex> lk(lane.mu); }
          lane.cv.notify_all();
        }
      }
    }
    for (auto& lane : lanes) {
      for (size_t b = 0; b < kBurst; ++b) {
        while (!lane.ring.TryPop(&item)) {
          exec::CpuRelax();
        }
        if (lane.producer_parked.load(std::memory_order_acquire)) {
          { std::lock_guard<std::mutex> lk(lane.mu); }
          lane.cv.notify_all();
        }
        item.ops.clear();
        lane.free_ring.TryPush(item.ops);
      }
    }
  }
  return watch.ElapsedSeconds();
}

/// Telemetry overhead gauge (PR 9): the ring protocol with the per-item
/// busy-time StopWatch the executor has had since PR 8 — once recording
/// nothing (telemetry off: elapsed folds into a double, exactly the live
/// null-telemetry branch) and once recording every hot-path cell site the
/// live worker/coordinator hit when telemetry is on (counters, gauges, two
/// histograms, plus the trigger-latency clock read on output-producing
/// items, here every 4th). The clock reads exist in BOTH passes, so the
/// measured delta is purely the obs::*Cell store cost — the quantity the
/// <= 3% acceptance gate bounds.
///
/// Unlike the protocol-only dispatch_* gauges above, both passes "execute"
/// work alongside the protocol, calibrated against the live telemetry's
/// own measurements on the acceptance workload: a dependent-multiply
/// chain of ~90 ns per op on the consumer side (the engine's measured
/// mean op service time) and ~23 ns per op on the producer side (the
/// coordinator's measured admission+routing cost per event). The
/// telemetry records amortize over real per-item work in production, and
/// gating the bare protocol would measure a hot path that does not exist.
template <int kIters>
uint64_t ExecuteOps(const std::vector<uint64_t>& ops, uint64_t seed) {
  uint64_t x = seed;
  for (uint64_t op : ops) {
    x ^= op;
    for (int i = 0; i < kIters; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    }
  }
  return x;
}
constexpr int kConsumerOpIters = 64;  // ~90 ns/op on the CI reference host
constexpr int kProducerOpIters = 16;  // ~23 ns/op admission+routing
double RingClockPass(size_t rounds) {
  std::vector<RingLane> lanes(kLanes);
  Item item;
  double busy_acc = 0;
  uint64_t sink = 0;
  StopWatch watch;
  for (size_t r = 0; r < rounds; ++r) {
    // Producer side batch-major: one "batch" per b publishes to every
    // lane, the live coordinator's publication pattern.
    for (size_t b = 0; b < kBurst; ++b) {
      for (auto& lane : lanes) {
        item.tag = r;
        lane.free_ring.TryPop(&item.ops);
        item.ops.resize(kOpsPerItem, r);
        sink ^= ExecuteOps<kProducerOpIters>(item.ops, r);  // admission
        while (!lane.ring.TryPush(item)) {
          exec::CpuRelax();
        }
        if (lane.consumer_parked.load(std::memory_order_acquire)) {
          { std::lock_guard<std::mutex> lk(lane.mu); }
          lane.cv.notify_all();
        }
      }
    }
    for (auto& lane : lanes) {
      for (size_t b = 0; b < kBurst; ++b) {
        while (!lane.ring.TryPop(&item)) {
          exec::CpuRelax();
        }
        StopWatch item_watch;
        if (lane.producer_parked.load(std::memory_order_acquire)) {
          { std::lock_guard<std::mutex> lk(lane.mu); }
          lane.cv.notify_all();
        }
        sink ^= ExecuteOps<kConsumerOpIters>(item.ops, r);
        item.ops.clear();
        lane.free_ring.TryPush(item.ops);
        busy_acc += static_cast<double>(item_watch.ElapsedNanos()) * 1e-9;
      }
    }
  }
  // Keep the accumulators observable so the folds aren't optimized away.
  if (busy_acc < 0 || sink == 1) std::fprintf(stderr, "impossible\n");
  return watch.ElapsedSeconds();
}

double RingMetricsPass(size_t rounds) {
  std::vector<RingLane> lanes(kLanes);
  obs::Telemetry tel(kLanes);
  Item item;
  double busy_acc = 0;
  uint64_t sink = 0;
  StopWatch watch;
  for (size_t r = 0; r < rounds; ++r) {
    for (size_t b = 0; b < kBurst; ++b) {
      // One shared publish timestamp per batch, exactly like RunImpl's
      // hoisted clock read covering every lane's publication.
      const uint64_t publish_ns = obs::MonotonicNanos();
      // One rotating occupancy sample per batch (RunImpl's occ_rotor).
      const size_t occ_lane = b % kLanes;
      for (size_t l = 0; l < kLanes; ++l) {
        auto& lane = lanes[l];
        // The coordinator's per-publication sites: publications counter,
        // sampled occupancy histogram, shared publish timestamp.
        tel.coord().publications.Add(1);
        if (l == occ_lane) tel.coord().ring_occupancy.Record(lane.ring.size());
        item.tag = publish_ns;
        lane.free_ring.TryPop(&item.ops);
        item.ops.resize(kOpsPerItem, r);
        sink ^= ExecuteOps<kProducerOpIters>(item.ops, r);  // admission
        while (!lane.ring.TryPush(item)) {
          exec::CpuRelax();
        }
        if (lane.consumer_parked.load(std::memory_order_acquire)) {
          { std::lock_guard<std::mutex> lk(lane.mu); }
          lane.cv.notify_all();
        }
      }
    }
    for (size_t l = 0; l < kLanes; ++l) {
      auto& lane = lanes[l];
      obs::ShardCell& cell = tel.shard(l);
      // The live worker's per-drain accumulators (see WorkerMain): the
      // hot loop adds into locals; the shared cell takes one batch of
      // relaxed stores when the drain ends.
      uint64_t acc_items = 0, acc_ops = 0, acc_events = 0, acc_outputs = 0,
               acc_busy_ns = 0;
      for (size_t b = 0; b < kBurst; ++b) {
        while (!lane.ring.TryPop(&item)) {
          exec::CpuRelax();
        }
        StopWatch item_watch;
        if (lane.producer_parked.load(std::memory_order_acquire)) {
          { std::lock_guard<std::mutex> lk(lane.mu); }
          lane.cv.notify_all();
        }
        sink ^= ExecuteOps<kConsumerOpIters>(item.ops, r);
        item.ops.clear();
        lane.free_ring.TryPush(item.ops);
        const uint64_t busy = item_watch.ElapsedNanos();
        busy_acc += static_cast<double>(busy) * 1e-9;
        ++acc_items;
        acc_ops += kOpsPerItem;
        acc_events += kOpsPerItem;
        if ((b & 3) == 0) ++acc_outputs;
        acc_busy_ns += busy;
        cell.op_service_ns.Record(busy / kOpsPerItem);
        if ((b & 3) == 0) {  // "this item produced outputs" sites
          // Publication-to-item-completion, reconstructed from the busy
          // StopWatch — no extra clock read (see WorkerMain).
          cell.trigger_latency_ns.Record(item_watch.StartNanos() + busy -
                                         item.tag);
        }
      }
      // Drain-boundary cell flush, exactly like WorkerMain's flush_cell.
      cell.items.Add(acc_items);
      cell.ops.Add(acc_ops);
      cell.events.Add(acc_events);
      if (acc_outputs > 0) cell.outputs.Add(acc_outputs);
      cell.busy_ns.Add(acc_busy_ns);
      cell.ring_occupancy.Set(lane.ring.size());
    }
  }
  if (busy_acc < 0 || sink == 1) std::fprintf(stderr, "impossible\n");
  return watch.ElapsedSeconds();
}

struct Measurement {
  double events_per_sec = 0;  // dispatched ops per second
  double median_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
  uint64_t events = 0;
  /// sharded_e2e only: throughput by critical path (max shard busy time —
  /// the wall rate a machine with >= 8 idle cores would see).
  double critical_path_events_per_sec = 0;
};

/// Paired overhead measurement: the total work is cut into short chunks
/// (rounds / kPairedChunks rounds per pass) and the clock/metrics passes
/// alternate chunk by chunk, so each back-to-back pair runs under the
/// same machine regime — frequency drift, a noisy neighbor, or thermal
/// throttle slows BOTH sides of a pair equally and cancels out of that
/// pair's time ratio. The gate uses the MEDIAN of the per-pair ratios:
/// a preemption landing inside one pass makes that one pair an outlier
/// (in either direction), and the median discards it. Empirically this
/// estimator holds a ~0.5% spread on a half-loaded single core where
/// both a global min-time ratio and a whole-run time ratio swing by
/// several percent (regimes last seconds, so they do NOT cancel across
/// long unpaired passes). Returns the per-pass Measurements + the ratio.
struct PairedResult {
  Measurement clock;
  Measurement metrics;
  double gate_ratio = 0;  // metrics/clock throughput, 1.0 = no overhead
};

PairedResult MeasurePaired(size_t rounds, int warmup, int reps) {
  constexpr size_t kPairedChunks = 8;
  const size_t chunk_rounds = std::max<size_t>(1, rounds / kPairedChunks);
  // At least 96 pairs regardless of --reps (a pair is ~75ms of work in
  // quick mode, so the floor costs a few seconds): the median needs
  // enough samples that outlier pairs — a pass preempted mid-chunk —
  // stay a minority. At 48 pairs the median still wobbled ~1% on a
  // half-loaded core; at 96 it holds within ~0.5%.
  const int n = std::max(reps * static_cast<int>(kPairedChunks), 96);
  const uint64_t ops = static_cast<uint64_t>(chunk_rounds) * kLanes * kBurst *
                       kOpsPerItem;
  for (int i = 0; i < warmup; ++i) {
    RingClockPass(chunk_rounds);
    RingMetricsPass(chunk_rounds);
  }
  std::vector<double> clock_s, metrics_s;
  for (int i = 0; i < n; ++i) {
    clock_s.push_back(RingClockPass(chunk_rounds));
    metrics_s.push_back(RingMetricsPass(chunk_rounds));
  }
  auto to_measurement = [ops](std::vector<double> seconds) {
    std::sort(seconds.begin(), seconds.end());
    Measurement m;
    m.median_seconds = seconds[seconds.size() / 2];
    m.min_seconds = seconds.front();
    m.max_seconds = seconds.back();
    m.events = ops;
    m.events_per_sec = m.median_seconds == 0
                           ? 0
                           : static_cast<double>(ops) / m.median_seconds;
    return m;
  };
  PairedResult r;
  r.clock = to_measurement(clock_s);
  r.metrics = to_measurement(metrics_s);
  // Throughput ratio per pair is time ratio t_clock / t_metrics.
  std::vector<double> pair_ratios;
  for (int i = 0; i < n; ++i) {
    const size_t ui = static_cast<size_t>(i);
    if (metrics_s[ui] > 0) pair_ratios.push_back(clock_s[ui] / metrics_s[ui]);
  }
  std::sort(pair_ratios.begin(), pair_ratios.end());
  r.gate_ratio = pair_ratios.empty() ? 0 : pair_ratios[pair_ratios.size() / 2];
  return r;
}

template <typename PassFn>
Measurement MeasureDispatch(PassFn pass, size_t rounds, int warmup,
                            int reps) {
  const uint64_t ops = static_cast<uint64_t>(rounds) * kLanes * kBurst *
                       kOpsPerItem;
  for (int i = 0; i < warmup; ++i) pass(rounds);
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) seconds.push_back(pass(rounds));
  std::sort(seconds.begin(), seconds.end());
  Measurement m;
  m.median_seconds = seconds[seconds.size() / 2];
  m.min_seconds = seconds.front();
  m.max_seconds = seconds.back();
  m.events = ops;
  m.events_per_sec =
      m.median_seconds == 0 ? 0 : static_cast<double>(ops) / m.median_seconds;
  return m;
}

Measurement MeasureShardedE2e(bool quick, int warmup, int reps) {
  const size_t num_events = quick ? 40000 : 120000;
  auto stream = MakeStockStream(num_events, /*max_gap_ms=*/2, /*seed=*/42,
                                /*num_traders=*/1000);
  Schema schema = stream->schema;
  Analyzer analyzer(&schema);
  CompiledQuery cq = std::move(analyzer.AnalyzeText(
                                   "PATTERN SEQ(DELL, IPIX, AMAT) "
                                   "GROUP BY traderId AGG COUNT WITHIN 2s"))
                         .value();
  RunOptions options;
  options.collect_outputs = false;
  options.num_shards = kLanes;

  auto one_pass = [&](double* busy_max) {
    std::string reason;
    auto policy = exec::MakePolicy(
        cq, [&cq] { return CreateAseqEngine(cq); }, options, &reason);
    if (!policy.ok() || !reason.empty()) {
      std::fprintf(stderr, "sharded_e2e: policy unavailable (%s)\n",
                   reason.c_str());
      std::exit(1);
    }
    RunResult result = (*policy)->RunEvents(stream->events);
    for (double busy : (*policy)->shard_busy_seconds()) {
      *busy_max = std::max(*busy_max, busy);
    }
    return result.elapsed_seconds;
  };

  double ignored = 0;
  for (int i = 0; i < warmup; ++i) one_pass(&ignored);
  std::vector<double> seconds;
  double busy_max = 0;
  for (int i = 0; i < reps; ++i) {
    double pass_busy = 0;
    seconds.push_back(one_pass(&pass_busy));
    busy_max = busy_max == 0 ? pass_busy : std::min(busy_max, pass_busy);
  }
  std::sort(seconds.begin(), seconds.end());
  Measurement m;
  m.median_seconds = seconds[seconds.size() / 2];
  m.min_seconds = seconds.front();
  m.max_seconds = seconds.back();
  m.events = num_events;
  m.events_per_sec = m.median_seconds == 0
                         ? 0
                         : static_cast<double>(num_events) / m.median_seconds;
  m.critical_path_events_per_sec =
      busy_max == 0 ? 0 : static_cast<double>(num_events) / busy_max;
  return m;
}

std::string FormatEntry(const std::string& key, const Measurement& m) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\"events_per_sec\": %.1f, \"median_seconds\": %.6f, "
      "\"min_seconds\": %.6f, \"max_seconds\": %.6f, \"events\": %llu, "
      "\"critical_path_events_per_sec\": %.1f}",
      key.c_str(), m.events_per_sec, m.median_seconds, m.min_seconds,
      m.max_seconds, static_cast<unsigned long long>(m.events),
      m.critical_path_events_per_sec);
  return buf;
}

/// Reads the flat JSON written by --out (same shape as the other gauges):
/// key -> events_per_sec.
std::map<std::string, double> ReadCommitted(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    const size_t kq0 = line.find('"');
    if (kq0 == std::string::npos) continue;
    const size_t kq1 = line.find('"', kq0 + 1);
    if (kq1 == std::string::npos) continue;
    const std::string key = line.substr(kq0 + 1, kq1 - kq0 - 1);
    const char* tag = "\"events_per_sec\": ";
    const size_t vp = line.find(tag);
    if (vp == std::string::npos) continue;
    out[key] = std::strtod(line.c_str() + vp + std::strlen(tag), nullptr);
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  using aseq::bench::Measurement;

  bool quick = false;
  int reps = 5;
  int warmup = 1;
  double tolerance = 0.2;
  std::string out_path;
  std::string check_path;
  std::string label = "current";
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--reps") {
      reps = std::atoi(next());
    } else if (arg == "--warmup") {
      warmup = std::atoi(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--label") {
      label = next();
    } else if (arg == "--tolerance") {
      tolerance = std::strtod(next(), nullptr);
    } else if (arg == "--only") {
      only = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  const std::string mode = quick ? "quick" : "full";
  if (quick && reps == 5) reps = 3;
  const size_t rounds = quick ? 4000 : 16000;

  std::printf("dataplane dispatch gauge: mode=%s reps=%d warmup=%d lanes=%zu "
              "burst=%zu ops/item=%zu\n",
              mode.c_str(), reps, warmup, aseq::bench::kLanes,
              aseq::bench::kBurst, aseq::bench::kOpsPerItem);
  std::vector<std::pair<std::string, Measurement>> results;
  auto want = [&](const char* name) { return only.empty() || only == name; };
  if (want("dispatch_mutex")) {
    results.emplace_back("dispatch_mutex",
                         aseq::bench::MeasureDispatch(aseq::bench::MutexPass,
                                                      rounds, warmup, reps));
  }
  if (want("dispatch_ring")) {
    results.emplace_back("dispatch_ring",
                         aseq::bench::MeasureDispatch(aseq::bench::RingPass,
                                                      rounds, warmup, reps));
  }
  double metrics_ratio = 0;
  if (want("dispatch_ring_clock") && want("dispatch_ring_metrics")) {
    // The overhead pair always measures together (interleaved) so the
    // gate ratio is immune to frequency drift between the two sides.
    aseq::bench::PairedResult paired =
        aseq::bench::MeasurePaired(rounds, warmup, reps);
    results.emplace_back("dispatch_ring_clock", paired.clock);
    results.emplace_back("dispatch_ring_metrics", paired.metrics);
    metrics_ratio = paired.gate_ratio;
  } else if (want("dispatch_ring_clock")) {
    results.emplace_back(
        "dispatch_ring_clock",
        aseq::bench::MeasureDispatch(aseq::bench::RingClockPass, rounds,
                                     warmup, reps));
  } else if (want("dispatch_ring_metrics")) {
    results.emplace_back(
        "dispatch_ring_metrics",
        aseq::bench::MeasureDispatch(aseq::bench::RingMetricsPass, rounds,
                                     warmup, reps));
  }
  if (want("sharded_e2e")) {
    results.emplace_back("sharded_e2e",
                         aseq::bench::MeasureShardedE2e(quick, warmup, reps));
  }
  for (const auto& [name, m] : results) {
    std::printf("  %-14s median %9.6f s  %12.0f ev/s", name.c_str(),
                m.median_seconds, m.events_per_sec);
    if (m.critical_path_events_per_sec > 0) {
      std::printf("  critical-path %12.0f ev/s",
                  m.critical_path_events_per_sec);
    }
    std::printf("\n");
  }

  // The acceptance ratio: the ring dataplane must dispatch >= 1.2x the
  // mutex/CV dataplane at 8 lanes. Informative on every run; a gate
  // (exit 1) under --check.
  double ratio = 0;
  {
    double mutex_eps = 0, ring_eps = 0;
    for (const auto& [name, m] : results) {
      if (name == "dispatch_mutex") mutex_eps = m.events_per_sec;
      if (name == "dispatch_ring") ring_eps = m.events_per_sec;
    }
    if (mutex_eps > 0 && ring_eps > 0) {
      ratio = ring_eps / mutex_eps;
      std::printf("  ring/mutex dispatch ratio: %.2fx (gate >= 1.20x)\n",
                  ratio);
    }
    // PR 9 telemetry overhead: metrics-on must keep >= 97% of the
    // metrics-off throughput (<= 3% overhead), median of paired reps.
    if (metrics_ratio > 0) {
      std::printf("  metrics/clock dispatch ratio: %.3fx (gate >= 0.970x, "
                  "overhead %.1f%%)\n",
                  metrics_ratio, (1.0 - metrics_ratio) * 100.0);
    }
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::trunc);
    f << "{\n";
    for (size_t i = 0; i < results.size(); ++i) {
      f << aseq::bench::FormatEntry(
               mode + "/" + label + "/" + results[i].first, results[i].second)
        << (i + 1 < results.size() ? ",\n" : "\n");
    }
    f << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!check_path.empty()) {
    bool ok = true;
    if (ratio > 0 && ratio < 1.2) {
      std::fprintf(stderr,
                   "FAIL: ring/mutex dispatch ratio %.2fx is below the "
                   "1.20x acceptance gate\n",
                   ratio);
      ok = false;
    }
    if (metrics_ratio > 0 && metrics_ratio < 0.97) {
      std::fprintf(stderr,
                   "FAIL: metrics/clock dispatch ratio %.3fx is below the "
                   "0.970x acceptance gate (telemetry overhead > 3%%)\n",
                   metrics_ratio);
      ok = false;
    }
    auto committed = aseq::bench::ReadCommitted(check_path);
    for (const auto& [name, m] : results) {
      if (name == "sharded_e2e") continue;  // scheduler noise, never gated
      const std::string key = mode + "/current/" + name;
      auto it = committed.find(key);
      if (it == committed.end()) {
        std::fprintf(stderr, "FAIL: %s has no committed entry %s\n",
                     check_path.c_str(), key.c_str());
        ok = false;
        continue;
      }
      const double floor = it->second * (1.0 - tolerance);
      const bool pass = m.events_per_sec >= floor;
      std::printf("  check %-32s %12.0f ev/s vs committed %12.0f (floor "
                  "%12.0f): %s\n",
                  key.c_str(), m.events_per_sec, it->second, floor,
                  pass ? "ok" : "REGRESSED");
      ok = ok && pass;
    }
    if (!ok) return 1;
  }
  return 0;
}
