// Dataplane dispatch gauge: the sharded executor's coordinator→worker
// handoff protocol, before (PR 7: mutex + condition_variable + deque per
// lane) vs after (SPSC ring + parked-flag wake, exec/spsc_ring.h,
// docs/internals.md §16).
//
// The container CI runs on has one core, so a threaded throughput number
// would only measure the scheduler. Instead the gauge replays the exact
// per-publication synchronization sequence of each dataplane single-
// threaded and deterministic — same item payloads, same burst/drain
// cadence, same free-list recycling — so the measured delta is purely the
// protocol cost (lock/notify/deque vs two acquire-release atomics):
//
//   dispatch_mutex — faithful replica of the PR 7 lane: push takes the
//                    lane mutex, re-checks capacity under it, mirrors the
//                    depth atomic, notify_all()s; pop takes the mutex,
//                    recycles the drained vector under it, notify_all()s
//   dispatch_ring  — the live protocol: SpscRing TryPush/TryPop plus the
//                    parked-flag wake check, free vectors recycled over
//                    the reverse ring
//   sharded_e2e    — the real 8-shard executor end-to-end on the grouped
//                    workload (wall + critical-path throughput). On a
//                    single-core host wall time measures coordination
//                    overhead, so this entry is informative, not gated.
//
// Gate (CI perf smoke, --check): dispatch_ring must stay >= 1.2x
// dispatch_mutex (the PR's acceptance ratio), and the dispatch_* entries
// must not regress more than --tolerance vs the committed
// BENCH_dataplane.json. sharded_e2e is written but never checked — its
// wall time on a shared single-core runner is scheduler noise.
//
// Usage:
//   bench_dataplane [--quick] [--reps N] [--warmup N] [--only WORKLOAD]
//                   [--out FILE] [--label NAME]
//                   [--check BENCH_dataplane.json] [--tolerance 0.2]
//
// --out writes flat JSON entries keyed "<mode>/<label>/<workload>" with an
// "events_per_sec" field (one event = one dispatched op), the same format
// the other perf-smoke gauges commit.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "bench/bench_util.h"
#include "exec/execution_policy.h"
#include "exec/spsc_ring.h"
#include "metrics/metrics.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

/// Mirrors the executor's LaneItem: a tag plus a batch of ops (the op
/// payload is a stand-in of the same shape; the protocols move it, never
/// copy it).
struct Item {
  uint64_t tag = 0;
  std::vector<uint64_t> ops;
};

constexpr size_t kLanes = 8;          // the acceptance point: 8 shards
constexpr size_t kCapacity = 16;      // shard_detail::kMaxQueuedItems
constexpr size_t kBurst = 12;         // the default overload watermark
constexpr size_t kOpsPerItem = 8;     // ops per publication

/// PR 7 lane replica: every push and every pop is a mutex round-trip with
/// a capacity/empty re-check under the lock, a depth-mirror store, and a
/// notify_all — exactly what the executor did per publication before the
/// ring dataplane.
struct MutexLane {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Item> queue;
  std::vector<std::vector<uint64_t>> free_ops;
  std::atomic<size_t> depth{0};
};

double MutexPass(size_t rounds) {
  std::vector<MutexLane> lanes(kLanes);
  Item item;
  StopWatch watch;
  for (size_t r = 0; r < rounds; ++r) {
    for (auto& lane : lanes) {
      for (size_t b = 0; b < kBurst; ++b) {
        item.tag = r;
        {
          std::unique_lock<std::mutex> lk(lane.mu);
          lane.cv.wait(lk, [&] { return lane.queue.size() < kCapacity; });
          if (!lane.free_ops.empty()) {
            item.ops = std::move(lane.free_ops.back());
            lane.free_ops.pop_back();
          }
          item.ops.resize(kOpsPerItem, r);
          lane.queue.push_back(std::move(item));
          lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
        }
        lane.cv.notify_all();
      }
    }
    for (auto& lane : lanes) {
      for (size_t b = 0; b < kBurst; ++b) {
        {
          std::unique_lock<std::mutex> lk(lane.mu);
          lane.cv.wait(lk, [&] { return !lane.queue.empty(); });
          item = std::move(lane.queue.front());
          lane.queue.pop_front();
          lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
          item.ops.clear();
          lane.free_ops.push_back(std::move(item.ops));
        }
        lane.cv.notify_all();
      }
    }
  }
  return watch.ElapsedSeconds();
}

/// The live protocol: ring push/pop plus the parked-flag wake check
/// (nobody is ever parked here, which is also the live fast path).
struct RingLane {
  exec::SpscRing<Item> ring{kCapacity};
  exec::SpscRing<std::vector<uint64_t>> free_ring{kCapacity};
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> consumer_parked{false};
  std::atomic<bool> producer_parked{false};
};

double RingPass(size_t rounds) {
  std::vector<RingLane> lanes(kLanes);
  Item item;
  StopWatch watch;
  for (size_t r = 0; r < rounds; ++r) {
    for (auto& lane : lanes) {
      for (size_t b = 0; b < kBurst; ++b) {
        item.tag = r;
        lane.free_ring.TryPop(&item.ops);
        item.ops.resize(kOpsPerItem, r);
        while (!lane.ring.TryPush(item)) {
          exec::CpuRelax();  // never taken: burst <= capacity
        }
        if (lane.consumer_parked.load(std::memory_order_acquire)) {
          { std::lock_guard<std::mutex> lk(lane.mu); }
          lane.cv.notify_all();
        }
      }
    }
    for (auto& lane : lanes) {
      for (size_t b = 0; b < kBurst; ++b) {
        while (!lane.ring.TryPop(&item)) {
          exec::CpuRelax();
        }
        if (lane.producer_parked.load(std::memory_order_acquire)) {
          { std::lock_guard<std::mutex> lk(lane.mu); }
          lane.cv.notify_all();
        }
        item.ops.clear();
        lane.free_ring.TryPush(item.ops);
      }
    }
  }
  return watch.ElapsedSeconds();
}

struct Measurement {
  double events_per_sec = 0;  // dispatched ops per second
  double median_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
  uint64_t events = 0;
  /// sharded_e2e only: throughput by critical path (max shard busy time —
  /// the wall rate a machine with >= 8 idle cores would see).
  double critical_path_events_per_sec = 0;
};

template <typename PassFn>
Measurement MeasureDispatch(PassFn pass, size_t rounds, int warmup,
                            int reps) {
  const uint64_t ops = static_cast<uint64_t>(rounds) * kLanes * kBurst *
                       kOpsPerItem;
  for (int i = 0; i < warmup; ++i) pass(rounds);
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) seconds.push_back(pass(rounds));
  std::sort(seconds.begin(), seconds.end());
  Measurement m;
  m.median_seconds = seconds[seconds.size() / 2];
  m.min_seconds = seconds.front();
  m.max_seconds = seconds.back();
  m.events = ops;
  m.events_per_sec =
      m.median_seconds == 0 ? 0 : static_cast<double>(ops) / m.median_seconds;
  return m;
}

Measurement MeasureShardedE2e(bool quick, int warmup, int reps) {
  const size_t num_events = quick ? 40000 : 120000;
  auto stream = MakeStockStream(num_events, /*max_gap_ms=*/2, /*seed=*/42,
                                /*num_traders=*/1000);
  Schema schema = stream->schema;
  Analyzer analyzer(&schema);
  CompiledQuery cq = std::move(analyzer.AnalyzeText(
                                   "PATTERN SEQ(DELL, IPIX, AMAT) "
                                   "GROUP BY traderId AGG COUNT WITHIN 2s"))
                         .value();
  RunOptions options;
  options.collect_outputs = false;
  options.num_shards = kLanes;

  auto one_pass = [&](double* busy_max) {
    std::string reason;
    auto policy = exec::MakePolicy(
        cq, [&cq] { return CreateAseqEngine(cq); }, options, &reason);
    if (!policy.ok() || !reason.empty()) {
      std::fprintf(stderr, "sharded_e2e: policy unavailable (%s)\n",
                   reason.c_str());
      std::exit(1);
    }
    RunResult result = (*policy)->RunEvents(stream->events);
    for (double busy : (*policy)->shard_busy_seconds()) {
      *busy_max = std::max(*busy_max, busy);
    }
    return result.elapsed_seconds;
  };

  double ignored = 0;
  for (int i = 0; i < warmup; ++i) one_pass(&ignored);
  std::vector<double> seconds;
  double busy_max = 0;
  for (int i = 0; i < reps; ++i) {
    double pass_busy = 0;
    seconds.push_back(one_pass(&pass_busy));
    busy_max = busy_max == 0 ? pass_busy : std::min(busy_max, pass_busy);
  }
  std::sort(seconds.begin(), seconds.end());
  Measurement m;
  m.median_seconds = seconds[seconds.size() / 2];
  m.min_seconds = seconds.front();
  m.max_seconds = seconds.back();
  m.events = num_events;
  m.events_per_sec = m.median_seconds == 0
                         ? 0
                         : static_cast<double>(num_events) / m.median_seconds;
  m.critical_path_events_per_sec =
      busy_max == 0 ? 0 : static_cast<double>(num_events) / busy_max;
  return m;
}

std::string FormatEntry(const std::string& key, const Measurement& m) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\"events_per_sec\": %.1f, \"median_seconds\": %.6f, "
      "\"min_seconds\": %.6f, \"max_seconds\": %.6f, \"events\": %llu, "
      "\"critical_path_events_per_sec\": %.1f}",
      key.c_str(), m.events_per_sec, m.median_seconds, m.min_seconds,
      m.max_seconds, static_cast<unsigned long long>(m.events),
      m.critical_path_events_per_sec);
  return buf;
}

/// Reads the flat JSON written by --out (same shape as the other gauges):
/// key -> events_per_sec.
std::map<std::string, double> ReadCommitted(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    const size_t kq0 = line.find('"');
    if (kq0 == std::string::npos) continue;
    const size_t kq1 = line.find('"', kq0 + 1);
    if (kq1 == std::string::npos) continue;
    const std::string key = line.substr(kq0 + 1, kq1 - kq0 - 1);
    const char* tag = "\"events_per_sec\": ";
    const size_t vp = line.find(tag);
    if (vp == std::string::npos) continue;
    out[key] = std::strtod(line.c_str() + vp + std::strlen(tag), nullptr);
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  using aseq::bench::Measurement;

  bool quick = false;
  int reps = 5;
  int warmup = 1;
  double tolerance = 0.2;
  std::string out_path;
  std::string check_path;
  std::string label = "current";
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--reps") {
      reps = std::atoi(next());
    } else if (arg == "--warmup") {
      warmup = std::atoi(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--label") {
      label = next();
    } else if (arg == "--tolerance") {
      tolerance = std::strtod(next(), nullptr);
    } else if (arg == "--only") {
      only = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  const std::string mode = quick ? "quick" : "full";
  if (quick && reps == 5) reps = 3;
  const size_t rounds = quick ? 4000 : 16000;

  std::printf("dataplane dispatch gauge: mode=%s reps=%d warmup=%d lanes=%zu "
              "burst=%zu ops/item=%zu\n",
              mode.c_str(), reps, warmup, aseq::bench::kLanes,
              aseq::bench::kBurst, aseq::bench::kOpsPerItem);
  std::vector<std::pair<std::string, Measurement>> results;
  auto want = [&](const char* name) { return only.empty() || only == name; };
  if (want("dispatch_mutex")) {
    results.emplace_back("dispatch_mutex",
                         aseq::bench::MeasureDispatch(aseq::bench::MutexPass,
                                                      rounds, warmup, reps));
  }
  if (want("dispatch_ring")) {
    results.emplace_back("dispatch_ring",
                         aseq::bench::MeasureDispatch(aseq::bench::RingPass,
                                                      rounds, warmup, reps));
  }
  if (want("sharded_e2e")) {
    results.emplace_back("sharded_e2e",
                         aseq::bench::MeasureShardedE2e(quick, warmup, reps));
  }
  for (const auto& [name, m] : results) {
    std::printf("  %-14s median %9.6f s  %12.0f ev/s", name.c_str(),
                m.median_seconds, m.events_per_sec);
    if (m.critical_path_events_per_sec > 0) {
      std::printf("  critical-path %12.0f ev/s",
                  m.critical_path_events_per_sec);
    }
    std::printf("\n");
  }

  // The acceptance ratio: the ring dataplane must dispatch >= 1.2x the
  // mutex/CV dataplane at 8 lanes. Informative on every run; a gate
  // (exit 1) under --check.
  double ratio = 0;
  {
    double mutex_eps = 0, ring_eps = 0;
    for (const auto& [name, m] : results) {
      if (name == "dispatch_mutex") mutex_eps = m.events_per_sec;
      if (name == "dispatch_ring") ring_eps = m.events_per_sec;
    }
    if (mutex_eps > 0 && ring_eps > 0) {
      ratio = ring_eps / mutex_eps;
      std::printf("  ring/mutex dispatch ratio: %.2fx (gate >= 1.20x)\n",
                  ratio);
    }
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::trunc);
    f << "{\n";
    for (size_t i = 0; i < results.size(); ++i) {
      f << aseq::bench::FormatEntry(
               mode + "/" + label + "/" + results[i].first, results[i].second)
        << (i + 1 < results.size() ? ",\n" : "\n");
    }
    f << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!check_path.empty()) {
    bool ok = true;
    if (ratio > 0 && ratio < 1.2) {
      std::fprintf(stderr,
                   "FAIL: ring/mutex dispatch ratio %.2fx is below the "
                   "1.20x acceptance gate\n",
                   ratio);
      ok = false;
    }
    auto committed = aseq::bench::ReadCommitted(check_path);
    for (const auto& [name, m] : results) {
      if (name == "sharded_e2e") continue;  // scheduler noise, never gated
      const std::string key = mode + "/current/" + name;
      auto it = committed.find(key);
      if (it == committed.end()) {
        std::fprintf(stderr, "FAIL: %s has no committed entry %s\n",
                     check_path.c_str(), key.c_str());
        ok = false;
        continue;
      }
      const double floor = it->second * (1.0 - tolerance);
      const bool pass = m.events_per_sec >= floor;
      std::printf("  check %-32s %12.0f ev/s vs committed %12.0f (floor "
                  "%12.0f): %s\n",
                  key.c_str(), m.events_per_sec, it->second, floor,
                  pass ? "ok" : "REGRESSED");
      ok = ok && pass;
    }
    if (!ok) return 1;
  }
  return 0;
}
