// Fig. 16(c): Chop-Connect while the shared-substring length grows from 2
// to 6 (3-query workload; the substring sits mid-pattern between a private
// prefix and a private tail).
//
// Expected shape (Sec. 6.3.2): CC's gain over unshared A-Seq grows with the
// substring length — ~1.3x to ~2.6x in the paper — confirming the snapshot
// machinery is lightweight.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/nonshared_engine.h"

namespace aseq {
namespace bench {
namespace {

const size_t kNumEvents = ScaledEvents(30000);
constexpr int64_t kMaxGapMs = 4;
constexpr Timestamp kWindowMs = 2000;
constexpr size_t kNumQueries = 3;

const MultiBench& Bench(size_t shared_len) {
  static std::unique_ptr<MultiBench> cache[8];
  if (cache[shared_len] == nullptr) {
    SharedWorkload workload = MakeSubstringSharedWorkload(
        kNumQueries, /*prefix_len=*/2, shared_len, /*tail_len=*/0, kWindowMs);
    cache[shared_len] = MakeMultiBench(workload, kNumEvents, kMaxGapMs);
  }
  return *cache[shared_len];
}

void BM_NonShare(benchmark::State& state) {
  const MultiBench& mb = Bench(static_cast<size_t>(state.range(0)));
  auto engine = NonSharedEngine::CreateAseq(mb.queries);
  RunMultiAndReport(state, mb.events, engine->get());
}
BENCHMARK(BM_NonShare)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ChopConnect(benchmark::State& state) {
  const MultiBench& mb = Bench(static_cast<size_t>(state.range(0)));
  ChopPlan plan = PlanChopConnect(mb.queries);
  auto engine = ChopConnectEngine::Create(mb.queries, plan);
  RunMultiAndReport(state, mb.events, engine->get());
}
BENCHMARK(BM_ChopConnect)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Fig. 16(c)",
      "Chop-Connect vs shared-substring length (l = 2..6, 3 queries)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
