// Fig. 13 (a)+(b): A-Seq vs the stack-based baseline while the window size
// varies from 100ms to 1000ms (pattern length fixed at 3).
//
// Expected shape (Sec. 6.2): both methods grow with the window, but the
// baseline degrades polynomially in the number of active events per window
// while A-Seq grows only linearly (in the number of live START instances);
// memory behaves alike.

#include <benchmark/benchmark.h>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "bench/bench_util.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

const size_t kNumEvents = ScaledEvents(4000);
constexpr int64_t kMaxGapMs = 6;
constexpr size_t kPatternLength = 3;

const BenchStream& Stream() {
  static const BenchStream* stream =
      MakeStockStream(kNumEvents, kMaxGapMs).release();
  return *stream;
}

CompiledQuery QueryOfWindow(Timestamp window_ms) {
  Schema schema = Stream().schema;
  Analyzer analyzer(&schema);
  auto cq = analyzer.Analyze(MakeTickerQuery(kPatternLength, window_ms));
  return std::move(cq).value();
}

void BM_StackBased(benchmark::State& state) {
  CompiledQuery cq = QueryOfWindow(state.range(0));
  StackEngine engine(cq);
  RunAndReport(state, Stream().events, &engine);
}
BENCHMARK(BM_StackBased)
    ->DenseRange(100, 1000, 100)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ASeq(benchmark::State& state) {
  CompiledQuery cq = QueryOfWindow(state.range(0));
  auto engine = CreateAseqEngine(cq);
  RunAndReport(state, Stream().events, engine->get());
}
BENCHMARK(BM_ASeq)
    ->DenseRange(100, 1000, 100)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Fig. 13(a)/(b)",
      "exec time & memory vs window size (win = 100..1000ms, l = 3)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
