// Partition-store sweep: single-thread throughput of the Hashed Prefix
// Counter engine on grouped / equivalence workloads whose partition
// cardinality is high enough that every probe is a dependent random
// lookup (the paper's Fig. 14 scalability regime).
//
// This is the before/after gauge for the flat partition store
// (src/container/): open-addressing FlatMap + key interning + slab-pooled
// counter state vs the former node-based std::unordered_map. Workloads:
//
//   grouped_count  — GROUP BY COUNT, the O(1)-trigger hot path where the
//                    per-event constant is pure partition-map probing
//                    (the acceptance gate: >= 1.3x vs the node map)
//   equiv_count    — equivalence-only partitioning (no GROUP BY), same
//                    probe pattern, trigger scans are rare
//   grouped_sum    — GROUP BY SUM: every trigger runs ScanTotal's
//                    purge-and-erase sweep, so erase/re-insert churn and
//                    iteration both weigh in
//
// Noise control: every measurement is median-of-N over fresh engines with
// discarded warm-up passes (bench/bench_util.h).
//
// Usage:
//   bench_partition_store [--quick] [--reps N] [--warmup N]
//                         [--only WORKLOAD] [--out FILE] [--label NAME]
//                         [--check BENCH_partition_store.json]
//                         [--tolerance 0.2]
//
// --out appends/writes flat JSON entries keyed "<mode>/<label>/<workload>".
// --check re-runs the sweep and fails (exit 1) if any workload's
// events_per_sec regressed more than --tolerance vs the committed
// "<mode>/current/<workload>" entry — the CI perf smoke gate.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "bench/bench_util.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

struct Workload {
  std::string name;
  std::string query;
  size_t num_events;
  size_t num_traders;
  int64_t max_gap_ms;
};

std::vector<Workload> MakeWorkloads(bool quick) {
  const size_t events = quick ? 60000 : 200000;
  const size_t traders = quick ? 10000 : 30000;
  return {
      {"grouped_count",
       "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 100s",
       events, traders, 2},
      {"equiv_count",
       "PATTERN SEQ(DELL, IPIX, AMAT) "
       "WHERE DELL.traderId = IPIX.traderId = AMAT.traderId "
       "AGG COUNT WITHIN 100s",
       events, traders, 2},
      {"grouped_sum",
       "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG SUM(IPIX.volume) "
       "WITHIN 100s",
       events, traders, 2},
  };
}

struct Measurement {
  double median_ms_per_slide = 0;
  double events_per_sec = 0;
  double min_seconds = 0;
  double max_seconds = 0;
  uint64_t events = 0;
  uint64_t outputs = 0;
  int64_t peak_objects = 0;
  double avg_probe_len = 0;
  double load_factor = 0;
};

Measurement RunWorkload(const Workload& w, int warmup, int reps) {
  auto stream = MakeStockStream(w.num_events, w.max_gap_ms, /*seed=*/42,
                                w.num_traders);
  Schema schema = stream->schema;
  Analyzer analyzer(&schema);
  CompiledQuery cq = std::move(analyzer.AnalyzeText(w.query)).value();

  StableRun run = RunStable(
      stream->events,
      [&] { return std::move(CreateAseqEngine(cq)).value(); },
      kDefaultBatchSize, warmup, reps);

  Measurement m;
  m.median_ms_per_slide = run.MedianMsPerSlide();
  m.events_per_sec = run.MedianEventsPerSec();
  m.min_seconds = *std::min_element(run.seconds.begin(), run.seconds.end());
  m.max_seconds = *std::max_element(run.seconds.begin(), run.seconds.end());
  m.events = run.events_per_pass;
  m.outputs = run.outputs;
  m.peak_objects = run.peak_objects;
  m.avg_probe_len =
      run.ht_probes == 0 ? 0
                         : static_cast<double>(run.ht_probe_steps) /
                               static_cast<double>(run.ht_probes);
  m.load_factor = run.ht_slots == 0
                      ? 0
                      : static_cast<double>(run.ht_entries) /
                            static_cast<double>(run.ht_slots);
  return m;
}

std::string FormatEntry(const std::string& key, const Measurement& m) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\"median_ms_per_slide\": %.6f, \"events_per_sec\": %.1f, "
      "\"min_seconds\": %.4f, \"max_seconds\": %.4f, \"events\": %llu, "
      "\"outputs\": %llu, \"peak_objects\": %lld, \"avg_probe_len\": %.3f, "
      "\"load_factor\": %.3f}",
      key.c_str(), m.median_ms_per_slide, m.events_per_sec, m.min_seconds,
      m.max_seconds, static_cast<unsigned long long>(m.events),
      static_cast<unsigned long long>(m.outputs),
      static_cast<long long>(m.peak_objects), m.avg_probe_len, m.load_factor);
  return buf;
}

/// Reads the flat JSON written by --out: one "<key>": {...} entry per
/// line. Returns key -> events_per_sec.
std::map<std::string, double> ReadCommitted(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    const size_t kq0 = line.find('"');
    if (kq0 == std::string::npos) continue;
    const size_t kq1 = line.find('"', kq0 + 1);
    if (kq1 == std::string::npos) continue;
    const std::string key = line.substr(kq0 + 1, kq1 - kq0 - 1);
    const char* tag = "\"events_per_sec\": ";
    const size_t vp = line.find(tag);
    if (vp == std::string::npos) continue;
    out[key] = std::strtod(line.c_str() + vp + std::strlen(tag), nullptr);
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  using aseq::bench::Measurement;
  using aseq::bench::Workload;

  bool quick = false;
  int reps = 5;
  int warmup = 1;
  double tolerance = 0.2;
  std::string out_path;
  std::string check_path;
  std::string label = "current";
  std::string only;  // run just this workload (profiling aid)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--reps") {
      reps = std::atoi(next());
    } else if (arg == "--warmup") {
      warmup = std::atoi(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--label") {
      label = next();
    } else if (arg == "--tolerance") {
      tolerance = std::strtod(next(), nullptr);
    } else if (arg == "--only") {
      only = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  const std::string mode = quick ? "quick" : "full";
  if (quick && reps == 5) reps = 3;

  std::printf("partition-store sweep: mode=%s reps=%d warmup=%d\n",
              mode.c_str(), reps, warmup);
  std::vector<std::pair<std::string, Measurement>> results;
  for (const Workload& w : aseq::bench::MakeWorkloads(quick)) {
    if (!only.empty() && w.name != only) continue;
    Measurement m = aseq::bench::RunWorkload(w, warmup, reps);
    std::printf(
        "  %-14s median %8.4f ms/slide  %10.0f ev/s  outputs=%llu "
        "peak_obj=%lld probe_len=%.2f load=%.2f\n",
        w.name.c_str(), m.median_ms_per_slide, m.events_per_sec,
        static_cast<unsigned long long>(m.outputs),
        static_cast<long long>(m.peak_objects), m.avg_probe_len,
        m.load_factor);
    results.emplace_back(w.name, m);
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::trunc);
    f << "{\n";
    for (size_t i = 0; i < results.size(); ++i) {
      f << aseq::bench::FormatEntry(mode + "/" + label + "/" +
                                        results[i].first,
                                    results[i].second)
        << (i + 1 < results.size() ? ",\n" : "\n");
    }
    f << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!check_path.empty()) {
    auto committed = aseq::bench::ReadCommitted(check_path);
    bool ok = true;
    for (const auto& [name, m] : results) {
      const std::string key = mode + "/current/" + name;
      auto it = committed.find(key);
      if (it == committed.end()) {
        std::fprintf(stderr, "FAIL: %s has no committed entry %s\n",
                     check_path.c_str(), key.c_str());
        ok = false;
        continue;
      }
      const double floor = it->second * (1.0 - tolerance);
      const bool pass = m.events_per_sec >= floor;
      std::printf("  check %-32s %10.0f ev/s vs committed %10.0f (floor "
                  "%10.0f): %s\n",
                  key.c_str(), m.events_per_sec, it->second, floor,
                  pass ? "ok" : "REGRESSED");
      ok = ok && pass;
    }
    if (!ok) return 1;
  }
  return 0;
}
