// Admission sweep: single-thread throughput of the Hashed Prefix Counter
// engine on predicate-heavy grouped workloads where per-event admission
// (local-predicate qualification + partition-key extraction + carrier
// load, Sec. 3.4's pushed-down filters) dominates the hot path.
//
// This is the before/after gauge for the compiled admission layer
// (src/plan/): typed branch-light comparison opcodes + fused role records
// vs the interpreted CompiledQuery::QualifiesFor / PartitionKeyFor walk.
// Workloads:
//
//   pred_grouped_count — GROUP BY COUNT behind a wall of local predicates
//                        per element, ordered so most events evaluate
//                        every term before rejecting (the acceptance
//                        gate: >= 1.2x vs the interpreted admission path)
//   pred_grouped_sum   — same shape plus a SUM carrier, so admission also
//                        validates + loads the aggregate carrier attr
//   pred_mixed_fallback— double literals against int64 attrs: every term
//                        takes the generic EvalCmp fallback, measuring
//                        the floor the typed specialization stands on
//
// Noise control: every measurement is median-of-N over fresh engines with
// discarded warm-up passes (bench/bench_util.h).
//
// Usage:
//   bench_admission [--quick] [--reps N] [--warmup N]
//                   [--only WORKLOAD] [--out FILE] [--label NAME]
//                   [--check BENCH_admission.json] [--tolerance 0.2]
//
// --out appends/writes flat JSON entries keyed "<mode>/<label>/<workload>".
// --check re-runs the sweep and fails (exit 1) if any workload's
// events_per_sec regressed more than --tolerance vs the committed
// "<mode>/current/<workload>" entry — the CI perf smoke gate. The
// committed "<mode>/interpreted/<workload>" entries preserve the
// pre-refactor interpreted-admission baseline this sweep is measured
// against.

#include <ctime>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "bench/bench_util.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

/// Process CPU time. The admission sweep times its passes on the CPU
/// clock instead of the wall clock: on a contended single-core host the
/// wall clock measures the scheduler (±15% run-to-run on an otherwise
/// identical binary), while CPU time isolates the work under test.
double CpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// RunStable (bench_util.h), except each pass is timed with CpuSeconds
/// around the run loop rather than taking the runner's wall-clock
/// elapsed_seconds.
template <typename MakeEngine>
StableRun RunStableCpu(const std::vector<Event>& events,
                       MakeEngine&& make_engine, size_t batch_size, int warmup,
                       int reps) {
  BatchRunner& runner = SharedRunner();
  RunOptions options;
  options.collect_outputs = false;
  options.batch_size = batch_size;
  runner.set_options(options);
  VectorSource source(events);
  StableRun out;
  for (int pass = 0; pass < warmup + reps; ++pass) {
    auto engine = make_engine();
    source.Reset();
    const double t0 = CpuSeconds();
    RunResult result = runner.Run(&source, engine.get());
    const double seconds = CpuSeconds() - t0;
    if (pass < warmup) continue;
    out.seconds.push_back(seconds);
    out.events_per_pass = result.events;
    const EngineStats& stats = engine->stats();
    out.outputs = stats.outputs;
    out.peak_objects = stats.objects.peak();
  }
  return out;
}

struct Workload {
  std::string name;
  std::string query;
  size_t num_events;
  size_t num_traders;
  int64_t max_gap_ms;
};

std::vector<Workload> MakeWorkloads(bool quick) {
  // Full mode runs 1M events so each pass is tens of milliseconds —
  // enough to push scheduler noise into the tail instead of the median;
  // quick mode trades stability for CI turnaround.
  const size_t events = quick ? 60000 : 1000000;
  const size_t traders = quick ? 2000 : 5000;
  // Predicate order matters: the near-always-true terms come first so a
  // rejected event still pays for the full term walk — the sweep measures
  // admission, not short-circuit luck.
  return {
      {"pred_grouped_count",
       "PATTERN SEQ(DELL, IPIX) "
       "WHERE DELL.price > 60.0 AND DELL.volume >= 200 AND "
       "DELL.volume <= 9800 AND DELL.volume <= 9500 AND "
       "DELL.volume >= 9000 AND IPIX.price > 60.0 AND "
       "IPIX.volume >= 200 AND IPIX.volume <= 9800 AND "
       "IPIX.volume >= 9000 "
       "GROUP BY traderId AGG COUNT WITHIN 2s",
       events, traders, 2},
      {"pred_grouped_sum",
       "PATTERN SEQ(DELL, IPIX) "
       "WHERE DELL.price > 60.0 AND DELL.volume >= 6000 AND "
       "IPIX.price > 60.0 AND IPIX.volume >= 6000 "
       "GROUP BY traderId AGG SUM(IPIX.volume) WITHIN 2s",
       events, traders, 2},
      {"pred_mixed_fallback",
       "PATTERN SEQ(DELL, IPIX) "
       "WHERE DELL.volume >= 2000.5 AND DELL.volume <= 9000.5 AND "
       "IPIX.volume >= 7000.5 "
       "GROUP BY traderId AGG COUNT WITHIN 2s",
       events, traders, 2},
  };
}

struct Measurement {
  double median_ms_per_slide = 0;
  double events_per_sec = 0;
  double min_seconds = 0;
  double max_seconds = 0;
  uint64_t events = 0;
  uint64_t outputs = 0;
  int64_t peak_objects = 0;
};

Measurement RunWorkload(const Workload& w, int warmup, int reps) {
  auto stream = MakeStockStream(w.num_events, w.max_gap_ms, /*seed=*/42,
                                w.num_traders);
  Schema schema = stream->schema;
  Analyzer analyzer(&schema);
  CompiledQuery cq = std::move(analyzer.AnalyzeText(w.query)).value();

  StableRun run = RunStableCpu(
      stream->events,
      [&] { return std::move(CreateAseqEngine(cq)).value(); },
      kDefaultBatchSize, warmup, reps);

  Measurement m;
  m.median_ms_per_slide = run.MedianMsPerSlide();
  m.events_per_sec = run.MedianEventsPerSec();
  m.min_seconds = *std::min_element(run.seconds.begin(), run.seconds.end());
  m.max_seconds = *std::max_element(run.seconds.begin(), run.seconds.end());
  m.events = run.events_per_pass;
  m.outputs = run.outputs;
  m.peak_objects = run.peak_objects;
  return m;
}

std::string FormatEntry(const std::string& key, const Measurement& m) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\"median_ms_per_slide\": %.6f, \"events_per_sec\": %.1f, "
      "\"min_seconds\": %.4f, \"max_seconds\": %.4f, \"events\": %llu, "
      "\"outputs\": %llu, \"peak_objects\": %lld}",
      key.c_str(), m.median_ms_per_slide, m.events_per_sec, m.min_seconds,
      m.max_seconds, static_cast<unsigned long long>(m.events),
      static_cast<unsigned long long>(m.outputs),
      static_cast<long long>(m.peak_objects));
  return buf;
}

/// Reads the flat JSON written by --out: one "<key>": {...} entry per
/// line. Returns key -> events_per_sec.
std::map<std::string, double> ReadCommitted(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    const size_t kq0 = line.find('"');
    if (kq0 == std::string::npos) continue;
    const size_t kq1 = line.find('"', kq0 + 1);
    if (kq1 == std::string::npos) continue;
    const std::string key = line.substr(kq0 + 1, kq1 - kq0 - 1);
    const char* tag = "\"events_per_sec\": ";
    const size_t vp = line.find(tag);
    if (vp == std::string::npos) continue;
    out[key] = std::strtod(line.c_str() + vp + std::strlen(tag), nullptr);
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  using aseq::bench::Measurement;
  using aseq::bench::Workload;

  bool quick = false;
  int reps = 5;
  int warmup = 1;
  double tolerance = 0.2;
  std::string out_path;
  std::string check_path;
  std::string label = "current";
  std::string only;  // run just this workload (profiling aid)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--reps") {
      reps = std::atoi(next());
    } else if (arg == "--warmup") {
      warmup = std::atoi(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--label") {
      label = next();
    } else if (arg == "--tolerance") {
      tolerance = std::strtod(next(), nullptr);
    } else if (arg == "--only") {
      only = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  const std::string mode = quick ? "quick" : "full";
  if (quick && reps == 5) reps = 3;

  std::printf("admission sweep: mode=%s reps=%d warmup=%d\n", mode.c_str(),
              reps, warmup);
  std::vector<std::pair<std::string, Measurement>> results;
  for (const Workload& w : aseq::bench::MakeWorkloads(quick)) {
    if (!only.empty() && w.name != only) continue;
    Measurement m = aseq::bench::RunWorkload(w, warmup, reps);
    std::printf(
        "  %-20s median %8.4f ms/slide  %10.0f ev/s  outputs=%llu "
        "peak_obj=%lld\n",
        w.name.c_str(), m.median_ms_per_slide, m.events_per_sec,
        static_cast<unsigned long long>(m.outputs),
        static_cast<long long>(m.peak_objects));
    results.emplace_back(w.name, m);
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::trunc);
    f << "{\n";
    for (size_t i = 0; i < results.size(); ++i) {
      f << aseq::bench::FormatEntry(mode + "/" + label + "/" +
                                        results[i].first,
                                    results[i].second)
        << (i + 1 < results.size() ? ",\n" : "\n");
    }
    f << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!check_path.empty()) {
    auto committed = aseq::bench::ReadCommitted(check_path);
    bool ok = true;
    for (const auto& [name, m] : results) {
      const std::string key = mode + "/current/" + name;
      auto it = committed.find(key);
      if (it == committed.end()) {
        std::fprintf(stderr, "FAIL: %s has no committed entry %s\n",
                     check_path.c_str(), key.c_str());
        ok = false;
        continue;
      }
      const double floor = it->second * (1.0 - tolerance);
      const bool pass = m.events_per_sec >= floor;
      std::printf("  check %-38s %10.0f ev/s vs committed %10.0f (floor "
                  "%10.0f): %s\n",
                  key.c_str(), m.events_per_sec, it->second, floor,
                  pass ? "ok" : "REGRESSED");
      ok = ok && pass;
    }
    if (!ok) return 1;
  }
  return 0;
}
