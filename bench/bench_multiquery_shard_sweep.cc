// Multi-query shard sweep: the partition-parallel executor driving whole
// workloads (exec::MakeMultiPolicy) for every sharing strategy, on a
// grouped five-query workload with high trader cardinality.
//
// The scaling metric is the critical path: max over shards of per-worker
// busy seconds — the run's wall time on a machine with >= N idle cores.
// speedup_at_8 = serial busy / max-shard busy at 8 shards is
// hardware-independent (a single-core container time-slices the workers
// but busy time still splits), and the acceptance gate is >= 1.3x for
// every sharing strategy.
//
// Usage:
//   bench_multiquery_shard_sweep [--quick] [--reps N] [--warmup N]
//                                [--only STRATEGY] [--out FILE]
//                                [--label NAME]
//                                [--check BENCH_multiquery.json]
//                                [--tolerance 0.2]
//
// --out appends/writes flat JSON entries keyed "<mode>/<label>/<strategy>".
// --check re-runs the sweep and fails (exit 1) if any strategy's
// speedup_at_8 falls below the 1.3x acceptance floor, or has no committed
// "<mode>/current/<strategy>" entry in the given file — the CI perf smoke
// gate for the sharded multi-query runtime. Unlike the throughput gates,
// the floor is absolute, not committed-relative: critical-path speedup is
// a busy-time ratio, hardware-independent but noisy enough on shared CI
// boxes that a tight relative floor would flake (the committed number is
// printed for comparison). --tolerance widens nothing here; it is
// accepted for flag-compatibility with the other gates.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/multi_execution_policy.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/hybrid_engine.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

/// The acceptance floor: every sharing strategy must shorten the
/// critical path by at least this factor at 8 shards.
constexpr double kSpeedupFloor = 1.3;

const size_t kShardCounts[] = {2, 4, 8};

size_t g_num_events = 0;

const BenchStream& Stream() {
  static const BenchStream* stream =
      MakeStockStream(g_num_events, /*max_gap_ms=*/2, /*seed=*/42,
                      /*num_traders=*/2000)
          .release();
  return *stream;
}

/// Five positive COUNT queries, distinct event types per pattern, one
/// shared window, all GROUP BY traderId — the shape every sharing
/// strategy (and the sharding planner) accepts.
std::vector<std::string> WorkloadTexts() {
  return {
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 2s",
      "PATTERN SEQ(DELL, IPIX, AMAT) GROUP BY traderId AGG COUNT WITHIN 2s",
      "PATTERN SEQ(IPIX, DELL) GROUP BY traderId AGG COUNT WITHIN 2s",
      "PATTERN SEQ(AMAT, DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 2s",
      "PATTERN SEQ(DELL, AMAT) GROUP BY traderId AGG COUNT WITHIN 2s",
  };
}

exec::MultiEngineFactory MakeFactory(const std::string& strategy,
                                     const std::vector<CompiledQuery>& qs) {
  if (strategy == "cc") {
    return [&qs]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(auto e,
                            ChopConnectEngine::Create(qs, PlanChopConnect(qs)));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  }
  if (strategy == "pretree") {
    return [&qs]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(auto e, PreTreeEngine::Create(qs));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  }
  if (strategy == "hybrid") {
    return [&qs]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(auto e, HybridMultiEngine::Create(qs));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  }
  return [&qs]() -> Result<std::unique_ptr<MultiQueryEngine>> {
    ASEQ_ASSIGN_OR_RETURN(auto e, NonSharedEngine::CreateAseq(qs));
    return std::unique_ptr<MultiQueryEngine>(std::move(e));
  };
}

struct Measurement {
  double serial_busy_seconds = 0;   // best serial elapsed (== busy)
  double serial_ms_per_slide = 0;
  double events_per_sec = 0;        // serial, from the best pass
  std::map<size_t, double> busy_by_shards;  // best max-shard busy
  std::map<size_t, double> speedup_by_shards;
  uint64_t events = 0;
  uint64_t outputs = 0;
};

/// Min across repetitions: the least-interference estimate. Workers on a
/// time-sliced container inflate busy time whenever the scheduler parks
/// them mid-batch, so medians stay noisy where minima converge.
double Best(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

/// One policy run; returns the critical path (max shard busy) and fills
/// outputs on the first call.
double RunOnce(const std::vector<CompiledQuery>& queries,
               const exec::MultiEngineFactory& factory,
               const RunOptions& options, uint64_t* events,
               uint64_t* outputs) {
  std::string reason;
  auto policy = exec::MakeMultiPolicy(queries, factory, options, &reason);
  if (!policy.ok() || !reason.empty()) {
    std::fprintf(stderr, "FAIL: policy (%s%s)\n",
                 policy.ok() ? "" : policy.status().ToString().c_str(),
                 reason.c_str());
    std::exit(1);
  }
  if ((*policy)->num_shards() != options.num_shards) {
    std::fprintf(stderr, "FAIL: wanted %zu shards, got %zu\n",
                 options.num_shards, (*policy)->num_shards());
    std::exit(1);
  }
  MultiRunResult result = (*policy)->RunEvents(Stream().events);
  *events = result.events;
  *outputs = (*policy)->stats().outputs;
  double busy_max = 0;
  for (double busy : (*policy)->shard_busy_seconds()) {
    busy_max = std::max(busy_max, busy);
  }
  return busy_max;
}

Measurement RunStrategy(const std::string& strategy,
                        const std::vector<CompiledQuery>& queries, int warmup,
                        int reps) {
  exec::MultiEngineFactory factory = MakeFactory(strategy, queries);
  Measurement m;

  RunOptions serial_options;
  serial_options.collect_outputs = false;
  serial_options.num_shards = 1;
  std::vector<double> serial_busy;
  for (int r = 0; r < warmup + reps; ++r) {
    const double busy =
        RunOnce(queries, factory, serial_options, &m.events, &m.outputs);
    if (r >= warmup) serial_busy.push_back(busy);
  }
  m.serial_busy_seconds = Best(serial_busy);
  m.serial_ms_per_slide = m.events == 0 ? 0
                                        : m.serial_busy_seconds * 1e3 /
                                              static_cast<double>(m.events);
  m.events_per_sec = m.serial_busy_seconds == 0
                         ? 0
                         : static_cast<double>(m.events) /
                               m.serial_busy_seconds;

  for (size_t shards : kShardCounts) {
    RunOptions options;
    options.collect_outputs = false;
    options.num_shards = shards;
    std::vector<double> busy;
    uint64_t events = 0;
    uint64_t outputs = 0;
    for (int r = 0; r < warmup + reps; ++r) {
      const double b = RunOnce(queries, factory, options, &events, &outputs);
      if (r >= warmup) busy.push_back(b);
    }
    if (outputs != m.outputs || events != m.events) {
      std::fprintf(stderr,
                   "FAIL: %s at %zu shards drifted: %llu outputs vs serial "
                   "%llu\n",
                   strategy.c_str(), shards,
                   static_cast<unsigned long long>(outputs),
                   static_cast<unsigned long long>(m.outputs));
      std::exit(1);
    }
    const double best = Best(busy);
    m.busy_by_shards[shards] = best;
    m.speedup_by_shards[shards] =
        best == 0 ? 0 : m.serial_busy_seconds / best;
  }
  return m;
}

std::string FormatEntry(const std::string& key, const Measurement& m) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\"serial_busy_seconds\": %.4f, \"serial_ms_per_slide\": "
      "%.6f, \"events_per_sec\": %.1f, \"busy_at_8\": %.4f, \"speedup_at_2\": "
      "%.3f, \"speedup_at_4\": %.3f, \"speedup_at_8\": %.3f, \"events\": "
      "%llu, \"outputs\": %llu}",
      key.c_str(), m.serial_busy_seconds, m.serial_ms_per_slide,
      m.events_per_sec, m.busy_by_shards.at(8), m.speedup_by_shards.at(2),
      m.speedup_by_shards.at(4), m.speedup_by_shards.at(8),
      static_cast<unsigned long long>(m.events),
      static_cast<unsigned long long>(m.outputs));
  return buf;
}

/// Reads the flat JSON written by --out: one "<key>": {...} entry per
/// line. Returns key -> speedup_at_8.
std::map<std::string, double> ReadCommitted(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    const size_t kq0 = line.find('"');
    if (kq0 == std::string::npos) continue;
    const size_t kq1 = line.find('"', kq0 + 1);
    if (kq1 == std::string::npos) continue;
    const std::string key = line.substr(kq0 + 1, kq1 - kq0 - 1);
    const char* tag = "\"speedup_at_8\": ";
    const size_t vp = line.find(tag);
    if (vp == std::string::npos) continue;
    out[key] = std::strtod(line.c_str() + vp + std::strlen(tag), nullptr);
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  using aseq::bench::Measurement;

  bool quick = false;
  int reps = 3;
  int warmup = 1;
  double tolerance = 0.2;
  std::string out_path;
  std::string check_path;
  std::string label = "current";
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--reps") {
      reps = std::atoi(next());
    } else if (arg == "--warmup") {
      warmup = std::atoi(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--label") {
      label = next();
    } else if (arg == "--tolerance") {
      tolerance = std::strtod(next(), nullptr);
    } else if (arg == "--only") {
      only = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  const std::string mode = quick ? "quick" : "full";
  if (!quick && reps == 3) reps = 4;
  aseq::bench::g_num_events = quick ? 60000 : 150000;

  std::printf("multi-query shard sweep: mode=%s reps=%d warmup=%d\n",
              mode.c_str(), reps, warmup);

  aseq::Schema schema = aseq::bench::Stream().schema;
  aseq::Analyzer analyzer(&schema);
  std::vector<aseq::CompiledQuery> queries;
  for (const std::string& text : aseq::bench::WorkloadTexts()) {
    queries.push_back(std::move(analyzer.AnalyzeText(text)).value());
  }

  const char* const kStrategies[] = {"nonshare", "pretree", "cc", "hybrid"};
  std::vector<std::pair<std::string, Measurement>> results;
  for (const char* strategy : kStrategies) {
    if (!only.empty() && only != strategy) continue;
    Measurement m =
        aseq::bench::RunStrategy(strategy, queries, warmup, reps);
    std::printf(
        "  %-9s serial %7.4fs (%8.0f ev/s)  x2 %.2f  x4 %.2f  x8 %.2f  "
        "outputs=%llu\n",
        strategy, m.serial_busy_seconds, m.events_per_sec,
        m.speedup_by_shards.at(2), m.speedup_by_shards.at(4),
        m.speedup_by_shards.at(8),
        static_cast<unsigned long long>(m.outputs));
    results.emplace_back(strategy, m);
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::trunc);
    f << "{\n";
    for (size_t i = 0; i < results.size(); ++i) {
      f << aseq::bench::FormatEntry(
               mode + "/" + label + "/" + results[i].first, results[i].second)
        << (i + 1 < results.size() ? ",\n" : "\n");
    }
    f << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!check_path.empty()) {
    auto committed = aseq::bench::ReadCommitted(check_path);
    bool ok = true;
    for (const auto& [name, m] : results) {
      const std::string key = mode + "/current/" + name;
      auto it = committed.find(key);
      if (it == committed.end()) {
        std::fprintf(stderr, "FAIL: %s has no committed entry %s\n",
                     check_path.c_str(), key.c_str());
        ok = false;
        continue;
      }
      (void)tolerance;
      const double floor = aseq::bench::kSpeedupFloor;
      const double got = m.speedup_by_shards.at(8);
      const bool pass = got >= floor;
      std::printf(
          "  check %-28s speedup_at_8 %.2f vs committed %.2f (floor %.2f): "
          "%s\n",
          key.c_str(), got, it->second, floor, pass ? "ok" : "REGRESSED");
      ok = ok && pass;
    }
    if (!ok) return 1;
  }
  return 0;
}
