// Fig. 16(d): Chop-Connect while the number of queries sharing a length-3
// substring grows from 2 to 6.
//
// Expected shape (Sec. 6.3.2): the gap between CC and unshared A-Seq widens
// with the number of sharing queries (~2x at 6 queries in the paper).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/nonshared_engine.h"

namespace aseq {
namespace bench {
namespace {

const size_t kNumEvents = ScaledEvents(30000);
constexpr int64_t kMaxGapMs = 4;
constexpr Timestamp kWindowMs = 2000;
constexpr size_t kSharedLen = 3;

const MultiBench& Bench(size_t num_queries) {
  static std::unique_ptr<MultiBench> cache[8];
  if (cache[num_queries] == nullptr) {
    SharedWorkload workload = MakeSubstringSharedWorkload(
        num_queries, /*prefix_len=*/2, kSharedLen, /*tail_len=*/0, kWindowMs);
    cache[num_queries] = MakeMultiBench(workload, kNumEvents, kMaxGapMs);
  }
  return *cache[num_queries];
}

void BM_NonShare(benchmark::State& state) {
  const MultiBench& mb = Bench(static_cast<size_t>(state.range(0)));
  auto engine = NonSharedEngine::CreateAseq(mb.queries);
  RunMultiAndReport(state, mb.events, engine->get());
}
BENCHMARK(BM_NonShare)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ChopConnect(benchmark::State& state) {
  const MultiBench& mb = Bench(static_cast<size_t>(state.range(0)));
  ChopPlan plan = PlanChopConnect(mb.queries);
  auto engine = ChopConnectEngine::Create(mb.queries, plan);
  RunMultiAndReport(state, mb.events, engine->get());
}
BENCHMARK(BM_ChopConnect)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Fig. 16(d)",
      "Chop-Connect vs #queries sharing a length-3 substring (k = 2..6)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
