// Fig. 14(b): negation processing —
//   q1 = SEQ(DELL, IPIX, AMAT)
//   q2 = SEQ(DELL, IPIX, !QQQ, AMAT)
// A-Seq pushes the negation check down (a constant-time prefix reset per
// negative instance); the state-of-the-art approach post-filters the
// constructed positive matches.
//
// Expected shape (Sec. 6.2): A-Seq shows almost no overhead for q2 vs q1;
// the stack-based approach pays a visible post-filtering overhead on top of
// its already orders-of-magnitude-higher construction cost.

#include <benchmark/benchmark.h>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "bench/bench_util.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

const size_t kNumEvents = ScaledEvents(4000);
constexpr int64_t kMaxGapMs = 6;
constexpr Timestamp kWindowMs = 1000;

const BenchStream& Stream() {
  static const BenchStream* stream =
      MakeStockStream(kNumEvents, kMaxGapMs).release();
  return *stream;
}

CompiledQuery Compile(bool with_negation) {
  Schema schema = Stream().schema;
  Analyzer analyzer(&schema);
  std::vector<std::string> names =
      with_negation ? std::vector<std::string>{"DELL", "IPIX", "!QQQ", "AMAT"}
                    : std::vector<std::string>{"DELL", "IPIX", "AMAT"};
  Query q;
  q.pattern = Pattern::FromNames(names);
  q.agg = AggregateSpec::Count();
  q.window_ms = kWindowMs;
  return std::move(analyzer.Analyze(q)).value();
}

void BM_ASeq(benchmark::State& state) {
  CompiledQuery cq = Compile(state.range(0) == 1);
  auto engine = CreateAseqEngine(cq);
  RunAndReport(state, Stream().events, engine->get());
}
BENCHMARK(BM_ASeq)
    ->Arg(0)  // q1: positive pattern
    ->Arg(1)  // q2: with !QQQ
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_StackBased(benchmark::State& state) {
  CompiledQuery cq = Compile(state.range(0) == 1);
  StackEngine engine(cq);
  RunAndReport(state, Stream().events, &engine);
}
BENCHMARK(BM_StackBased)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Fig. 14(b)",
      "negation: q1 = (DELL,IPIX,AMAT) [arg 0] vs q2 = (DELL,IPIX,!QQQ,AMAT) "
      "[arg 1]");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
