// Ablation: Hashed Prefix Counter partitioning (Sec. 3.4) as the number of
// distinct equivalence-attribute values grows.
//
// Partitioning splits the SEM state: each event touches only its
// partition's counters, so per-event work *drops* as values spread over
// more partitions, while the TRIG-time scan must merge more partitions.
// The stack baseline benefits too (fewer matches survive the equivalence
// test) but still materializes every surviving match.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "bench/bench_util.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

constexpr size_t kNumEvents = 20000;
constexpr int64_t kMaxGapMs = 6;

const BenchStream& Stream(int64_t num_traders) {
  static std::map<int64_t, const BenchStream*>* cache =
      new std::map<int64_t, const BenchStream*>();
  auto it = cache->find(num_traders);
  if (it == cache->end()) {
    auto s = std::make_unique<BenchStream>();
    StockStreamOptions options;
    options.seed = 42;
    options.num_events = kNumEvents;
    options.max_gap_ms = kMaxGapMs;
    options.num_traders = num_traders;
    s->events = GenerateStockStream(options, &s->schema);
    AssignSeqNums(&s->events);
    it = cache->emplace(num_traders, s.release()).first;
  }
  return *it->second;
}

CompiledQuery Compile(const BenchStream& stream) {
  Schema schema = stream.schema;
  Analyzer analyzer(&schema);
  return std::move(
             analyzer.AnalyzeText(
                 "PATTERN SEQ(DELL, IPIX, AMAT) "
                 "WHERE DELL.traderId = IPIX.traderId = AMAT.traderId "
                 "AGG COUNT WITHIN 1s"))
      .value();
}

void BM_ASeqHPC(benchmark::State& state) {
  const BenchStream& stream = Stream(state.range(0));
  CompiledQuery cq = Compile(stream);
  auto engine = CreateAseqEngine(cq);
  RunAndReport(state, stream.events, engine->get());
}
BENCHMARK(BM_ASeqHPC)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_StackBased(benchmark::State& state) {
  const BenchStream& stream = Stream(state.range(0));
  CompiledQuery cq = Compile(stream);
  StackEngine engine(cq);
  RunAndReport(state, stream.events, &engine);
}
BENCHMARK(BM_StackBased)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Ablation: HPC partitioning",
      "equivalence query while distinct traderId values grow 1..256");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
