// Fig. 16(b): prefix sharing while the shared-prefix length grows from 2 to
// 6 (3-query workload — the paper's worst case for sharing).
//
// Expected shape (Sec. 6.3.1): the longer the shared prefix the bigger the
// win — from ~3x at length 2 to ~5x at length 6 in the paper.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"

namespace aseq {
namespace bench {
namespace {

const size_t kNumEvents = ScaledEvents(30000);
constexpr int64_t kMaxGapMs = 4;
constexpr Timestamp kWindowMs = 2000;
constexpr size_t kNumQueries = 3;
constexpr size_t kSuffixLen = 2;  // private suffix beyond the shared prefix

const MultiBench& Bench(size_t prefix_len) {
  static std::unique_ptr<MultiBench> cache[8];
  if (cache[prefix_len] == nullptr) {
    SharedWorkload workload = MakePrefixSharedWorkload(
        kNumQueries, prefix_len, prefix_len + kSuffixLen, kWindowMs);
    cache[prefix_len] = MakeMultiBench(workload, kNumEvents, kMaxGapMs);
  }
  return *cache[prefix_len];
}

void BM_NonShare(benchmark::State& state) {
  const MultiBench& mb = Bench(static_cast<size_t>(state.range(0)));
  auto engine = NonSharedEngine::CreateAseq(mb.queries);
  RunMultiAndReport(state, mb.events, engine->get());
}
BENCHMARK(BM_NonShare)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_PrefixShare(benchmark::State& state) {
  const MultiBench& mb = Bench(static_cast<size_t>(state.range(0)));
  auto engine = PreTreeEngine::Create(mb.queries);
  RunMultiAndReport(state, mb.events, engine->get());
}
BENCHMARK(BM_PrefixShare)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Fig. 16(b)",
      "prefix sharing vs shared-prefix length (l = 2..6, 3 queries)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
