// Fig. 15: shared A-Seq vs the state of the art on a 3-query workload with
// a common sub-pattern:
//   1) SASE      — stack-based construction applied to each query
//   2) ECube     — shared substring construction, per-query counting
//   3) A-Seq     — (unshared) A-Seq per query
//   4) CC        — multi-query A-Seq with Chop-Connect
//
// Expected shape (Sec. 6.3): ECube beats SASE 2-3x by sharing construction,
// but remains >= 100x slower than A-Seq and CC (whose lines overlap).

#include <benchmark/benchmark.h>

#include "baseline/ecube_engine.h"
#include "bench/bench_util.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/nonshared_engine.h"

namespace aseq {
namespace bench {
namespace {

const size_t kNumEvents = ScaledEvents(4000);
constexpr int64_t kMaxGapMs = 12;
constexpr Timestamp kWindowMs = 1000;

struct Fig15Setup {
  SharedWorkload workload;
  std::unique_ptr<MultiBench> bench;
  std::vector<EventTypeId> shared_types;
};

const Fig15Setup& Setup() {
  static const Fig15Setup* setup = [] {
    auto* s = new Fig15Setup();
    // 3 queries of length 4 sharing (S1, S2, S3) at the tail after a
    // private 1-type prefix — the paper's Q5-style sharing shape.
    s->workload = MakeSubstringSharedWorkload(3, 1, 3, 0, kWindowMs);
    s->bench = MakeMultiBench(s->workload, kNumEvents, kMaxGapMs);
    for (const std::string& name : s->workload.shared_types) {
      s->shared_types.push_back(*s->bench->schema.FindEventType(name));
    }
    return s;
  }();
  return *setup;
}

void BM_SASE(benchmark::State& state) {
  auto engine = NonSharedEngine::CreateStackBased(Setup().bench->queries);
  RunMultiAndReport(state, Setup().bench->events, engine.get());
}
BENCHMARK(BM_SASE)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ECube(benchmark::State& state) {
  auto engine =
      EcubeEngine::Create(Setup().bench->queries, Setup().shared_types);
  RunMultiAndReport(state, Setup().bench->events, engine->get());
}
BENCHMARK(BM_ECube)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ASeq_NonShared(benchmark::State& state) {
  auto engine = NonSharedEngine::CreateAseq(Setup().bench->queries);
  RunMultiAndReport(state, Setup().bench->events, engine->get());
}
BENCHMARK(BM_ASeq_NonShared)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ChopConnect(benchmark::State& state) {
  ChopPlan plan = PlanChopConnect(Setup().bench->queries);
  auto engine = ChopConnectEngine::Create(Setup().bench->queries, plan);
  RunMultiAndReport(state, Setup().bench->events, engine->get());
}
BENCHMARK(BM_ChopConnect)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Fig. 15",
      "3-query workload with a common sub-pattern: SASE vs ECube vs A-Seq "
      "vs Chop-Connect");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
