#ifndef ASEQ_BENCH_BENCH_UTIL_H_
#define ASEQ_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/schema.h"
#include "engine/engine.h"
#include "engine/runtime.h"
#include "query/analyzer.h"
#include "query/compiled_query.h"
#include "stream/stock_stream.h"
#include "stream/workload.h"

namespace aseq {
namespace bench {

/// True when the ASEQ_BENCH_FULL environment variable is set: benchmarks
/// then run at the paper's scale (the full 120k-event trace portion)
/// instead of the quick default. The stack-based baseline points can take
/// minutes at full scale — that is the paper's point.
inline bool FullScale() { return std::getenv("ASEQ_BENCH_FULL") != nullptr; }

/// Picks the stream length: `quick` by default, 120k under ASEQ_BENCH_FULL.
inline size_t ScaledEvents(size_t quick) {
  return FullScale() ? 120000 : quick;
}

/// \brief A prepared workload: schema + event stream (seq numbers assigned).
///
/// Streams are deterministic (seeded) so every benchmark run measures the
/// same work. The default scale is chosen so the full suite finishes in a
/// few minutes on a laptop while preserving the paper's effects (the
/// baseline's exponential blow-up vs A-Seq's flat cost); per-window type
/// cardinalities |Ei| are set via the inter-arrival gap.
struct BenchStream {
  Schema schema;
  std::vector<Event> events;
};

/// Synthetic stock stream (see DESIGN.md §3 for the trace substitution).
inline std::unique_ptr<BenchStream> MakeStockStream(size_t num_events,
                                                    int64_t max_gap_ms,
                                                    uint64_t seed = 42,
                                                    size_t num_traders = 50) {
  auto s = std::make_unique<BenchStream>();
  StockStreamOptions options;
  options.seed = seed;
  options.num_events = num_events;
  options.min_gap_ms = 0;
  options.max_gap_ms = max_gap_ms;
  options.num_traders = num_traders;
  s->events = GenerateStockStream(options, &s->schema);
  AssignSeqNums(&s->events);
  return s;
}

/// The one BatchRunner shared by every harness in a bench binary: its
/// refill and scratch buffers are allocated once and reused
/// (clear-not-shrink) across all iterations of all benchmarks, so the
/// timed region never measures allocator traffic.
inline BatchRunner& SharedRunner() {
  static BatchRunner runner;
  return runner;
}

/// Drives `events` through `engine` once per iteration (batched through
/// OnBatch with `batch_size` events per call) and reports the paper's
/// metrics on the benchmark state: `ms_per_slide` (average execution time
/// per window slide — the window slides on every arrival) and
/// `peak_objects` (peak live-object count, the paper's memory metric),
/// plus the `batch_size` driving the run.
inline void RunAndReport(benchmark::State& state,
                         const std::vector<Event>& events, QueryEngine* engine,
                         size_t batch_size = kDefaultBatchSize) {
  BatchRunner& runner = SharedRunner();
  RunOptions options;
  options.collect_outputs = false;
  options.batch_size = batch_size;
  runner.set_options(options);
  double total_seconds = 0;
  uint64_t total_events = 0;
  for (auto _ : state) {
    RunResult result = runner.RunEvents(events, engine);
    total_seconds += result.elapsed_seconds;
    total_events += result.events;
  }
  state.counters["ms_per_slide"] = benchmark::Counter(
      total_events == 0 ? 0
                        : total_seconds * 1e3 / static_cast<double>(total_events));
  state.counters["peak_objects"] =
      benchmark::Counter(static_cast<double>(engine->stats().objects.peak()));
  state.counters["events"] = benchmark::Counter(static_cast<double>(total_events));
  state.counters["batch_size"] =
      benchmark::Counter(static_cast<double>(batch_size));
}

/// Multi-query variant of RunAndReport.
inline void RunMultiAndReport(benchmark::State& state,
                              const std::vector<Event>& events,
                              MultiQueryEngine* engine,
                              size_t batch_size = kDefaultBatchSize) {
  BatchRunner& runner = SharedRunner();
  RunOptions options;
  options.collect_outputs = false;
  options.batch_size = batch_size;
  runner.set_options(options);
  double total_seconds = 0;
  uint64_t total_events = 0;
  for (auto _ : state) {
    MultiRunResult result = runner.RunMultiEvents(events, engine);
    total_seconds += result.elapsed_seconds;
    total_events += result.events;
  }
  state.counters["ms_per_slide"] = benchmark::Counter(
      total_events == 0 ? 0
                        : total_seconds * 1e3 / static_cast<double>(total_events));
  state.counters["peak_objects"] =
      benchmark::Counter(static_cast<double>(engine->stats().objects.peak()));
  state.counters["batch_size"] =
      benchmark::Counter(static_cast<double>(batch_size));
}

// ---- Noise control: warm-up passes + median-of-N reporting. -------------
//
// Engines are stateful, so repetitions must not re-feed a stream into the
// engine that already consumed it (windowed state would never expire and
// the second pass would measure different work). RunStable therefore
// builds a *fresh* engine per pass via a caller factory, discards warm-up
// passes (page-cache, allocator, and branch-predictor warming), and hands
// back every timed pass so callers can report the median — the estimator
// that before/after comparisons (BENCH_partition_store.json) rely on,
// since it shrugs off the occasional descheduled pass that poisons a mean.

/// Median of `samples` (middle pair averaged for even counts).
inline double Median(std::vector<double> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : (samples[n / 2 - 1] + samples[n / 2]) / 2;
}

/// One multi-pass measurement: per-pass engine seconds plus the final
/// pass's engine-side stats.
struct StableRun {
  std::vector<double> seconds;  // timed passes only (warm-ups discarded)
  uint64_t events_per_pass = 0;
  uint64_t outputs = 0;        // last pass
  int64_t peak_objects = 0;    // last pass
  uint64_t ht_probes = 0;      // last pass (flat-store diagnostics)
  uint64_t ht_probe_steps = 0;
  uint64_t ht_slots = 0;
  uint64_t ht_entries = 0;

  double MedianSeconds() const {
    return Median(std::vector<double>(seconds));
  }
  double MedianMsPerSlide() const {
    return events_per_pass == 0 ? 0
                                : MedianSeconds() * 1e3 /
                                      static_cast<double>(events_per_pass);
  }
  double MedianEventsPerSec() const {
    const double s = MedianSeconds();
    return s == 0 ? 0 : static_cast<double>(events_per_pass) / s;
  }
};

/// Feeds `events` through `warmup + reps` freshly built engines (one per
/// pass, from `make_engine`) and times the `reps` post-warm-up passes.
/// The stream is staged into a VectorSource once, so each timed pass
/// borrows batches straight out of the source's storage
/// (StreamSource::BorrowBatch) — the run loop never copies an event.
template <typename MakeEngine>
inline StableRun RunStable(const std::vector<Event>& events,
                           MakeEngine&& make_engine, size_t batch_size,
                           int warmup, int reps) {
  BatchRunner& runner = SharedRunner();
  RunOptions options;
  options.collect_outputs = false;
  options.batch_size = batch_size;
  runner.set_options(options);
  VectorSource source(events);
  StableRun out;
  for (int pass = 0; pass < warmup + reps; ++pass) {
    auto engine = make_engine();
    source.Reset();
    RunResult result = runner.Run(&source, engine.get());
    if (pass < warmup) continue;
    out.seconds.push_back(result.elapsed_seconds);
    out.events_per_pass = result.events;
    const EngineStats& stats = engine->stats();
    out.outputs = stats.outputs;
    out.peak_objects = stats.objects.peak();
    out.ht_probes = stats.ht_probes;
    out.ht_probe_steps = stats.ht_probe_steps;
    out.ht_slots = stats.ht_slots;
    out.ht_entries = stats.ht_entries;
  }
  return out;
}

/// Prints the figure banner once per binary.
inline void PrintFigureBanner(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("Counters: ms_per_slide = avg execution time per window slide;\n");
  std::printf("          peak_objects = peak live objects (paper's memory metric)\n");
  std::printf("==============================================================\n");
}

/// Builds a COUNT query over the first `length` stock tickers.
inline Query MakeTickerQuery(size_t length, Timestamp window_ms) {
  std::vector<std::string> names(StockTickers().begin(),
                                 StockTickers().begin() + length);
  Query q;
  q.pattern = Pattern::FromNames(names);
  q.agg = AggregateSpec::Count();
  q.window_ms = window_ms;
  return q;
}

/// \brief A prepared multi-query workload: schema + compiled queries +
/// stream over the workload's type universe.
struct MultiBench {
  Schema schema;
  std::vector<CompiledQuery> queries;
  std::vector<Event> events;
};

inline std::unique_ptr<MultiBench> MakeMultiBench(
    const SharedWorkload& workload, size_t num_events, int64_t max_gap_ms,
    uint64_t seed = 42) {
  auto mb = std::make_unique<MultiBench>();
  Analyzer analyzer(&mb->schema);
  for (const Query& q : workload.queries) {
    auto cq = analyzer.Analyze(q);
    mb->queries.push_back(std::move(cq).value());
  }
  StreamConfig config =
      MakeWorkloadStreamConfig(workload, seed, num_events, 0, max_gap_ms);
  StreamGenerator gen(config, &mb->schema);
  mb->events = gen.Generate();
  AssignSeqNums(&mb->events);
  return mb;
}

}  // namespace bench
}  // namespace aseq

#endif  // ASEQ_BENCH_BENCH_UTIL_H_
