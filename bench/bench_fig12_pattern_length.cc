// Fig. 12 (a)+(b): A-Seq vs the stack-based two-step baseline while the
// pattern length varies from 2 to 5 (window fixed at 1000 ms).
//
// Expected shape (Sec. 6.2): the baseline's execution time grows
// exponentially with the pattern length while A-Seq stays flat; at length 5
// the paper reports a ~16,736x gap. Peak memory behaves alike: the baseline
// stores stacked events + pointers + materialized matches, A-Seq only live
// prefix counters.

#include <benchmark/benchmark.h>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "bench/bench_util.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

const size_t kNumEvents = ScaledEvents(4000);
constexpr int64_t kMaxGapMs = 6;  // ~33 instances per type per 1s window
constexpr Timestamp kWindowMs = 1000;

const BenchStream& Stream() {
  static const BenchStream* stream =
      MakeStockStream(kNumEvents, kMaxGapMs).release();
  return *stream;
}

CompiledQuery QueryOfLength(size_t length) {
  Schema schema = Stream().schema;  // copy: analysis must not mutate shared
  Analyzer analyzer(&schema);
  auto cq = analyzer.Analyze(MakeTickerQuery(length, kWindowMs));
  return std::move(cq).value();
}

void BM_StackBased(benchmark::State& state) {
  CompiledQuery cq = QueryOfLength(static_cast<size_t>(state.range(0)));
  StackEngine engine(cq);
  RunAndReport(state, Stream().events, &engine);
}
BENCHMARK(BM_StackBased)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ASeq(benchmark::State& state) {
  CompiledQuery cq = QueryOfLength(static_cast<size_t>(state.range(0)));
  auto engine = CreateAseqEngine(cq);
  RunAndReport(state, Stream().events, engine->get());
}
BENCHMARK(BM_ASeq)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Fig. 12(a)/(b)",
      "exec time & memory vs pattern length (l = 2..5, window = 1000ms)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
