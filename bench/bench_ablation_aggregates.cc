// Ablation: cost of the aggregation function inside A-Seq (Sec. 5).
//
// The weighted (SUM/AVG) and extremal (MIN/MAX) prefix fields ride along
// the count recurrence, so switching the AGG clause should cost at most a
// small constant factor over COUNT. The stack baseline is included for
// scale: its cost is dominated by match construction regardless of the
// aggregate.

#include <benchmark/benchmark.h>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "bench/bench_util.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

constexpr size_t kNumEvents = 20000;
constexpr int64_t kMaxGapMs = 6;

const BenchStream& Stream() {
  static const BenchStream* stream =
      MakeStockStream(kNumEvents, kMaxGapMs).release();
  return *stream;
}

const char* kQueries[] = {
    "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1s",
    "PATTERN SEQ(DELL, IPIX, AMAT) AGG SUM(IPIX.volume) WITHIN 1s",
    "PATTERN SEQ(DELL, IPIX, AMAT) AGG AVG(IPIX.volume) WITHIN 1s",
    "PATTERN SEQ(DELL, IPIX, AMAT) AGG MIN(IPIX.price) WITHIN 1s",
    "PATTERN SEQ(DELL, IPIX, AMAT) AGG MAX(IPIX.price) WITHIN 1s",
};

CompiledQuery Compile(int index) {
  Schema schema = Stream().schema;
  Analyzer analyzer(&schema);
  return std::move(analyzer.AnalyzeText(kQueries[index])).value();
}

void BM_ASeq(benchmark::State& state) {
  CompiledQuery cq = Compile(static_cast<int>(state.range(0)));
  state.SetLabel(AggFuncToString(cq.agg().func));
  auto engine = CreateAseqEngine(cq);
  RunAndReport(state, Stream().events, engine->get());
}
BENCHMARK(BM_ASeq)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_StackBased(benchmark::State& state) {
  CompiledQuery cq = Compile(static_cast<int>(state.range(0)));
  state.SetLabel(AggFuncToString(cq.agg().func));
  StackEngine engine(cq);
  RunAndReport(state, Stream().events, &engine);
}
BENCHMARK(BM_StackBased)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Ablation: aggregate functions",
      "COUNT vs SUM vs AVG vs MIN vs MAX on the same pattern "
      "(l = 3, window = 1s) — pushing aggregates into prefix counting is "
      "near-free");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
