// paper_report: one-shot reproduction check for every figure in Sec. 6.
//
// Runs a scaled-down version of each experiment, prints the paper-style
// comparison tables, and *asserts* the qualitative shapes the paper
// reports (who wins, growth direction, order-of-magnitude gaps). Exits
// non-zero if any shape expectation fails — a regression gate for the
// whole reproduction.
//
//   ./build/bench/paper_report
//
// The per-figure binaries (bench_fig*) measure the same setups at full
// scale with google-benchmark; this binary favors fast, robust checks.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "baseline/ecube_engine.h"
#include "baseline/stack_engine.h"
#include "bench/bench_util.h"
#include "engine/runtime.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

struct Report {
  int checks = 0;
  int failures = 0;

  void Check(bool ok, const std::string& what) {
    ++checks;
    if (!ok) ++failures;
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  }
};

struct Measured {
  double ms_per_slide = 0;
  int64_t peak_objects = 0;
};

// All measurements run on the batched pipeline (default batch size), the
// same path the CLI and the benchmark harnesses use. One shared runner so
// refill/scratch buffers are reused across every measurement.
BatchRunner& Runner() {
  static BatchRunner runner = [] {
    RunOptions options;
    options.collect_outputs = false;
    return BatchRunner(options);
  }();
  return runner;
}

Measured Measure(QueryEngine* engine, const std::vector<Event>& events) {
  RunResult r = Runner().RunEvents(events, engine);
  return {r.MillisPerSlide(), engine->stats().objects.peak()};
}

Measured MeasureMulti(MultiQueryEngine* engine,
                      const std::vector<Event>& events) {
  MultiRunResult r = Runner().RunMultiEvents(events, engine);
  return {r.MillisPerSlide(), engine->stats().objects.peak()};
}

CompiledQuery CompileTicker(const BenchStream& stream, size_t length,
                            Timestamp window_ms) {
  Schema schema = stream.schema;
  Analyzer analyzer(&schema);
  return std::move(analyzer.Analyze(MakeTickerQuery(length, window_ms)))
      .value();
}

// ---------------------------------------------------------------------------

void Fig12(Report* report) {
  std::printf("\nFig. 12 — time & memory vs pattern length (win=1000ms)\n");
  std::printf("  %-4s %14s %14s %10s %12s %12s\n", "l", "stack ms/sl",
              "aseq ms/sl", "speedup", "stack objs", "aseq objs");
  auto stream = MakeStockStream(3000, 8);
  std::vector<double> stack_ms, aseq_ms;
  std::vector<int64_t> stack_obj, aseq_obj;
  for (size_t l = 2; l <= 5; ++l) {
    CompiledQuery cq = CompileTicker(*stream, l, 1000);
    StackEngine stack(cq);
    Measured s = Measure(&stack, stream->events);
    auto engine = CreateAseqEngine(cq);
    Measured a = Measure(engine->get(), stream->events);
    stack_ms.push_back(s.ms_per_slide);
    aseq_ms.push_back(a.ms_per_slide);
    stack_obj.push_back(s.peak_objects);
    aseq_obj.push_back(a.peak_objects);
    std::printf("  %-4zu %14.6f %14.6f %9.0fx %12lld %12lld\n", l,
                s.ms_per_slide, a.ms_per_slide,
                s.ms_per_slide / a.ms_per_slide,
                static_cast<long long>(s.peak_objects),
                static_cast<long long>(a.peak_objects));
  }
  report->Check(stack_ms[3] > 20 * stack_ms[1],
                "baseline grows steeply with pattern length (>20x, l=3->5)");
  report->Check(aseq_ms[3] < 3 * aseq_ms[0],
                "A-Seq stays flat with pattern length (<3x, l=2->5)");
  report->Check(stack_ms[3] / aseq_ms[3] > 500,
                "orders-of-magnitude time gap at l=5 (>500x)");
  report->Check(stack_obj[3] > 1000 * aseq_obj[3],
                "orders-of-magnitude memory gap at l=5 (>1000x)");
  report->Check(stack_obj[3] > stack_obj[0] * 50,
                "baseline memory grows steeply with length");
}

void Fig13(Report* report) {
  std::printf("\nFig. 13 — time & memory vs window size (l=3)\n");
  std::printf("  %-6s %14s %14s %12s %12s\n", "win", "stack ms/sl",
              "aseq ms/sl", "stack objs", "aseq objs");
  auto stream = MakeStockStream(3000, 8);
  std::vector<double> stack_ms, aseq_ms;
  std::vector<int64_t> aseq_obj;
  for (Timestamp win : {100, 400, 700, 1000}) {
    CompiledQuery cq = CompileTicker(*stream, 3, win);
    StackEngine stack(cq);
    Measured s = Measure(&stack, stream->events);
    auto engine = CreateAseqEngine(cq);
    Measured a = Measure(engine->get(), stream->events);
    stack_ms.push_back(s.ms_per_slide);
    aseq_ms.push_back(a.ms_per_slide);
    aseq_obj.push_back(a.peak_objects);
    std::printf("  %-6lld %14.6f %14.6f %12lld %12lld\n",
                static_cast<long long>(win), s.ms_per_slide, a.ms_per_slide,
                static_cast<long long>(s.peak_objects),
                static_cast<long long>(a.peak_objects));
  }
  report->Check(stack_ms[3] > 8 * stack_ms[0],
                "baseline degrades steeply with window (>8x, 100->1000ms)");
  report->Check(aseq_ms[3] < 8 * aseq_ms[0],
                "A-Seq grows mildly with window (<8x)");
  report->Check(aseq_obj[3] > aseq_obj[0],
                "A-Seq state is linear in live starts (grows with window)");
  report->Check(stack_ms[3] > 20 * aseq_ms[3],
                "baseline >20x slower at win=1000ms");
}

void Fig14a(Report* report) {
  std::printf("\nFig. 14(a) — A-Seq scalability (l=6..10, win=2000ms)\n");
  std::printf("  %-4s %14s %12s\n", "l", "aseq ms/sl", "objs");
  auto stream = MakeStockStream(30000, 6);
  std::vector<double> ms;
  for (size_t l = 6; l <= 10; l += 2) {
    Schema schema = stream->schema;
    Analyzer analyzer(&schema);
    auto cq = analyzer.Analyze(MakeTickerQuery(l, 2000));
    auto engine = CreateAseqEngine(*cq);
    Measured a = Measure(engine->get(), stream->events);
    ms.push_back(a.ms_per_slide);
    std::printf("  %-4zu %14.6f %12lld\n", l, a.ms_per_slide,
                static_cast<long long>(a.peak_objects));
  }
  report->Check(ms[2] < 3 * ms[0],
                "no significant degradation up to l=10 (<3x over l=6)");
}

void Fig14b(Report* report) {
  std::printf("\nFig. 14(b) — negation push-down vs post-filter\n");
  auto stream = MakeStockStream(3000, 8);
  Schema schema = stream->schema;
  Analyzer analyzer(&schema);
  Query q1;
  q1.pattern = Pattern::FromNames({"DELL", "IPIX", "AMAT"});
  q1.agg = AggregateSpec::Count();
  q1.window_ms = 1000;
  Query q2 = q1;
  q2.pattern = Pattern::FromNames({"DELL", "IPIX", "!QQQ", "AMAT"});
  CompiledQuery c1 = std::move(analyzer.Analyze(q1)).value();
  CompiledQuery c2 = std::move(analyzer.Analyze(q2)).value();

  auto a1 = CreateAseqEngine(c1);
  auto a2 = CreateAseqEngine(c2);
  StackEngine s1(c1), s2(c2);
  double am1 = Measure(a1->get(), stream->events).ms_per_slide;
  double am2 = Measure(a2->get(), stream->events).ms_per_slide;
  double sm1 = Measure(&s1, stream->events).ms_per_slide;
  double sm2 = Measure(&s2, stream->events).ms_per_slide;
  std::printf("  %-12s %14s %14s\n", "engine", "q1 (pos)", "q2 (!QQQ)");
  std::printf("  %-12s %14.6f %14.6f\n", "A-Seq", am1, am2);
  std::printf("  %-12s %14.6f %14.6f\n", "StackBased", sm1, sm2);
  report->Check(am2 < 2.5 * am1,
                "negation nearly free for A-Seq (<2.5x q1)");
  report->Check(sm2 > 1.5 * sm1,
                "post-filter negation costs the baseline (>1.5x its q1)");
  report->Check(sm2 > 50 * am2, "A-Seq >50x faster on the negation query");
}

void Fig15(Report* report) {
  std::printf("\nFig. 15 — multi-query: SASE vs ECube vs A-Seq vs CC\n");
  SharedWorkload workload = MakeSubstringSharedWorkload(3, 2, 2, 0, 1000);
  auto mb = MakeMultiBench(workload, 3000, 12);
  std::vector<EventTypeId> shared;
  for (const std::string& name : workload.shared_types) {
    shared.push_back(*mb->schema.FindEventType(name));
  }
  auto sase = NonSharedEngine::CreateStackBased(mb->queries);
  auto ecube = EcubeEngine::Create(mb->queries, shared);
  auto aseq = NonSharedEngine::CreateAseq(mb->queries);
  auto cc = ChopConnectEngine::Create(mb->queries, PlanChopConnect(mb->queries));
  double sase_ms = MeasureMulti(sase.get(), mb->events).ms_per_slide;
  double ecube_ms = MeasureMulti(ecube->get(), mb->events).ms_per_slide;
  double aseq_ms = MeasureMulti(aseq->get(), mb->events).ms_per_slide;
  double cc_ms = MeasureMulti(cc->get(), mb->events).ms_per_slide;
  std::printf("  %-12s %14.6f ms/slide\n", "SASE", sase_ms);
  std::printf("  %-12s %14.6f\n", "ECube", ecube_ms);
  std::printf("  %-12s %14.6f\n", "A-Seq", aseq_ms);
  std::printf("  %-12s %14.6f\n", "ChopConnect", cc_ms);
  report->Check(ecube_ms < sase_ms, "ECube beats SASE by sharing construction");
  report->Check(ecube_ms > 30 * aseq_ms,
                "ECube still >30x slower than A-Seq (match materialization)");
  report->Check(cc_ms < 3 * aseq_ms && aseq_ms < 3 * cc_ms,
                "A-Seq and Chop-Connect lines overlap (within 3x)");
}

void Fig16Prefix(Report* report) {
  std::printf("\nFig. 16(a)/(b) — prefix sharing\n");
  std::printf("  %-22s %12s %12s %8s\n", "workload", "nonshare", "pretree",
              "gain");
  double gain_small = 0, gain_large = 0;
  for (auto [k, prefix, label] :
       {std::tuple<size_t, size_t, const char*>{3, 2, "3 queries, prefix 2"},
        std::tuple<size_t, size_t, const char*>{6, 5, "6 queries, prefix 5"}}) {
    SharedWorkload workload =
        MakePrefixSharedWorkload(k, prefix, prefix + 2, 2000);
    auto mb = MakeMultiBench(workload, 8000, 4);
    auto ns = NonSharedEngine::CreateAseq(mb->queries);
    auto pt = PreTreeEngine::Create(mb->queries);
    double ns_ms = MeasureMulti(ns->get(), mb->events).ms_per_slide;
    double pt_ms = MeasureMulti(pt->get(), mb->events).ms_per_slide;
    double gain = ns_ms / pt_ms;
    (prefix == 2 ? gain_small : gain_large) = gain;
    std::printf("  %-22s %12.6f %12.6f %7.2fx\n", label, ns_ms, pt_ms, gain);
  }
  report->Check(gain_small > 1.3, "prefix sharing wins on the small workload");
  report->Check(gain_large > gain_small,
                "gain grows with more sharing (queries x prefix length)");
}

void Fig16CC(Report* report) {
  std::printf("\nFig. 16(c)/(d) — Chop-Connect sharing\n");
  std::printf("  %-22s %12s %12s %8s\n", "workload", "nonshare", "cc",
              "gain");
  double gain_short = 0, gain_long = 0;
  for (auto [shared, label] :
       {std::pair<size_t, const char*>{2, "3 queries, shared 2"},
        std::pair<size_t, const char*>{6, "3 queries, shared 6"}}) {
    SharedWorkload workload =
        MakeSubstringSharedWorkload(3, 2, shared, 0, 2000);
    auto mb = MakeMultiBench(workload, 8000, 4);
    auto ns = NonSharedEngine::CreateAseq(mb->queries);
    auto cc =
        ChopConnectEngine::Create(mb->queries, PlanChopConnect(mb->queries));
    double ns_ms = MeasureMulti(ns->get(), mb->events).ms_per_slide;
    double cc_ms = MeasureMulti(cc->get(), mb->events).ms_per_slide;
    double gain = ns_ms / cc_ms;
    (shared == 2 ? gain_short : gain_long) = gain;
    std::printf("  %-22s %12.6f %12.6f %7.2fx\n", label, ns_ms, cc_ms, gain);
  }
  report->Check(gain_long > gain_short,
                "CC gain grows with the shared-substring length");
  report->Check(gain_long > 1.1, "CC wins for long shared substrings");
}

}  // namespace
}  // namespace bench
}  // namespace aseq

int main() {
  using namespace aseq::bench;
  std::printf("A-Seq reproduction report (scaled-down; see bench_fig* for "
              "full-scale runs)\n");
  Report report;
  Fig12(&report);
  Fig13(&report);
  Fig14a(&report);
  Fig14b(&report);
  Fig15(&report);
  Fig16Prefix(&report);
  Fig16CC(&report);
  std::printf("\n%d/%d shape checks passed\n", report.checks - report.failures,
              report.checks);
  return report.failures == 0 ? 0 : 1;
}
