// Batch-size sweep: throughput of the batched execution core as the
// OnBatch granularity grows from 1 (per-event, the reference path) to
// 4096 events per call.
//
// Workload: the Fig. 12 stock stream with the HPC equivalence query, the
// engine whose batched path does the most per-batch work (key
// pre-extraction, pre-hashing, software prefetch of partition-map
// buckets). Expected shape: throughput climbs with the batch size and
// saturates once per-batch fixed costs amortize away — the acceptance
// gate is >= 1.3x at batch 256 vs batch 1.
//
//   ./build/bench/bench_batch_sweep --benchmark_out=BENCH_batch_sweep.json
//       --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "bench/bench_util.h"
#include "query/analyzer.h"

namespace aseq {
namespace bench {
namespace {

const size_t kNumEvents = ScaledEvents(20000);
constexpr int64_t kMaxGapMs = 6;  // ~33 instances per type per 1s window

const BenchStream& Stream() {
  static const BenchStream* stream =
      MakeStockStream(kNumEvents, kMaxGapMs).release();
  return *stream;
}

// HPC stream: the same Fig. 12 stock generator, scaled to a trader
// cardinality and window where thousands of partitions are live at once
// and the partition map far outgrows the cache. Every probe is then a
// dependent random lookup — exactly the regime the staged batch
// (pre-hash + bucket prefetch) is built for; at 50 traders the map lives
// in L1 and there is nothing for a prefetch to hide.
const size_t kHpcNumEvents = ScaledEvents(200000);
constexpr int64_t kHpcMaxGapMs = 2;
constexpr size_t kHpcNumTraders = 30000;

const BenchStream& HpcStream() {
  static const BenchStream* stream =
      MakeStockStream(kHpcNumEvents, kHpcMaxGapMs, /*seed=*/42,
                      kHpcNumTraders)
          .release();
  return *stream;
}

CompiledQuery CompileHpc() {
  Schema schema = HpcStream().schema;  // copy: analysis must not mutate shared
  Analyzer analyzer(&schema);
  return std::move(
             analyzer.AnalyzeText(
                 "PATTERN SEQ(DELL, IPIX, AMAT) "
                 "WHERE DELL.traderId = IPIX.traderId = AMAT.traderId "
                 "AGG COUNT WITHIN 100s"))
      .value();
}

void BM_ASeqHPC_BatchSize(benchmark::State& state) {
  CompiledQuery cq = CompileHpc();
  auto engine = CreateAseqEngine(cq);
  RunAndReport(state, HpcStream().events, engine->get(),
               static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ASeqHPC_BatchSize)
    ->RangeMultiplier(4)
    ->Range(1, 4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The plain SEM engine and the stack baseline only hoist window expiry per
// batch; their curves bound how much of the HPC win is prefetch vs. purge
// amortization.
void BM_ASeqSEM_BatchSize(benchmark::State& state) {
  Schema schema = Stream().schema;
  Analyzer analyzer(&schema);
  CompiledQuery cq =
      std::move(analyzer.Analyze(MakeTickerQuery(3, 1000))).value();
  auto engine = CreateAseqEngine(cq);
  RunAndReport(state, Stream().events, engine->get(),
               static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ASeqSEM_BatchSize)
    ->RangeMultiplier(4)
    ->Range(1, 4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_StackBased_BatchSize(benchmark::State& state) {
  Schema schema = Stream().schema;
  Analyzer analyzer(&schema);
  CompiledQuery cq =
      std::move(analyzer.Analyze(MakeTickerQuery(3, 1000))).value();
  StackEngine engine(cq);
  RunAndReport(state, Stream().events, &engine,
               static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_StackBased_BatchSize)
    ->RangeMultiplier(4)
    ->Range(1, 4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace aseq

int main(int argc, char** argv) {
  aseq::bench::PrintFigureBanner(
      "Batch sweep",
      "throughput vs OnBatch granularity (batch size 1..4096)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
