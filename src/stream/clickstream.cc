#include "stream/clickstream.h"

namespace aseq {

const std::vector<std::string>& ClickEventTypes() {
  static const std::vector<std::string>* kTypes = new std::vector<std::string>{
      "ViewKindle",   "BuyKindle",  "ViewCase",   "BuyCase",
      "ViewStylus",   "BuyStylus",  "ViewKindleFire", "ViewIPad",
      "ViewEBook",    "BuyEBook",   "ViewLight",  "BuyLight",
      "Recommendation", "TypeUsername", "TypePassword", "ClickSubmit",
  };
  return *kTypes;
}

StreamConfig MakeClickstreamConfig(const ClickstreamOptions& options) {
  StreamConfig config;
  config.seed = options.seed;
  config.num_events = options.num_events;
  config.min_gap_ms = options.min_gap_ms;
  config.max_gap_ms = options.max_gap_ms;
  for (const std::string& name : ClickEventTypes()) {
    // Views and login actions are frequent; buys are rarer.
    double weight = name.rfind("Buy", 0) == 0 ? 0.4 : 1.0;
    config.types.push_back(TypeSpec{name, weight});
  }
  config.attrs.push_back(
      AttrSpec::IntUniform("userId", 0, options.num_users - 1));
  std::vector<std::string> ips;
  for (size_t i = 0; i < options.num_ips; ++i) {
    ips.push_back("10.0.0." + std::to_string(i + 1));
  }
  config.attrs.push_back(AttrSpec::StringPool("ip", std::move(ips)));
  config.attrs.push_back(AttrSpec::DoubleUniform("value", 1.0, 500.0));
  config.attrs.push_back(AttrSpec::IntUniform("ok", 0, 1));
  return config;
}

std::vector<Event> GenerateClickstream(const ClickstreamOptions& options,
                                       Schema* schema) {
  StreamGenerator gen(MakeClickstreamConfig(options), schema);
  return gen.Generate();
}

}  // namespace aseq
