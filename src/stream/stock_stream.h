#ifndef ASEQ_STREAM_STOCK_STREAM_H_
#define ASEQ_STREAM_STOCK_STREAM_H_

#include <string>
#include <vector>

#include "stream/generator.h"

namespace aseq {

/// \brief Synthetic stand-in for the WPI stock-trade trace the paper
/// evaluates on (http://davis.wpi.edu/dsrg/stockData/eventstream3.txt).
///
/// Each trade event carries: `price` (per-ticker random walk), `volume`
/// (uniform int), and `traderId` (uniform int; used by equivalence-predicate
/// and GROUP BY workloads). Tickers match the symbols the paper's negation
/// experiment names (DELL, IPIX, AMAT, QQQ, ...).
///
/// A real trace in the CSV format of trace_io.h can be substituted wherever
/// a stream of these events is consumed; the evaluation depends only on
/// event-type frequencies and arrival rate (see DESIGN.md §3).
struct StockStreamOptions {
  uint64_t seed = 42;
  size_t num_events = 120000;       // size of the paper's trace portion
  size_t num_tickers = 10;          // capped at the built-in symbol list
  int64_t min_gap_ms = 0;           // inter-arrival gap bounds
  int64_t max_gap_ms = 2;
  int64_t num_traders = 50;         // distinct traderId values
};

/// The built-in ticker symbols, in registration order.
const std::vector<std::string>& StockTickers();

/// Builds the generator config for the synthetic stock stream.
StreamConfig MakeStockStreamConfig(const StockStreamOptions& options);

/// Generates a synthetic stock stream, registering types/attrs in `schema`.
std::vector<Event> GenerateStockStream(const StockStreamOptions& options,
                                       Schema* schema);

}  // namespace aseq

#endif  // ASEQ_STREAM_STOCK_STREAM_H_
