#ifndef ASEQ_STREAM_CLICKSTREAM_H_
#define ASEQ_STREAM_CLICKSTREAM_H_

#include <string>
#include <vector>

#include "stream/generator.h"

namespace aseq {

/// \brief Synthetic e-commerce web-click stream (Applications I & II of the
/// paper's introduction).
///
/// Event types model product views/purchases plus login actions:
/// ViewKindle, BuyKindle, ViewCase, BuyCase, ViewStylus, BuyStylus,
/// ViewKindleFire, ViewIPad, ViewEBook, BuyEBook, ViewLight, BuyLight,
/// Recommendation, TypeUsername, TypePassword, ClickSubmit.
/// View events are more frequent than buy events. Attributes: `userId`
/// (uniform int), `ip` (string pool), `value` (uniform double purchase
/// value), `ok` (0/1 flag used by the login example to mark a wrong
/// password).
struct ClickstreamOptions {
  uint64_t seed = 7;
  size_t num_events = 50000;
  int64_t min_gap_ms = 0;
  int64_t max_gap_ms = 5;
  int64_t num_users = 100;
  size_t num_ips = 20;
};

/// All click event-type names, in registration order.
const std::vector<std::string>& ClickEventTypes();

/// Builds the generator config for the clickstream.
StreamConfig MakeClickstreamConfig(const ClickstreamOptions& options);

/// Generates a synthetic clickstream, registering types/attrs in `schema`.
std::vector<Event> GenerateClickstream(const ClickstreamOptions& options,
                                       Schema* schema);

}  // namespace aseq

#endif  // ASEQ_STREAM_CLICKSTREAM_H_
