#include "stream/trace_io.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace aseq {

namespace {

/// Parses a CSV value token into the narrowest matching Value type.
/// Numeric-looking tokens that overflow their type are an error — silently
/// saturating to INT64_MAX/inf would corrupt aggregates downstream.
Status ParseValueToken(std::string_view token, Value* out) {
  if (token.empty()) {
    *out = Value();
    return Status::OK();
  }
  bool digits = false, dot = false, other = false;
  size_t start = (token[0] == '-' || token[0] == '+') ? 1 : 0;
  if (start == token.size()) other = true;
  for (size_t i = start; i < token.size(); ++i) {
    char c = token[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digits = true;
    } else if (c == '.' && !dot) {
      dot = true;
    } else {
      other = true;
      break;
    }
  }
  std::string s(token);
  if (!other && digits && !dot) {
    errno = 0;
    long long v = std::strtoll(s.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      return Status::ParseError("integer value '" + s +
                                "' overflows 64-bit range");
    }
    *out = Value(static_cast<int64_t>(v));
    return Status::OK();
  }
  if (!other && digits && dot) {
    errno = 0;
    double v = std::strtod(s.c_str(), nullptr);
    if (errno == ERANGE && std::isinf(v)) {
      return Status::ParseError("numeric value '" + s +
                                "' overflows double range");
    }
    *out = Value(v);
    return Status::OK();
  }
  *out = Value(s);
  return Status::OK();
}

}  // namespace

Result<std::vector<Event>> ParseTrace(const std::string& content,
                                      Schema* schema) {
  // All registrations go into a staging copy that is committed only when
  // the whole trace parses: a malformed line must not leave the caller's
  // schema with half the file's types/attributes registered.
  Schema staging = *schema;
  std::vector<Event> events;
  std::istringstream in(content);
  std::string line;
  size_t lineno = 0;
  Timestamp prev_ts = INT64_MIN;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = SplitString(trimmed, ',');
    if (fields.size() < 2) {
      return Status::ParseError("trace line " + std::to_string(lineno) +
                                ": expected 'type,timestamp[,attr=value]...'");
    }
    Event e;
    e.set_type(staging.RegisterEventType(TrimWhitespace(fields[0])));
    std::string ts_str(TrimWhitespace(fields[1]));
    char* end = nullptr;
    errno = 0;
    int64_t ts = std::strtoll(ts_str.c_str(), &end, 10);
    if (end == ts_str.c_str() || *end != '\0') {
      return Status::ParseError("trace line " + std::to_string(lineno) +
                                ": bad timestamp '" + ts_str + "'");
    }
    if (errno == ERANGE) {
      return Status::ParseError("trace line " + std::to_string(lineno) +
                                ": timestamp '" + ts_str +
                                "' overflows 64-bit range");
    }
    if (ts < prev_ts) {
      return Status::ParseError(
          "trace line " + std::to_string(lineno) +
          ": out-of-order timestamp (the stream must be in arrival order)");
    }
    prev_ts = ts;
    e.set_ts(ts);
    for (size_t i = 2; i < fields.size(); ++i) {
      std::string_view field = TrimWhitespace(fields[i]);
      if (field.empty()) continue;
      size_t eq = field.find('=');
      if (eq == std::string_view::npos) {
        return Status::ParseError("trace line " + std::to_string(lineno) +
                                  ": expected attr=value, got '" +
                                  std::string(field) + "'");
      }
      AttrId attr =
          staging.RegisterAttribute(TrimWhitespace(field.substr(0, eq)));
      Value value;
      Status parsed =
          ParseValueToken(TrimWhitespace(field.substr(eq + 1)), &value);
      if (!parsed.ok()) {
        return Status::ParseError("trace line " + std::to_string(lineno) +
                                  ": " + parsed.message());
      }
      e.SetAttr(attr, std::move(value));
    }
    events.push_back(std::move(e));
  }
  *schema = std::move(staging);
  return events;
}

Result<std::vector<Event>> ReadTraceFile(const std::string& path,
                                         Schema* schema) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open trace file: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseTrace(buffer.str(), schema);
}

std::string FormatTrace(const std::vector<Event>& events,
                        const Schema& schema) {
  std::string out;
  for (const Event& e : events) {
    out += schema.EventTypeName(e.type());
    out += ",";
    out += std::to_string(e.ts());
    for (const auto& [attr, value] : e.attrs()) {
      out += ",";
      out += schema.AttributeName(attr);
      out += "=";
      out += value.ToString();
    }
    out += "\n";
  }
  return out;
}

Status WriteTraceFile(const std::string& path, const std::vector<Event>& events,
                      const Schema& schema) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open trace file for writing: " + path);
  }
  out << FormatTrace(events, schema);
  if (!out) {
    return Status::IoError("error writing trace file: " + path);
  }
  return Status::OK();
}

}  // namespace aseq
