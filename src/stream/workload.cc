#include "stream/workload.h"

#include <cassert>

namespace aseq {

namespace {

/// Shared event types are named S1, S2, ...; query-private types Q<i>T<j>.
std::string SharedTypeName(size_t j) { return "S" + std::to_string(j + 1); }

std::string PrivateTypeName(size_t query, size_t j) {
  return "Q" + std::to_string(query + 1) + "T" + std::to_string(j + 1);
}

Query MakeCountQuery(std::vector<std::string> type_names, Timestamp window_ms) {
  Query q;
  q.pattern = Pattern::FromNames(type_names);
  q.agg = AggregateSpec::Count();
  q.window_ms = window_ms;
  return q;
}

}  // namespace

SharedWorkload MakePrefixSharedWorkload(size_t num_queries, size_t prefix_len,
                                        size_t total_len,
                                        Timestamp window_ms) {
  assert(prefix_len >= 1 && prefix_len <= total_len);
  SharedWorkload w;
  for (size_t j = 0; j < prefix_len; ++j) {
    w.shared_types.push_back(SharedTypeName(j));
  }
  w.all_types = w.shared_types;
  for (size_t i = 0; i < num_queries; ++i) {
    std::vector<std::string> names = w.shared_types;
    for (size_t j = 0; j < total_len - prefix_len; ++j) {
      names.push_back(PrivateTypeName(i, j));
      w.all_types.push_back(names.back());
    }
    w.queries.push_back(MakeCountQuery(std::move(names), window_ms));
  }
  return w;
}

SharedWorkload MakeSubstringSharedWorkload(size_t num_queries,
                                           size_t prefix_len,
                                           size_t shared_len, size_t tail_len,
                                           Timestamp window_ms) {
  assert(shared_len >= 1);
  SharedWorkload w;
  for (size_t j = 0; j < shared_len; ++j) {
    w.shared_types.push_back(SharedTypeName(j));
  }
  w.all_types = w.shared_types;
  for (size_t i = 0; i < num_queries; ++i) {
    std::vector<std::string> names;
    for (size_t j = 0; j < prefix_len; ++j) {
      names.push_back(PrivateTypeName(i, j));
      w.all_types.push_back(names.back());
    }
    for (const std::string& s : w.shared_types) names.push_back(s);
    for (size_t j = 0; j < tail_len; ++j) {
      names.push_back(PrivateTypeName(i, prefix_len + j));
      w.all_types.push_back(names.back());
    }
    w.queries.push_back(MakeCountQuery(std::move(names), window_ms));
  }
  return w;
}

StreamConfig MakeWorkloadStreamConfig(const SharedWorkload& workload,
                                      uint64_t seed, size_t num_events,
                                      int64_t min_gap_ms, int64_t max_gap_ms) {
  StreamConfig config;
  config.seed = seed;
  config.num_events = num_events;
  config.min_gap_ms = min_gap_ms;
  config.max_gap_ms = max_gap_ms;
  for (const std::string& name : workload.all_types) {
    config.types.push_back(TypeSpec{name, 1.0});
  }
  return config;
}

}  // namespace aseq
