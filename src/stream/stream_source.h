#ifndef ASEQ_STREAM_STREAM_SOURCE_H_
#define ASEQ_STREAM_STREAM_SOURCE_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/event.h"

namespace aseq {

/// \brief Pull-based event source.
///
/// Sources yield events in arrival order; the consuming runtime assigns
/// sequence numbers. The paper assumes in-order streams (out-of-order
/// handling is explicitly future work, Sec. 8), so sources must yield
/// non-decreasing timestamps.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Yields the next event into `*out`; returns false at end of stream.
  virtual bool Next(Event* out) = 0;

  /// Fills `*out` (cleared first) with up to `max` events in arrival
  /// order; returns the number yielded (0 at end of stream). The default
  /// wraps Next; bulk sources override for a single memcpy-style refill.
  virtual size_t NextBatch(size_t max, std::vector<Event>* out) {
    out->clear();
    Event e;
    while (out->size() < max && Next(&e)) out->push_back(std::move(e));
    return out->size();
  }

  /// Restarts the stream from the beginning.
  virtual void Reset() = 0;
};

/// \brief A source replaying an in-memory vector of events.
class VectorSource : public StreamSource {
 public:
  explicit VectorSource(std::vector<Event> events)
      : events_(std::move(events)) {}

  bool Next(Event* out) override {
    if (pos_ >= events_.size()) return false;
    *out = events_[pos_++];
    return true;
  }

  size_t NextBatch(size_t max, std::vector<Event>* out) override {
    out->clear();
    const size_t n = std::min(max, events_.size() - pos_);
    out->assign(events_.begin() + static_cast<ptrdiff_t>(pos_),
                events_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return n;
  }

  void Reset() override { pos_ = 0; }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

 private:
  std::vector<Event> events_;
  size_t pos_ = 0;
};

}  // namespace aseq

#endif  // ASEQ_STREAM_STREAM_SOURCE_H_
