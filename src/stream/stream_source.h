#ifndef ASEQ_STREAM_STREAM_SOURCE_H_
#define ASEQ_STREAM_STREAM_SOURCE_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/event.h"

namespace aseq {

/// \brief Pull-based event source.
///
/// Sources yield events in arrival order; the consuming runtime assigns
/// sequence numbers. The paper assumes in-order streams (out-of-order
/// handling is explicitly future work, Sec. 8), so sources must yield
/// non-decreasing timestamps.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Yields the next event into `*out`; returns false at end of stream.
  virtual bool Next(Event* out) = 0;

  /// Fills `*out` (cleared first) with up to `max` events in arrival
  /// order; returns the number yielded (0 at end of stream). The default
  /// wraps Next; bulk sources override for a single memcpy-style refill.
  virtual size_t NextBatch(size_t max, std::vector<Event>* out) {
    out->clear();
    Event e;
    while (out->size() < max && Next(&e)) out->push_back(std::move(e));
    return out->size();
  }

  /// Borrows the next batch: a view of up to `max` events owned by the
  /// source, valid until the next Next/NextBatch/Borrow/Reset call. The
  /// view is mutable so the runtime can stamp sequence numbers in place
  /// — the one per-event write it needs — but callers must not move from
  /// or otherwise consume the events: a resettable source replays the
  /// same storage. In-memory sources override this to hand out their
  /// backing array directly, which deletes the per-batch deep copy from
  /// the serial hot loop; the default stages through an internal buffer
  /// (same cost as NextBatch).
  virtual std::span<Event> BorrowBatch(size_t max) {
    borrow_buf_.clear();
    Event e;
    while (borrow_buf_.size() < max && Next(&e)) {
      borrow_buf_.push_back(std::move(e));
    }
    return {borrow_buf_.data(), borrow_buf_.size()};
  }

  /// Restarts the stream from the beginning.
  virtual void Reset() = 0;

 private:
  std::vector<Event> borrow_buf_;  // default BorrowBatch staging
};

/// \brief A source replaying an in-memory vector of events.
class VectorSource : public StreamSource {
 public:
  explicit VectorSource(std::vector<Event> events)
      : events_(std::move(events)) {}

  bool Next(Event* out) override {
    if (pos_ >= events_.size()) return false;
    *out = events_[pos_++];
    return true;
  }

  size_t NextBatch(size_t max, std::vector<Event>* out) override {
    out->clear();
    const size_t n = std::min(max, events_.size() - pos_);
    out->assign(events_.begin() + static_cast<ptrdiff_t>(pos_),
                events_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return n;
  }

  /// Zero-copy refill: a window straight into the backing vector. Seq
  /// stamps land in the stored events, which is harmless — every run
  /// restamps them — and a Reset replay yields the same stream.
  std::span<Event> BorrowBatch(size_t max) override {
    const size_t n = std::min(max, events_.size() - pos_);
    std::span<Event> view(events_.data() + pos_, n);
    pos_ += n;
    return view;
  }

  void Reset() override { pos_ = 0; }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

 private:
  std::vector<Event> events_;
  size_t pos_ = 0;
};

}  // namespace aseq

#endif  // ASEQ_STREAM_STREAM_SOURCE_H_
