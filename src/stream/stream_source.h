#ifndef ASEQ_STREAM_STREAM_SOURCE_H_
#define ASEQ_STREAM_STREAM_SOURCE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/event.h"

namespace aseq {

/// \brief Pull-based event source.
///
/// Sources yield events in arrival order; the consuming runtime assigns
/// sequence numbers. The paper assumes in-order streams (out-of-order
/// handling is explicitly future work, Sec. 8), so sources must yield
/// non-decreasing timestamps.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Yields the next event into `*out`; returns false at end of stream.
  virtual bool Next(Event* out) = 0;

  /// Restarts the stream from the beginning.
  virtual void Reset() = 0;
};

/// \brief A source replaying an in-memory vector of events.
class VectorSource : public StreamSource {
 public:
  explicit VectorSource(std::vector<Event> events)
      : events_(std::move(events)) {}

  bool Next(Event* out) override {
    if (pos_ >= events_.size()) return false;
    *out = events_[pos_++];
    return true;
  }

  void Reset() override { pos_ = 0; }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

 private:
  std::vector<Event> events_;
  size_t pos_ = 0;
};

}  // namespace aseq

#endif  // ASEQ_STREAM_STREAM_SOURCE_H_
