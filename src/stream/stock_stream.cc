#include "stream/stock_stream.h"

#include <algorithm>

namespace aseq {

const std::vector<std::string>& StockTickers() {
  static const std::vector<std::string>* kTickers = new std::vector<std::string>{
      "DELL", "IPIX", "AMAT", "QQQ",  "INTC", "MSFT", "CSCO", "ORCL",
      "YHOO", "SUNW", "EBAY", "AMZN", "JDSU", "QCOM", "GE",   "IBM",
  };
  return *kTickers;
}

StreamConfig MakeStockStreamConfig(const StockStreamOptions& options) {
  StreamConfig config;
  config.seed = options.seed;
  config.num_events = options.num_events;
  config.min_gap_ms = options.min_gap_ms;
  config.max_gap_ms = options.max_gap_ms;
  size_t n = std::min(options.num_tickers, StockTickers().size());
  if (n == 0) n = 1;
  for (size_t i = 0; i < n; ++i) {
    config.types.push_back(TypeSpec{StockTickers()[i], 1.0});
  }
  config.attrs.push_back(AttrSpec::RandomWalk("price", 100.0, 0.5));
  config.attrs.push_back(AttrSpec::IntUniform("volume", 100, 10000));
  config.attrs.push_back(
      AttrSpec::IntUniform("traderId", 0, options.num_traders - 1));
  return config;
}

std::vector<Event> GenerateStockStream(const StockStreamOptions& options,
                                       Schema* schema) {
  StreamGenerator gen(MakeStockStreamConfig(options), schema);
  return gen.Generate();
}

}  // namespace aseq
