#include "stream/reorder.h"

namespace aseq {

void KSlackReorderer::Push(Event e, std::vector<Event>* out) {
  if (max_ts_ != INT64_MIN && e.ts() < max_ts_ - slack_ms_) {
    ++dropped_;  // beyond the disorder bound: cannot be ordered anymore
    return;
  }
  if (e.ts() > max_ts_) max_ts_ = e.ts();
  heap_.push(Item{e.ts(), next_arrival_++, std::move(e)});
  const Timestamp release_bound = max_ts_ - slack_ms_;
  while (!heap_.empty() && heap_.top().ts <= release_bound) {
    out->push_back(heap_.top().event);
    heap_.pop();
  }
}

void KSlackReorderer::Flush(std::vector<Event>* out) {
  while (!heap_.empty()) {
    out->push_back(heap_.top().event);
    heap_.pop();
  }
}

}  // namespace aseq
