#include "stream/reorder.h"

#include "ckpt/ckpt.h"

namespace aseq {

void KSlackReorderer::Push(Event e, std::vector<Event>* out) {
  if (max_ts_ != INT64_MIN && e.ts() < max_ts_ - slack_ms_) {
    ++dropped_;  // beyond the disorder bound: cannot be ordered anymore
    return;
  }
  if (e.ts() > max_ts_) max_ts_ = e.ts();
  heap_.push(Item{e.ts(), next_arrival_++, std::move(e)});
  const Timestamp release_bound = max_ts_ - slack_ms_;
  while (!heap_.empty() && heap_.top().ts <= release_bound) {
    out->push_back(heap_.top().event);
    heap_.pop();
  }
}

void KSlackReorderer::Flush(std::vector<Event>* out) {
  while (!heap_.empty()) {
    out->push_back(heap_.top().event);
    heap_.pop();
  }
}

void KSlackReorderer::Checkpoint(ckpt::Writer* w) const {
  w->WriteI64(slack_ms_);
  w->WriteI64(max_ts_);
  w->WriteU64(next_arrival_);
  w->WriteU64(dropped_);
  // Drain a copy in release order — (ts, arrival) is a total order, so the
  // restored heap pops in exactly the same sequence.
  auto heap_copy = heap_;
  w->WriteU64(heap_copy.size());
  while (!heap_copy.empty()) {
    const Item& item = heap_copy.top();
    w->WriteI64(item.ts);
    w->WriteU64(item.arrival);
    ckpt::WriteEvent(w, item.event);
    heap_copy.pop();
  }
}

Status KSlackReorderer::Restore(ckpt::Reader* r) {
  Timestamp slack = 0;
  ASEQ_RETURN_NOT_OK(r->ReadI64(&slack, "reorder slack"));
  if (slack != slack_ms_) {
    return Status::ParseError(
        "snapshot corrupt: reorder slack is " + std::to_string(slack) +
        "ms but this run configured " + std::to_string(slack_ms_) + "ms");
  }
  ASEQ_RETURN_NOT_OK(r->ReadI64(&max_ts_, "reorder max ts"));
  ASEQ_RETURN_NOT_OK(r->ReadU64(&next_arrival_, "reorder next arrival"));
  ASEQ_RETURN_NOT_OK(r->ReadU64(&dropped_, "reorder dropped"));
  heap_ = {};
  uint64_t n = 0;
  ASEQ_RETURN_NOT_OK(r->ReadCount(&n, 36, "buffered events"));
  for (uint64_t i = 0; i < n; ++i) {
    Item item;
    ASEQ_RETURN_NOT_OK(r->ReadI64(&item.ts, "buffered ts"));
    ASEQ_RETURN_NOT_OK(r->ReadU64(&item.arrival, "buffered arrival"));
    ASEQ_RETURN_NOT_OK(ckpt::ReadEvent(r, &item.event));
    heap_.push(std::move(item));
  }
  return Status::OK();
}

}  // namespace aseq
