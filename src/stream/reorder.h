#ifndef ASEQ_STREAM_REORDER_H_
#define ASEQ_STREAM_REORDER_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/event.h"
#include "common/status.h"

namespace aseq {

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

/// \brief K-slack reordering buffer for out-of-order event streams.
///
/// The paper assumes in-order arrival and names out-of-order handling as
/// future work (Sec. 8). This buffer is the standard front-end that closes
/// that gap for boundedly-disordered streams: events may arrive up to
/// `slack_ms` later than the stream time (the maximum timestamp seen so
/// far). An event is released once it can no longer be preceded by a
/// late arrival, i.e. when `event.ts <= max_seen_ts - slack_ms`; releases
/// come out in timestamp order, ties broken by arrival order (stable).
///
/// Events later than the slack bound (ts < watermark at arrival) are
/// dropped and counted — the usual K-slack policy; size the slack to the
/// stream's disorder bound to avoid drops.
class KSlackReorderer {
 public:
  explicit KSlackReorderer(Timestamp slack_ms) : slack_ms_(slack_ms) {}

  /// Buffers `e`; appends any now-releasable events to `out` in order.
  void Push(Event e, std::vector<Event>* out);

  /// Releases everything still buffered (end of stream), in order.
  void Flush(std::vector<Event>* out);

  size_t buffered() const { return heap_.size(); }
  /// Events discarded for arriving later than the slack bound.
  uint64_t dropped() const { return dropped_; }

  /// Serializes the buffer (watermark state + in-flight events in release
  /// order) so a restored reorderer releases and drops exactly like the
  /// original from the next Push on.
  void Checkpoint(ckpt::Writer* w) const;
  Status Restore(ckpt::Reader* r);
  Timestamp watermark() const {
    return max_ts_ == INT64_MIN ? INT64_MIN : max_ts_ - slack_ms_;
  }

 private:
  struct Item {
    Timestamp ts;
    uint64_t arrival;
    Event event;
    bool operator>(const Item& other) const {
      if (ts != other.ts) return ts > other.ts;
      return arrival > other.arrival;
    }
  };

  Timestamp slack_ms_;
  Timestamp max_ts_ = INT64_MIN;
  uint64_t next_arrival_ = 0;
  uint64_t dropped_ = 0;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap_;
};

}  // namespace aseq

#endif  // ASEQ_STREAM_REORDER_H_
