#ifndef ASEQ_STREAM_TRACE_IO_H_
#define ASEQ_STREAM_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/event.h"
#include "common/schema.h"
#include "common/status.h"

namespace aseq {

/// \brief CSV trace format for event streams.
///
/// Line format: `type,timestamp[,attr=value]...`, e.g.
/// ```
/// DELL,1001,price=24.5,volume=300,traderId=7
/// IPIX,1003,price=11.2,volume=1200,traderId=3
/// ```
/// Values parse as int64 when they look integral, double when they look
/// fractional, and string otherwise. This is the drop-in point for the real
/// WPI stock trace (after a one-line reshape of its `ticker timestamp`
/// records into this format).
///
/// Reading registers unseen types/attributes in the schema. Events must be
/// in non-decreasing timestamp order; out-of-order rows are an error (the
/// paper's model assumes in-order arrival).
Result<std::vector<Event>> ReadTraceFile(const std::string& path,
                                         Schema* schema);

/// Parses trace content from a string (same format as ReadTraceFile).
Result<std::vector<Event>> ParseTrace(const std::string& content,
                                      Schema* schema);

/// Writes events to a trace file; the inverse of ReadTraceFile.
Status WriteTraceFile(const std::string& path, const std::vector<Event>& events,
                      const Schema& schema);

/// Serializes events to trace-format text.
std::string FormatTrace(const std::vector<Event>& events, const Schema& schema);

}  // namespace aseq

#endif  // ASEQ_STREAM_TRACE_IO_H_
