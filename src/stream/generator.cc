#include "stream/generator.h"

#include <cassert>

namespace aseq {

AttrSpec AttrSpec::IntUniform(std::string name, int64_t lo, int64_t hi) {
  AttrSpec s;
  s.name = std::move(name);
  s.kind = Kind::kIntUniform;
  s.lo = static_cast<double>(lo);
  s.hi = static_cast<double>(hi);
  return s;
}

AttrSpec AttrSpec::DoubleUniform(std::string name, double lo, double hi) {
  AttrSpec s;
  s.name = std::move(name);
  s.kind = Kind::kDoubleUniform;
  s.lo = lo;
  s.hi = hi;
  return s;
}

AttrSpec AttrSpec::RandomWalk(std::string name, double start, double step) {
  AttrSpec s;
  s.name = std::move(name);
  s.kind = Kind::kRandomWalk;
  s.start = start;
  s.step = step;
  return s;
}

AttrSpec AttrSpec::StringPool(std::string name, std::vector<std::string> pool) {
  AttrSpec s;
  s.name = std::move(name);
  s.kind = Kind::kStringPool;
  s.pool = std::move(pool);
  return s;
}

StreamGenerator::StreamGenerator(const StreamConfig& config, Schema* schema)
    : config_(config), schema_(schema), rng_(config.seed),
      now_(config.start_ts) {
  assert(!config_.types.empty());
  for (const TypeSpec& t : config_.types) {
    type_ids_.push_back(schema_->RegisterEventType(t.name));
    total_weight_ += t.weight;
    cum_weights_.push_back(total_weight_);
  }
  for (const AttrSpec& a : config_.attrs) {
    attr_ids_.push_back(schema_->RegisterAttribute(a.name));
    walk_levels_.emplace_back(config_.types.size(), a.start);
  }
}

Event StreamGenerator::NextEvent() {
  // Type draw from the weighted mix.
  double r = rng_.NextDouble() * total_weight_;
  size_t ti = 0;
  while (ti + 1 < cum_weights_.size() && r >= cum_weights_[ti]) ++ti;

  now_ += rng_.NextInt(config_.min_gap_ms, config_.max_gap_ms);
  Event e(type_ids_[ti], now_);
  for (size_t ai = 0; ai < config_.attrs.size(); ++ai) {
    const AttrSpec& spec = config_.attrs[ai];
    switch (spec.kind) {
      case AttrSpec::Kind::kIntUniform:
        e.SetAttr(attr_ids_[ai],
                  Value(rng_.NextInt(static_cast<int64_t>(spec.lo),
                                     static_cast<int64_t>(spec.hi))));
        break;
      case AttrSpec::Kind::kDoubleUniform:
        e.SetAttr(attr_ids_[ai],
                  Value(spec.lo + rng_.NextDouble() * (spec.hi - spec.lo)));
        break;
      case AttrSpec::Kind::kRandomWalk: {
        double& level = walk_levels_[ai][ti];
        level += (rng_.NextDouble() * 2 - 1) * spec.step;
        if (level < 0.01) level = 0.01;  // prices stay positive
        e.SetAttr(attr_ids_[ai], Value(level));
        break;
      }
      case AttrSpec::Kind::kStringPool:
        e.SetAttr(attr_ids_[ai],
                  Value(spec.pool[rng_.NextUInt(spec.pool.size())]));
        break;
    }
  }
  return e;
}

std::vector<Event> StreamGenerator::Generate() {
  return GenerateN(config_.num_events);
}

std::vector<Event> StreamGenerator::GenerateN(size_t n) {
  std::vector<Event> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(NextEvent());
  return out;
}

}  // namespace aseq
