#ifndef ASEQ_STREAM_GENERATOR_H_
#define ASEQ_STREAM_GENERATOR_H_

#include <string>
#include <vector>

#include "common/event.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"

namespace aseq {

/// \brief Distribution of one synthetic attribute.
struct AttrSpec {
  enum class Kind {
    kIntUniform,   // integer uniform in [lo, hi]
    kDoubleUniform,// double uniform in [lo, hi]
    kRandomWalk,   // per-type double random walk, step uniform in [-step, step]
    kStringPool,   // one of `pool`, uniform
  };

  std::string name;
  Kind kind = Kind::kIntUniform;
  double lo = 0;
  double hi = 100;
  double start = 100;  // random-walk starting level
  double step = 1;     // random-walk max step
  std::vector<std::string> pool;

  static AttrSpec IntUniform(std::string name, int64_t lo, int64_t hi);
  static AttrSpec DoubleUniform(std::string name, double lo, double hi);
  static AttrSpec RandomWalk(std::string name, double start, double step);
  static AttrSpec StringPool(std::string name, std::vector<std::string> pool);
};

/// \brief One event type the generator emits, with its relative frequency.
struct TypeSpec {
  std::string name;
  double weight = 1.0;
};

/// \brief Configuration of the synthetic stream generator.
///
/// Timestamps start at `start_ts` and advance by a uniformly distributed
/// inter-arrival gap in [min_gap_ms, max_gap_ms] (0 gaps allowed: ties are
/// ordered by arrival). Event types are drawn independently per event from
/// the weighted `types` mix — matching the memoryless character of a stock
/// ticker feed, where per-window type cardinalities |Ei| are roughly equal,
/// the regime the paper's cost model (Eq. 3) analyzes.
struct StreamConfig {
  uint64_t seed = 42;
  size_t num_events = 10000;
  Timestamp start_ts = 0;
  int64_t min_gap_ms = 0;
  int64_t max_gap_ms = 2;
  std::vector<TypeSpec> types;
  std::vector<AttrSpec> attrs;
};

/// \brief Deterministic synthetic event-stream generator.
///
/// All workloads in tests, examples, and benchmarks are produced through
/// this class (directly or via the stock / clickstream presets), so every
/// run is exactly reproducible from the seed.
class StreamGenerator {
 public:
  /// Registers the configured types/attributes in `schema` and prepares
  /// generation. `schema` must outlive the generator.
  StreamGenerator(const StreamConfig& config, Schema* schema);

  /// Generates the full configured stream.
  std::vector<Event> Generate();

  /// Generates `n` further events (continuing timestamps and walks).
  std::vector<Event> GenerateN(size_t n);

  const StreamConfig& config() const { return config_; }

 private:
  Event NextEvent();

  StreamConfig config_;
  Schema* schema_;
  Rng rng_;
  Timestamp now_;
  std::vector<EventTypeId> type_ids_;
  std::vector<double> cum_weights_;
  double total_weight_ = 0;
  std::vector<AttrId> attr_ids_;
  // Random-walk levels: [attr][type] current level.
  std::vector<std::vector<double>> walk_levels_;
};

}  // namespace aseq

#endif  // ASEQ_STREAM_GENERATOR_H_
