#ifndef ASEQ_STREAM_WORKLOAD_H_
#define ASEQ_STREAM_WORKLOAD_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "stream/generator.h"

namespace aseq {

/// \brief A multi-query workload with controlled sharing structure, plus the
/// event-type universe a matching stream must emit.
///
/// Drives the multi-query experiments (Sec. 6.3 / Fig. 15-16): workloads of
/// similar-but-not-identical queries over a shared stream, with either a
/// common *prefix* or a common *substring* at an arbitrary position.
struct SharedWorkload {
  std::vector<Query> queries;
  /// Event-type names of the shared sub-pattern, in pattern order.
  std::vector<std::string> shared_types;
  /// All event types appearing in any query, in some stable order.
  std::vector<std::string> all_types;
};

/// Builds `num_queries` queries of `total_len` positive event types that all
/// share the same leading `prefix_len` types and diverge afterwards
/// (Sec. 4.1 / Fig. 16(a),(b)). Requires 1 <= prefix_len <= total_len; the
/// divergent suffixes use query-private event types.
SharedWorkload MakePrefixSharedWorkload(size_t num_queries, size_t prefix_len,
                                        size_t total_len, Timestamp window_ms);

/// Builds `num_queries` queries that share a common substring of
/// `shared_len` types placed after a query-private prefix of `prefix_len`
/// types and before a query-private tail of `tail_len` types
/// (Sec. 4.2 / Fig. 16(c),(d)). With prefix_len == 0 this degenerates to
/// prefix sharing.
SharedWorkload MakeSubstringSharedWorkload(size_t num_queries,
                                           size_t prefix_len,
                                           size_t shared_len, size_t tail_len,
                                           Timestamp window_ms);

/// Builds a generator config whose type mix covers the workload's type
/// universe uniformly.
StreamConfig MakeWorkloadStreamConfig(const SharedWorkload& workload,
                                      uint64_t seed, size_t num_events,
                                      int64_t min_gap_ms, int64_t max_gap_ms);

}  // namespace aseq

#endif  // ASEQ_STREAM_WORKLOAD_H_
