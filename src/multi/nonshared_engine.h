#ifndef ASEQ_MULTI_NONSHARED_ENGINE_H_
#define ASEQ_MULTI_NONSHARED_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief Baseline multi-query execution: one independent single-query
/// engine per workload query, every event fed to every engine.
///
/// The "NonShare" competitor of Fig. 16 (with A-Seq engines inside) and the
/// "SASE" competitor of Fig. 15 (with stack-based engines inside).
///
/// Admission runs inside the wrapped engines: each carries its own compiled
/// plan::AdmissionProgram, so every query pays its full per-event admission
/// cost independently — exactly the redundancy the shared engines remove.
///
/// Shardability is delegated: the wrapper shards iff every sub-engine is a
/// ShardableEngine (each query's state hash-partitions independently), and
/// a purge marker for a set of triggered queries forwards to exactly those
/// sub-engines — the serial wrapper's sub-engines purge lazily at their own
/// trigger events, never at siblings'.
class NonSharedEngine : public MultiQueryEngine, public MultiShardableEngine {
 public:
  /// Wraps pre-built engines (one per query).
  NonSharedEngine(std::vector<std::unique_ptr<QueryEngine>> engines,
                  std::string name);

  /// Builds one A-Seq engine per query.
  static Result<std::unique_ptr<NonSharedEngine>> CreateAseq(
      const std::vector<CompiledQuery>& queries);

  /// Builds one stack-based engine per query.
  static std::unique_ptr<NonSharedEngine> CreateStackBased(
      const std::vector<CompiledQuery>& queries);

  void OnEvent(const Event& e, std::vector<MultiOutput>* out) override;
  /// Batched path. Sub-engines still see events one at a time (the
  /// combined object peak is sampled per event and outputs interleave per
  /// arrival, so deeper batching would change observable stats); the
  /// per-event work-unit summation is hoisted to once per batch.
  void OnBatch(std::span<const Event> batch,
               std::vector<MultiOutput>* out) override;
  /// Polls every sub-engine in query order.
  std::vector<MultiOutput> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  /// Serializes the wrapper's own accounting plus every sub-engine's
  /// payload in query order.
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override { return name_; }

  QueryEngine* engine(size_t i) { return engines_[i].get(); }
  size_t num_queries() const { return engines_.size(); }

  /// MultiShardableEngine: shards iff every sub-engine does.
  bool shardable() const override;
  void SyncPurgeTo(Timestamp now,
                   std::span<const size_t> trigger_queries) override;
  /// The wrapper samples the combined sub-engine total once per event.
  bool objects_sampled_at_boundaries() const override { return true; }
  EngineStats* shard_mutable_stats() override { return &stats_; }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  /// Feeds one event to every sub-engine and samples the combined
  /// live-object total (work-unit summation deferred to SumWorkUnits).
  void ProcessEvent(const Event& e, std::vector<MultiOutput>* out);
  /// Refreshes stats_.work_units and the adm_* admission counters from
  /// the sub-engines.
  void SumWorkUnits();

  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::string name_;
  EngineStats stats_;
  int64_t last_objects_ = 0;
  std::vector<Output> scratch_;
};

}  // namespace aseq

#endif  // ASEQ_MULTI_NONSHARED_ENGINE_H_
