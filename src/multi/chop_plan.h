#ifndef ASEQ_MULTI_CHOP_PLAN_H_
#define ASEQ_MULTI_CHOP_PLAN_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief A multi-query sharing plan for Chop-Connect (Sec. 4.2).
///
/// Queries are chopped into substrings ("segments"); segments with equal
/// type sequences are computed once and shared. Each query's
/// `query_segments` concatenation must reproduce its positive pattern.
struct ChopPlan {
  /// Unique segments as event-type-id sequences.
  std::vector<std::vector<EventTypeId>> segments;
  /// Per query: ordered indexes into `segments`.
  std::vector<std::vector<size_t>> query_segments;

  /// Renders the plan using `schema` type names, e.g.
  /// "Q1 = [A B][S1 S2] ; Q2 = [S1 S2][C]".
  std::string ToString(const Schema& schema) const;
};

/// \brief Greedy Chop-Connect planner.
///
/// Picks the substring (length >= 2) shared by the largest number of
/// queries — ties broken towards longer substrings — and chops every query
/// containing it into [private prefix][shared][private tail]; remaining
/// queries stay unchopped. This plays the role of the "multi-query
/// optimizer" the paper assumes produces the sharing plan.
ChopPlan PlanChopConnect(const std::vector<CompiledQuery>& queries);

/// Builds a plan that chops nothing (every query one segment); the
/// degenerate plan under which Chop-Connect equals per-query A-Seq.
ChopPlan TrivialPlan(const std::vector<CompiledQuery>& queries);

}  // namespace aseq

#endif  // ASEQ_MULTI_CHOP_PLAN_H_
