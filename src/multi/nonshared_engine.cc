#include "multi/nonshared_engine.h"

#include <cassert>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "ckpt/ckpt.h"

namespace aseq {

NonSharedEngine::NonSharedEngine(
    std::vector<std::unique_ptr<QueryEngine>> engines, std::string name)
    : engines_(std::move(engines)), name_(std::move(name)) {}

Result<std::unique_ptr<NonSharedEngine>> NonSharedEngine::CreateAseq(
    const std::vector<CompiledQuery>& queries) {
  std::vector<std::unique_ptr<QueryEngine>> engines;
  engines.reserve(queries.size());
  for (const CompiledQuery& q : queries) {
    ASEQ_ASSIGN_OR_RETURN(std::unique_ptr<QueryEngine> engine,
                          CreateAseqEngine(q));
    engines.push_back(std::move(engine));
  }
  return std::make_unique<NonSharedEngine>(std::move(engines),
                                           "NonShare(A-Seq)");
}

std::unique_ptr<NonSharedEngine> NonSharedEngine::CreateStackBased(
    const std::vector<CompiledQuery>& queries) {
  std::vector<std::unique_ptr<QueryEngine>> engines;
  engines.reserve(queries.size());
  for (const CompiledQuery& q : queries) {
    engines.push_back(std::make_unique<StackEngine>(q));
  }
  return std::make_unique<NonSharedEngine>(std::move(engines),
                                           "NonShare(StackBased)");
}

void NonSharedEngine::ProcessEvent(const Event& e,
                                   std::vector<MultiOutput>* out) {
  ++stats_.events_processed;
  int64_t objects = 0;
  for (size_t i = 0; i < engines_.size(); ++i) {
    scratch_.clear();
    engines_[i]->OnEvent(e, &scratch_);
    for (Output& output : scratch_) {
      MultiOutput mo;
      mo.query_index = i;
      mo.output = std::move(output);
      out->push_back(std::move(mo));
      ++stats_.outputs;
    }
    objects += engines_[i]->stats().objects.current();
  }
  // Track the combined live-object total so the peak of the sum is exact.
  stats_.objects.Add(objects - last_objects_);
  last_objects_ = objects;
}

void NonSharedEngine::SumWorkUnits() {
  uint64_t work = 0;
  stats_.adm_admitted = 0;
  stats_.adm_rejected_local = 0;
  stats_.adm_missing_attr = 0;
  stats_.adm_generic_cmps = 0;
  for (const std::unique_ptr<QueryEngine>& engine : engines_) {
    const EngineStats& s = engine->stats();
    work += s.work_units;
    stats_.adm_admitted += s.adm_admitted;
    stats_.adm_rejected_local += s.adm_rejected_local;
    stats_.adm_missing_attr += s.adm_missing_attr;
    stats_.adm_generic_cmps += s.adm_generic_cmps;
  }
  stats_.work_units = work;
}

void NonSharedEngine::OnEvent(const Event& e, std::vector<MultiOutput>* out) {
  ProcessEvent(e, out);
  SumWorkUnits();
}

void NonSharedEngine::OnBatch(std::span<const Event> batch,
                              std::vector<MultiOutput>* out) {
  if (batch.empty()) return;
  // Sub-engines must see events interleaved per arrival (not per-engine
  // batches): the combined live-object peak is sampled after every event,
  // and outputs interleave across queries in arrival order. Only the
  // work-unit summation is batch-hoisted — intermediate sums are never
  // observable, and the final value is identical.
  for (const Event& e : batch) ProcessEvent(e, out);
  SumWorkUnits();
  stats_.NoteBatch(batch.size());
}

std::vector<MultiOutput> NonSharedEngine::Poll(Timestamp now) {
  std::vector<MultiOutput> outputs;
  for (size_t i = 0; i < engines_.size(); ++i) {
    for (Output& output : engines_[i]->Poll(now)) {
      MultiOutput mo;
      mo.query_index = i;
      mo.output = std::move(output);
      outputs.push_back(std::move(mo));
    }
  }
  return outputs;
}

bool NonSharedEngine::shardable() const {
  for (const auto& engine : engines_) {
    if (dynamic_cast<const ShardableEngine*>(engine.get()) == nullptr) {
      return false;
    }
  }
  return true;
}

void NonSharedEngine::SyncPurgeTo(Timestamp now,
                                  std::span<const size_t> trigger_queries) {
  // Forward only to the sub-engines whose queries actually triggered: a
  // serial sub-engine purges lazily at its *own* trigger events (see
  // HpcEngine::SyncPurgeTo), never at a sibling's.
  for (size_t qi : trigger_queries) {
    auto* shardable = dynamic_cast<ShardableEngine*>(engines_[qi].get());
    assert(shardable != nullptr);
    shardable->SyncPurgeTo(now);
  }
  // Resample the combined live-object total (the purge only removes, so
  // the peak of the sum is unperturbed).
  int64_t objects = 0;
  for (const auto& engine : engines_) {
    objects += engine->stats().objects.current();
  }
  stats_.objects.Add(objects - last_objects_);
  last_objects_ = objects;
}

Status NonSharedEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  writer->WriteI64(last_objects_);
  writer->WriteU64(engines_.size());
  for (const auto& engine : engines_) {
    ASEQ_RETURN_NOT_OK(engine->Checkpoint(writer));
  }
  return Status::OK();
}

Status NonSharedEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  ASEQ_RETURN_NOT_OK(reader->ReadI64(&last_objects_, "last objects"));
  uint64_t n_engines = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_engines, 8, "sub-engines"));
  if (n_engines != engines_.size()) {
    return Status::ParseError(
        "snapshot corrupt: " + std::to_string(n_engines) +
        " sub-engines but the workload has " + std::to_string(engines_.size()));
  }
  for (auto& engine : engines_) {
    ASEQ_RETURN_NOT_OK(engine->Restore(reader));
  }
  stats_ = stats;
  return Status::OK();
}

}  // namespace aseq
