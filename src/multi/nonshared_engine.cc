#include "multi/nonshared_engine.h"

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"

namespace aseq {

NonSharedEngine::NonSharedEngine(
    std::vector<std::unique_ptr<QueryEngine>> engines, std::string name)
    : engines_(std::move(engines)), name_(std::move(name)) {}

Result<std::unique_ptr<NonSharedEngine>> NonSharedEngine::CreateAseq(
    const std::vector<CompiledQuery>& queries) {
  std::vector<std::unique_ptr<QueryEngine>> engines;
  engines.reserve(queries.size());
  for (const CompiledQuery& q : queries) {
    ASEQ_ASSIGN_OR_RETURN(std::unique_ptr<QueryEngine> engine,
                          CreateAseqEngine(q));
    engines.push_back(std::move(engine));
  }
  return std::make_unique<NonSharedEngine>(std::move(engines),
                                           "NonShare(A-Seq)");
}

std::unique_ptr<NonSharedEngine> NonSharedEngine::CreateStackBased(
    const std::vector<CompiledQuery>& queries) {
  std::vector<std::unique_ptr<QueryEngine>> engines;
  engines.reserve(queries.size());
  for (const CompiledQuery& q : queries) {
    engines.push_back(std::make_unique<StackEngine>(q));
  }
  return std::make_unique<NonSharedEngine>(std::move(engines),
                                           "NonShare(StackBased)");
}

void NonSharedEngine::OnEvent(const Event& e, std::vector<MultiOutput>* out) {
  ++stats_.events_processed;
  uint64_t work = 0;
  int64_t objects = 0;
  for (size_t i = 0; i < engines_.size(); ++i) {
    scratch_.clear();
    engines_[i]->OnEvent(e, &scratch_);
    for (Output& output : scratch_) {
      MultiOutput mo;
      mo.query_index = i;
      mo.output = std::move(output);
      out->push_back(std::move(mo));
      ++stats_.outputs;
    }
    work += engines_[i]->stats().work_units;
    objects += engines_[i]->stats().objects.current();
  }
  stats_.work_units = work;
  // Track the combined live-object total so the peak of the sum is exact.
  stats_.objects.Add(objects - last_objects_);
  last_objects_ = objects;
}

}  // namespace aseq
