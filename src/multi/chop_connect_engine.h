#ifndef ASEQ_MULTI_CHOP_CONNECT_ENGINE_H_
#define ASEQ_MULTI_CHOP_CONNECT_ENGINE_H_

#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "multi/chop_plan.h"
#include "plan/admission.h"
#include "query/compiled_query.h"
#include "state/partition_store.h"
#include "state/window_clock.h"

namespace aseq {

/// \brief Chop-Connect shared multi-query A-Seq (Sec. 4.2).
///
/// Each unique plan segment runs one shared SEM-style counter set (one
/// per-start PreCntr per live segment-START instance). Queries *connect*
/// their segments:
///
///  * A **CNET** instance — the START of a non-first segment of some query —
///    receives a **SnapShot** (Fig. 10): rows (tag, expiration, count) of
///    the query's pattern-so-far per full-sequence START, computed from the
///    upstream segment's live counters (and, recursively, their snapshots —
///    the multi-connect of Fig. 11) *before* this arrival's updates apply
///    (Lemma 7: only sub-matches constructed before the CNET arrival
///    connect).
///  * A **TRIG** instance of a query's last segment reports
///    `sum over last-segment counters c of c.tail * (live snapshot rows of
///    c)` — expired rows (whose full-sequence START left the window) are
///    skipped, which is how Chop-Connect inherits SEM's expiration handling
///    without per-match state.
///
/// Scope (the paper's multi-query experiments): COUNT, positive-only
/// patterns, no predicates, one common sliding window. Workloads are
/// either entirely ungrouped, or entirely GROUP BY one shared attribute —
/// the *grouped* mode, where every group value runs an independent copy of
/// the segment state in a state::PartitionStore keyed by the group value,
/// with HPC-style partition-local purging driven by a state::WindowClock.
/// Grouped instances are shardable: the group key partitions the whole
/// engine state, and the only cross-partition coupling is the clock
/// advance at trigger time (MultiShardableEngine::SyncPurgeTo).
class ChopConnectEngine : public MultiQueryEngine, public MultiShardableEngine {
 public:
  /// Validates the plan against the queries and builds the engine.
  static Result<std::unique_ptr<ChopConnectEngine>> Create(
      std::vector<CompiledQuery> queries, ChopPlan plan);

  void OnEvent(const Event& e, std::vector<MultiOutput>* out) override;
  /// Batched path: skips per-segment purge scans that a cached
  /// next-expiry lower bound proves are no-ops.
  void OnBatch(std::span<const Event> batch,
               std::vector<MultiOutput>* out) override;
  std::vector<MultiOutput> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override { return "ChopConnect"; }

  /// Number of unique shared segments (testing hook).
  size_t num_segments() const { return segments_.size(); }
  /// Number of live group partitions (grouped mode; testing hook).
  size_t num_partitions() const { return part_store_.size(); }

  /// MultiShardableEngine: grouped workloads shard by the group key.
  bool shardable() const override { return grouped_; }
  /// Replays the clock advance a trigger at `now` performs (grouped mode
  /// only; triggered queries all share this engine's one clock).
  void SyncPurgeTo(Timestamp now,
                   std::span<const size_t> trigger_queries) override;
  EngineStats* shard_mutable_stats() override { return &stats_; }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  /// One snapshot row: the count of the query's pattern-prefix (through the
  /// upstream segments) whose full-sequence START is `tag`, expiring at
  /// `exp`.
  struct SnapRow {
    uint64_t tag;
    Timestamp exp;
    uint64_t count;
    uint64_t cum;  // count of this row + all later (younger) rows
  };

  /// The SnapShot table of Fig. 10, with rows in expiration order (tags are
  /// assigned in arrival order under one shared window) plus an inline
  /// suffix-sum (`cum`) so the live total is O(1) amortized as rows expire —
  /// this keeps the per-TRIG connect cost linear in the number of
  /// last-segment counters, matching the paper's cost analysis.
  struct SnapshotTable {
    std::vector<SnapRow> rows;
    size_t cursor = 0;  // first possibly-live row

    void BuildSuffix() {
      uint64_t cum = 0;
      for (size_t i = rows.size(); i > 0; --i) {
        cum += rows[i - 1].count;
        rows[i - 1].cum = cum;
      }
    }

    /// Total count over non-expired rows at `now` (monotone in `now`).
    uint64_t LiveSum(Timestamp now) {
      while (cursor < rows.size() && rows[cursor].exp <= now) ++cursor;
      return cursor < rows.size() ? rows[cursor].cum : 0;
    }

    size_t size() const { return rows.size(); }
  };

  /// A connection point: segment `seg` is the `junction`-th (>= 1) segment
  /// of query `query`; `upstream_seg` precedes it; `upstream_hook` is the
  /// hook index of junction-1 within the upstream segment (-1 when the
  /// upstream is the query's first segment).
  struct Hook {
    size_t query;
    size_t junction;
    size_t upstream_seg;
    int upstream_hook;
  };

  /// One live per-START prefix counter of a segment.
  struct SegEntry {
    uint64_t id;
    Timestamp exp;
    std::vector<uint64_t> counts;          // per segment position
    std::vector<SnapshotTable> snapshots;  // parallel to Segment::hooks
  };

  /// The static shape of a shared segment (one per plan segment,
  /// identical across group partitions).
  struct Segment {
    std::vector<EventTypeId> types;
    std::vector<Hook> hooks;
  };

  /// The dynamic state of one segment within one counting scope (the
  /// whole engine when ungrouped; one group partition when grouped).
  struct SegState {
    std::deque<SegEntry> entries;
    uint64_t next_id = 0;
  };

  /// One group partition: its interned key (plus pinned hash; see
  /// state::PartitionStore) and a full set of segment states.
  struct PartState {
    container::InternedKey key;
    uint64_t hash = 0;
    std::vector<SegState> segs;

    PartState(const container::InternedKey& k, uint64_t h, size_t n_segs)
        : key(k), hash(h), segs(n_segs) {}
  };

  ChopConnectEngine(std::vector<CompiledQuery> queries, ChopPlan plan);
  void Build();

  void PurgeSegment(SegState* st, Timestamp now);
  /// Purges every segment and recomputes next_expiry_ (ungrouped mode).
  void Purge(Timestamp now);
  /// Snapshot pre-pass and counter updates for one event against one
  /// counting scope (caller already purged `dyn`). No triggers — those are
  /// mode-specific and owned by the Process*Event callers.
  void ApplyUpdates(const Event& e, std::vector<SegState>& dyn);
  /// Ungrouped mode: ApplyUpdates against dyn_ plus the trigger reports.
  void ProcessEvent(const Event& e, std::vector<MultiOutput>* out);
  /// Grouped mode: routes the event to its group partition (HPC-style
  /// partition-local purge), applies updates there, then handles triggers
  /// (clock advance + per-group report).
  void ProcessGroupedEvent(const Event& e, std::vector<MultiOutput>* out);
  SnapshotTable ComputeSnapshot(const Hook& hook, std::vector<SegState>& dyn,
                                Timestamp now);
  uint64_t QueryTotal(size_t qi, std::vector<SegState>& dyn, Timestamp now);

  /// Earliest live entry expiration across a partition's segments, or
  /// WindowClock::kNever when it holds no entries.
  Timestamp PartNextExpiry(const PartState& part) const;
  /// Pops every due clock entry, purging (and erasing when emptied) the
  /// named partitions — the grouped counterpart of the serial trigger's
  /// full purge sweep.
  void AdvanceClock(Timestamp now);

  Status CheckpointSegState(const SegState& st, ckpt::Writer* writer) const;
  Status RestoreSegState(SegState* st, const Segment& seg,
                         ckpt::Reader* reader) const;

  std::vector<CompiledQuery> queries_;
  /// Per-query compiled admission programs (src/plan/); the workload shape
  /// has no predicates, so they serve as the dense type-relevance test.
  /// Borrow queries_'s storage — declared after it.
  std::vector<plan::AdmissionProgram> programs_;
  /// Union of the programs' relevance, EventTypeId-indexed: an event whose
  /// type is outside every query's pattern touches no segment.
  std::vector<uint8_t> type_relevant_;
  ChopPlan plan_;
  Timestamp window_ms_ = 0;
  /// GROUP BY mode: every query groups by this one shared attribute.
  bool grouped_ = false;
  AttrId group_attr_ = kInvalidAttr;
  std::vector<Segment> segments_;
  /// Ungrouped mode: the single shared set of segment states.
  std::vector<SegState> dyn_;
  /// Grouped mode: one set of segment states per live group value, plus
  /// the lazy expiry clock that drives trigger-time purging.
  state::PartitionStore<PartState> part_store_;
  state::WindowClock clock_;
  /// Per type (dense, EventTypeId-indexed): (segment, position) updates,
  /// positions descending per segment; position 0 entries create counters.
  std::vector<std::vector<std::pair<size_t, size_t>>> update_index_;
  /// Per type (dense): queries it triggers (type == last type of the
  /// query's last segment).
  std::vector<std::vector<size_t>> trigger_index_;
  /// Per query: hook index (within the last segment) of the final junction;
  /// -1 for single-segment queries.
  std::vector<int> final_hook_;
  EngineStats stats_;
  /// Lower bound on the earliest live entry expiration, ungrouped mode
  /// (see StackEngine::next_expiry_).
  Timestamp next_expiry_ = std::numeric_limits<Timestamp>::max();
};

}  // namespace aseq

#endif  // ASEQ_MULTI_CHOP_CONNECT_ENGINE_H_
