#include "multi/chop_plan.h"

#include <map>

namespace aseq {

std::string ChopPlan::ToString(const Schema& schema) const {
  std::string out;
  for (size_t qi = 0; qi < query_segments.size(); ++qi) {
    if (qi > 0) out += " ; ";
    out += "Q" + std::to_string(qi + 1) + " =";
    for (size_t seg : query_segments[qi]) {
      out += " [";
      for (size_t j = 0; j < segments[seg].size(); ++j) {
        if (j > 0) out += " ";
        out += schema.EventTypeName(segments[seg][j]);
      }
      out += "]";
    }
  }
  return out;
}

namespace {

/// Registers `types` in the plan's segment list, deduplicating.
size_t InternSegment(ChopPlan* plan, std::vector<EventTypeId> types) {
  for (size_t i = 0; i < plan->segments.size(); ++i) {
    if (plan->segments[i] == types) return i;
  }
  plan->segments.push_back(std::move(types));
  return plan->segments.size() - 1;
}

/// First position of `sub` in `full`; -1 if absent.
int FindSub(const std::vector<EventTypeId>& full,
            const std::vector<EventTypeId>& sub) {
  if (sub.empty() || sub.size() > full.size()) return -1;
  for (size_t i = 0; i + sub.size() <= full.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < sub.size(); ++j) {
      if (full[i + j] != sub[j]) {
        match = false;
        break;
      }
    }
    if (match) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

ChopPlan TrivialPlan(const std::vector<CompiledQuery>& queries) {
  ChopPlan plan;
  for (const CompiledQuery& q : queries) {
    plan.query_segments.push_back({InternSegment(&plan, q.positive_types())});
  }
  return plan;
}

ChopPlan PlanChopConnect(const std::vector<CompiledQuery>& queries) {
  // Score every substring of length >= 2 by (#sharing queries, length).
  std::map<std::vector<EventTypeId>, size_t> counts;
  for (const CompiledQuery& q : queries) {
    const auto& types = q.positive_types();
    std::map<std::vector<EventTypeId>, bool> seen;  // per query, count once
    for (size_t len = 2; len <= types.size(); ++len) {
      for (size_t i = 0; i + len <= types.size(); ++i) {
        std::vector<EventTypeId> sub(types.begin() + i,
                                     types.begin() + i + len);
        if (!seen[sub]) {
          seen[sub] = true;
          ++counts[sub];
        }
      }
    }
  }
  std::vector<EventTypeId> best;
  size_t best_queries = 1;
  for (const auto& [sub, n] : counts) {
    if (n < 2) continue;
    if (n > best_queries || (n == best_queries && sub.size() > best.size())) {
      best = sub;
      best_queries = n;
    }
  }
  if (best.empty()) return TrivialPlan(queries);

  ChopPlan plan;
  for (const CompiledQuery& q : queries) {
    const auto& types = q.positive_types();
    int at = FindSub(types, best);
    std::vector<size_t> segs;
    if (at < 0 || types.size() == best.size()) {
      // Not sharing (or the query IS the shared substring): one segment.
      segs.push_back(InternSegment(&plan, types));
    } else {
      size_t i = static_cast<size_t>(at);
      if (i > 0) {
        segs.push_back(InternSegment(
            &plan, std::vector<EventTypeId>(types.begin(), types.begin() + i)));
      }
      segs.push_back(InternSegment(&plan, best));
      if (i + best.size() < types.size()) {
        segs.push_back(InternSegment(
            &plan, std::vector<EventTypeId>(types.begin() + i + best.size(),
                                            types.end())));
      }
    }
    plan.query_segments.push_back(std::move(segs));
  }
  return plan;
}

}  // namespace aseq
