#include "multi/pretree_engine.h"

#include <algorithm>
#include <cassert>

#include "ckpt/ckpt.h"

namespace aseq {

PreTreeEngine::PreTreeEngine(std::vector<CompiledQuery> queries)
    : queries_(std::move(queries)) {
  for (const CompiledQuery& q : queries_) {
    plan::AdmissionProgram program(q);
    for (EventTypeId t : q.positive_types()) {
      if (t >= type_relevant_.size()) type_relevant_.resize(t + 1, 0);
      if (program.Relevant(t)) type_relevant_[t] = 1;
    }
    programs_.push_back(std::move(program));
  }
}

Result<std::unique_ptr<PreTreeEngine>> PreTreeEngine::Create(
    std::vector<CompiledQuery> queries) {
  if (queries.empty()) {
    return Status::InvalidArgument("PreTree needs at least one query");
  }
  Timestamp window = queries[0].window_ms();
  for (const CompiledQuery& q : queries) {
    if (q.agg().func != AggFunc::kCount || q.partitioned() ||
        q.has_join_predicates() || q.pattern().has_negation()) {
      return Status::Unsupported(
          "PreTree sharing supports COUNT over positive-only unpartitioned "
          "patterns: " +
          q.ToString());
    }
    for (const auto& preds : q.local_predicates()) {
      if (!preds.empty()) {
        return Status::Unsupported("PreTree sharing does not support WHERE: " +
                                   q.ToString());
      }
    }
    if (q.window_ms() != window || window <= 0) {
      return Status::InvalidArgument(
          "PreTree workload queries must share one positive window");
    }
  }
  std::unique_ptr<PreTreeEngine> engine(new PreTreeEngine(std::move(queries)));
  engine->window_ms_ = window;
  ASEQ_RETURN_NOT_OK(engine->Build());
  return engine;
}

Status PreTreeEngine::Build() {
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const std::vector<EventTypeId>& types = queries_[qi].positive_types();
    // Trie for this START type.
    auto [it, inserted] = trie_by_start_.try_emplace(types[0], tries_.size());
    if (inserted) {
      tries_.push_back(Trie{});
      tries_.back().start_type = types[0];
    }
    Trie& trie = tries_[it->second];
    // Walk/extend the path for types[1..].
    int node = -1;  // the START itself
    for (size_t d = 1; d < types.size(); ++d) {
      int child = -1;
      for (size_t n = 0; n < trie.nodes.size(); ++n) {
        if (trie.nodes[n].parent == node && trie.nodes[n].type == types[d]) {
          child = static_cast<int>(n);
          break;
        }
      }
      if (child < 0) {
        child = static_cast<int>(trie.nodes.size());
        trie.nodes.push_back(Node{types[d], node, d});
      }
      node = child;
    }
    trie.terminals.emplace_back(qi, node);
    trie.trigger_index[types.back()].push_back(qi);
  }
  // Update indexes: nodes per type, descending depth.
  for (Trie& trie : tries_) {
    for (size_t n = 0; n < trie.nodes.size(); ++n) {
      trie.update_index[trie.nodes[n].type].push_back(n);
    }
    for (auto& [type, nodes] : trie.update_index) {
      std::sort(nodes.begin(), nodes.end(), [&](size_t a, size_t b) {
        return trie.nodes[a].depth > trie.nodes[b].depth;
      });
    }
  }
  return Status::OK();
}

size_t PreTreeEngine::num_trie_nodes() const {
  size_t total = 0;
  for (const Trie& trie : tries_) total += trie.nodes.size();
  return total;
}

void PreTreeEngine::Purge(Timestamp now) {
  Timestamp min_exp = std::numeric_limits<Timestamp>::max();
  for (Trie& trie : tries_) {
    // Expire START instances (fronts expire first: arrival order).
    while (!trie.instances.empty() && trie.instances.front().exp <= now) {
      trie.instances.pop_front();
      stats_.objects.Remove(1);
    }
    if (!trie.instances.empty()) {
      min_exp = std::min(min_exp, trie.instances.front().exp);
    }
  }
  next_expiry_ = min_exp;
}

void PreTreeEngine::OnEvent(const Event& e, std::vector<MultiOutput>* out) {
  Purge(e.ts());
  ProcessEvent(e, out);
  // New instances expire at e.ts() + window; keep the bound valid.
  next_expiry_ = std::min(next_expiry_, e.ts() + window_ms_);
}

void PreTreeEngine::OnBatch(std::span<const Event> batch,
                            std::vector<MultiOutput>* out) {
  if (batch.empty()) return;
  for (const Event& e : batch) {
    if (e.ts() >= next_expiry_) Purge(e.ts());
    ProcessEvent(e, out);
    next_expiry_ = std::min(next_expiry_, e.ts() + window_ms_);
  }
  stats_.NoteBatch(batch.size());
}

void PreTreeEngine::ProcessEvent(const Event& e,
                                 std::vector<MultiOutput>* out) {
  ++stats_.events_processed;
  // Type-level early-out via the compiled programs: a type outside every
  // query's pattern is UPD/START/TRIG for no trie.
  if (e.type() >= type_relevant_.size() || !type_relevant_[e.type()]) return;
  for (Trie& trie : tries_) {
    // UPD: one update per shared node per live instance, deepest first.
    auto uit = trie.update_index.find(e.type());
    if (uit != trie.update_index.end()) {
      for (size_t n : uit->second) {
        const Node& node = trie.nodes[n];
        for (Instance& inst : trie.instances) {
          inst.counts[n] +=
              node.parent < 0 ? 1 : inst.counts[node.parent];
        }
        stats_.work_units += trie.instances.size();
      }
    }
    // START: new per-instance counter tree.
    if (e.type() == trie.start_type) {
      Instance inst;
      inst.exp = e.ts() + window_ms_;
      inst.counts.assign(trie.nodes.size(), 0);
      trie.instances.push_back(std::move(inst));
      stats_.objects.Add(1);
      ++stats_.work_units;
    }
    // TRIG: report every query whose pattern completes with this type.
    auto tit = trie.trigger_index.find(e.type());
    if (tit != trie.trigger_index.end()) {
      for (size_t qi : tit->second) {
        int terminal = -1;
        for (const auto& [q, node] : trie.terminals) {
          if (q == qi) {
            terminal = node;
            break;
          }
        }
        uint64_t total = 0;
        for (const Instance& inst : trie.instances) {
          total += terminal < 0 ? 1 : inst.counts[terminal];
        }
        MultiOutput mo;
        mo.query_index = qi;
        mo.output.ts = e.ts();
        mo.output.seq = e.seq();
        mo.output.value = Value(static_cast<int64_t>(total));
        out->push_back(std::move(mo));
        ++stats_.outputs;
      }
    }
  }
}

Status PreTreeEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  writer->WriteI64(next_expiry_);
  writer->WriteU64(tries_.size());
  for (const Trie& trie : tries_) {
    writer->WriteU64(trie.instances.size());
    for (const Instance& inst : trie.instances) {
      writer->WriteI64(inst.exp);
      for (uint64_t count : inst.counts) writer->WriteU64(count);
    }
  }
  return Status::OK();
}

Status PreTreeEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  ASEQ_RETURN_NOT_OK(reader->ReadI64(&next_expiry_, "pretree next expiry"));
  uint64_t n_tries = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_tries, 8, "tries"));
  if (n_tries != tries_.size()) {
    return Status::ParseError("snapshot corrupt: " + std::to_string(n_tries) +
                              " tries but the workload builds " +
                              std::to_string(tries_.size()));
  }
  for (Trie& trie : tries_) {
    trie.instances.clear();
    uint64_t n_instances = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_instances, 8, "trie instances"));
    for (uint64_t i = 0; i < n_instances; ++i) {
      Instance inst;
      ASEQ_RETURN_NOT_OK(reader->ReadI64(&inst.exp, "instance expiry"));
      inst.counts.resize(trie.nodes.size());
      for (uint64_t& count : inst.counts) {
        ASEQ_RETURN_NOT_OK(reader->ReadU64(&count, "instance count"));
      }
      trie.instances.push_back(std::move(inst));
    }
  }
  stats_ = stats;
  return Status::OK();
}

}  // namespace aseq
