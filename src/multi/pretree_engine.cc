#include "multi/pretree_engine.h"

#include <algorithm>
#include <cassert>

#include "ckpt/ckpt.h"

namespace aseq {

namespace {

/// Empty dispatch row for types beyond a dense index's range.
const std::vector<size_t> kNoEntries;

}  // namespace

PreTreeEngine::PreTreeEngine(std::vector<CompiledQuery> queries)
    : queries_(std::move(queries)) {
  for (const CompiledQuery& q : queries_) {
    plan::AdmissionProgram program(q);
    for (EventTypeId t : q.positive_types()) {
      if (t >= type_relevant_.size()) type_relevant_.resize(t + 1, 0);
      if (program.Relevant(t)) type_relevant_[t] = 1;
    }
    programs_.push_back(std::move(program));
  }
}

Result<std::unique_ptr<PreTreeEngine>> PreTreeEngine::Create(
    std::vector<CompiledQuery> queries) {
  if (queries.empty()) {
    return Status::InvalidArgument("PreTree needs at least one query");
  }
  Timestamp window = queries[0].window_ms();
  const bool grouped = queries[0].partitioned();
  for (const CompiledQuery& q : queries) {
    if (q.agg().func != AggFunc::kCount || q.has_join_predicates() ||
        q.pattern().has_negation()) {
      return Status::Unsupported(
          "PreTree sharing supports COUNT over positive-only patterns: " +
          q.ToString());
    }
    if (q.partitioned() != grouped) {
      return Status::Unsupported(
          "PreTree workloads must be uniformly grouped or ungrouped: " +
          q.ToString());
    }
    if (grouped) {
      // See ChopConnectEngine::Create: the one partitioning shape the
      // shared state decomposes under.
      const PartitionSpec& spec = q.partition_spec();
      if (!spec.per_group_output || spec.parts.size() != 1 ||
          spec.group_part != 0 ||
          spec.parts[0].attr != queries[0].partition_spec().parts[0].attr) {
        return Status::Unsupported(
            "PreTree sharing supports partitioning only as GROUP BY one "
            "attribute shared by every workload query: " +
            q.ToString());
      }
    }
    for (const auto& preds : q.local_predicates()) {
      if (!preds.empty()) {
        return Status::Unsupported("PreTree sharing does not support WHERE: " +
                                   q.ToString());
      }
    }
    if (q.window_ms() != window || window <= 0) {
      return Status::InvalidArgument(
          "PreTree workload queries must share one positive window");
    }
  }
  std::unique_ptr<PreTreeEngine> engine(new PreTreeEngine(std::move(queries)));
  engine->window_ms_ = window;
  engine->grouped_ = grouped;
  if (grouped) {
    engine->group_attr_ = engine->queries_[0].partition_spec().parts[0].attr;
  }
  ASEQ_RETURN_NOT_OK(engine->Build());
  return engine;
}

Status PreTreeEngine::Build() {
  auto trie_slot = [this](EventTypeId t) -> uint32_t& {
    if (t >= trie_by_start_.size()) trie_by_start_.resize(t + 1, kNoTrie);
    return trie_by_start_[t];
  };
  query_trie_.assign(queries_.size(), 0);
  query_terminal_.assign(queries_.size(), -1);
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const std::vector<EventTypeId>& types = queries_[qi].positive_types();
    // Trie for this START type.
    uint32_t& slot = trie_slot(types[0]);
    if (slot == kNoTrie) {
      slot = static_cast<uint32_t>(tries_.size());
      tries_.push_back(Trie{});
      tries_.back().start_type = types[0];
    }
    Trie& trie = tries_[slot];
    // Walk/extend the path for types[1..].
    int node = -1;  // the START itself
    for (size_t d = 1; d < types.size(); ++d) {
      int child = -1;
      for (size_t n = 0; n < trie.nodes.size(); ++n) {
        if (trie.nodes[n].parent == node && trie.nodes[n].type == types[d]) {
          child = static_cast<int>(n);
          break;
        }
      }
      if (child < 0) {
        child = static_cast<int>(trie.nodes.size());
        trie.nodes.push_back(Node{types[d], node, d});
      }
      node = child;
    }
    trie.terminals.emplace_back(qi, node);
    query_trie_[qi] = slot;
    query_terminal_[qi] = node;
    const EventTypeId last = types.back();
    if (last >= trie.trigger_index.size()) trie.trigger_index.resize(last + 1);
    trie.trigger_index[last].push_back(qi);
  }
  // Update indexes: nodes per type (dense), descending depth.
  for (Trie& trie : tries_) {
    for (size_t n = 0; n < trie.nodes.size(); ++n) {
      const EventTypeId t = trie.nodes[n].type;
      if (t >= trie.update_index.size()) trie.update_index.resize(t + 1);
      trie.update_index[t].push_back(n);
    }
    for (auto& nodes : trie.update_index) {
      std::sort(nodes.begin(), nodes.end(), [&](size_t a, size_t b) {
        return trie.nodes[a].depth > trie.nodes[b].depth;
      });
    }
  }
  dyn_.resize(tries_.size());
  return Status::OK();
}

size_t PreTreeEngine::num_trie_nodes() const {
  size_t total = 0;
  for (const Trie& trie : tries_) total += trie.nodes.size();
  return total;
}

void PreTreeEngine::PurgeTrie(TrieState* st, Timestamp now) {
  // Expire START instances (fronts expire first: arrival order).
  while (!st->empty() && st->front().exp <= now) {
    st->pop_front();
    stats_.objects.Remove(1);
  }
}

void PreTreeEngine::Purge(Timestamp now) {
  Timestamp min_exp = std::numeric_limits<Timestamp>::max();
  for (TrieState& st : dyn_) {
    PurgeTrie(&st, now);
    if (!st.empty()) {
      min_exp = std::min(min_exp, st.front().exp);
    }
  }
  next_expiry_ = min_exp;
}

Timestamp PreTreeEngine::PartNextExpiry(const PartState& part) const {
  Timestamp min_exp = state::WindowClock::kNever;
  for (const TrieState& st : part.tries) {
    if (!st.empty()) {
      min_exp = std::min(min_exp, st.front().exp);
    }
  }
  return min_exp;
}

void PreTreeEngine::AdvanceClock(Timestamp now) {
  clock_.AdvanceTo(
      now, [&](const state::WindowClock::Entry& top) -> Timestamp {
        const uint32_t slot = part_store_.Lookup(top.hash, top.key);
        if (slot == state::kNoSlot) return state::WindowClock::kNever;
        PartState& part = part_store_.at(slot);
        for (TrieState& st : part.tries) PurgeTrie(&st, now);
        const Timestamp next = PartNextExpiry(part);
        if (next == state::WindowClock::kNever) {
          part_store_.Erase(slot);
          return state::WindowClock::kNever;
        }
        return next;
      });
}

void PreTreeEngine::OnEvent(const Event& e, std::vector<MultiOutput>* out) {
  if (grouped_) {
    ProcessGroupedEvent(e, out);
    return;
  }
  Purge(e.ts());
  ProcessEvent(e, out);
  // New instances expire at e.ts() + window; keep the bound valid.
  next_expiry_ = std::min(next_expiry_, e.ts() + window_ms_);
}

void PreTreeEngine::OnBatch(std::span<const Event> batch,
                            std::vector<MultiOutput>* out) {
  if (batch.empty()) return;
  if (grouped_) {
    // Purging is partition-local (no global sweep to hoist); the clock
    // already makes trigger-time expiry amortized O(expired instances).
    for (const Event& e : batch) ProcessGroupedEvent(e, out);
    stats_.NoteBatch(batch.size());
    return;
  }
  for (const Event& e : batch) {
    if (e.ts() >= next_expiry_) Purge(e.ts());
    ProcessEvent(e, out);
    next_expiry_ = std::min(next_expiry_, e.ts() + window_ms_);
  }
  stats_.NoteBatch(batch.size());
}

void PreTreeEngine::ApplyUpdates(const Event& e, std::vector<TrieState>& dyn) {
  for (size_t t = 0; t < tries_.size(); ++t) {
    Trie& trie = tries_[t];
    TrieState& st = dyn[t];
    // UPD: one update per shared node per live instance, deepest first.
    const std::vector<size_t>& upd = e.type() < trie.update_index.size()
                                         ? trie.update_index[e.type()]
                                         : kNoEntries;
    for (size_t n : upd) {
      const Node& node = trie.nodes[n];
      for (Instance& inst : st) {
        inst.counts[n] += node.parent < 0 ? 1 : inst.counts[node.parent];
      }
      stats_.work_units += st.size();
    }
    // START: new per-instance counter tree.
    if (e.type() == trie.start_type) {
      Instance inst;
      inst.exp = e.ts() + window_ms_;
      inst.counts.assign(trie.nodes.size(), 0);
      st.push_back(std::move(inst));
      stats_.objects.Add(1);
      ++stats_.work_units;
    }
  }
}

uint64_t PreTreeEngine::QueryTotal(size_t qi,
                                   const std::vector<TrieState>& dyn) const {
  const int terminal = query_terminal_[qi];
  const TrieState& st = dyn[query_trie_[qi]];
  uint64_t total = 0;
  for (const Instance& inst : st) {
    total += terminal < 0 ? 1 : inst.counts[terminal];
  }
  return total;
}

void PreTreeEngine::ProcessEvent(const Event& e,
                                 std::vector<MultiOutput>* out) {
  ++stats_.events_processed;
  // Type-level early-out via the compiled programs: a type outside every
  // query's pattern is UPD/START/TRIG for no trie.
  if (e.type() >= type_relevant_.size() || !type_relevant_[e.type()]) return;

  ApplyUpdates(e, dyn_);

  // TRIG: report every query whose pattern completes with this type, in
  // trie order (matching UPD/START application order).
  for (size_t t = 0; t < tries_.size(); ++t) {
    const Trie& trie = tries_[t];
    const std::vector<size_t>& trigs = e.type() < trie.trigger_index.size()
                                           ? trie.trigger_index[e.type()]
                                           : kNoEntries;
    for (size_t qi : trigs) {
      MultiOutput mo;
      mo.query_index = qi;
      mo.output.ts = e.ts();
      mo.output.seq = e.seq();
      mo.output.value = Value(static_cast<int64_t>(QueryTotal(qi, dyn_)));
      out->push_back(std::move(mo));
      ++stats_.outputs;
    }
  }
}

void PreTreeEngine::ProcessGroupedEvent(const Event& e,
                                        std::vector<MultiOutput>* out) {
  ++stats_.events_processed;
  if (e.type() >= type_relevant_.size() || !type_relevant_[e.type()]) return;
  // Route by the shared GROUP BY attribute; an event without it matches no
  // sequence of any query (the group part covers every element).
  const Value* gv = e.FindAttr(group_attr_);
  if (gv == nullptr) return;
  const uint32_t gid = part_store_.interner().Intern(*gv);
  container::InternedKey key;
  key.ids[0] = gid;
  const uint64_t hash = container::InternedKeyHash{}(key);

  // Only a START type materializes an absent partition (mirroring
  // HpcEngine, where only START roles create partitions).
  const bool creates =
      e.type() < trie_by_start_.size() && trie_by_start_[e.type()] != kNoTrie;

  uint32_t slot = part_store_.Lookup(hash, key);
  if (slot == state::kNoSlot && creates) {
    auto [slot_ref, inserted] = part_store_.Upsert(hash, key);
    *slot_ref = part_store_.Emplace(key, hash, tries_.size());
    slot = *slot_ref;
  }
  if (slot != state::kNoSlot) {
    PartState& part = part_store_.at(slot);
    // HPC-style partition-local purge: only the partition this event's key
    // owns is purged here; the rest purge lazily at trigger time via the
    // clock.
    for (TrieState& st : part.tries) PurgeTrie(&st, e.ts());
    const bool was_empty = PartNextExpiry(part) == state::WindowClock::kNever;
    ApplyUpdates(e, part.tries);
    // An instance landing in an empty partition establishes a new earliest
    // expiration; put it on the clock *before* any trigger advance below
    // (non-empty partitions already have a clock entry at or before their
    // true next expiry — the clock invariant).
    if (was_empty) clock_.Schedule(PartNextExpiry(part), hash, key);
  }

  // Grouped trigger: the serial engine purges *every* partition here (the
  // clock makes that amortized O(expired instances)), then reports from
  // the trigger's own group alone. The advance can erase partitions —
  // this event's included, if it left its group empty — so the scope is
  // re-resolved afterwards (absent partition counts zero).
  bool any_trigger = false;
  for (const Trie& trie : tries_) {
    if (e.type() < trie.trigger_index.size() &&
        !trie.trigger_index[e.type()].empty()) {
      any_trigger = true;
    }
  }
  if (!any_trigger) return;
  AdvanceClock(e.ts());
  slot = part_store_.Lookup(hash, key);
  PartState* part = slot == state::kNoSlot ? nullptr : &part_store_.at(slot);
  for (const Trie& trie : tries_) {
    const std::vector<size_t>& trigs = e.type() < trie.trigger_index.size()
                                           ? trie.trigger_index[e.type()]
                                           : kNoEntries;
    for (size_t qi : trigs) {
      const uint64_t total =
          part == nullptr ? 0 : QueryTotal(qi, part->tries);
      MultiOutput mo;
      mo.query_index = qi;
      mo.output.ts = e.ts();
      mo.output.seq = e.seq();
      mo.output.group = part_store_.interner().ValueOf(gid);
      mo.output.value = Value(static_cast<int64_t>(total));
      out->push_back(std::move(mo));
      ++stats_.outputs;
    }
  }
}

std::vector<MultiOutput> PreTreeEngine::Poll(Timestamp now) {
  std::vector<MultiOutput> outputs;
  if (!grouped_) {
    Purge(now);
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      MultiOutput mo;
      mo.query_index = qi;
      mo.output.ts = now;
      mo.output.value = Value(static_cast<int64_t>(QueryTotal(qi, dyn_)));
      outputs.push_back(std::move(mo));
    }
    return outputs;
  }
  // Grouped: purge everything due, then report per query per live group in
  // slab-slot order — a pure function of engine state, so a restored (or
  // shard-merged) engine polls identically.
  AdvanceClock(now);
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    for (uint32_t s = 0; s < part_store_.end(); ++s) {
      if (!part_store_.live(s)) continue;
      const PartState& part = part_store_.at(s);
      MultiOutput mo;
      mo.query_index = qi;
      mo.output.ts = now;
      mo.output.group = part_store_.interner().ValueOf(part.key.ids[0]);
      mo.output.value = Value(static_cast<int64_t>(QueryTotal(qi, part.tries)));
      outputs.push_back(std::move(mo));
    }
  }
  return outputs;
}

void PreTreeEngine::SyncPurgeTo(Timestamp now,
                                std::span<const size_t> trigger_queries) {
  // Every triggered query shares this engine's one clock, so which of them
  // triggered is immaterial — the purge happens once.
  (void)trigger_queries;
  if (!grouped_) return;
  AdvanceClock(now);
}

void PreTreeEngine::CheckpointTrieState(const TrieState& st,
                                        ckpt::Writer* writer) const {
  writer->WriteU64(st.size());
  for (const Instance& inst : st) {
    writer->WriteI64(inst.exp);
    for (uint64_t count : inst.counts) writer->WriteU64(count);
  }
}

Status PreTreeEngine::RestoreTrieState(TrieState* st, const Trie& trie,
                                       ckpt::Reader* reader) const {
  st->clear();
  uint64_t n_instances = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_instances, 8, "trie instances"));
  for (uint64_t i = 0; i < n_instances; ++i) {
    Instance inst;
    ASEQ_RETURN_NOT_OK(reader->ReadI64(&inst.exp, "instance expiry"));
    inst.counts.resize(trie.nodes.size());
    for (uint64_t& count : inst.counts) {
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&count, "instance count"));
    }
    st->push_back(std::move(inst));
  }
  return Status::OK();
}

Status PreTreeEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  writer->WriteI64(next_expiry_);
  if (grouped_) {
    // Structural spine via the store; each partition's payload is its
    // per-trie instance state in trie order. The clock rides verbatim.
    ASEQ_RETURN_NOT_OK(part_store_.Checkpoint(
        writer, [this](const PartState& part, ckpt::Writer* w) -> Status {
          for (const TrieState& st : part.tries) CheckpointTrieState(st, w);
          return Status::OK();
        }));
    clock_.Checkpoint(writer);
    return Status::OK();
  }
  writer->WriteU64(dyn_.size());
  for (const TrieState& st : dyn_) CheckpointTrieState(st, writer);
  return Status::OK();
}

Status PreTreeEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  ASEQ_RETURN_NOT_OK(reader->ReadI64(&next_expiry_, "pretree next expiry"));
  if (grouped_) {
    ASEQ_RETURN_NOT_OK(part_store_.Restore(
        reader, [&](uint32_t slot, const container::InternedKey& key,
                    uint64_t hash, ckpt::Reader* r) -> Status {
          PartState& part =
              part_store_.RestoreEmplaceAt(slot, key, hash, tries_.size());
          for (size_t t = 0; t < tries_.size(); ++t) {
            ASEQ_RETURN_NOT_OK(RestoreTrieState(&part.tries[t], tries_[t], r));
          }
          return Status::OK();
        }));
    ASEQ_RETURN_NOT_OK(clock_.Restore(reader, part_store_.interner().size()));
    stats_ = stats;
    return Status::OK();
  }
  uint64_t n_tries = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_tries, 8, "tries"));
  if (n_tries != tries_.size()) {
    return Status::ParseError("snapshot corrupt: " + std::to_string(n_tries) +
                              " tries but the workload builds " +
                              std::to_string(tries_.size()));
  }
  for (size_t t = 0; t < tries_.size(); ++t) {
    ASEQ_RETURN_NOT_OK(RestoreTrieState(&dyn_[t], tries_[t], reader));
  }
  stats_ = stats;
  return Status::OK();
}

}  // namespace aseq
