#include "multi/hybrid_engine.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

#include "aseq/aseq_engine.h"
#include "ckpt/ckpt.h"
#include "baseline/stack_engine.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"

namespace aseq {

namespace {

/// The one partitioning shape the sharing engines support: GROUP BY one
/// attribute. Returns it, or kInvalidAttr when the query is ungrouped.
AttrId ShareableGroupAttr(const CompiledQuery& q) {
  if (!q.partitioned()) return kInvalidAttr;
  const PartitionSpec& spec = q.partition_spec();
  return spec.per_group_output && spec.parts.size() == 1 &&
                 spec.group_part == 0
             ? spec.parts[0].attr
             : kInvalidAttr;
}

/// Eligible for the COUNT-sharing engines (PreTree / Chop-Connect)?
bool Shareable(const CompiledQuery& q) {
  if (q.agg().func != AggFunc::kCount || q.has_join_predicates() ||
      q.pattern().has_negation() || q.window_ms() <= 0) {
    return false;
  }
  if (q.partitioned() && ShareableGroupAttr(q) == kInvalidAttr) return false;
  for (const auto& preds : q.local_predicates()) {
    if (!preds.empty()) return false;
  }
  // Chop-Connect also needs distinct types per pattern; route duplicates
  // to per-query engines to keep one eligibility rule.
  const auto& types = q.positive_types();
  for (size_t i = 0; i < types.size(); ++i) {
    for (size_t j = i + 1; j < types.size(); ++j) {
      if (types[i] == types[j]) return false;
    }
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<HybridMultiEngine>> HybridMultiEngine::Create(
    std::vector<CompiledQuery> queries) {
  if (queries.empty()) {
    return Status::InvalidArgument("hybrid engine needs at least one query");
  }
  std::unique_ptr<HybridMultiEngine> engine(new HybridMultiEngine());
  engine->routing_.resize(queries.size());

  // --- Stage 1: shareable queries, grouped by (window, group attribute) ---
  // (the sharing engines require one common window and uniform grouping).
  std::map<std::pair<Timestamp, AttrId>, std::vector<size_t>> by_window;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (Shareable(queries[qi])) {
      by_window[{queries[qi].window_ms(), ShareableGroupAttr(queries[qi])}]
          .push_back(qi);
    }
  }
  for (auto& [window_key, members] : by_window) {
    const Timestamp window = window_key.first;
    // Queries sharing a START type with a sibling go to one PreTree.
    std::map<EventTypeId, std::vector<size_t>> by_start;
    for (size_t qi : members) {
      by_start[queries[qi].positive_types()[0]].push_back(qi);
    }
    std::vector<size_t> pretree_set, rest;
    for (auto& [start, group] : by_start) {
      auto& dest = group.size() >= 2 ? pretree_set : rest;
      dest.insert(dest.end(), group.begin(), group.end());
    }
    if (!pretree_set.empty()) {
      std::vector<CompiledQuery> subset;
      for (size_t qi : pretree_set) subset.push_back(queries[qi]);
      ASEQ_ASSIGN_OR_RETURN(auto pretree,
                            PreTreeEngine::Create(std::move(subset)));
      for (size_t qi : pretree_set) {
        engine->routing_[qi] = "PreTree(win=" + std::to_string(window) + ")";
      }
      engine->multi_parts_.push_back(
          MultiPart{std::move(pretree), std::move(pretree_set)});
    }
    if (rest.empty()) continue;
    // Chop-Connect over the remainder when the planner finds sharing.
    std::vector<CompiledQuery> subset;
    for (size_t qi : rest) subset.push_back(queries[qi]);
    ChopPlan plan = PlanChopConnect(subset);
    bool any_sharing = false;
    for (const auto& segs : plan.query_segments) {
      if (segs.size() > 1) any_sharing = true;
    }
    if (any_sharing && rest.size() >= 2) {
      ASEQ_ASSIGN_OR_RETURN(
          auto cc, ChopConnectEngine::Create(std::move(subset), plan));
      for (size_t qi : rest) {
        engine->routing_[qi] =
            "ChopConnect(win=" + std::to_string(window) + ")";
      }
      engine->multi_parts_.push_back(MultiPart{std::move(cc), std::move(rest)});
    } else {
      for (size_t qi : rest) {
        ASEQ_ASSIGN_OR_RETURN(auto single, CreateAseqEngine(queries[qi]));
        engine->routing_[qi] = single->name();
        engine->single_parts_.push_back(SinglePart{std::move(single), qi});
      }
    }
  }

  // --- Stage 2/3: everything not routed yet. -------------------------------
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (!engine->routing_[qi].empty()) continue;
    if (queries[qi].has_join_predicates()) {
      engine->routing_[qi] = "StackBased(join predicates)";
      engine->single_parts_.push_back(
          SinglePart{std::make_unique<StackEngine>(queries[qi]), qi});
      continue;
    }
    ASEQ_ASSIGN_OR_RETURN(auto single, CreateAseqEngine(queries[qi]));
    engine->routing_[qi] = single->name();
    engine->single_parts_.push_back(SinglePart{std::move(single), qi});
  }
  return engine;
}

void HybridMultiEngine::ProcessEvent(const Event& e,
                                     std::vector<MultiOutput>* out) {
  ++stats_.events_processed;
  int64_t objects = 0;
  for (MultiPart& part : multi_parts_) {
    multi_scratch_.clear();
    part.engine->OnEvent(e, &multi_scratch_);
    for (MultiOutput& mo : multi_scratch_) {
      mo.query_index = part.global_index[mo.query_index];
      out->push_back(std::move(mo));
      ++stats_.outputs;
    }
    objects += part.engine->stats().objects.current();
  }
  for (SinglePart& part : single_parts_) {
    single_scratch_.clear();
    part.engine->OnEvent(e, &single_scratch_);
    for (Output& output : single_scratch_) {
      MultiOutput mo;
      mo.query_index = part.global_index;
      mo.output = std::move(output);
      out->push_back(std::move(mo));
      ++stats_.outputs;
    }
    objects += part.engine->stats().objects.current();
  }
  stats_.objects.Add(objects - last_objects_);
  last_objects_ = objects;
}

void HybridMultiEngine::SumWorkUnits() {
  uint64_t work = 0;
  stats_.adm_admitted = 0;
  stats_.adm_rejected_local = 0;
  stats_.adm_missing_attr = 0;
  stats_.adm_generic_cmps = 0;
  auto accrue = [this](const EngineStats& s) {
    stats_.adm_admitted += s.adm_admitted;
    stats_.adm_rejected_local += s.adm_rejected_local;
    stats_.adm_missing_attr += s.adm_missing_attr;
    stats_.adm_generic_cmps += s.adm_generic_cmps;
  };
  for (const MultiPart& part : multi_parts_) {
    work += part.engine->stats().work_units;
    accrue(part.engine->stats());
  }
  for (const SinglePart& part : single_parts_) {
    work += part.engine->stats().work_units;
    accrue(part.engine->stats());
  }
  stats_.work_units = work;
}

void HybridMultiEngine::OnEvent(const Event& e, std::vector<MultiOutput>* out) {
  ProcessEvent(e, out);
  SumWorkUnits();
}

void HybridMultiEngine::OnBatch(std::span<const Event> batch,
                                std::vector<MultiOutput>* out) {
  if (batch.empty()) return;
  // Sub-engines see events one at a time: the combined live-object peak is
  // sampled after every event and outputs interleave across parts per
  // arrival. Only the work-unit summation is hoisted to batch end (the
  // intermediate sums are unobservable; the final value is identical).
  for (const Event& e : batch) ProcessEvent(e, out);
  SumWorkUnits();
  stats_.NoteBatch(batch.size());
}

std::vector<MultiOutput> HybridMultiEngine::Poll(Timestamp now) {
  std::vector<MultiOutput> outputs;
  for (MultiPart& part : multi_parts_) {
    for (MultiOutput& mo : part.engine->Poll(now)) {
      mo.query_index = part.global_index[mo.query_index];
      outputs.push_back(std::move(mo));
    }
  }
  for (SinglePart& part : single_parts_) {
    for (Output& output : part.engine->Poll(now)) {
      MultiOutput mo;
      mo.query_index = part.global_index;
      mo.output = std::move(output);
      outputs.push_back(std::move(mo));
    }
  }
  // Parts emit in routing order; the contract is workload-query order
  // (stable, so per-query group order is preserved).
  std::stable_sort(outputs.begin(), outputs.end(),
                   [](const MultiOutput& a, const MultiOutput& b) {
                     return a.query_index < b.query_index;
                   });
  return outputs;
}

bool HybridMultiEngine::shardable() const {
  if (multi_parts_.empty() && single_parts_.empty()) return false;
  for (const MultiPart& part : multi_parts_) {
    const auto* shardable =
        dynamic_cast<const MultiShardableEngine*>(part.engine.get());
    if (shardable == nullptr || !shardable->shardable()) return false;
  }
  for (const SinglePart& part : single_parts_) {
    if (dynamic_cast<const ShardableEngine*>(part.engine.get()) == nullptr) {
      return false;
    }
  }
  return true;
}

void HybridMultiEngine::SyncPurgeTo(Timestamp now,
                                    std::span<const size_t> trigger_queries) {
  // Forward to exactly the parts owning triggered queries, translating
  // workload indexes to part-local ones (trigger_queries is ascending, so
  // binary_search decides membership).
  auto triggered = [&](size_t global) {
    return std::binary_search(trigger_queries.begin(), trigger_queries.end(),
                              global);
  };
  std::vector<size_t> local;
  for (MultiPart& part : multi_parts_) {
    local.clear();
    for (size_t li = 0; li < part.global_index.size(); ++li) {
      if (triggered(part.global_index[li])) local.push_back(li);
    }
    if (local.empty()) continue;
    auto* shardable = dynamic_cast<MultiShardableEngine*>(part.engine.get());
    assert(shardable != nullptr);
    shardable->SyncPurgeTo(now, local);
  }
  for (SinglePart& part : single_parts_) {
    if (!triggered(part.global_index)) continue;
    auto* shardable = dynamic_cast<ShardableEngine*>(part.engine.get());
    assert(shardable != nullptr);
    shardable->SyncPurgeTo(now);
  }
  // Resample the combined live-object total (purges only remove, so the
  // peak of the sum is unperturbed).
  int64_t objects = 0;
  for (const MultiPart& part : multi_parts_) {
    objects += part.engine->stats().objects.current();
  }
  for (const SinglePart& part : single_parts_) {
    objects += part.engine->stats().objects.current();
  }
  stats_.objects.Add(objects - last_objects_);
  last_objects_ = objects;
}

Status HybridMultiEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  writer->WriteI64(last_objects_);
  writer->WriteU64(multi_parts_.size());
  for (const MultiPart& part : multi_parts_) {
    ASEQ_RETURN_NOT_OK(part.engine->Checkpoint(writer));
  }
  writer->WriteU64(single_parts_.size());
  for (const SinglePart& part : single_parts_) {
    ASEQ_RETURN_NOT_OK(part.engine->Checkpoint(writer));
  }
  return Status::OK();
}

Status HybridMultiEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  ASEQ_RETURN_NOT_OK(reader->ReadI64(&last_objects_, "last objects"));
  uint64_t n_multi = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_multi, 8, "multi parts"));
  if (n_multi != multi_parts_.size()) {
    return Status::ParseError(
        "snapshot corrupt: " + std::to_string(n_multi) +
        " multi parts but routing built " + std::to_string(multi_parts_.size()));
  }
  for (MultiPart& part : multi_parts_) {
    ASEQ_RETURN_NOT_OK(part.engine->Restore(reader));
  }
  uint64_t n_single = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_single, 8, "single parts"));
  if (n_single != single_parts_.size()) {
    return Status::ParseError(
        "snapshot corrupt: " + std::to_string(n_single) +
        " single parts but routing built " +
        std::to_string(single_parts_.size()));
  }
  for (SinglePart& part : single_parts_) {
    ASEQ_RETURN_NOT_OK(part.engine->Restore(reader));
  }
  stats_ = stats;
  return Status::OK();
}

}  // namespace aseq
