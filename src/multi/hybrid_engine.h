#ifndef ASEQ_MULTI_HYBRID_ENGINE_H_
#define ASEQ_MULTI_HYBRID_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief Workload router: executes an arbitrary mix of queries with the
/// best applicable strategy per query.
///
/// The paper presents prefix sharing (Sec. 4.1) and Chop-Connect (Sec. 4.2)
/// as tools a multi-query optimizer deploys; this engine is that optimizer's
/// executable form for whole workloads:
///
///  1. queries eligible for sharing (COUNT, positive-only, no predicates,
///     windowed; ungrouped or GROUP BY one attribute) are grouped by
///     (window, group attribute) — the sharing engines require uniform
///     grouping;
///     * within such a group, queries that share their START type with
///       at least one other query run in a **PreTree** engine;
///     * the rest of the group runs **Chop-Connect** under the greedy
///       substring plan when it finds sharing, else unshared A-Seq;
///  2. remaining A-Seq-able queries (negation, predicates, multi-attribute
///     partitioning, SUM/AVG/MIN/MAX, unbounded windows) run one A-Seq
///     engine each;
///  3. queries with general join predicates fall back to the stack-based
///     baseline (the only engine that can evaluate them).
///
/// Admission flows through the sub-engines: each wrapped engine runs its
/// own compiled plan::AdmissionProgram (typed predicate opcodes + dense
/// role dispatch), and the shared engines use the programs' type-relevance
/// test as their event-level early-out.
///
/// Output `query_index`es always refer to the original workload order.
///
/// Shardability is delegated: the hybrid shards iff every routed part does
/// (multi parts via MultiShardableEngine::shardable, single parts via the
/// ShardableEngine cast), and a purge marker forwards to exactly the parts
/// owning triggered queries — mirroring which parts the serial hybrid
/// would have purged at that trigger.
class HybridMultiEngine : public MultiQueryEngine,
                          public MultiShardableEngine {
 public:
  static Result<std::unique_ptr<HybridMultiEngine>> Create(
      std::vector<CompiledQuery> queries);

  void OnEvent(const Event& e, std::vector<MultiOutput>* out) override;
  /// Batched path. Parts still see events one at a time (see
  /// NonSharedEngine::OnBatch — the combined object peak is sampled per
  /// event); only the work-unit summation is hoisted per batch.
  void OnBatch(std::span<const Event> batch,
               std::vector<MultiOutput>* out) override;
  /// Polls every part and orders the results by workload query index.
  std::vector<MultiOutput> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  /// Serializes the wrapper's own accounting plus every part's payload
  /// (multi parts, then single parts, in Create()'s deterministic order).
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override { return "Hybrid"; }

  /// Human-readable routing decisions ("Q1 -> PreTree", ...), one per
  /// workload query, in workload order.
  const std::vector<std::string>& routing() const { return routing_; }

  /// MultiShardableEngine: shards iff every routed part does.
  bool shardable() const override;
  void SyncPurgeTo(Timestamp now,
                   std::span<const size_t> trigger_queries) override;
  /// The wrapper samples the combined member-engine total once per event.
  bool objects_sampled_at_boundaries() const override { return true; }
  EngineStats* shard_mutable_stats() override { return &stats_; }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  /// A sub-engine handling a subset of the workload; `global_index` maps
  /// its local query indexes back to workload positions.
  struct MultiPart {
    std::unique_ptr<MultiQueryEngine> engine;
    std::vector<size_t> global_index;
  };
  struct SinglePart {
    std::unique_ptr<QueryEngine> engine;
    size_t global_index;
  };

  HybridMultiEngine() = default;

  /// Feeds one event to every part and samples the combined live-object
  /// total (work-unit summation deferred to SumWorkUnits).
  void ProcessEvent(const Event& e, std::vector<MultiOutput>* out);
  /// Refreshes stats_.work_units and the adm_* admission counters from
  /// all parts.
  void SumWorkUnits();

  std::vector<MultiPart> multi_parts_;
  std::vector<SinglePart> single_parts_;
  std::vector<std::string> routing_;
  EngineStats stats_;
  int64_t last_objects_ = 0;
  std::vector<MultiOutput> multi_scratch_;
  std::vector<Output> single_scratch_;
};

}  // namespace aseq

#endif  // ASEQ_MULTI_HYBRID_ENGINE_H_
