#ifndef ASEQ_MULTI_PRETREE_ENGINE_H_
#define ASEQ_MULTI_PRETREE_ENGINE_H_

#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "plan/admission.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief Prefix-sharing multi-query A-Seq via the PreTree (Sec. 4.1 /
/// Fig. 9).
///
/// The workload's patterns are organized into tries keyed by their START
/// type: each trie node represents one prefix pattern, shared by every
/// query whose pattern extends through it. Per live START instance one
/// *tree of counters* replaces the per-query PreCntrs; an arriving UPD
/// instance updates each shared node once — "A-Seq shares the computation
/// on the common prefix patterns for free".
///
/// Scope (matching the paper's multi-query experiments): COUNT aggregates,
/// positive-only patterns, no predicates/grouping, one common sliding
/// window.
class PreTreeEngine : public MultiQueryEngine {
 public:
  /// Validates the workload and builds the tries.
  static Result<std::unique_ptr<PreTreeEngine>> Create(
      std::vector<CompiledQuery> queries);

  void OnEvent(const Event& e, std::vector<MultiOutput>* out) override;
  /// Batched path: skips per-trie expiry scans that a cached next-expiry
  /// lower bound proves are no-ops.
  void OnBatch(std::span<const Event> batch,
               std::vector<MultiOutput>* out) override;
  const EngineStats& stats() const override { return stats_; }
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override { return "PrefixShare(PreTree)"; }

  /// Total trie nodes across tries (testing hook: measures sharing).
  size_t num_trie_nodes() const;

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  /// One trie node = one shared prefix pattern (beyond the START type).
  struct Node {
    EventTypeId type;
    int parent;  // node index; -1 = the START itself
    size_t depth;  // 1 = first node below the START
  };

  /// A per-START-instance tree of counters (the shared PreCntr).
  struct Instance {
    Timestamp exp;
    std::vector<uint64_t> counts;  // per node
  };

  struct Trie {
    EventTypeId start_type;
    std::vector<Node> nodes;
    /// Node indexes per event type, descending depth (duplicate-type safe).
    std::unordered_map<EventTypeId, std::vector<size_t>> update_index;
    /// (query, terminal node; -1 = the START node itself) pairs.
    std::vector<std::pair<size_t, int>> terminals;
    /// Queries triggered per event type (those whose last type matches).
    std::unordered_map<EventTypeId, std::vector<size_t>> trigger_index;
    std::deque<Instance> instances;
  };

  explicit PreTreeEngine(std::vector<CompiledQuery> queries);

  Status Build();
  /// Expires START instances across tries and recomputes next_expiry_.
  void Purge(Timestamp now);
  /// UPD/START/TRIG handling for one event (caller already purged).
  void ProcessEvent(const Event& e, std::vector<MultiOutput>* out);

  std::vector<CompiledQuery> queries_;
  /// Per-query compiled admission programs (src/plan/); the workload shape
  /// has no predicates, so they serve as the dense type-relevance test.
  /// Borrow queries_'s storage — declared after it.
  std::vector<plan::AdmissionProgram> programs_;
  /// Union of the programs' relevance, EventTypeId-indexed: an event whose
  /// type is outside every query's pattern touches no trie.
  std::vector<uint8_t> type_relevant_;
  Timestamp window_ms_ = 0;
  std::vector<Trie> tries_;
  std::unordered_map<EventTypeId, size_t> trie_by_start_;
  EngineStats stats_;
  /// Lower bound on the earliest live instance expiration (see
  /// StackEngine::next_expiry_).
  Timestamp next_expiry_ = std::numeric_limits<Timestamp>::max();
};

}  // namespace aseq

#endif  // ASEQ_MULTI_PRETREE_ENGINE_H_
