#ifndef ASEQ_MULTI_PRETREE_ENGINE_H_
#define ASEQ_MULTI_PRETREE_ENGINE_H_

#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "plan/admission.h"
#include "query/compiled_query.h"
#include "state/partition_store.h"
#include "state/window_clock.h"

namespace aseq {

/// \brief Prefix-sharing multi-query A-Seq via the PreTree (Sec. 4.1 /
/// Fig. 9).
///
/// The workload's patterns are organized into tries keyed by their START
/// type: each trie node represents one prefix pattern, shared by every
/// query whose pattern extends through it. Per live START instance one
/// *tree of counters* replaces the per-query PreCntrs; an arriving UPD
/// instance updates each shared node once — "A-Seq shares the computation
/// on the common prefix patterns for free".
///
/// Scope (matching the paper's multi-query experiments): COUNT aggregates,
/// positive-only patterns, no predicates, one common sliding window.
/// Workloads are either entirely ungrouped, or entirely GROUP BY one
/// shared attribute — the *grouped* mode, where every group value runs an
/// independent copy of the per-trie instance state in a
/// state::PartitionStore keyed by the group value, with HPC-style
/// partition-local purging driven by a state::WindowClock. Grouped
/// instances are shardable (MultiShardableEngine): the group key
/// partitions the whole engine state, and the only cross-partition
/// coupling is the clock advance at trigger time.
class PreTreeEngine : public MultiQueryEngine, public MultiShardableEngine {
 public:
  /// Validates the workload and builds the tries.
  static Result<std::unique_ptr<PreTreeEngine>> Create(
      std::vector<CompiledQuery> queries);

  void OnEvent(const Event& e, std::vector<MultiOutput>* out) override;
  /// Batched path: skips per-trie expiry scans that a cached next-expiry
  /// lower bound proves are no-ops.
  void OnBatch(std::span<const Event> batch,
               std::vector<MultiOutput>* out) override;
  std::vector<MultiOutput> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override { return "PrefixShare(PreTree)"; }

  /// Total trie nodes across tries (testing hook: measures sharing).
  size_t num_trie_nodes() const;
  /// Number of live group partitions (grouped mode; testing hook).
  size_t num_partitions() const { return part_store_.size(); }

  /// MultiShardableEngine: grouped workloads shard by the group key.
  bool shardable() const override { return grouped_; }
  /// Replays the clock advance a trigger at `now` performs (grouped mode
  /// only; triggered queries all share this engine's one clock).
  void SyncPurgeTo(Timestamp now,
                   std::span<const size_t> trigger_queries) override;
  EngineStats* shard_mutable_stats() override { return &stats_; }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  /// "This type starts no trie" sentinel in trie_by_start_.
  static constexpr uint32_t kNoTrie = 0xFFFFFFFFu;

  /// One trie node = one shared prefix pattern (beyond the START type).
  struct Node {
    EventTypeId type;
    int parent;  // node index; -1 = the START itself
    size_t depth;  // 1 = first node below the START
  };

  /// A per-START-instance tree of counters (the shared PreCntr).
  struct Instance {
    Timestamp exp;
    std::vector<uint64_t> counts;  // per node
  };

  /// The static shape of one trie (identical across group partitions).
  struct Trie {
    EventTypeId start_type;
    std::vector<Node> nodes;
    /// Node indexes per event type (dense, EventTypeId-indexed),
    /// descending depth (duplicate-type safe).
    std::vector<std::vector<size_t>> update_index;
    /// (query, terminal node; -1 = the START node itself) pairs.
    std::vector<std::pair<size_t, int>> terminals;
    /// Queries triggered per event type (dense, EventTypeId-indexed).
    std::vector<std::vector<size_t>> trigger_index;
  };

  /// The dynamic state of one trie within one counting scope: its live
  /// START instances in arrival (== expiration) order.
  using TrieState = std::deque<Instance>;

  /// One group partition: its interned key (plus pinned hash; see
  /// state::PartitionStore) and per-trie instance state.
  struct PartState {
    container::InternedKey key;
    uint64_t hash = 0;
    std::vector<TrieState> tries;

    PartState(const container::InternedKey& k, uint64_t h, size_t n_tries)
        : key(k), hash(h), tries(n_tries) {}
  };

  explicit PreTreeEngine(std::vector<CompiledQuery> queries);

  Status Build();
  /// Expires the front (oldest) instances of one trie's state.
  void PurgeTrie(TrieState* st, Timestamp now);
  /// Expires START instances across tries and recomputes next_expiry_
  /// (ungrouped mode).
  void Purge(Timestamp now);
  /// UPD/START handling for one event against one counting scope (caller
  /// already purged `dyn`). No triggers — those are mode-specific and
  /// owned by the Process*Event callers.
  void ApplyUpdates(const Event& e, std::vector<TrieState>& dyn);
  /// Ungrouped mode: ApplyUpdates against dyn_ plus the trigger reports.
  void ProcessEvent(const Event& e, std::vector<MultiOutput>* out);
  /// Grouped mode: routes the event to its group partition (HPC-style
  /// partition-local purge), applies updates there, then handles triggers
  /// (clock advance + per-group report).
  void ProcessGroupedEvent(const Event& e, std::vector<MultiOutput>* out);
  /// Query qi's current total within one counting scope.
  uint64_t QueryTotal(size_t qi, const std::vector<TrieState>& dyn) const;

  /// Earliest live instance expiration across a partition's tries, or
  /// WindowClock::kNever when it holds no instances.
  Timestamp PartNextExpiry(const PartState& part) const;
  /// Pops every due clock entry, purging (and erasing when emptied) the
  /// named partitions — the grouped counterpart of the serial trigger's
  /// full purge sweep.
  void AdvanceClock(Timestamp now);

  void CheckpointTrieState(const TrieState& st, ckpt::Writer* writer) const;
  Status RestoreTrieState(TrieState* st, const Trie& trie,
                          ckpt::Reader* reader) const;

  std::vector<CompiledQuery> queries_;
  /// Per-query compiled admission programs (src/plan/); the workload shape
  /// has no predicates, so they serve as the dense type-relevance test.
  /// Borrow queries_'s storage — declared after it.
  std::vector<plan::AdmissionProgram> programs_;
  /// Union of the programs' relevance, EventTypeId-indexed: an event whose
  /// type is outside every query's pattern touches no trie.
  std::vector<uint8_t> type_relevant_;
  Timestamp window_ms_ = 0;
  /// GROUP BY mode: every query groups by this one shared attribute.
  bool grouped_ = false;
  AttrId group_attr_ = kInvalidAttr;
  std::vector<Trie> tries_;
  /// Trie index per START type (dense, EventTypeId-indexed; kNoTrie when
  /// the type starts no trie).
  std::vector<uint32_t> trie_by_start_;
  /// Per query: its trie and terminal node (-1 = the trie's START itself).
  std::vector<size_t> query_trie_;
  std::vector<int> query_terminal_;
  /// Ungrouped mode: the single shared set of per-trie instance state.
  std::vector<TrieState> dyn_;
  /// Grouped mode: one set of trie states per live group value, plus the
  /// lazy expiry clock that drives trigger-time purging.
  state::PartitionStore<PartState> part_store_;
  state::WindowClock clock_;
  EngineStats stats_;
  /// Lower bound on the earliest live instance expiration, ungrouped mode
  /// (see StackEngine::next_expiry_).
  Timestamp next_expiry_ = std::numeric_limits<Timestamp>::max();
};

}  // namespace aseq

#endif  // ASEQ_MULTI_PRETREE_ENGINE_H_
