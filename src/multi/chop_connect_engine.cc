#include "multi/chop_connect_engine.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <map>

#include "ckpt/ckpt.h"

namespace aseq {

ChopConnectEngine::ChopConnectEngine(std::vector<CompiledQuery> queries,
                                     ChopPlan plan)
    : queries_(std::move(queries)), plan_(std::move(plan)) {
  for (const CompiledQuery& q : queries_) {
    plan::AdmissionProgram program(q);
    for (EventTypeId t : q.positive_types()) {
      if (t >= type_relevant_.size()) type_relevant_.resize(t + 1, 0);
      if (program.Relevant(t)) type_relevant_[t] = 1;
    }
    programs_.push_back(std::move(program));
  }
}

Result<std::unique_ptr<ChopConnectEngine>> ChopConnectEngine::Create(
    std::vector<CompiledQuery> queries, ChopPlan plan) {
  if (queries.empty()) {
    return Status::InvalidArgument("Chop-Connect needs at least one query");
  }
  if (plan.query_segments.size() != queries.size()) {
    return Status::InvalidArgument(
        "plan must assign segments to every workload query");
  }
  Timestamp window = queries[0].window_ms();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const CompiledQuery& q = queries[qi];
    if (q.agg().func != AggFunc::kCount || q.partitioned() ||
        q.has_join_predicates() || q.pattern().has_negation()) {
      return Status::Unsupported(
          "Chop-Connect supports COUNT over positive-only unpartitioned "
          "patterns: " +
          q.ToString());
    }
    for (const auto& preds : q.local_predicates()) {
      if (!preds.empty()) {
        return Status::Unsupported(
            "Chop-Connect does not support WHERE: " + q.ToString());
      }
    }
    if (q.window_ms() != window || window <= 0) {
      return Status::InvalidArgument(
          "Chop-Connect workload queries must share one positive window");
    }
    // Distinct types within a query keep role handling unambiguous.
    const auto& types = q.positive_types();
    for (size_t i = 0; i < types.size(); ++i) {
      for (size_t j = i + 1; j < types.size(); ++j) {
        if (types[i] == types[j]) {
          return Status::Unsupported(
              "Chop-Connect requires distinct event types per pattern: " +
              q.ToString());
        }
      }
    }
    // The plan's segment concatenation must reproduce the pattern.
    std::vector<EventTypeId> concat;
    if (qi >= plan.query_segments.size()) {
      return Status::InvalidArgument("plan missing query " +
                                     std::to_string(qi));
    }
    for (size_t seg : plan.query_segments[qi]) {
      if (seg >= plan.segments.size()) {
        return Status::InvalidArgument("plan references unknown segment");
      }
      if (plan.segments[seg].empty()) {
        return Status::InvalidArgument("plan has an empty segment");
      }
      concat.insert(concat.end(), plan.segments[seg].begin(),
                    plan.segments[seg].end());
    }
    if (concat != types) {
      return Status::InvalidArgument(
          "plan segments do not concatenate to the pattern of " +
          q.ToString());
    }
  }
  std::unique_ptr<ChopConnectEngine> engine(
      new ChopConnectEngine(std::move(queries), std::move(plan)));
  engine->window_ms_ = window;
  engine->Build();
  return engine;
}

void ChopConnectEngine::Build() {
  segments_.resize(plan_.segments.size());
  for (size_t s = 0; s < plan_.segments.size(); ++s) {
    segments_[s].types = plan_.segments[s];
  }
  final_hook_.assign(queries_.size(), -1);
  // Register hooks: one per (query, junction >= 1).
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const std::vector<size_t>& segs = plan_.query_segments[qi];
    int upstream_hook = -1;
    for (size_t j = 1; j < segs.size(); ++j) {
      Segment& seg = segments_[segs[j]];
      Hook hook;
      hook.query = qi;
      hook.junction = j;
      hook.upstream_seg = segs[j - 1];
      hook.upstream_hook = upstream_hook;
      upstream_hook = static_cast<int>(seg.hooks.size());
      seg.hooks.push_back(hook);
    }
    if (segs.size() > 1) final_hook_[qi] = upstream_hook;
    // Trigger type: last type of the last segment.
    trigger_index_[segments_[segs.back()].types.back()].push_back(qi);
  }
  // Update index per type.
  for (size_t s = 0; s < segments_.size(); ++s) {
    const auto& types = segments_[s].types;
    for (size_t pos = types.size(); pos > 0; --pos) {
      update_index_[types[pos - 1]].emplace_back(s, pos - 1);
    }
  }
}

void ChopConnectEngine::PurgeSegment(Segment* seg, Timestamp now) {
  while (!seg->entries.empty() && seg->entries.front().exp <= now) {
    int64_t rows = 0;
    for (const SnapshotTable& table : seg->entries.front().snapshots) {
      rows += static_cast<int64_t>(table.size());
    }
    stats_.objects.Remove(1 + rows);
    seg->entries.pop_front();
  }
}

void ChopConnectEngine::Purge(Timestamp now) {
  Timestamp min_exp = std::numeric_limits<Timestamp>::max();
  for (Segment& seg : segments_) {
    PurgeSegment(&seg, now);
    if (!seg.entries.empty()) {
      min_exp = std::min(min_exp, seg.entries.front().exp);
    }
  }
  next_expiry_ = min_exp;
}

ChopConnectEngine::SnapshotTable ChopConnectEngine::ComputeSnapshot(
    const Hook& hook, Timestamp now) {
  SnapshotTable table;
  Segment& up = segments_[hook.upstream_seg];
  if (hook.upstream_hook < 0) {
    // Upstream is the query's first segment: tags are its START entries
    // (already in arrival == expiration order).
    table.rows.reserve(up.entries.size());
    stats_.work_units += up.entries.size();
    for (const SegEntry& entry : up.entries) {
      uint64_t c = entry.counts.back();
      if (c > 0) {
        table.rows.push_back(SnapRow{entry.id, entry.exp, c, 0});
      }
    }
    table.BuildSuffix();
    return table;
  }
  // Multi-connect (Fig. 11): combine the upstream segment's counters with
  // their snapshots, summing per full-sequence START tag. Tags increase in
  // arrival order, so the std::map keeps rows in expiration order.
  std::map<uint64_t, SnapRow> acc;
  for (const SegEntry& entry : up.entries) {
    uint64_t mult = entry.counts.back();
    ++stats_.work_units;
    if (mult == 0) continue;
    const SnapshotTable& upstream =
        entry.snapshots[static_cast<size_t>(hook.upstream_hook)];
    for (const SnapRow& row : upstream.rows) {
      ++stats_.work_units;
      if (row.exp <= now || row.count == 0) continue;
      SnapRow& out = acc[row.tag];
      out.tag = row.tag;
      out.exp = row.exp;
      out.count += row.count * mult;
      out.cum = 0;
    }
  }
  table.rows.reserve(acc.size());
  for (const auto& [tag, row] : acc) table.rows.push_back(row);
  table.BuildSuffix();
  return table;
}

uint64_t ChopConnectEngine::QueryTotal(size_t qi, Timestamp now) {
  const std::vector<size_t>& segs = plan_.query_segments[qi];
  Segment& last = segments_[segs.back()];
  uint64_t total = 0;
  if (segs.size() == 1) {
    for (const SegEntry& entry : last.entries) {
      total += entry.counts.back();
    }
    return total;
  }
  const size_t hook = static_cast<size_t>(final_hook_[qi]);
  for (SegEntry& entry : last.entries) {
    ++stats_.work_units;
    uint64_t tail = entry.counts.back();
    if (tail == 0) continue;
    total += tail * entry.snapshots[hook].LiveSum(now);
  }
  return total;
}

void ChopConnectEngine::OnEvent(const Event& e, std::vector<MultiOutput>* out) {
  Purge(e.ts());
  ProcessEvent(e, out);
  // New segment entries expire at e.ts() + window; keep the bound valid.
  next_expiry_ = std::min(next_expiry_, e.ts() + window_ms_);
}

void ChopConnectEngine::OnBatch(std::span<const Event> batch,
                                std::vector<MultiOutput>* out) {
  if (batch.empty()) return;
  for (const Event& e : batch) {
    if (e.ts() >= next_expiry_) Purge(e.ts());
    ProcessEvent(e, out);
    next_expiry_ = std::min(next_expiry_, e.ts() + window_ms_);
  }
  stats_.NoteBatch(batch.size());
}

void ChopConnectEngine::ProcessEvent(const Event& e,
                                     std::vector<MultiOutput>* out) {
  ++stats_.events_processed;
  // Type-level early-out via the compiled programs: a type outside every
  // query's pattern is CNET/UPD/TRIG for no segment.
  if (e.type() >= type_relevant_.size() || !type_relevant_[e.type()]) return;

  // CNET pre-pass (Lemma 7): snapshots use counts from *before* this
  // arrival's updates.
  struct PendingSnapshot {
    size_t seg;
    size_t hook;
    SnapshotTable table;
  };
  std::vector<PendingSnapshot> pending;
  for (size_t s = 0; s < segments_.size(); ++s) {
    Segment& seg = segments_[s];
    if (seg.types[0] != e.type() || seg.hooks.empty()) continue;
    for (size_t h = 0; h < seg.hooks.size(); ++h) {
      pending.push_back(
          PendingSnapshot{s, h, ComputeSnapshot(seg.hooks[h], e.ts())});
    }
  }

  // Apply updates / create counters.
  auto it = update_index_.find(e.type());
  if (it != update_index_.end()) {
    for (const auto& [s, pos] : it->second) {
      Segment& seg = segments_[s];
      if (pos == 0) {
        SegEntry entry;
        entry.id = seg.next_id++;
        entry.exp = e.ts() + window_ms_;
        entry.counts.assign(seg.types.size(), 0);
        entry.counts[0] = 1;
        entry.snapshots.resize(seg.hooks.size());
        int64_t rows = 0;
        for (PendingSnapshot& p : pending) {
          if (p.seg == s) {
            rows += static_cast<int64_t>(p.table.size());
            entry.snapshots[p.hook] = std::move(p.table);
          }
        }
        seg.entries.push_back(std::move(entry));
        stats_.objects.Add(1 + rows);
        ++stats_.work_units;
      } else {
        for (SegEntry& entry : seg.entries) {
          entry.counts[pos] += entry.counts[pos - 1];
        }
        stats_.work_units += seg.entries.size();
      }
    }
  }

  // Triggers.
  auto tit = trigger_index_.find(e.type());
  if (tit != trigger_index_.end()) {
    for (size_t qi : tit->second) {
      // Aggregate-initialize (GCC 12 raises a spurious -Wmaybe-uninitialized
      // on the variant move-assignment the field-wise form compiles to).
      out->push_back(MultiOutput{
          qi, Output{e.ts(), e.seq(), std::nullopt,
                     Value(static_cast<int64_t>(QueryTotal(qi, e.ts())))}});
      ++stats_.outputs;
    }
  }
}

Status ChopConnectEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  writer->WriteI64(next_expiry_);
  writer->WriteU64(segments_.size());
  for (const Segment& seg : segments_) {
    writer->WriteU64(seg.next_id);
    writer->WriteU64(seg.entries.size());
    for (const SegEntry& entry : seg.entries) {
      writer->WriteU64(entry.id);
      writer->WriteI64(entry.exp);
      for (uint64_t count : entry.counts) writer->WriteU64(count);
      for (const SnapshotTable& table : entry.snapshots) {
        writer->WriteU64(table.cursor);
        writer->WriteU64(table.rows.size());
        for (const SnapRow& row : table.rows) {
          writer->WriteU64(row.tag);
          writer->WriteI64(row.exp);
          writer->WriteU64(row.count);
          writer->WriteU64(row.cum);
        }
      }
    }
  }
  return Status::OK();
}

Status ChopConnectEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  ASEQ_RETURN_NOT_OK(reader->ReadI64(&next_expiry_, "chop next expiry"));
  uint64_t n_segments = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_segments, 16, "segments"));
  if (n_segments != segments_.size()) {
    return Status::ParseError(
        "snapshot corrupt: " + std::to_string(n_segments) +
        " segments but the plan builds " + std::to_string(segments_.size()));
  }
  for (Segment& seg : segments_) {
    seg.entries.clear();
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&seg.next_id, "segment next id"));
    uint64_t n_entries = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_entries, 16, "segment entries"));
    for (uint64_t i = 0; i < n_entries; ++i) {
      SegEntry entry;
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&entry.id, "entry id"));
      ASEQ_RETURN_NOT_OK(reader->ReadI64(&entry.exp, "entry expiry"));
      entry.counts.resize(seg.types.size());
      for (uint64_t& count : entry.counts) {
        ASEQ_RETURN_NOT_OK(reader->ReadU64(&count, "entry count"));
      }
      entry.snapshots.resize(seg.hooks.size());
      for (SnapshotTable& table : entry.snapshots) {
        uint64_t cursor = 0;
        ASEQ_RETURN_NOT_OK(reader->ReadU64(&cursor, "snapshot cursor"));
        uint64_t n_rows = 0;
        ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_rows, 32, "snapshot rows"));
        if (cursor > n_rows) {
          return Status::ParseError(
              "snapshot corrupt: snapshot cursor " + std::to_string(cursor) +
              " beyond its " + std::to_string(n_rows) + " row(s)");
        }
        table.cursor = cursor;
        table.rows.resize(n_rows);
        for (SnapRow& row : table.rows) {
          ASEQ_RETURN_NOT_OK(reader->ReadU64(&row.tag, "row tag"));
          ASEQ_RETURN_NOT_OK(reader->ReadI64(&row.exp, "row expiry"));
          ASEQ_RETURN_NOT_OK(reader->ReadU64(&row.count, "row count"));
          ASEQ_RETURN_NOT_OK(reader->ReadU64(&row.cum, "row cum"));
        }
      }
      seg.entries.push_back(std::move(entry));
    }
  }
  stats_ = stats;
  return Status::OK();
}

}  // namespace aseq
