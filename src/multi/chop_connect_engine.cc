#include "multi/chop_connect_engine.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <map>

#include "ckpt/ckpt.h"

namespace aseq {

namespace {

/// Empty dispatch row for types beyond the dense trigger index's range.
const std::vector<size_t> kNoTriggers;

}  // namespace

ChopConnectEngine::ChopConnectEngine(std::vector<CompiledQuery> queries,
                                     ChopPlan plan)
    : queries_(std::move(queries)), plan_(std::move(plan)) {
  for (const CompiledQuery& q : queries_) {
    plan::AdmissionProgram program(q);
    for (EventTypeId t : q.positive_types()) {
      if (t >= type_relevant_.size()) type_relevant_.resize(t + 1, 0);
      if (program.Relevant(t)) type_relevant_[t] = 1;
    }
    programs_.push_back(std::move(program));
  }
}

Result<std::unique_ptr<ChopConnectEngine>> ChopConnectEngine::Create(
    std::vector<CompiledQuery> queries, ChopPlan plan) {
  if (queries.empty()) {
    return Status::InvalidArgument("Chop-Connect needs at least one query");
  }
  if (plan.query_segments.size() != queries.size()) {
    return Status::InvalidArgument(
        "plan must assign segments to every workload query");
  }
  Timestamp window = queries[0].window_ms();
  const bool grouped = queries[0].partitioned();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const CompiledQuery& q = queries[qi];
    if (q.agg().func != AggFunc::kCount || q.has_join_predicates() ||
        q.pattern().has_negation()) {
      return Status::Unsupported(
          "Chop-Connect supports COUNT over positive-only patterns: " +
          q.ToString());
    }
    if (q.partitioned() != grouped) {
      return Status::Unsupported(
          "Chop-Connect workloads must be uniformly grouped or ungrouped: " +
          q.ToString());
    }
    if (grouped) {
      // The one partitioning shape the shared state decomposes under: every
      // query GROUP BY the same single attribute (one interned key part,
      // per-group output, no extra equivalence parts).
      const PartitionSpec& spec = q.partition_spec();
      if (!spec.per_group_output || spec.parts.size() != 1 ||
          spec.group_part != 0 ||
          spec.parts[0].attr != queries[0].partition_spec().parts[0].attr) {
        return Status::Unsupported(
            "Chop-Connect supports partitioning only as GROUP BY one "
            "attribute shared by every workload query: " +
            q.ToString());
      }
    }
    for (const auto& preds : q.local_predicates()) {
      if (!preds.empty()) {
        return Status::Unsupported(
            "Chop-Connect does not support WHERE: " + q.ToString());
      }
    }
    if (q.window_ms() != window || window <= 0) {
      return Status::InvalidArgument(
          "Chop-Connect workload queries must share one positive window");
    }
    // Distinct types within a query keep role handling unambiguous.
    const auto& types = q.positive_types();
    for (size_t i = 0; i < types.size(); ++i) {
      for (size_t j = i + 1; j < types.size(); ++j) {
        if (types[i] == types[j]) {
          return Status::Unsupported(
              "Chop-Connect requires distinct event types per pattern: " +
              q.ToString());
        }
      }
    }
    // The plan's segment concatenation must reproduce the pattern.
    std::vector<EventTypeId> concat;
    if (qi >= plan.query_segments.size()) {
      return Status::InvalidArgument("plan missing query " +
                                     std::to_string(qi));
    }
    for (size_t seg : plan.query_segments[qi]) {
      if (seg >= plan.segments.size()) {
        return Status::InvalidArgument("plan references unknown segment");
      }
      if (plan.segments[seg].empty()) {
        return Status::InvalidArgument("plan has an empty segment");
      }
      concat.insert(concat.end(), plan.segments[seg].begin(),
                    plan.segments[seg].end());
    }
    if (concat != types) {
      return Status::InvalidArgument(
          "plan segments do not concatenate to the pattern of " +
          q.ToString());
    }
  }
  std::unique_ptr<ChopConnectEngine> engine(
      new ChopConnectEngine(std::move(queries), std::move(plan)));
  engine->window_ms_ = window;
  engine->grouped_ = grouped;
  if (grouped) {
    engine->group_attr_ = engine->queries_[0].partition_spec().parts[0].attr;
  }
  engine->Build();
  return engine;
}

void ChopConnectEngine::Build() {
  segments_.resize(plan_.segments.size());
  for (size_t s = 0; s < plan_.segments.size(); ++s) {
    segments_[s].types = plan_.segments[s];
  }
  dyn_.resize(segments_.size());
  final_hook_.assign(queries_.size(), -1);
  auto trigger_row = [this](EventTypeId t) -> std::vector<size_t>& {
    if (t >= trigger_index_.size()) trigger_index_.resize(t + 1);
    return trigger_index_[t];
  };
  auto update_row =
      [this](EventTypeId t) -> std::vector<std::pair<size_t, size_t>>& {
    if (t >= update_index_.size()) update_index_.resize(t + 1);
    return update_index_[t];
  };
  // Register hooks: one per (query, junction >= 1).
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const std::vector<size_t>& segs = plan_.query_segments[qi];
    int upstream_hook = -1;
    for (size_t j = 1; j < segs.size(); ++j) {
      Segment& seg = segments_[segs[j]];
      Hook hook;
      hook.query = qi;
      hook.junction = j;
      hook.upstream_seg = segs[j - 1];
      hook.upstream_hook = upstream_hook;
      upstream_hook = static_cast<int>(seg.hooks.size());
      seg.hooks.push_back(hook);
    }
    if (segs.size() > 1) final_hook_[qi] = upstream_hook;
    // Trigger type: last type of the last segment.
    trigger_row(segments_[segs.back()].types.back()).push_back(qi);
  }
  // Update index per type (dense, EventTypeId-indexed).
  for (size_t s = 0; s < segments_.size(); ++s) {
    const auto& types = segments_[s].types;
    for (size_t pos = types.size(); pos > 0; --pos) {
      update_row(types[pos - 1]).emplace_back(s, pos - 1);
    }
  }
}

void ChopConnectEngine::PurgeSegment(SegState* st, Timestamp now) {
  while (!st->entries.empty() && st->entries.front().exp <= now) {
    int64_t rows = 0;
    for (const SnapshotTable& table : st->entries.front().snapshots) {
      rows += static_cast<int64_t>(table.size());
    }
    stats_.objects.Remove(1 + rows);
    st->entries.pop_front();
  }
}

void ChopConnectEngine::Purge(Timestamp now) {
  Timestamp min_exp = std::numeric_limits<Timestamp>::max();
  for (SegState& st : dyn_) {
    PurgeSegment(&st, now);
    if (!st.entries.empty()) {
      min_exp = std::min(min_exp, st.entries.front().exp);
    }
  }
  next_expiry_ = min_exp;
}

Timestamp ChopConnectEngine::PartNextExpiry(const PartState& part) const {
  Timestamp min_exp = state::WindowClock::kNever;
  for (const SegState& st : part.segs) {
    if (!st.entries.empty()) {
      min_exp = std::min(min_exp, st.entries.front().exp);
    }
  }
  return min_exp;
}

void ChopConnectEngine::AdvanceClock(Timestamp now) {
  clock_.AdvanceTo(
      now, [&](const state::WindowClock::Entry& top) -> Timestamp {
        const uint32_t slot = part_store_.Lookup(top.hash, top.key);
        if (slot == state::kNoSlot) return state::WindowClock::kNever;
        PartState& part = part_store_.at(slot);
        for (SegState& st : part.segs) PurgeSegment(&st, now);
        const Timestamp next = PartNextExpiry(part);
        if (next == state::WindowClock::kNever) {
          part_store_.Erase(slot);
          return state::WindowClock::kNever;
        }
        return next;
      });
}

ChopConnectEngine::SnapshotTable ChopConnectEngine::ComputeSnapshot(
    const Hook& hook, std::vector<SegState>& dyn, Timestamp now) {
  SnapshotTable table;
  SegState& up = dyn[hook.upstream_seg];
  if (hook.upstream_hook < 0) {
    // Upstream is the query's first segment: tags are its START entries
    // (already in arrival == expiration order).
    table.rows.reserve(up.entries.size());
    stats_.work_units += up.entries.size();
    for (const SegEntry& entry : up.entries) {
      uint64_t c = entry.counts.back();
      if (c > 0) {
        table.rows.push_back(SnapRow{entry.id, entry.exp, c, 0});
      }
    }
    table.BuildSuffix();
    return table;
  }
  // Multi-connect (Fig. 11): combine the upstream segment's counters with
  // their snapshots, summing per full-sequence START tag. Tags increase in
  // arrival order, so the std::map keeps rows in expiration order.
  std::map<uint64_t, SnapRow> acc;
  for (const SegEntry& entry : up.entries) {
    uint64_t mult = entry.counts.back();
    ++stats_.work_units;
    if (mult == 0) continue;
    const SnapshotTable& upstream =
        entry.snapshots[static_cast<size_t>(hook.upstream_hook)];
    for (const SnapRow& row : upstream.rows) {
      ++stats_.work_units;
      if (row.exp <= now || row.count == 0) continue;
      SnapRow& out = acc[row.tag];
      out.tag = row.tag;
      out.exp = row.exp;
      out.count += row.count * mult;
      out.cum = 0;
    }
  }
  table.rows.reserve(acc.size());
  for (const auto& [tag, row] : acc) table.rows.push_back(row);
  table.BuildSuffix();
  return table;
}

uint64_t ChopConnectEngine::QueryTotal(size_t qi, std::vector<SegState>& dyn,
                                       Timestamp now) {
  const std::vector<size_t>& segs = plan_.query_segments[qi];
  SegState& last = dyn[segs.back()];
  uint64_t total = 0;
  if (segs.size() == 1) {
    for (const SegEntry& entry : last.entries) {
      total += entry.counts.back();
    }
    return total;
  }
  const size_t hook = static_cast<size_t>(final_hook_[qi]);
  for (SegEntry& entry : last.entries) {
    ++stats_.work_units;
    uint64_t tail = entry.counts.back();
    if (tail == 0) continue;
    total += tail * entry.snapshots[hook].LiveSum(now);
  }
  return total;
}

void ChopConnectEngine::OnEvent(const Event& e, std::vector<MultiOutput>* out) {
  if (grouped_) {
    ProcessGroupedEvent(e, out);
    return;
  }
  Purge(e.ts());
  ProcessEvent(e, out);
  // New segment entries expire at e.ts() + window; keep the bound valid.
  next_expiry_ = std::min(next_expiry_, e.ts() + window_ms_);
}

void ChopConnectEngine::OnBatch(std::span<const Event> batch,
                                std::vector<MultiOutput>* out) {
  if (batch.empty()) return;
  if (grouped_) {
    // Purging is partition-local (no global sweep to hoist); the clock
    // already makes trigger-time expiry amortized O(expired entries).
    for (const Event& e : batch) ProcessGroupedEvent(e, out);
    stats_.NoteBatch(batch.size());
    return;
  }
  for (const Event& e : batch) {
    if (e.ts() >= next_expiry_) Purge(e.ts());
    ProcessEvent(e, out);
    next_expiry_ = std::min(next_expiry_, e.ts() + window_ms_);
  }
  stats_.NoteBatch(batch.size());
}

void ChopConnectEngine::ProcessGroupedEvent(const Event& e,
                                            std::vector<MultiOutput>* out) {
  ++stats_.events_processed;
  if (e.type() >= type_relevant_.size() || !type_relevant_[e.type()]) return;
  // Route by the shared GROUP BY attribute; an event without it matches no
  // sequence of any query (the group part covers every element).
  const Value* gv = e.FindAttr(group_attr_);
  if (gv == nullptr) return;
  const uint32_t gid = part_store_.interner().Intern(*gv);
  container::InternedKey key;
  key.ids[0] = gid;
  const uint64_t hash = container::InternedKeyHash{}(key);

  // Does this type start a segment (i.e. create entries)? Only then is an
  // absent partition materialized — mirroring HpcEngine, where only START
  // roles create partitions.
  bool creates = false;
  if (e.type() < update_index_.size()) {
    for (const auto& [s, pos] : update_index_[e.type()]) {
      if (pos == 0) creates = true;
    }
  }

  uint32_t slot = part_store_.Lookup(hash, key);
  if (slot == state::kNoSlot && creates) {
    auto [slot_ref, inserted] = part_store_.Upsert(hash, key);
    *slot_ref = part_store_.Emplace(key, hash, segments_.size());
    slot = *slot_ref;
  }
  if (slot != state::kNoSlot) {
    PartState& part = part_store_.at(slot);
    // HPC-style partition-local purge: only the partition this event's
    // key owns is purged here; the rest purge lazily at trigger time via
    // the clock. (A trigger event purges its own partition here too, so
    // the later clock advance sees it already clean.)
    for (SegState& st : part.segs) PurgeSegment(&st, e.ts());
    const bool was_empty = PartNextExpiry(part) == state::WindowClock::kNever;
    ApplyUpdates(e, part.segs);
    // An entry landing in an empty partition establishes a new earliest
    // expiration; put it on the clock *before* any trigger advance below
    // (non-empty partitions already have a clock entry at or before their
    // true next expiry — the clock invariant).
    if (was_empty) clock_.Schedule(PartNextExpiry(part), hash, key);
  }

  // Grouped trigger: the serial engine purges *every* partition here (the
  // clock makes that amortized O(expired entries)), then reports from the
  // trigger's own group alone. The advance can erase partitions — this
  // event's included, if it left its group empty — so the scope is
  // re-resolved afterwards (absent partition counts zero).
  const std::vector<size_t>& trigs =
      e.type() < trigger_index_.size() ? trigger_index_[e.type()] : kNoTriggers;
  if (trigs.empty()) return;
  AdvanceClock(e.ts());
  slot = part_store_.Lookup(hash, key);
  PartState* part = slot == state::kNoSlot ? nullptr : &part_store_.at(slot);
  for (size_t qi : trigs) {
    const uint64_t total =
        part == nullptr ? 0 : QueryTotal(qi, part->segs, e.ts());
    out->push_back(MultiOutput{
        qi, Output{e.ts(), e.seq(), part_store_.interner().ValueOf(gid),
                   Value(static_cast<int64_t>(total))}});
    ++stats_.outputs;
  }
}

void ChopConnectEngine::ApplyUpdates(const Event& e,
                                     std::vector<SegState>& dyn) {
  // CNET pre-pass (Lemma 7): snapshots use counts from *before* this
  // arrival's updates.
  struct PendingSnapshot {
    size_t seg;
    size_t hook;
    SnapshotTable table;
  };
  std::vector<PendingSnapshot> pending;
  for (size_t s = 0; s < segments_.size(); ++s) {
    Segment& seg = segments_[s];
    if (seg.types[0] != e.type() || seg.hooks.empty()) continue;
    for (size_t h = 0; h < seg.hooks.size(); ++h) {
      pending.push_back(
          PendingSnapshot{s, h, ComputeSnapshot(seg.hooks[h], dyn, e.ts())});
    }
  }

  // Apply updates / create counters.
  if (e.type() < update_index_.size()) {
    for (const auto& [s, pos] : update_index_[e.type()]) {
      SegState& st = dyn[s];
      if (pos == 0) {
        SegEntry entry;
        entry.id = st.next_id++;
        entry.exp = e.ts() + window_ms_;
        entry.counts.assign(segments_[s].types.size(), 0);
        entry.counts[0] = 1;
        entry.snapshots.resize(segments_[s].hooks.size());
        int64_t rows = 0;
        for (PendingSnapshot& p : pending) {
          if (p.seg == s) {
            rows += static_cast<int64_t>(p.table.size());
            entry.snapshots[p.hook] = std::move(p.table);
          }
        }
        st.entries.push_back(std::move(entry));
        stats_.objects.Add(1 + rows);
        ++stats_.work_units;
      } else {
        for (SegEntry& entry : st.entries) {
          entry.counts[pos] += entry.counts[pos - 1];
        }
        stats_.work_units += st.entries.size();
      }
    }
  }
}

void ChopConnectEngine::ProcessEvent(const Event& e,
                                     std::vector<MultiOutput>* out) {
  ++stats_.events_processed;
  // Type-level early-out via the compiled programs: a type outside every
  // query's pattern is CNET/UPD/TRIG for no segment.
  if (e.type() >= type_relevant_.size() || !type_relevant_[e.type()]) return;

  ApplyUpdates(e, dyn_);

  // Triggers.
  const std::vector<size_t>& trigs =
      e.type() < trigger_index_.size() ? trigger_index_[e.type()] : kNoTriggers;
  for (size_t qi : trigs) {
    // Aggregate-initialize (GCC 12 raises a spurious -Wmaybe-uninitialized
    // on the variant move-assignment the field-wise form compiles to).
    out->push_back(MultiOutput{
        qi, Output{e.ts(), e.seq(), std::nullopt,
                   Value(static_cast<int64_t>(QueryTotal(qi, dyn_, e.ts())))}});
    ++stats_.outputs;
  }
}

std::vector<MultiOutput> ChopConnectEngine::Poll(Timestamp now) {
  std::vector<MultiOutput> outputs;
  if (!grouped_) {
    Purge(now);
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      outputs.push_back(MultiOutput{
          qi, Output{now, 0, std::nullopt,
                     Value(static_cast<int64_t>(QueryTotal(qi, dyn_, now)))}});
    }
    return outputs;
  }
  // Grouped: purge everything due, then report per query per live group in
  // slab-slot order — a pure function of engine state, so a restored (or
  // shard-merged) engine polls identically.
  AdvanceClock(now);
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    for (uint32_t s = 0; s < part_store_.end(); ++s) {
      if (!part_store_.live(s)) continue;
      PartState& part = part_store_.at(s);
      outputs.push_back(MultiOutput{
          qi,
          Output{now, 0,
                 part_store_.interner().ValueOf(part.key.ids[0]),
                 Value(static_cast<int64_t>(QueryTotal(qi, part.segs, now)))}});
    }
  }
  return outputs;
}

void ChopConnectEngine::SyncPurgeTo(Timestamp now,
                                    std::span<const size_t> trigger_queries) {
  // Every triggered query shares this engine's one clock, so which of them
  // triggered is immaterial — the purge happens once.
  (void)trigger_queries;
  if (!grouped_) return;
  AdvanceClock(now);
}

Status ChopConnectEngine::CheckpointSegState(const SegState& st,
                                             ckpt::Writer* writer) const {
  writer->WriteU64(st.next_id);
  writer->WriteU64(st.entries.size());
  for (const SegEntry& entry : st.entries) {
    writer->WriteU64(entry.id);
    writer->WriteI64(entry.exp);
    for (uint64_t count : entry.counts) writer->WriteU64(count);
    for (const SnapshotTable& table : entry.snapshots) {
      writer->WriteU64(table.cursor);
      writer->WriteU64(table.rows.size());
      for (const SnapRow& row : table.rows) {
        writer->WriteU64(row.tag);
        writer->WriteI64(row.exp);
        writer->WriteU64(row.count);
        writer->WriteU64(row.cum);
      }
    }
  }
  return Status::OK();
}

Status ChopConnectEngine::RestoreSegState(SegState* st, const Segment& seg,
                                          ckpt::Reader* reader) const {
  st->entries.clear();
  ASEQ_RETURN_NOT_OK(reader->ReadU64(&st->next_id, "segment next id"));
  uint64_t n_entries = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_entries, 16, "segment entries"));
  for (uint64_t i = 0; i < n_entries; ++i) {
    SegEntry entry;
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&entry.id, "entry id"));
    ASEQ_RETURN_NOT_OK(reader->ReadI64(&entry.exp, "entry expiry"));
    entry.counts.resize(seg.types.size());
    for (uint64_t& count : entry.counts) {
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&count, "entry count"));
    }
    entry.snapshots.resize(seg.hooks.size());
    for (SnapshotTable& table : entry.snapshots) {
      uint64_t cursor = 0;
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&cursor, "snapshot cursor"));
      uint64_t n_rows = 0;
      ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_rows, 32, "snapshot rows"));
      if (cursor > n_rows) {
        return Status::ParseError(
            "snapshot corrupt: snapshot cursor " + std::to_string(cursor) +
            " beyond its " + std::to_string(n_rows) + " row(s)");
      }
      table.cursor = cursor;
      table.rows.resize(n_rows);
      for (SnapRow& row : table.rows) {
        ASEQ_RETURN_NOT_OK(reader->ReadU64(&row.tag, "row tag"));
        ASEQ_RETURN_NOT_OK(reader->ReadI64(&row.exp, "row expiry"));
        ASEQ_RETURN_NOT_OK(reader->ReadU64(&row.count, "row count"));
        ASEQ_RETURN_NOT_OK(reader->ReadU64(&row.cum, "row cum"));
      }
    }
    st->entries.push_back(std::move(entry));
  }
  return Status::OK();
}

Status ChopConnectEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  writer->WriteI64(next_expiry_);
  if (grouped_) {
    // Structural spine via the store; each partition's payload is its
    // per-segment state in plan order. The clock rides verbatim.
    ASEQ_RETURN_NOT_OK(part_store_.Checkpoint(
        writer, [this](const PartState& part, ckpt::Writer* w) -> Status {
          for (const SegState& st : part.segs) {
            ASEQ_RETURN_NOT_OK(CheckpointSegState(st, w));
          }
          return Status::OK();
        }));
    clock_.Checkpoint(writer);
    return Status::OK();
  }
  writer->WriteU64(dyn_.size());
  for (const SegState& st : dyn_) {
    ASEQ_RETURN_NOT_OK(CheckpointSegState(st, writer));
  }
  return Status::OK();
}

Status ChopConnectEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  ASEQ_RETURN_NOT_OK(reader->ReadI64(&next_expiry_, "chop next expiry"));
  if (grouped_) {
    ASEQ_RETURN_NOT_OK(part_store_.Restore(
        reader, [&](uint32_t slot, const container::InternedKey& key,
                    uint64_t hash, ckpt::Reader* r) -> Status {
          PartState& part =
              part_store_.RestoreEmplaceAt(slot, key, hash, segments_.size());
          for (size_t s = 0; s < segments_.size(); ++s) {
            ASEQ_RETURN_NOT_OK(RestoreSegState(&part.segs[s], segments_[s], r));
          }
          return Status::OK();
        }));
    ASEQ_RETURN_NOT_OK(clock_.Restore(reader, part_store_.interner().size()));
    stats_ = stats;
    return Status::OK();
  }
  uint64_t n_segments = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_segments, 16, "segments"));
  if (n_segments != segments_.size()) {
    return Status::ParseError(
        "snapshot corrupt: " + std::to_string(n_segments) +
        " segments but the plan builds " + std::to_string(segments_.size()));
  }
  for (size_t s = 0; s < segments_.size(); ++s) {
    ASEQ_RETURN_NOT_OK(RestoreSegState(&dyn_[s], segments_[s], reader));
  }
  stats_ = stats;
  return Status::OK();
}

}  // namespace aseq
