#include "fault/fault.h"

#include "common/rng.h"

namespace aseq {
namespace fault {
namespace {

constexpr const char* kPointNames[kNumPoints] = {
    "router.route",
    "worker.op",
    "ckpt.write",
    "admit.batch",
};

bool ParsePoint(std::string_view name, Point* point) {
  for (size_t i = 0; i < kNumPoints; ++i) {
    if (name == kPointNames[i]) {
      *point = static_cast<Point>(i);
      return true;
    }
  }
  return false;
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

// Slow-fire delays: long enough to visibly back up a bounded queue, short
// enough that a few hundred fires stay well under test timeouts.
constexpr uint32_t kMinSlowDelayUs = 50;
constexpr uint32_t kMaxSlowDelayUs = 250;
constexpr uint64_t kSlowDefaultRepeat = 256;

}  // namespace

const char* PointName(Point p) {
  const size_t i = static_cast<size_t>(p);
  return i < kNumPoints ? kPointNames[i] : "unknown";
}

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kCrash:
      return "crash";
    case Kind::kStall:
      return "stall";
    case Kind::kSlow:
      return "slow";
    case Kind::kIoError:
      return "io-error";
    case Kind::kOverload:
      return "overload";
  }
  return "unknown";
}

Status ParseKind(std::string_view name, Kind* kind) {
  if (name == "crash") {
    *kind = Kind::kCrash;
  } else if (name == "stall") {
    *kind = Kind::kStall;
  } else if (name == "slow") {
    *kind = Kind::kSlow;
  } else if (name == "io-error") {
    *kind = Kind::kIoError;
  } else if (name == "overload") {
    *kind = Kind::kOverload;
  } else {
    return Status::InvalidArgument("unknown fault kind '" + std::string(name) +
                                   "' (crash|stall|slow|io-error|overload)");
  }
  return Status::OK();
}

Injector& Injector::Global() {
  static Injector injector;
  return injector;
}

Status Injector::Arm(std::string_view spec, uint64_t seed) {
  Disarm();
  std::vector<ArmedFault> entries;
  Rng rng(seed ^ 0x5eedfau);
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      return Status::InvalidArgument(
          "empty fault-spec entry (expected point[@lane]:trigger[:kind[:repeat]])");
    }

    // Split entry into up to four ':'-separated fields.
    std::string_view fields[4];
    size_t num_fields = 0;
    size_t fpos = 0;
    while (num_fields < 4) {
      size_t colon = entry.find(':', fpos);
      if (colon == std::string_view::npos) {
        fields[num_fields++] = entry.substr(fpos);
        fpos = entry.size() + 1;
        break;
      }
      fields[num_fields++] = entry.substr(fpos, colon - fpos);
      fpos = colon + 1;
    }
    if (fpos <= entry.size()) {
      return Status::InvalidArgument("too many fields in fault-spec entry '" +
                                     std::string(entry) + "'");
    }
    if (num_fields < 2) {
      return Status::InvalidArgument(
          "fault-spec entry '" + std::string(entry) +
          "' missing trigger (expected point[@lane]:trigger[:kind[:repeat]])");
    }

    ArmedFault fault;
    std::string_view point_name = fields[0];
    const size_t at = point_name.find('@');
    if (at != std::string_view::npos) {
      uint64_t lane = 0;
      if (!ParseU64(point_name.substr(at + 1), &lane) || lane >= kMaxLanes) {
        return Status::InvalidArgument("bad lane selector in fault-spec entry '" +
                                       std::string(entry) + "'");
      }
      fault.lane = static_cast<uint32_t>(lane);
      point_name = point_name.substr(0, at);
    }
    if (!ParsePoint(point_name, &fault.point)) {
      return Status::InvalidArgument(
          "unknown injection point '" + std::string(point_name) +
          "' (router.route|worker.op|ckpt.write|admit.batch)");
    }
    if (!ParseU64(fields[1], &fault.trigger) || fault.trigger == 0) {
      return Status::InvalidArgument("bad trigger count in fault-spec entry '" +
                                     std::string(entry) + "' (1-based integer)");
    }
    if (num_fields >= 3 && !fields[2].empty()) {
      ASEQ_RETURN_NOT_OK(ParseKind(fields[2], &fault.kind));
    }
    fault.repeat = fault.kind == Kind::kSlow ? kSlowDefaultRepeat : 1;
    if (num_fields >= 4) {
      if (!ParseU64(fields[3], &fault.repeat) || fault.repeat == 0) {
        return Status::InvalidArgument("bad repeat count in fault-spec entry '" +
                                       std::string(entry) + "'");
      }
    }
    if (fault.kind == Kind::kSlow) {
      fault.delay_us = kMinSlowDelayUs +
                       static_cast<uint32_t>(rng.NextUInt(
                           kMaxSlowDelayUs - kMinSlowDelayUs + 1));
    }
    entries.push_back(fault);
  }
  if (entries.empty()) {
    return Status::InvalidArgument("empty fault spec");
  }
  entries_ = std::move(entries);
  armed_.store(true, std::memory_order_release);
  return Status::OK();
}

void Injector::Disarm() {
  armed_.store(false, std::memory_order_release);
  entries_.clear();
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
}

std::optional<Injector::Fired> Injector::Hit(Point point, size_t lane) {
  // Disarmed hits neither count nor fire: call sites gate on armed(), but
  // the gate is advisory — this is the authoritative check.
  if (!armed_.load(std::memory_order_acquire)) return std::nullopt;
  if (lane >= kMaxLanes) lane = kMaxLanes - 1;
  const size_t slot = static_cast<size_t>(point) * kMaxLanes + lane;
  const uint64_t n = counters_[slot].fetch_add(1, std::memory_order_relaxed) + 1;
  for (const ArmedFault& f : entries_) {
    if (f.point != point || f.lane != lane) continue;
    if (n >= f.trigger && n < f.trigger + f.repeat) {
      fired_.fetch_add(1, std::memory_order_relaxed);
      if (fire_observer_) fire_observer_(point, f.kind, lane);
      return Fired{f.kind, f.delay_us};
    }
  }
  return std::nullopt;
}

uint64_t Injector::hits(Point point, size_t lane) const {
  if (lane >= kMaxLanes) lane = kMaxLanes - 1;
  const size_t slot = static_cast<size_t>(point) * kMaxLanes + lane;
  return counters_[slot].load(std::memory_order_relaxed);
}

}  // namespace fault
}  // namespace aseq
