#ifndef ASEQ_FAULT_FAULT_H_
#define ASEQ_FAULT_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace aseq {
namespace fault {

/// \brief The failure modes the injector can simulate.
enum class Kind : uint8_t {
  /// The component dies abruptly. A shard worker exits its loop without
  /// cleanup (the supervisor must detect and restart it); a coordinator
  /// component terminates the whole process with kCrashExitCode
  /// (recovery is then the --restore-from path).
  kCrash,
  /// The component hangs: a shard worker parks indefinitely and stops
  /// heartbeating until the supervisor quarantines it. Coordinator points
  /// ignore stall (a stalled coordinator would hang the test harness).
  kStall,
  /// The component runs, but each faulted step takes an injected,
  /// seed-deterministic delay — the knob for forcing queue backlog and
  /// overload-control behavior without real load.
  kSlow,
  /// An I/O operation fails with Status::IoError (checkpoint writes).
  kIoError,
  /// The routing layer reports a (simulated) full-queue backpressure
  /// signal for the current event, forcing the overload policy to engage
  /// deterministically.
  kOverload,
};

/// \brief The named code locations faults can be armed at.
///
/// The catalog (docs/internals.md §14):
///   router.route  one hit per event routed by exec::ShardRouter
///                 (coordinator thread; honors crash, overload)
///   worker.op     one hit per op executed by a ShardedExecutor worker,
///                 counted per shard via the spec's @shard selector
///                 (honors crash, stall, slow)
///   ckpt.write    one hit per snapshot file written by
///                 ckpt::WriteSnapshotFile (honors io-error, crash)
///   admit.batch   one hit per plan::BatchAdmitter::AdmitBatch call
///                 (honors crash, slow)
enum class Point : uint8_t {
  kRouterRoute = 0,
  kWorkerOp,
  kCkptWrite,
  kAdmitBatch,
};
inline constexpr size_t kNumPoints = 4;

/// Exit code a simulated coordinator crash terminates the process with,
/// so harnesses can tell an injected crash from a real abort.
inline constexpr int kCrashExitCode = 70;

const char* PointName(Point p);
const char* KindName(Kind k);

/// \brief One armed fault: fires at a specific hit count of one point.
struct ArmedFault {
  Point point = Point::kWorkerOp;
  Kind kind = Kind::kCrash;
  /// Lane selector: worker.op counts hits per shard, so `worker.op@2`
  /// arms against shard 2's own (deterministic) op sequence. Coordinator
  /// points always count on lane 0.
  uint32_t lane = 0;
  /// Fires on hits [trigger, trigger + repeat) of (point, lane); 1-based.
  uint64_t trigger = 1;
  uint64_t repeat = 1;
  /// kSlow: per-fire delay, derived deterministically from the arming
  /// seed so a replayed run injects byte-identical timing pressure.
  uint32_t delay_us = 0;
};

/// \brief Deterministic fault-injection registry.
///
/// Faults are armed before a run from a `--fault-spec` string and fire at
/// exact hit counts of compiled-in injection points. Because every
/// counted sequence is deterministic — the coordinator routes events in
/// stream order, and each shard worker executes its routed ops in queue
/// order — a given spec reproduces the same failure at the same state on
/// every run, which is what lets the recovery tests demand bit-exact
/// equivalence with an unfailed run.
///
/// Hit() is called from worker threads and the coordinator concurrently:
/// counters are per-(point, lane) atomics, and the armed entry list is
/// immutable while armed (Arm/Disarm must not race with Hit — arm before
/// the run starts, disarm after it joins).
class Injector {
 public:
  /// The process-wide injector every instrumented component consults.
  static Injector& Global();

  /// What a fired fault tells the injection site to do.
  struct Fired {
    Kind kind = Kind::kCrash;
    uint32_t delay_us = 0;  // meaningful for kSlow
  };

  /// Arms from a spec string: comma-separated entries of the form
  ///   point[@lane]:trigger[:kind[:repeat]]
  /// e.g. "worker.op@1:500:crash", "ckpt.write:2:io-error",
  /// "worker.op@0:100:slow:2048". Kind defaults to crash; repeat defaults
  /// to 1 (256 for slow — one slow hit is rarely observable). `seed`
  /// derives the slow-fire delays. Replaces any previous arming and
  /// resets all hit counters. An empty spec is InvalidArgument.
  Status Arm(std::string_view spec, uint64_t seed = 0);

  /// Clears all armed faults and counters.
  void Disarm();

  /// Cheap armed check for hot paths (one relaxed load).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Counts one hit of `point` on `lane` and returns the fault to
  /// simulate, if one fires. Call sites act only on the kinds they
  /// support and ignore the rest.
  std::optional<Fired> Hit(Point point, size_t lane = 0);

  /// Total faults fired since arming (all points).
  uint64_t fired_count() const {
    return fired_.load(std::memory_order_relaxed);
  }

  /// Hits counted at (point, lane) since arming.
  uint64_t hits(Point point, size_t lane = 0) const;

  const std::vector<ArmedFault>& entries() const { return entries_; }

  /// Observer invoked with (point, kind, lane) each time a fault fires —
  /// the telemetry layer registers one to stamp a "fault-injected" trace
  /// instant (src/obs/). Called from whatever thread hit the point
  /// (workers, coordinator), so the observer must be thread-safe; it runs
  /// before the call site simulates the failure (a crash observer call IS
  /// delivered). Register before arming, clear (empty function) after the
  /// run joins — the same no-race-with-Hit contract as Arm/Disarm.
  void SetFireObserver(std::function<void(Point, Kind, size_t)> observer) {
    fire_observer_ = std::move(observer);
  }

 private:
  /// Per-(point, lane) hit counters; lanes beyond the cap share the last
  /// slot (the executor caps shards at 64 well below this).
  static constexpr size_t kMaxLanes = 128;

  std::atomic<bool> armed_{false};
  std::vector<ArmedFault> entries_;
  std::array<std::atomic<uint64_t>, kNumPoints * kMaxLanes> counters_{};
  std::atomic<uint64_t> fired_{0};
  std::function<void(Point, Kind, size_t)> fire_observer_;
};

/// Parses a kind name ("crash", "stall", "slow", "io-error", "overload").
Status ParseKind(std::string_view name, Kind* kind);

}  // namespace fault
}  // namespace aseq

#endif  // ASEQ_FAULT_FAULT_H_
