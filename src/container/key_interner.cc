#include "container/key_interner.h"

#include <utility>

namespace aseq {
namespace container {

bool KeyInterner::RestoreFromValues(std::vector<Value> values) {
  Clear();
  index_.Reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    const uint64_t h = ValueHash{}(v);
    if (!index_.TryEmplaceHashed(h, v, static_cast<uint32_t>(i)).second) {
      Clear();
      return false;
    }
  }
  values_ = std::move(values);
  return true;
}

}  // namespace container
}  // namespace aseq
