#ifndef ASEQ_CONTAINER_FLAT_MAP_H_
#define ASEQ_CONTAINER_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace aseq {
namespace container {

/// \brief SwissTable-style open-addressing hash map for the HPC hot path.
///
/// Layout: a power-of-two array of slots plus one control byte per slot.
/// A control byte is either kCtrlEmpty, kCtrlDeleted (tombstone), or the
/// low 7 bits of the key's hash (H2) — so a probe rejects almost every
/// non-matching slot on the control byte alone, without touching the slot
/// array. The probe sequence starts at H1 = hash >> 7 and advances by
/// triangular numbers (+1, +2, +3, ...), which visits every slot exactly
/// once when the capacity is a power of two.
///
/// Deliberate differences from a general-purpose table, matching how the
/// engine uses it:
///  - All hot-path entry points take a precomputed hash (*Hashed): the
///    batched engine hashes keys once at staging time, prefetches with
///    PrefetchSlot, and probes later. The Hash functor is only invoked on
///    rehash and in the hashless convenience wrappers.
///  - Keys and values must be default-constructible and assignable; empty
///    slots hold default-constructed elements (no raw-storage juggling).
///    Erase re-assigns a default element so owned heap memory is released
///    immediately.
///  - Iteration order is the physical slot order. It depends on the
///    insert/erase history, so the engine never lets it escape into
///    observable output: the partition slab (slab_pool.h) is the
///    iteration authority, and this table is a pure index that a restore
///    rebuilds from scratch.
///
/// Probe accounting: every Find/TryEmplace/Erase counts one probe plus
/// one step per control byte inspected (a direct hit is 1 step). The
/// engine surfaces the totals as EngineStats::ht_probes/ht_probe_steps.
template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class FlatMap {
 public:
  static constexpr uint8_t kCtrlEmpty = 0x80;
  static constexpr uint8_t kCtrlDeleted = 0x81;

  FlatMap() = default;
  FlatMap(FlatMap&&) noexcept = default;
  FlatMap& operator=(FlatMap&&) noexcept = default;
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Total slots (power of two, or 0 before the first insert).
  size_t capacity() const { return ctrl_.size(); }

  uint64_t probes() const { return probes_; }
  uint64_t probe_steps() const { return probe_steps_; }

  /// Prefetches the control byte and slot a probe for `hash` will touch
  /// first. Issued at staging time, one batch ahead of the probe itself.
  void PrefetchSlot(uint64_t hash) const {
    if (ctrl_.empty()) return;
    const size_t pos = H1(hash) & (ctrl_.size() - 1);
    __builtin_prefetch(ctrl_.data() + pos, /*rw=*/0, /*locality=*/3);
    __builtin_prefetch(slots_.data() + pos, /*rw=*/0, /*locality=*/3);
  }

  V* FindHashed(uint64_t hash, const K& key) {
    if (ctrl_.empty()) return nullptr;
    const size_t mask = ctrl_.size() - 1;
    size_t pos = H1(hash) & mask;
    const uint8_t h2 = H2(hash);
    size_t step = 0;
    ++probes_;
    for (;;) {
      ++probe_steps_;
      const uint8_t c = ctrl_[pos];
      if (c == h2 && Eq{}(slots_[pos].key, key)) return &slots_[pos].value;
      if (c == kCtrlEmpty) return nullptr;
      pos = (pos + ++step) & mask;
    }
  }
  const V* FindHashed(uint64_t hash, const K& key) const {
    return const_cast<FlatMap*>(this)->FindHashed(hash, key);
  }

  /// Inserts `key -> value` unless the key is present; returns the live
  /// value slot and whether an insert happened. Tombstones along the probe
  /// path are reused, so erase-heavy workloads do not bloat the table.
  std::pair<V*, bool> TryEmplaceHashed(uint64_t hash, const K& key, V value) {
    if (GrowthNeeded()) Rehash(CapacityFor(size_ + 1));
    const size_t mask = ctrl_.size() - 1;
    size_t pos = H1(hash) & mask;
    const uint8_t h2 = H2(hash);
    size_t step = 0;
    size_t insert_pos = kNoPos;
    ++probes_;
    for (;;) {
      ++probe_steps_;
      const uint8_t c = ctrl_[pos];
      if (c == h2 && Eq{}(slots_[pos].key, key)) {
        return {&slots_[pos].value, false};
      }
      if (c == kCtrlDeleted && insert_pos == kNoPos) insert_pos = pos;
      if (c == kCtrlEmpty) {
        if (insert_pos == kNoPos) insert_pos = pos;
        break;
      }
      pos = (pos + ++step) & mask;
    }
    if (ctrl_[insert_pos] == kCtrlDeleted) --tombstones_;
    ctrl_[insert_pos] = h2;
    slots_[insert_pos].key = key;
    slots_[insert_pos].value = std::move(value);
    ++size_;
    return {&slots_[insert_pos].value, true};
  }

  /// Erases `key`; returns whether it was present. The slot becomes a
  /// tombstone (probe chains through it stay intact) holding
  /// default-constructed elements.
  bool EraseHashed(uint64_t hash, const K& key) {
    if (ctrl_.empty()) return false;
    const size_t mask = ctrl_.size() - 1;
    size_t pos = H1(hash) & mask;
    const uint8_t h2 = H2(hash);
    size_t step = 0;
    ++probes_;
    for (;;) {
      ++probe_steps_;
      const uint8_t c = ctrl_[pos];
      if (c == h2 && Eq{}(slots_[pos].key, key)) {
        EraseSlot(pos);
        return true;
      }
      if (c == kCtrlEmpty) return false;
      pos = (pos + ++step) & mask;
    }
  }

  // Hashless conveniences (tests, cold paths).
  V* Find(const K& key) { return FindHashed(Hash{}(key), key); }
  const V* Find(const K& key) const { return FindHashed(Hash{}(key), key); }
  std::pair<V*, bool> TryEmplace(const K& key, V value) {
    return TryEmplaceHashed(Hash{}(key), key, std::move(value));
  }
  bool Erase(const K& key) { return EraseHashed(Hash{}(key), key); }

  /// Pre-sizes the table for `n` live entries without rehash churn.
  void Reserve(size_t n) {
    const size_t cap = CapacityFor(n);
    if (cap > ctrl_.size()) Rehash(cap);
  }

  /// Drops every entry but keeps the allocation.
  void Clear() {
    ctrl_.assign(ctrl_.size(), kCtrlEmpty);
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
    tombstones_ = 0;
  }

  /// \brief Slot-order iterator over live entries.
  ///
  /// Supports erase-during-scan via FlatMap::Erase(iterator): the
  /// ScanTotal-style sweep pattern `it = map.Erase(it)` / `++it`.
  class iterator {
   public:
    iterator(FlatMap* map, size_t pos) : map_(map), pos_(pos) { SkipDead(); }

    const K& key() const { return map_->slots_[pos_].key; }
    V& value() const { return map_->slots_[pos_].value; }

    iterator& operator++() {
      ++pos_;
      SkipDead();
      return *this;
    }
    bool operator==(const iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const iterator& o) const { return pos_ != o.pos_; }

   private:
    friend class FlatMap;
    void SkipDead() {
      while (pos_ < map_->ctrl_.size() && map_->ctrl_[pos_] >= kCtrlEmpty) {
        ++pos_;
      }
    }
    FlatMap* map_;
    size_t pos_;
  };

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, ctrl_.size()); }

  /// Slot-order visit of every live entry (const contexts, e.g. engine
  /// checkpointing — which sorts what it collects, since slot order is
  /// history-dependent and must not leak into a canonical payload).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] < kCtrlEmpty) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// Erases the entry at `it`; returns the iterator to the next live entry.
  iterator Erase(iterator it) {
    assert(it.pos_ < ctrl_.size() && ctrl_[it.pos_] < kCtrlEmpty);
    EraseSlot(it.pos_);
    ++it.pos_;
    it.SkipDead();
    return it;
  }

 private:
  struct Slot {
    K key{};
    V value{};
  };

  static constexpr size_t kNoPos = static_cast<size_t>(-1);

  static size_t H1(uint64_t hash) { return static_cast<size_t>(hash >> 7); }
  static uint8_t H2(uint64_t hash) {
    return static_cast<uint8_t>(hash & 0x7F);
  }

  /// Grow when live entries + tombstones would exceed 7/8 of capacity —
  /// some empty control bytes must survive for probes to terminate.
  bool GrowthNeeded() const {
    return ctrl_.empty() || (size_ + tombstones_ + 1) * 8 > ctrl_.size() * 7;
  }

  /// Smallest power-of-two capacity (>= 16, >= current) keeping `n` live
  /// entries under the 7/8 bound. Deliberately ignores tombstones: a
  /// tombstone-heavy trigger rehashes in place, dropping them for free.
  size_t CapacityFor(size_t n) const {
    size_t cap = ctrl_.size() < 16 ? 16 : ctrl_.size();
    while (n * 8 > cap * 7) cap <<= 1;
    return cap;
  }

  void EraseSlot(size_t pos) {
    ctrl_[pos] = kCtrlDeleted;
    slots_[pos] = Slot{};
    ++tombstones_;
    --size_;
  }

  void Rehash(size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0 && new_cap >= 16);
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<Slot> old_slots = std::move(slots_);
    ctrl_.assign(new_cap, kCtrlEmpty);
    slots_.clear();
    slots_.resize(new_cap);
    tombstones_ = 0;
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] >= kCtrlEmpty) continue;
      const uint64_t hash = Hash{}(old_slots[i].key);
      size_t pos = H1(hash) & mask;
      size_t step = 0;
      while (ctrl_[pos] != kCtrlEmpty) pos = (pos + ++step) & mask;
      ctrl_[pos] = H2(hash);
      slots_[pos] = std::move(old_slots[i]);
    }
  }

  std::vector<uint8_t> ctrl_;
  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
  // Probe accounting is observational, so const lookups may bump it.
  mutable uint64_t probes_ = 0;
  mutable uint64_t probe_steps_ = 0;
};

}  // namespace container
}  // namespace aseq

#endif  // ASEQ_CONTAINER_FLAT_MAP_H_
