#ifndef ASEQ_CONTAINER_SLAB_POOL_H_
#define ASEQ_CONTAINER_SLAB_POOL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace aseq {
namespace container {

/// \brief Slot-indexed object pool backed by fixed-size slabs.
///
/// Objects live at stable addresses in chunked blocks (no reallocation
/// ever moves an element) and are addressed by a dense uint32_t slot
/// index. Freed slots go onto a LIFO freelist and are reused before the
/// high-water mark `end()` grows, so a steady-state churn workload stays
/// compact and slot-order iteration stays cheap.
///
/// The slab is the engine's *iteration authority*: everything observable
/// through iteration order (floating-point merge order of SUM/AVG scans,
/// per-group Poll output order) follows ascending slot order, and slot
/// assignment is a pure function of the operation history (freelist LIFO,
/// else append). Checkpoints therefore serialize the exact geometry —
/// each entry's slot, the freelist in stack order, and the high-water
/// mark — and a restore reproduces it with ResetGeometry + EmplaceAt +
/// RestoreFreelist, making post-restore behavior byte-identical to the
/// uninterrupted run. (The hash index over the slab has no such
/// obligation and is rebuilt fresh.)
///
/// The high-water mark never shrinks: a sweep is O(end), not O(live).
/// Erase-heavy phases leave dead slots that later inserts reclaim
/// LIFO-first; ScanTotal-style sweeps already erase-and-reuse, keeping
/// end near the live peak.
template <typename T, size_t kBlockSlots = 64>
class SlabPool {
 public:
  SlabPool() = default;
  ~SlabPool() { Clear(); }

  SlabPool(SlabPool&&) noexcept = default;
  SlabPool& operator=(SlabPool&&) noexcept = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Live objects.
  size_t size() const { return size_; }
  /// High-water slot bound: every live slot is < end(). Iterate with
  /// `for (uint32_t s = 0; s < pool.end(); ++s) if (pool.live(s)) ...`.
  uint32_t end() const { return end_; }
  bool live(uint32_t slot) const { return live_[slot] != 0; }

  T& at(uint32_t slot) {
    assert(slot < end_ && live_[slot]);
    return *Ptr(slot);
  }
  const T& at(uint32_t slot) const {
    assert(slot < end_ && live_[slot]);
    return *const_cast<SlabPool*>(this)->Ptr(slot);
  }

  /// Constructs a new object in the most recently freed slot (LIFO), or in
  /// a fresh slot at the high-water mark. Returns the slot index.
  template <typename... Args>
  uint32_t Emplace(Args&&... args) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = end_++;
      if (slot % kBlockSlots == 0) blocks_.push_back(NewBlock());
      live_.push_back(0);
    }
    new (RawPtr(slot)) T(std::forward<Args>(args)...);
    live_[slot] = 1;
    ++size_;
    return slot;
  }

  /// Destroys the object at `slot` and pushes the slot onto the freelist.
  void Free(uint32_t slot) {
    assert(slot < end_ && live_[slot]);
    Ptr(slot)->~T();
    live_[slot] = 0;
    --size_;
    free_.push_back(slot);
  }

  /// Freelist in stack order (back() is reused next). For checkpointing.
  const std::vector<uint32_t>& freelist() const { return free_; }

  /// Destroys every live object and resets to the empty pool.
  void Clear() {
    for (uint32_t s = 0; s < end_; ++s) {
      if (live_[s]) Ptr(s)->~T();
    }
    blocks_.clear();
    live_.clear();
    free_.clear();
    end_ = 0;
    size_ = 0;
  }

  // ---- Restore path: rebuild an exact checkpointed geometry. ----

  /// Clear + pre-extend to `end` all-dead slots with an empty freelist.
  /// Follow with EmplaceAt for each live entry and RestoreFreelist.
  void ResetGeometry(uint32_t end) {
    Clear();
    end_ = end;
    live_.assign(end, 0);
    const size_t nblocks = (static_cast<size_t>(end) + kBlockSlots - 1) /
                           kBlockSlots;
    blocks_.reserve(nblocks);
    for (size_t b = 0; b < nblocks; ++b) blocks_.push_back(NewBlock());
  }

  /// Constructs an object in a specific (dead, < end) slot.
  template <typename... Args>
  T& EmplaceAt(uint32_t slot, Args&&... args) {
    assert(slot < end_ && !live_[slot]);
    T* obj = new (RawPtr(slot)) T(std::forward<Args>(args)...);
    live_[slot] = 1;
    ++size_;
    return *obj;
  }

  /// Overwrites the freelist verbatim (stack order as checkpointed). The
  /// caller has validated that the slots are dead and < end.
  void RestoreFreelist(std::vector<uint32_t> freelist) {
    free_ = std::move(freelist);
  }

 private:
  struct Block {
    alignas(T) unsigned char bytes[sizeof(T) * kBlockSlots];
  };

  static std::unique_ptr<Block> NewBlock() {
    return std::make_unique<Block>();
  }

  void* RawPtr(uint32_t slot) {
    return blocks_[slot / kBlockSlots]->bytes +
           sizeof(T) * (slot % kBlockSlots);
  }
  T* Ptr(uint32_t slot) {
    return std::launder(reinterpret_cast<T*>(RawPtr(slot)));
  }

  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<uint8_t> live_;
  std::vector<uint32_t> free_;
  uint32_t end_ = 0;
  size_t size_ = 0;
};

}  // namespace container
}  // namespace aseq

#endif  // ASEQ_CONTAINER_SLAB_POOL_H_
