#ifndef ASEQ_CONTAINER_KEY_INTERNER_H_
#define ASEQ_CONTAINER_KEY_INTERNER_H_

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash_mix.h"
#include "common/value.h"
#include "container/flat_map.h"

namespace aseq {
namespace container {

/// Sentinel id: "no value here" (an uncovered part of an InternedKey, or a
/// lookup miss). Never a valid interned id.
inline constexpr uint32_t kNoId = 0xFFFFFFFFu;

/// Maximum partition-key parts an InternedKey can carry. Queries with
/// wider composite keys are rejected at engine-construction time
/// (CreateAseqEngine returns Unsupported) rather than silently truncated.
inline constexpr size_t kMaxKeyParts = 8;

/// \brief Maps distinct partition-key Values to dense uint32_t ids.
///
/// Interning is Value::Equals-consistent (Value(1) and Value(1.0) are
/// equal and hash alike, so they share one id), and ids are assigned in
/// first-intern order — a pure function of the operation history, so a
/// restored interner reproduces exactly the ids the original run would
/// have assigned to the stream suffix.
///
/// The table is append-only by design: partition keys recur (that is the
/// point of partitioning), so forgetting ids would only force re-interning
/// churn, and id stability is what lets checkpoints and the shard router
/// speak in ids at all. The cost is one live Value per distinct key value
/// ever seen — bounded by key cardinality, the same bound the partition
/// map itself lives under.
class KeyInterner {
 public:
  /// Returns the id for `v`, interning it first if unseen.
  uint32_t Intern(const Value& v) { return InternHashed(ValueHash{}(v), v); }

  /// Intern with a precomputed ValueHash — the staged hot path hashes at
  /// extraction time, prefetches with PrefetchSlot, and interns a batch
  /// later against warm cache lines.
  uint32_t InternHashed(uint64_t hash, const Value& v) {
    auto [id, inserted] = index_.TryEmplaceHashed(
        hash, v, static_cast<uint32_t>(values_.size()));
    if (inserted) values_.push_back(v);
    return *id;
  }

  /// Returns the id for `v`, or kNoId if it was never interned. Does not
  /// mutate the table — negated-role probes use this so values that never
  /// keyed a partition are not interned.
  uint32_t Lookup(const Value& v) const {
    return LookupHashed(ValueHash{}(v), v);
  }

  uint32_t LookupHashed(uint64_t hash, const Value& v) const {
    const uint32_t* id = index_.FindHashed(hash, v);
    return id == nullptr ? kNoId : *id;
  }

  /// Warms the cache lines an Intern/Lookup for this hash will touch.
  void PrefetchSlot(uint64_t hash) const { index_.PrefetchSlot(hash); }

  const Value& ValueOf(uint32_t id) const {
    assert(id < values_.size());
    return values_[id];
  }

  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

  /// Values in id order — the checkpoint payload. Restoring this exact
  /// sequence via RestoreFromValues reproduces every id.
  const std::vector<Value>& values() const { return values_; }

  /// Rebuilds the interner from a checkpointed id-ordered value sequence.
  /// Returns false (leaving the interner cleared) if the sequence holds
  /// duplicate values — a corrupt payload that would alias two ids.
  bool RestoreFromValues(std::vector<Value> values);

  void Clear() {
    index_.Clear();
    values_.clear();
  }

  // Probe accounting + occupancy, folded into EngineStats::ht_* gauges.
  uint64_t probes() const { return index_.probes(); }
  uint64_t probe_steps() const { return index_.probe_steps(); }
  size_t capacity() const { return index_.capacity(); }

 private:
  FlatMap<Value, uint32_t, ValueHash> index_;
  std::vector<Value> values_;
};

/// \brief A partition key as a fixed-size array of interned ids.
///
/// Unused / uncovered parts hold kNoId. Equality is a word compare of the
/// id array — no Value comparisons on the probe path — and the key is
/// trivially copyable, so staging probes and expiry-heap entries carry it
/// by value with zero allocations.
struct InternedKey {
  std::array<uint32_t, kMaxKeyParts> ids;

  InternedKey() { ids.fill(kNoId); }

  friend bool operator==(const InternedKey& a, const InternedKey& b) {
    return a.ids == b.ids;
  }
  friend bool operator!=(const InternedKey& a, const InternedKey& b) {
    return !(a == b);
  }
};

/// Avalanching hash over the key's populated parts. Each combined word
/// packs the part's position with its id, so the hash is a pure function
/// of the key's content (which parts are set, and to what) while the
/// kNoId padding costs a predictable branch instead of a multiply — most
/// keys have one or two parts, not kMaxKeyParts.
struct InternedKeyHash {
  uint64_t operator()(const InternedKey& k) const {
    uint64_t h = 0x243f6a8885a308d3ULL;  // pi, for want of a better seed
    for (size_t i = 0; i < kMaxKeyParts; ++i) {
      if (k.ids[i] != kNoId) {
        h = HashCombine64(h, (static_cast<uint64_t>(i + 1) << 32) | k.ids[i]);
      }
    }
    return h;
  }
};

/// Hash for tables keyed directly by a single interned id.
struct IdHash {
  uint64_t operator()(uint32_t id) const { return HashMix64(id); }
};

}  // namespace container
}  // namespace aseq

#endif  // ASEQ_CONTAINER_KEY_INTERNER_H_
