#ifndef ASEQ_PLAN_ADMISSION_H_
#define ASEQ_PLAN_ADMISSION_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/event.h"
#include "common/schema.h"
#include "common/value.h"
#include "container/key_interner.h"
#include "metrics/metrics.h"
#include "query/compiled_query.h"
#include "query/predicate.h"

namespace aseq {
namespace plan {

/// \brief One compiled local-predicate term (an admission opcode).
///
/// At compile time each WHERE term that names exactly one attribute of the
/// element and a literal of a concrete type is specialized to a typed,
/// branch-light form: the evaluator checks the event attribute's runtime
/// type once and compares raw int64/double/string payloads directly,
/// bypassing EvalCmp's Value dispatch. Everything else — attr-vs-attr terms
/// on the same element, null literals, and typed terms whose runtime
/// attribute type does not match the literal (int64 attr vs double literal
/// and the like) — evaluates through the generic EvalCmp fallback, which
/// preserves the interpreted semantics bit-exactly (cross-type numeric
/// magnitude comparison, unordered combinations false for all but `!=`).
struct CmpInsn {
  enum class Kind : uint8_t {
    kInt64Lit,   // attr vs int64 literal (typed iff attr is int64 at runtime)
    kDoubleLit,  // attr vs double literal (typed iff attr is double)
    kStringLit,  // attr vs string literal (typed iff attr is a string)
    kGeneric,    // anything else: EvalCmp on the original operands
  };

  Kind kind = Kind::kGeneric;
  CmpOp op = CmpOp::kEq;
  /// Typed forms: true when the attr ref is the lhs operand ("A.x > 5"),
  /// false when the literal is ("5 > A.x").
  bool attr_on_lhs = true;
  /// Numeric typed forms: the comparison as a 4-bit truth table over the
  /// attr-vs-literal outcome — bit 0 = pass on equal, bit 1 = pass on
  /// attr < literal, bit 2 = pass on attr > literal, bit 3 = pass on
  /// unordered (NaN). Compiled from (op, attr_on_lhs), so evaluation is a
  /// branchless three-way compare + table lookup: an indirect branch on
  /// `op` would retarget on every insn and eat its cost in mispredicts.
  uint8_t truth = 0;
  /// Typed forms: the referenced attribute.
  AttrId attr = kInvalidAttr;
  /// Literal payload for the matching typed kind. The string literal
  /// borrows the query's own literal storage (the program never outlives
  /// its CompiledQuery).
  int64_t i64 = 0;
  double f64 = 0;
  const std::string* str = nullptr;
  /// The original WHERE term, for the generic fallback.
  const Comparison* src = nullptr;
};

/// \brief One fused role record: everything admission needs to know about
/// an event type acting as one pattern element, resolved at compile time.
///
/// Fuses the three interpreted admission steps — QualifiesFor's predicate
/// walk, the aggregate-carrier validation, and PartitionKeyFor's coverage
/// bookkeeping — into one flat record evaluated in a single pass.
struct RoleProgram {
  Role role;  // negated / elem_index / position, as dispatched by engines
  /// Compiled local predicates: insns()[first_cmp, first_cmp + num_cmps).
  uint32_t first_cmp = 0;
  uint32_t num_cmps = 0;
  /// True when this element carries the aggregate (SUM/AVG/MIN/MAX):
  /// admission validates the carrier attribute is present and numeric and
  /// loads its double value into the record.
  bool is_carrier = false;
  AttrId carrier_attr = kInvalidAttr;
  /// Bit p set = partition part p covers this element (compile-time: part
  /// coverage depends only on the element index).
  uint64_t covered_mask = 0;
  /// Negated roles: covered_mask covers every part (a fully covered probe
  /// targets one partition; a partial one scans). Always true for positive
  /// roles — every part covers every positive element by construction.
  bool fully_covered = true;
};

/// \brief One admitted (role, event) pair: the compact per-event admission
/// record AdmitBatch emits.
///
/// Key part values are *borrowed* from the event (valid while the event
/// is), paired with their precomputed ValueHashes; the interning pass maps
/// them to dense ids (key/key_hash) when a KeyInterner is supplied.
struct AdmissionRecord {
  const RoleProgram* role = nullptr;
  /// ToDouble of the carrier attribute when role->is_carrier, else 0 —
  /// exactly the value the engines fed to OnStart/ApplyUpdate.
  double carrier = 0.0;
  /// Interned key + sealed InternedKeyHash (AdmitBatch with an interner
  /// only; meaningless for partially covered negated roles, which scan).
  container::InternedKey key;
  uint64_t key_hash = 0;
  /// Borrowed covered-part values (nullptr = part does not cover this
  /// element) and their ValueHashes.
  std::array<const Value*, container::kMaxKeyParts> part_vals;
  std::array<uint64_t, container::kMaxKeyParts> part_hashes;
};

/// \brief A CompiledQuery lowered to a flat per-event-type admission
/// program: a dense role table (EventTypeId-indexed, no hash probe), typed
/// comparison opcodes, and fused role records.
///
/// The program borrows the CompiledQuery's predicate and literal storage:
/// the query must outlive the program (engines own both, declared in that
/// order).
///
/// Admission semantics are bit-exact with the interpreted
/// CompiledQuery::QualifiesFor / PartitionKeyFor path; the differential
/// fuzz suite (tests/admission_equivalence_test.cc) pins that equivalence.
class AdmissionProgram {
 public:
  explicit AdmissionProgram(const CompiledQuery& query);

  // The program holds pointers into its own roles_ vector via the records
  // AdmitRole hands out only transiently; the program itself is safe to
  // copy/move (records must not outlive the program they came from).

  /// Roles played by `type`, in the query's canonical dispatch order
  /// (positive roles by descending position, then negation roles) — the
  /// same order CompiledQuery::FindRoles yields. Empty span = the type
  /// does not occur in the pattern.
  std::span<const RoleProgram> RolesFor(EventTypeId type) const {
    if (type >= spans_.size()) return {};
    const Span s = spans_[type];
    return {roles_.data() + s.first, s.count};
  }

  /// True when events of `type` can affect this query at all. Multi-query
  /// engines use this as a type-level early-out; BatchPrefilter gathers it
  /// columnarly over whole batches. Backed by a dense byte table so the
  /// per-event cost is one bounds check + one byte load.
  bool Relevant(EventTypeId type) const {
    return type < type_relevant_.size() && type_relevant_[type] != 0;
  }

  /// The role record for `type` acting as pattern element `elem_index`,
  /// or nullptr (oracle-style per-element lookup).
  const RoleProgram* FindRole(EventTypeId type, size_t elem_index) const {
    for (const RoleProgram& rp : RolesFor(type)) {
      if (rp.role.elem_index == elem_index) return &rp;
    }
    return nullptr;
  }

  size_t num_parts() const { return part_attrs_.size(); }
  bool partitioned() const { return !part_attrs_.empty(); }
  const std::vector<AttrId>& part_attrs() const { return part_attrs_; }
  uint64_t full_mask() const { return full_mask_; }
  const CompiledQuery& query() const { return *query_; }
  std::span<const CmpInsn> insns() const { return insns_; }

  /// Admits `e` for one role in a single fused pass: typed predicate
  /// evaluation, carrier validation + load, and partition-key extraction
  /// (borrowed values + ValueHashes into `rec`; `interner`, if given, is
  /// only prefetched — interning is the caller's batch pass). Returns
  /// false when the event does not qualify or a covering part's attribute
  /// is missing/null. Counters accrue on `stats` when non-null.
  bool AdmitRole(const Event& e, const RoleProgram& rp, AdmissionRecord* rec,
                 EngineStats* stats,
                 const container::KeyInterner* interner = nullptr) const;

  /// Materializes a record's borrowed parts into a PartitionKey (+ optional
  /// per-part coverage flags), reusing the scratch's existing capacity —
  /// exactly PartitionKeyFor's output, minus the per-call reallocation.
  void MaterializeKey(const AdmissionRecord& rec, PartitionKey* key,
                      std::vector<bool>* covered_out = nullptr) const;

 private:
  struct Span {
    uint32_t first = 0;
    uint32_t count = 0;
  };

  void CompileRole(const Role& role);
  CmpInsn CompileCmp(const Comparison& cmp) const;

  const CompiledQuery* query_ = nullptr;
  std::vector<RoleProgram> roles_;  // grouped by type, dispatch order
  std::vector<Span> spans_;         // EventTypeId-indexed
  /// Dense EventTypeId-indexed relevance bytes (1 = the type plays a role
  /// in the pattern). Mirrors spans_, in a form the prefilter's columnar
  /// pass can gather without touching span metadata.
  std::vector<uint8_t> type_relevant_;
  std::vector<CmpInsn> insns_;
  std::vector<AttrId> part_attrs_;  // partition part attributes, in order
  uint64_t full_mask_ = 0;
};

/// \brief Vectorized admission prefilter: one columnar pass over a batch's
/// event types against a program's relevance table, producing a per-event
/// admit bitmask (bit i set = batch[i] can stage a record for the query).
///
/// The pass touches only the event-type column and a dense byte table, so
/// it runs at memory speed and vectorizes; consumers then skip the
/// role-table walk for masked-out events entirely. BatchAdmitter accepts
/// the mask (see AdmitBatch) and the shard routers use the whole-batch
/// early-out: a query none of whose bits are set is not admitted at all
/// for that batch. The mask is exactly `program.Relevant(type)` per event,
/// so consuming it is bit-exact with the unfiltered walk — irrelevant
/// events can never produce an admission record.
class BatchPrefilter {
 public:
  /// Rebuilds the mask for `batch` against `program`. Returns the number
  /// of relevant events (0 = the whole batch is invisible to the query).
  size_t Scan(const AdmissionProgram& program, std::span<const Event> batch);

  /// Whether batch event `i` of the last Scan is relevant.
  bool Relevant(size_t i) const {
    return ((mask_[i >> 6] >> (i & 63)) & 1) != 0;
  }

  size_t relevant_count() const { return relevant_; }
  std::span<const uint64_t> mask() const { return mask_; }

 private:
  std::vector<uint64_t> mask_;  // ceil(batch/64) words, clear-not-shrink
  size_t relevant_ = 0;
};

/// \brief Per-event spans into BatchAdmitter's record array.
struct EventAdmission {
  uint32_t first_record = 0;
  uint32_t num_records = 0;
};

/// \brief Batched columnar admission: runs an AdmissionProgram over an
/// event span and emits compact per-event admission records.
///
/// Per (event, role): fused qualify + extract + carrier load, with the
/// key-part ValueHashes prefetching the interner slots they will probe;
/// each admitted record is then interned on the spot, while it is still
/// hot and the prefetches are in flight. Interning runs in record
/// (= arrival/probe) order: positive roles intern unseen values (they may
/// create partitions), negated roles use non-mutating lookups (a miss
/// yields kNoId, which matches no live partition) — id assignment stays a
/// pure function of the event stream, so checkpoints and the shard router
/// can speak in ids — then each targeting record's InternedKeyHash is
/// sealed.
///
/// Scratch is reused (clear-not-shrink) across batches: admission after
/// warm-up performs zero allocations.
class BatchAdmitter {
 public:
  /// Admits every event of `batch`. `interner` is optional: without one,
  /// interning is skipped and records carry only borrowed values + hashes
  /// (the shard router and the match-constructing engines intern or copy
  /// themselves). Counters accrue on `stats` when non-null. `prefilter`,
  /// when given, must hold a Scan of this (program, batch): masked-out
  /// events skip the role-table walk and emit an empty record span —
  /// bit-exact with the unfiltered pass, since the mask is the program's
  /// own type-relevance predicate.
  void AdmitBatch(const AdmissionProgram& program, std::span<const Event> batch,
                  container::KeyInterner* interner, EngineStats* stats,
                  const BatchPrefilter* prefilter = nullptr);

  std::span<const AdmissionRecord> records() const {
    return {records_.data(), used_};
  }
  std::span<const EventAdmission> events() const { return events_; }

  /// The admitted records of batch event `i`.
  std::span<const AdmissionRecord> RecordsFor(size_t i) const {
    const EventAdmission& ea = events_[i];
    return {records_.data() + ea.first_record, ea.num_records};
  }

 private:
  /// Record slots are recycled in place across batches (high-water sizing,
  /// no per-candidate construction): a rejected candidate costs nothing,
  /// an admitted one only the fields AdmitRole writes.
  std::vector<AdmissionRecord> records_;
  size_t used_ = 0;
  std::vector<EventAdmission> events_;
};

}  // namespace plan
}  // namespace aseq

#endif  // ASEQ_PLAN_ADMISSION_H_
