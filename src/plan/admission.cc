#include "plan/admission.h"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "fault/fault.h"

namespace aseq {
namespace plan {

namespace {

/// Value of an operand evaluated against a single event — the generic
/// fallback mirrors the interpreted QualifiesFor exactly (a missing
/// attribute reads as a null Value).
const Value& OperandValue(const Operand& op, const Event& e) {
  if (op.is_attr_ref()) return e.GetAttr(op.attr);
  return op.literal;
}

/// Relational compare over raw payloads, phrased exactly as EvalCmp
/// phrases it over Values (kLe = !(b < a), kGe = !(a < b)) so the typed
/// paths agree with the interpreted path on every input — including
/// NaN doubles, where a naive `a <= b` would diverge.
template <typename T>
bool OrderedCmp(CmpOp op, const T& a, const T& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return !(a == b);
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return !(b < a);
    case CmpOp::kGt:
      return b < a;
    case CmpOp::kGe:
      return !(a < b);
  }
  return false;
}

/// CmpInsn::truth bit positions (see the field comment). The unordered
/// outcome encodes EvalCmp's NaN behaviour: ops phrased as negated
/// comparisons (kNe, kLe, kGe) pass on NaN, the rest fail.
constexpr uint8_t kPassEq = 1u << 0;
constexpr uint8_t kPassLt = 1u << 1;
constexpr uint8_t kPassGt = 1u << 2;
constexpr uint8_t kPassUo = 1u << 3;

uint8_t TruthTableFor(CmpOp op, bool attr_on_lhs) {
  uint8_t t = 0;
  switch (op) {
    case CmpOp::kEq:
      t = kPassEq;
      break;
    case CmpOp::kNe:
      t = kPassLt | kPassGt | kPassUo;
      break;
    case CmpOp::kLt:
      t = kPassLt;
      break;
    case CmpOp::kLe:  // !(b < a): also passes on unordered
      t = kPassEq | kPassLt | kPassUo;
      break;
    case CmpOp::kGt:
      t = kPassGt;
      break;
    case CmpOp::kGe:  // !(a < b): also passes on unordered
      t = kPassEq | kPassGt | kPassUo;
      break;
  }
  if (!attr_on_lhs) {
    // Literal-on-lhs ("5 > A.x") evaluated attr-centrically: mirror the
    // ordering bits (lit > attr ⇔ attr < lit); equal/unordered symmetric.
    const uint8_t lt = (t & kPassLt) != 0 ? kPassGt : 0;
    const uint8_t gt = (t & kPassGt) != 0 ? kPassLt : 0;
    t = (t & (kPassEq | kPassUo)) | lt | gt;
  }
  return t;
}

/// Branchless truth-table evaluation: outcome index 0 = equal, 1 = less,
/// 2 = greater, 3 = unordered (NaN compares all-false).
inline bool TruthCmp(uint8_t truth, int64_t av, int64_t lit) {
  const int l = av < lit ? 1 : 0;
  const int g = av > lit ? 1 : 0;
  return ((truth >> (l + 2 * g)) & 1) != 0;
}

inline bool TruthCmp(uint8_t truth, double av, double lit) {
  const int l = av < lit ? 1 : 0;
  const int g = av > lit ? 1 : 0;
  const int e = av == lit ? 1 : 0;
  return ((truth >> (l + 2 * g + 3 * (1 - l - g - e))) & 1) != 0;
}

}  // namespace

AdmissionProgram::AdmissionProgram(const CompiledQuery& query)
    : query_(&query) {
  const PartitionSpec& spec = query.partition_spec();
  part_attrs_.reserve(spec.parts.size());
  for (const PartitionSpec::Part& part : spec.parts) {
    part_attrs_.push_back(part.attr);
  }
  full_mask_ = (uint64_t{1} << part_attrs_.size()) - 1;

  // Dense role table, ascending type id; within a type the query's
  // canonical dispatch order (FindRoles) is preserved verbatim.
  EventTypeId max_type = 0;
  for (const auto& [type, roles] : query.roles()) {
    max_type = std::max(max_type, type);
  }
  spans_.resize(query.roles().empty() ? 0 : max_type + 1);
  type_relevant_.assign(spans_.size(), 0);
  for (EventTypeId type = 0; type < spans_.size(); ++type) {
    const std::vector<Role>* roles = query.FindRoles(type);
    if (roles == nullptr) continue;
    spans_[type].first = static_cast<uint32_t>(roles_.size());
    for (const Role& role : *roles) CompileRole(role);
    spans_[type].count =
        static_cast<uint32_t>(roles_.size()) - spans_[type].first;
    type_relevant_[type] = spans_[type].count != 0 ? 1 : 0;
  }
}

CmpInsn AdmissionProgram::CompileCmp(const Comparison& cmp) const {
  CmpInsn insn;
  insn.op = cmp.op;
  insn.src = &cmp;
  // Typed specialization applies when exactly one operand is an attribute
  // reference and the other a literal of a concrete type; the typed form
  // still falls back to EvalCmp at runtime if the attribute's value is not
  // of the literal's type (missing attr, cross-type numeric, ...).
  const Operand* attr_op = nullptr;
  const Operand* lit_op = nullptr;
  if (cmp.lhs.is_attr_ref() && !cmp.rhs.is_attr_ref()) {
    attr_op = &cmp.lhs;
    lit_op = &cmp.rhs;
    insn.attr_on_lhs = true;
  } else if (!cmp.lhs.is_attr_ref() && cmp.rhs.is_attr_ref()) {
    attr_op = &cmp.rhs;
    lit_op = &cmp.lhs;
    insn.attr_on_lhs = false;
  }
  if (attr_op == nullptr) return insn;  // attr-vs-attr or literal-vs-literal
  switch (lit_op->literal.type()) {
    case ValueType::kInt64:
      insn.kind = CmpInsn::Kind::kInt64Lit;
      insn.i64 = lit_op->literal.AsInt64();
      break;
    case ValueType::kDouble:
      insn.kind = CmpInsn::Kind::kDoubleLit;
      insn.f64 = lit_op->literal.AsDouble();
      break;
    case ValueType::kString:
      insn.kind = CmpInsn::Kind::kStringLit;
      insn.str = &lit_op->literal.AsString();
      break;
    case ValueType::kNull:
      break;  // null literal: generic
  }
  if (insn.kind != CmpInsn::Kind::kGeneric) {
    insn.attr = attr_op->attr;
    insn.truth = TruthTableFor(insn.op, insn.attr_on_lhs);
  }
  return insn;
}

void AdmissionProgram::CompileRole(const Role& role) {
  RoleProgram rp;
  rp.role = role;
  rp.first_cmp = static_cast<uint32_t>(insns_.size());
  const auto& local_preds = query_->local_predicates();
  if (role.elem_index < local_preds.size()) {
    for (const Comparison& cmp : local_preds[role.elem_index]) {
      insns_.push_back(CompileCmp(cmp));
    }
  }
  rp.num_cmps = static_cast<uint32_t>(insns_.size()) - rp.first_cmp;
  const AggregateSpec& agg = query_->agg();
  if (query_->agg_positive_pos() >= 0 &&
      static_cast<int>(role.elem_index) == agg.elem_index) {
    rp.is_carrier = true;
    rp.carrier_attr = agg.attr;
  }
  const auto& parts = query_->partition_spec().parts;
  for (size_t p = 0; p < parts.size(); ++p) {
    const bool covers = role.elem_index < parts[p].covers_elem.size() &&
                        parts[p].covers_elem[role.elem_index];
    if (covers) rp.covered_mask |= uint64_t{1} << p;
  }
  rp.fully_covered = role.negated ? rp.covered_mask == full_mask_ : true;
  roles_.push_back(rp);
}

bool AdmissionProgram::AdmitRole(const Event& e, const RoleProgram& rp,
                                 AdmissionRecord* rec, EngineStats* stats,
                                 const container::KeyInterner* interner) const {
  // Qualify: typed opcodes over the element's local predicates. The
  // attribute lookup is cached across consecutive insns on the same attr
  // (range predicates on one attribute are the common shape).
  AttrId cached_attr = kInvalidAttr;
  const Value* cached_val = nullptr;
  const CmpInsn* insn = insns_.data() + rp.first_cmp;
  for (const CmpInsn* end = insn + rp.num_cmps; insn != end; ++insn) {
    bool pass;
    if (insn->kind == CmpInsn::Kind::kGeneric) {
      if (stats != nullptr) ++stats->adm_generic_cmps;
      pass = EvalCmp(insn->src->op, OperandValue(insn->src->lhs, e),
                     OperandValue(insn->src->rhs, e));
    } else {
      if (insn->attr != cached_attr) {
        cached_attr = insn->attr;
        cached_val = e.FindAttr(insn->attr);
      }
      const Value* v = cached_val;
      switch (insn->kind) {
        case CmpInsn::Kind::kInt64Lit:
          if (v != nullptr && v->type() == ValueType::kInt64) {
            pass = TruthCmp(insn->truth, v->AsInt64(), insn->i64);
            break;
          }
          goto fallback;
        case CmpInsn::Kind::kDoubleLit:
          if (v != nullptr && v->type() == ValueType::kDouble) {
            pass = TruthCmp(insn->truth, v->AsDouble(), insn->f64);
            break;
          }
          goto fallback;
        case CmpInsn::Kind::kStringLit:
          if (v != nullptr && v->type() == ValueType::kString) {
            pass = insn->attr_on_lhs
                       ? OrderedCmp(insn->op, v->AsString(), *insn->str)
                       : OrderedCmp(insn->op, *insn->str, v->AsString());
            break;
          }
          goto fallback;
        default:
        fallback:
          // Runtime type differs from the literal's: the generic path owns
          // the cross-type semantics (numeric magnitude comparison,
          // unordered-combination rules).
          if (stats != nullptr) ++stats->adm_generic_cmps;
          pass = EvalCmp(insn->src->op, OperandValue(insn->src->lhs, e),
                         OperandValue(insn->src->rhs, e));
          break;
      }
    }
    if (!pass) {
      if (stats != nullptr) ++stats->adm_rejected_local;
      return false;
    }
  }
  // Carrier validation + fused load (QualifiesFor's trailing check).
  double carrier = 0.0;
  if (rp.is_carrier) {
    const Value* v = e.FindAttr(rp.carrier_attr);
    if (v == nullptr || !v->is_numeric()) {
      if (stats != nullptr) ++stats->adm_rejected_local;
      return false;
    }
    carrier = v->ToDouble();
  }
  // Partition-key extraction: borrowed values + ValueHashes
  // (PartitionKeyFor semantics minus the Value copies), prefetching the
  // interner slots the hashes will probe.
  const size_t n = part_attrs_.size();
  for (size_t p = 0; p < n; ++p) {
    if (((rp.covered_mask >> p) & 1) == 0) {
      rec->part_vals[p] = nullptr;  // key slot stays kNoId: matches any
      continue;
    }
    const Value* v = e.FindAttr(part_attrs_[p]);
    if (v == nullptr || v->is_null()) {
      if (stats != nullptr) ++stats->adm_missing_attr;
      return false;
    }
    const uint64_t vh = ValueHash{}(*v);
    rec->part_vals[p] = v;
    rec->part_hashes[p] = vh;
    if (interner != nullptr) interner->PrefetchSlot(vh);
  }
  rec->role = &rp;
  rec->carrier = carrier;
  // key / key_hash are deliberately NOT reset here: they are meaningful
  // only after AdmitBatch's interning pass, which (re)writes every part
  // slot below num_parts; slots above never hold anything but kNoId.
  if (stats != nullptr) ++stats->adm_admitted;
  return true;
}

void AdmissionProgram::MaterializeKey(const AdmissionRecord& rec,
                                      PartitionKey* key,
                                      std::vector<bool>* covered_out) const {
  const size_t n = part_attrs_.size();
  key->parts.resize(n);
  if (covered_out != nullptr) covered_out->resize(n);
  for (size_t p = 0; p < n; ++p) {
    const Value* v = rec.part_vals[p];
    if (v != nullptr) {
      key->parts[p] = *v;
    } else {
      key->parts[p] = Value();  // null placeholder: matches any partition
    }
    if (covered_out != nullptr) (*covered_out)[p] = v != nullptr;
  }
}

namespace {

/// Interns one freshly admitted record's borrowed parts and seals its key
/// hash. Runs immediately after the record's AdmitRole, while the record
/// is still in L1 and the prefetches AdmitRole issued for its interner
/// slots are in flight — and in record (= arrival/probe) order, so id
/// assignment stays a pure function of the event stream.
inline void InternRecord(size_t num_parts, container::KeyInterner* interner,
                         AdmissionRecord* rec) {
  const bool negated = rec->role->role.negated;
  // Every part slot below num_parts is written (uncovered ⇒ kNoId), so
  // recycled records cannot leak stale ids into the key compare or its
  // hash; slots at num_parts and above keep their constructed kNoId.
  for (size_t p = 0; p < num_parts; ++p) {
    const Value* v = rec->part_vals[p];
    rec->key.ids[p] =
        v == nullptr ? container::kNoId
        : negated    ? interner->LookupHashed(rec->part_hashes[p], *v)
                     : interner->InternHashed(rec->part_hashes[p], *v);
  }
  if (negated && !rec->role->fully_covered) {
    rec->key_hash = 0;  // scans; no target — and no stale recycled hash
    return;
  }
  rec->key_hash = container::InternedKeyHash{}(rec->key);
}

}  // namespace

size_t BatchPrefilter::Scan(const AdmissionProgram& program,
                            std::span<const Event> batch) {
  const size_t words = (batch.size() + 63) / 64;
  mask_.assign(words, 0);
  size_t relevant = 0;
  // Columnar pass: one byte-table load per event, accumulated into the
  // bitmask word-at-a-time. Nothing here depends on admission state, so
  // the loop is pure gather + or — the compiler's to vectorize.
  for (size_t i = 0; i < batch.size(); ++i) {
    const uint64_t bit = program.Relevant(batch[i].type()) ? 1u : 0u;
    mask_[i >> 6] |= bit << (i & 63);
    relevant += bit;
  }
  relevant_ = relevant;
  return relevant;
}

void BatchAdmitter::AdmitBatch(const AdmissionProgram& program,
                               std::span<const Event> batch,
                               container::KeyInterner* interner,
                               EngineStats* stats,
                               const BatchPrefilter* prefilter) {
  if (fault::Injector::Global().armed()) {
    if (auto fired = fault::Injector::Global().Hit(fault::Point::kAdmitBatch)) {
      if (fired->kind == fault::Kind::kCrash) {
        std::_Exit(fault::kCrashExitCode);
      }
      if (fired->kind == fault::Kind::kSlow) {
        std::this_thread::sleep_for(std::chrono::microseconds(fired->delay_us));
      }
    }
  }
  used_ = 0;
  events_.clear();
  if (events_.capacity() < batch.size()) events_.reserve(batch.size());
  const size_t n = program.num_parts();
  // Fused qualify + extract + carrier load per (event, role), each admitted
  // record interned on the spot (see InternRecord). Record slots are
  // recycled in place: a rejected candidate writes nothing durable.
  for (size_t i = 0; i < batch.size(); ++i) {
    EventAdmission ea;
    ea.first_record = static_cast<uint32_t>(used_);
    // The prefilter's bitmask replaces the role-table walk for events whose
    // type plays no role: the span would come back empty anyway, so the
    // skip is exact — it only saves the lookup.
    if (prefilter == nullptr || prefilter->Relevant(i)) {
      const Event& e = batch[i];
      for (const RoleProgram& rp : program.RolesFor(e.type())) {
        if (used_ == records_.size()) records_.emplace_back();
        if (program.AdmitRole(e, rp, &records_[used_], stats, interner)) {
          if (interner != nullptr) InternRecord(n, interner, &records_[used_]);
          ++used_;
        }
      }
    }
    ea.num_records = static_cast<uint32_t>(used_) - ea.first_record;
    events_.push_back(ea);
  }
}

}  // namespace plan
}  // namespace aseq
