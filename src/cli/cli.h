#ifndef ASEQ_CLI_CLI_H_
#define ASEQ_CLI_CLI_H_

#include <atomic>
#include <ostream>
#include <string>
#include <vector>

namespace aseq {

/// Process-wide graceful-stop flag. The signal handlers installed by
/// main.cc set it on SIGINT/SIGTERM (the only async-signal-safe thing they
/// do); the run loops poll it between batches, drain in-flight work, write
/// a final checkpoint when checkpointing is enabled, and exit 0 with a
/// summary.
std::atomic<bool>& CliStopFlag();

/// \brief Entry point of the `aseq` command-line tool (testable: all I/O
/// goes through the provided streams).
///
/// Commands:
///
///   aseq run --query "PATTERN SEQ(A,B) ... " [source flags] [run flags]
///       Runs a query and prints each aggregation result.
///       Source (one of):
///         --trace FILE        CSV trace (see src/stream/trace_io.h)
///         --stock N           synthetic stock stream of N events
///         --clicks N          synthetic clickstream of N events
///       Run flags:
///         --engine aseq|stack (default aseq)
///         --slack MS          tolerate out-of-order input via K-slack
///         --seed S            generator seed (default 42)
///         --gap MS            max inter-arrival gap for generators
///         --limit N           print at most the last N results (default 20)
///         --quiet             suppress per-result lines
///         --emit-on-change    report whenever the value changes (including
///                             drops caused purely by window expiration)
///
///   aseq explain --query "..."
///       Prints the compiled query: roles, predicate classification,
///       partitioning, and which engine would execute it.
///
///   aseq generate (--stock N | --clicks N) --out FILE [--seed S] [--gap MS]
///       Writes a synthetic trace in the CSV trace format.
///
///   aseq compare --query "..." [source flags]
///       Runs A-Seq and the stack baseline side by side, verifies they
///       agree, and reports ms/slide and peak objects for both.
///
/// Returns the process exit code.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace aseq

#endif  // ASEQ_CLI_CLI_H_
