#include "cli/flags.h"

#include <cstdlib>

namespace aseq {

Result<FlagSet> FlagSet::Parse(const std::vector<std::string>& args) {
  FlagSet fs;
  size_t i = 0;
  // Positional command words come first.
  while (i < args.size() && args[i].rfind("--", 0) != 0) {
    fs.positional_.push_back(args[i]);
    ++i;
  }
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument(
          "positional argument after flags: '" + arg + "'");
    }
    std::string name = arg.substr(2);
    std::string value;
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      value = args[++i];
    } else {
      value = "true";  // bare boolean flag
    }
    if (name.empty()) {
      return Status::InvalidArgument("empty flag name in '" + arg + "'");
    }
    fs.flags_[name] = value;
  }
  return fs;
}

std::string FlagSet::GetString(const std::string& name,
                               const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

Result<int64_t> FlagSet::GetInt(const std::string& name, int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " expects an integer, got '" + it->second +
                                   "'");
  }
  return v;
}

bool FlagSet::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  return it->second == "true" || it->second == "1" || it->second.empty();
}

Status FlagSet::CheckKnown(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
  }
  return Status::OK();
}

}  // namespace aseq
