#ifndef ASEQ_CLI_FLAGS_H_
#define ASEQ_CLI_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace aseq {

/// \brief Minimal command-line flag parser for the aseq CLI.
///
/// Understands `--name value`, `--name=value`, and bare `--name` (boolean);
/// everything before the first `--flag` is collected as positional
/// arguments (the command words).
class FlagSet {
 public:
  /// Parses argv (excluding argv[0]).
  static Result<FlagSet> Parse(const std::vector<std::string>& args);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  /// String flag with default.
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;

  /// Integer flag with default; parse errors surface via CheckInt.
  Result<int64_t> GetInt(const std::string& name, int64_t def) const;

  /// Boolean flag: present (with no value or "true"/"1") means true.
  bool GetBool(const std::string& name) const;

  /// Returns an error listing any flag not in `known` (typo protection).
  Status CheckKnown(const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

}  // namespace aseq

#endif  // ASEQ_CLI_FLAGS_H_
