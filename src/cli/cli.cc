#include "cli/cli.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "ckpt/snapshot.h"
#include "common/string_util.h"
#include "common/version.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/hybrid_engine.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "cli/flags.h"
#include "engine/change_detector.h"
#include "engine/reordering_engine.h"
#include "engine/runtime.h"
#include "exec/execution_policy.h"
#include "exec/multi_execution_policy.h"
#include "fault/fault.h"
#include "obs/emitter.h"
#include "obs/stats_json.h"
#include "obs/telemetry.h"
#include "obs/trace_writer.h"
#include "query/analyzer.h"
#include "stream/clickstream.h"
#include "stream/stock_stream.h"
#include "stream/trace_io.h"

namespace aseq {

std::atomic<bool>& CliStopFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}

namespace {

constexpr const char* kUsage =
    "usage: aseq <run|explain|generate|compare> [flags]\n"
    "  aseq run      --query \"PATTERN SEQ(A,B) AGG COUNT WITHIN 1s\"\n"
    "                (--trace FILE | --stock N | --clicks N)\n"
    "                [--engine aseq|stack] [--slack MS] [--seed S]\n"
    "                [--gap MS] [--limit N] [--quiet] [--emit-on-change]\n"
    "                [--batch-size N] [--shards N]\n"
    "                [--checkpoint-every N --checkpoint-dir DIR]\n"
    "                [--restore-from SNAPSHOT]\n"
    "  aseq explain  --query \"...\"\n"
    "  aseq generate (--stock N | --clicks N) --out FILE [--seed S] [--gap MS]\n"
    "  aseq compare  --query \"...\" (--trace FILE | --stock N | --clicks N)\n"
    "                [--batch-size N]\n"
    "  aseq workload --queries FILE (--trace FILE | --stock N | --clicks N)\n"
    "                [--strategy nonshare|sase|pretree|cc|hybrid]\n"
    "                [--seed S] [--gap MS] [--batch-size N] [--shards N]\n"
    "                [--checkpoint-every N --checkpoint-dir DIR]\n"
    "                [--restore-from SNAPSHOT]\n"
    "  (--batch-size controls the ingestion batch fed to OnBatch; default "
    "256, 1 = per-event)\n"
    "  (--checkpoint-every N snapshots engine state every N events into\n"
    "   --checkpoint-dir; --restore-from resumes a killed run from a\n"
    "   snapshot, replaying the trace tail from the recorded offset)\n"
    "  (--shards N > 1 runs the partition-parallel executor: events are\n"
    "   hash-routed by GROUP BY key to N engine shards on worker threads,\n"
    "   with results identical to the serial run; queries that cannot\n"
    "   shard safely fall back to serial with a note. workload shards the\n"
    "   whole multi-query engine the same way when every query groups by\n"
    "   one shared attribute)\n"
    "  (run and workload also accept the supervised-runtime flags,\n"
    "   --shards >= 2:\n"
    "   --supervise enables the shard watchdog — dead or stalled workers\n"
    "   are restarted from the last recovery point and their event slice\n"
    "   replayed, keeping output bit-exact; tune with\n"
    "   --watchdog-timeout-ms MS, --recovery-every N, --max-restarts N.\n"
    "   --overload-policy block|degrade-serial|shed picks the response to\n"
    "   a shard queue at its high-watermark (--overload-watermark N\n"
    "   queued items, default 12): keep blocking (default),\n"
    "   drain all queues before routing on, or deterministically drop the\n"
    "   overloaded partition (accounted in shed counters; surviving\n"
    "   partitions stay exact).\n"
    "   --pin-threads pins each shard worker to a core (Linux; no-op with\n"
    "   a warning when the machine has fewer cores than shards).\n"
    "   --fault-spec point[@lane]:trigger[:kind[:repeat]],... arms\n"
    "   deterministic fault injection (points: router.route, worker.op,\n"
    "   ckpt.write, admit.batch; kinds: crash, stall, slow, io-error,\n"
    "   overload) with --fault-seed S; SIGINT/SIGTERM drain in-flight\n"
    "   batches, write a final checkpoint when enabled, and exit 0)\n"
    "  (observability, run and workload:\n"
    "   --metrics-out FILE appends JSON-lines telemetry — per-shard\n"
    "   counters, latency histogram percentiles, and ring-occupancy\n"
    "   gauges — every --metrics-every-ms MS (default 1000);\n"
    "   --trace-out FILE writes a chrome://tracing JSON file with batch\n"
    "   and barrier spans plus supervisor instants (quarantine, restart,\n"
    "   replay, shed, overload-degrade, fault-injected, checkpoint);\n"
    "   --stats-json FILE dumps the end-of-run EngineStats + per-shard\n"
    "   utilization as one machine-readable JSON document.\n"
    "   Telemetry only observes: outputs and stats stay bit-exact with\n"
    "   the same run with every flag off)\n";

/// Reads --batch-size into RunOptions (default kDefaultBatchSize).
Result<RunOptions> BatchOptionsFromFlags(const FlagSet& flags) {
  ASEQ_ASSIGN_OR_RETURN(
      int64_t batch,
      flags.GetInt("batch-size", static_cast<int64_t>(kDefaultBatchSize)));
  if (batch <= 0) {
    return Status::InvalidArgument(
        "--batch-size expects N > 0 (e.g. --batch-size 256; 1 = per-event)");
  }
  RunOptions options;
  options.batch_size = static_cast<size_t>(batch);
  ASEQ_ASSIGN_OR_RETURN(int64_t shards, flags.GetInt("shards", 1));
  if (shards < 1 || shards > 64) {
    return Status::InvalidArgument(
        "--shards expects 1 <= N <= 64 (1 = serial; e.g. --shards 8)");
  }
  options.num_shards = static_cast<size_t>(shards);
  // Harmless for serial runs (the executor ignores it), so no --shards
  // coupling to validate.
  options.pin_threads = flags.GetBool("pin-threads");
  return options;
}

/// Parses the supervised-runtime flag group (watchdog, overload policy,
/// fault injection) into `options` and arms the process-global injector.
/// Supervision and the non-blocking overload policies live in the sharded
/// executor, so they require --shards >= 2.
Status SupervisionFlagsInto(const FlagSet& flags, RunOptions* options) {
  options->supervise = flags.GetBool("supervise");
  ASEQ_ASSIGN_OR_RETURN(int64_t wd, flags.GetInt("watchdog-timeout-ms", 1000));
  if (wd <= 0) {
    return Status::InvalidArgument(
        "--watchdog-timeout-ms expects MS > 0 (how long a non-idle shard "
        "may go silent before it is restarted; default 1000)");
  }
  options->watchdog_timeout_ms = static_cast<double>(wd);
  ASEQ_ASSIGN_OR_RETURN(int64_t rec, flags.GetInt("recovery-every", 4096));
  if (rec < 0) {
    return Status::InvalidArgument(
        "--recovery-every expects N >= 0 events between in-memory recovery "
        "points (0 = only the initial one; default 4096)");
  }
  options->recovery_every = static_cast<size_t>(rec);
  ASEQ_ASSIGN_OR_RETURN(int64_t budget, flags.GetInt("max-restarts", 4));
  if (budget < 0) {
    return Status::InvalidArgument(
        "--max-restarts expects N >= 0 restarts per shard per recovery "
        "interval (default 4)");
  }
  options->max_restarts = static_cast<size_t>(budget);
  const std::string policy = flags.GetString("overload-policy", "block");
  if (policy == "block") {
    options->overload_policy = OverloadPolicy::kBlock;
  } else if (policy == "degrade-serial") {
    options->overload_policy = OverloadPolicy::kDegradeSerial;
  } else if (policy == "shed") {
    options->overload_policy = OverloadPolicy::kShed;
  } else {
    return Status::InvalidArgument(
        "--overload-policy must be block, degrade-serial, or shed");
  }
  ASEQ_ASSIGN_OR_RETURN(int64_t watermark,
                        flags.GetInt("overload-watermark", 12));
  if (watermark <= 0) {
    return Status::InvalidArgument(
        "--overload-watermark expects N > 0 queued items per shard before "
        "the overload policy engages (default 12)");
  }
  options->overload_high_watermark = static_cast<size_t>(watermark);
  if ((options->supervise ||
       options->overload_policy != OverloadPolicy::kBlock) &&
      options->num_shards < 2) {
    return Status::InvalidArgument(
        "--supervise and --overload-policy degrade-serial|shed require "
        "--shards N >= 2 (both live in the sharded executor)");
  }
  const std::string spec = flags.GetString("fault-spec");
  if (!spec.empty()) {
    ASEQ_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("fault-seed", 42));
    ASEQ_RETURN_NOT_OK(
        fault::Injector::Global().Arm(spec, static_cast<uint64_t>(seed)));
  } else if (flags.Has("fault-seed")) {
    return Status::InvalidArgument(
        "--fault-seed has no effect without --fault-spec "
        "(point[@lane]:trigger[:kind[:repeat]],...)");
  }
  return Status::OK();
}

/// Validates the checkpoint/restore flag combination up front — before any
/// trace is loaded or engine built — so misuse fails immediately with a
/// usage hint instead of after minutes of processing. Fills the checkpoint
/// fields of `options` and the snapshot path (empty if not restoring).
Status CheckpointFlagsInto(const FlagSet& flags, RunOptions* options,
                           std::string* restore_from) {
  ASEQ_ASSIGN_OR_RETURN(int64_t every, flags.GetInt("checkpoint-every", 0));
  if (every < 0) {
    return Status::InvalidArgument(
        "--checkpoint-every expects N >= 0 events (0 disables; e.g. "
        "--checkpoint-every 100000 --checkpoint-dir ckpts)");
  }
  std::string dir = flags.GetString("checkpoint-dir");
  if (every > 0 && dir.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every requires --checkpoint-dir DIR to write "
        "snapshots into (e.g. --checkpoint-dir ckpts)");
  }
  if (every == 0 && !dir.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-dir has no effect without --checkpoint-every N "
        "(N > 0 enables periodic snapshots)");
  }
  options->checkpoint_every = static_cast<size_t>(every);
  options->checkpoint_dir = dir;
  restore_from->clear();
  if (flags.Has("restore-from")) {
    *restore_from = flags.GetString("restore-from");
    if (restore_from->empty()) {
      return Status::InvalidArgument(
          "--restore-from expects a snapshot FILE (written by a previous "
          "run's --checkpoint-every; see --checkpoint-dir)");
    }
    std::ifstream probe(*restore_from, std::ios::binary);
    if (!probe) {
      return Status::InvalidArgument(
          "--restore-from: cannot open snapshot '" + *restore_from +
          "' (does the file exist? snapshots are named "
          "ckpt-<offset>.aseqckpt under --checkpoint-dir)");
    }
  }
  return Status::OK();
}

/// Loads/creates the event stream named by the source flags.
Result<std::vector<Event>> LoadEvents(const FlagSet& flags, Schema* schema) {
  ASEQ_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  ASEQ_ASSIGN_OR_RETURN(int64_t gap, flags.GetInt("gap", 6));
  if (gap < 0) {
    return Status::InvalidArgument(
        "--gap expects MS >= 0 (maximum inter-event gap for generated "
        "streams)");
  }
  int sources = 0;
  if (flags.Has("trace")) ++sources;
  if (flags.Has("stock")) ++sources;
  if (flags.Has("clicks")) ++sources;
  if (sources != 1) {
    return Status::InvalidArgument(
        "pick exactly one source: --trace FILE, --stock N, or --clicks N");
  }
  std::vector<Event> events;
  if (flags.Has("trace")) {
    ASEQ_ASSIGN_OR_RETURN(events,
                          ReadTraceFile(flags.GetString("trace"), schema));
  } else if (flags.Has("stock")) {
    ASEQ_ASSIGN_OR_RETURN(int64_t n, flags.GetInt("stock", 0));
    if (n <= 0) return Status::InvalidArgument("--stock expects N > 0");
    StockStreamOptions options;
    options.seed = static_cast<uint64_t>(seed);
    options.num_events = static_cast<size_t>(n);
    options.max_gap_ms = gap;
    events = GenerateStockStream(options, schema);
  } else {
    ASEQ_ASSIGN_OR_RETURN(int64_t n, flags.GetInt("clicks", 0));
    if (n <= 0) return Status::InvalidArgument("--clicks expects N > 0");
    ClickstreamOptions options;
    options.seed = static_cast<uint64_t>(seed);
    options.num_events = static_cast<size_t>(n);
    options.max_gap_ms = gap;
    events = GenerateClickstream(options, schema);
  }
  AssignSeqNums(&events);
  return events;
}

Result<CompiledQuery> CompileQuery(const FlagSet& flags, Schema* schema) {
  std::string text = flags.GetString("query");
  if (text.empty()) {
    return Status::InvalidArgument("--query is required");
  }
  Analyzer analyzer(schema);
  return analyzer.AnalyzeText(text);
}

Result<std::unique_ptr<QueryEngine>> MakeEngine(const FlagSet& flags,
                                                const CompiledQuery& query) {
  std::string kind = flags.GetString("engine", "aseq");
  std::unique_ptr<QueryEngine> engine;
  if (kind == "aseq") {
    ASEQ_ASSIGN_OR_RETURN(engine, CreateAseqEngine(query));
  } else if (kind == "stack") {
    engine = std::make_unique<StackEngine>(query);
  } else {
    return Status::InvalidArgument("--engine must be 'aseq' or 'stack'");
  }
  if (flags.GetBool("emit-on-change")) {
    engine = std::make_unique<ChangeDetectingEngine>(std::move(engine));
  }
  ASEQ_ASSIGN_OR_RETURN(int64_t slack, flags.GetInt("slack", 0));
  if (slack < 0) {
    return Status::InvalidArgument(
        "--slack expects MS >= 0 (the K-slack disorder bound; 0 disables "
        "reordering)");
  }
  if (slack > 0) {
    engine = std::make_unique<ReorderingEngine>(std::move(engine), slack);
  }
  return engine;
}

/// Per-run observability objects behind --metrics-out / --trace-out /
/// --stats-json, plus the process-global observer registrations
/// (checkpoint writes, fault fires). The destructor stops the emitter,
/// closes the trace, and clears the observers, so every exit path —
/// including aborted runs — leaves valid files and no dangling globals.
struct Observability {
  std::unique_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<obs::TraceWriter> trace;
  std::unique_ptr<obs::MetricsEmitter> emitter;
  std::string stats_json_path;
  bool observers_registered = false;
  bool finished = false;

  ~Observability() {
    Finish();
    if (observers_registered) {
      ckpt::SetSnapshotWriteObserver({});
      fault::Injector::Global().SetFireObserver({});
    }
  }

  /// Final flush: one last metrics interval, the utilization summary line
  /// (when the run produced per-shard busy spans), and the trace's closing
  /// bracket. Idempotent; the destructor calls it with no utilization.
  void Finish(std::span<const double> busy_seconds = {}) {
    if (finished) return;
    finished = true;
    if (emitter != nullptr) {
      emitter->Stop();  // final interval rows first, then the summary line
      if (!busy_seconds.empty()) {
        std::vector<double> busy(busy_seconds.begin(), busy_seconds.end());
        emitter->AppendLine("{\"type\":\"utilization\",\"data\":" +
                            obs::UtilizationJson(busy) + "}");
      }
    }
    if (trace != nullptr) trace->Close();
  }
};

/// Parses --metrics-out/--metrics-every-ms/--trace-out/--stats-json and
/// builds the run's telemetry registry + sinks. `label` names the run in
/// the metrics header (engine kind or workload strategy — the policy
/// object does not exist yet when the registry must be built, since
/// executors copy RunOptions at construction).
Status SetupObservability(const FlagSet& flags, const RunOptions& options,
                          const std::string& label, Observability* o) {
  const std::string metrics_path = flags.GetString("metrics-out");
  const std::string trace_path = flags.GetString("trace-out");
  o->stats_json_path = flags.GetString("stats-json");
  ASEQ_ASSIGN_OR_RETURN(int64_t every, flags.GetInt("metrics-every-ms", 1000));
  if (every <= 0) {
    return Status::InvalidArgument(
        "--metrics-every-ms expects MS > 0 between metric snapshots "
        "(default 1000)");
  }
  if (flags.Has("metrics-every-ms") && metrics_path.empty()) {
    return Status::InvalidArgument(
        "--metrics-every-ms has no effect without --metrics-out FILE");
  }
  if (metrics_path.empty() && trace_path.empty()) return Status::OK();

  o->telemetry = std::make_unique<obs::Telemetry>(options.num_shards);
  if (!trace_path.empty()) {
    o->trace = std::make_unique<obs::TraceWriter>(
        trace_path, o->telemetry->start_ns(), options.num_shards);
    if (!o->trace->ok()) {
      return Status::IoError("cannot open --trace-out file '" + trace_path +
                             "'");
    }
    o->telemetry->set_trace(o->trace.get());
  }
  if (!metrics_path.empty()) {
    o->emitter = std::make_unique<obs::MetricsEmitter>(
        metrics_path, static_cast<uint64_t>(every), o->telemetry.get(),
        "\"label\":\"" + label + "\"");
    if (!o->emitter->ok()) {
      return Status::IoError("cannot open --metrics-out file '" +
                             metrics_path + "'");
    }
    o->telemetry->set_emitter(o->emitter.get());
  }

  // Durability hook: every successful snapshot write flushes the metrics
  // file and stamps a trace instant, so the observability files on disk
  // cover at least as much of the run as the newest checkpoint.
  obs::Telemetry* tel = o->telemetry.get();
  ckpt::SetSnapshotWriteObserver(
      [tel](const std::string& /*path*/, uint64_t offset) {
        if (tel->trace() != nullptr) {
          tel->trace()->Instant("checkpoint", obs::TraceWriter::kCoordTid,
                                obs::MonotonicNanos(),
                                {obs::TraceWriter::NumArg("offset", offset)});
          tel->trace()->Flush();
        }
        if (tel->emitter() != nullptr) tel->emitter()->Flush();
      });
  fault::Injector::Global().SetFireObserver(
      [tel](fault::Point point, fault::Kind kind, size_t lane) {
        if (tel->trace() == nullptr) return;
        // Worker faults land on the shard's own trace row; coordinator
        // points on the coordinator row.
        const int64_t tid = point == fault::Point::kWorkerOp
                                ? static_cast<int64_t>(lane)
                                : obs::TraceWriter::kCoordTid;
        tel->trace()->Instant(
            "fault-injected", tid, obs::MonotonicNanos(),
            {{"point", fault::PointName(point)},
             {"kind", fault::KindName(kind)},
             obs::TraceWriter::NumArg("lane", lane)});
      });
  o->observers_registered = true;
  return Status::OK();
}

/// Prints the end-of-run stats block shared by `run` and `workload` in ONE
/// stable, documented order (docs/internals.md §17; the golden test in
/// cli_test.cc locks it):
///   events, batch size, shards*, results*, ms/slide, peak objects,
///   admission, utilization*, dataplane*, supervisor*, overload*,
///   faults*, checkpoints*
/// Starred lines print only when their feature is active: shards when
/// sharding was requested; results for single-query runs; utilization and
/// dataplane when the run actually sharded; supervisor under --supervise;
/// overload under a non-block policy; faults when the injector is armed;
/// checkpoints when periodic checkpointing is on.
void PrintStatsBlock(std::ostream& out, const RunOptions& options,
                     const RunResultBase& result, const EngineStats& stats,
                     std::span<const double> busy_seconds,
                     const size_t* results_count) {
  out << "events:        " << result.events << "\n";
  out << "batch size:    " << result.batch_size << "\n";
  if (options.num_shards > 1) {
    out << "shards:        " << result.num_shards << "\n";
  }
  if (results_count != nullptr) {
    out << "results:       " << *results_count << "\n";
  }
  out << "ms/slide:      " << result.MillisPerSlide() << "\n";
  out << "peak objects:  " << stats.objects.peak() << "\n";
  out << "admission:     " << stats.adm_admitted << " admitted, "
      << stats.adm_rejected_local << " rejected, " << stats.adm_missing_attr
      << " missing-attr, " << stats.adm_generic_cmps << " generic cmps\n";
  if (result.num_shards > 1 && !busy_seconds.empty()) {
    const double max_busy =
        *std::max_element(busy_seconds.begin(), busy_seconds.end());
    const double min_busy =
        *std::min_element(busy_seconds.begin(), busy_seconds.end());
    const double imbalance = min_busy > 0.0 ? max_busy / min_busy : 1.0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "utilization:   shard busy %.3fs min / %.3fs max "
                  "(imbalance %.2fx)\n",
                  min_busy, max_busy, imbalance);
    out << line;
  }
  if (result.num_shards > 1) {
    out << "dataplane:     " << stats.pub_batches << " publications, "
        << stats.ring_full_waits << " full-ring waits, " << stats.ring_spins
        << " spins\n";
  }
  if (options.supervise) {
    out << "supervisor:    " << stats.fault_restarts << " restarts, "
        << stats.fault_replayed_events << " events replayed\n";
  }
  if (options.overload_policy == OverloadPolicy::kShed) {
    out << "overload:      shed " << stats.shed_partitions << " partitions ("
        << stats.shed_events << " events)\n";
  } else if (options.overload_policy == OverloadPolicy::kDegradeSerial) {
    out << "overload:      " << stats.overload_stalls << " serial drains\n";
  }
  if (fault::Injector::Global().armed()) {
    // Serial runs don't fold injector counters into engine stats, so the
    // process-wide count is the honest number for every policy.
    out << "faults:        " << fault::Injector::Global().fired_count()
        << " injected\n";
  }
  if (options.checkpoint_every > 0) {
    out << "checkpoints:   " << result.checkpoints_written;
    if (result.checkpoints_written > 0) {
      out << " (latest at offset " << result.last_checkpoint_offset << ")";
    }
    out << "\n";
  }
}

/// Writes the --stats-json document (one entry labeled `label`). A write
/// failure is a warning, not a run failure — the computation already
/// succeeded.
void MaybeWriteStatsJson(const Observability& obsv, const std::string& label,
                         const std::string& engine_name,
                         const RunResultBase& result, const EngineStats& stats,
                         std::span<const double> busy_seconds,
                         size_t results_count, std::ostream& err) {
  if (obsv.stats_json_path.empty()) return;
  std::vector<double> busy(busy_seconds.begin(), busy_seconds.end());
  std::vector<obs::StatsJsonEntry> entries;
  entries.push_back({label, &stats, results_count});
  if (!obs::WriteStatsJson(obsv.stats_json_path, engine_name,
                           result.num_shards, result.elapsed_seconds * 1e3,
                           busy, entries)) {
    err << "warning: failed writing --stats-json file '"
        << obsv.stats_json_path << "'\n";
  }
}

void PrintOutput(std::ostream& out, const Output& output) {
  out << "t=" << output.ts;
  if (output.group.has_value()) {
    out << " [" << output.group->ToString() << "]";
  }
  out << " -> " << output.value.ToString() << "\n";
}

int CmdRun(const FlagSet& flags, std::ostream& out, std::ostream& err) {
  Status known = flags.CheckKnown(
      {"query", "trace", "stock", "clicks", "engine", "slack", "seed", "gap",
       "limit", "quiet", "emit-on-change", "batch-size", "shards",
       "checkpoint-every", "checkpoint-dir", "restore-from", "supervise",
       "watchdog-timeout-ms", "recovery-every", "max-restarts",
       "overload-policy", "overload-watermark", "fault-spec", "fault-seed",
       "pin-threads", "metrics-out", "metrics-every-ms", "trace-out",
       "stats-json"});
  if (!known.ok()) {
    err << known.ToString() << "\n";
    return 2;
  }
  // Validate every flag combination before any expensive work so a typo'd
  // invocation fails in microseconds.
  auto options = BatchOptionsFromFlags(flags);
  if (!options.ok()) {
    err << options.status().ToString() << "\n";
    return 1;
  }
  std::string restore_from;
  Status ckpt_flags = CheckpointFlagsInto(flags, &*options, &restore_from);
  if (!ckpt_flags.ok()) {
    err << ckpt_flags.ToString() << "\n";
    return 1;
  }
  Status sup_flags = SupervisionFlagsInto(flags, &*options);
  if (!sup_flags.ok()) {
    err << sup_flags.ToString() << "\n";
    return 1;
  }
  options->stop_requested = &CliStopFlag();
  // Telemetry must be in the options BEFORE MakePolicy: executors copy
  // RunOptions at construction.
  Observability obsv;
  Status obs_flags = SetupObservability(flags, *options,
                                        flags.GetString("engine", "aseq"),
                                        &obsv);
  if (!obs_flags.ok()) {
    err << obs_flags.ToString() << "\n";
    return 1;
  }
  options->telemetry = obsv.telemetry.get();
  Schema schema;
  auto query = CompileQuery(flags, &schema);
  if (!query.ok()) {
    err << query.status().ToString() << "\n";
    return 1;
  }
  auto events = LoadEvents(flags, &schema);
  if (!events.ok()) {
    err << events.status().ToString() << "\n";
    return 1;
  }
  // All execution goes through a policy: serial for --shards 1 (the
  // default, byte-identical to the old direct path), partition-parallel
  // otherwise. Unshardable queries fall back to serial with a note.
  std::string fallback_reason;
  auto policy = exec::MakePolicy(
      *query, [&] { return MakeEngine(flags, *query); }, *options,
      &fallback_reason);
  if (!policy.ok()) {
    err << policy.status().ToString() << "\n";
    return 1;
  }
  if (!fallback_reason.empty()) {
    err << "note: sharding disabled (" << fallback_reason
        << "); running serially\n";
  }
  if (!restore_from.empty()) {
    uint64_t offset = 0;
    Status restored = (*policy)->Restore(restore_from, &offset);
    if (!restored.ok()) {
      err << restored.ToString() << "\n";
      return 1;
    }
    if (offset > events->size()) {
      err << "InvalidArgument: snapshot '" << restore_from
          << "' was taken at stream offset " << offset
          << " but this source has only " << events->size() << " events\n";
      return 1;
    }
    // Replay only the tail; RunEvents re-assigns the same seq numbers the
    // events had in the original run.
    events->erase(events->begin(),
                  events->begin() + static_cast<ptrdiff_t>(offset));
    out << "restored from " << restore_from << " at offset " << offset
        << "; replaying " << events->size() << " remaining events\n";
  }
  if (obsv.emitter != nullptr) obsv.emitter->Start();
  RunResult result = (*policy)->RunEvents(*events);
  obsv.Finish((*policy)->shard_busy_seconds());
  if (!result.fault_status.ok()) {
    err << "fault: run aborted: " << result.fault_status.ToString() << "\n";
    return 1;
  }
  if (result.interrupted) {
    out << "interrupted: stop signal received; drained in-flight batches "
           "after "
        << result.events << " events\n";
  }
  if (!result.checkpoint_status.ok()) {
    err << "warning: checkpointing stopped: "
        << result.checkpoint_status.ToString() << "\n";
  }
  if (auto* reordering =
          dynamic_cast<ReorderingEngine*>((*policy)->serial_engine())) {
    std::vector<Output> tail;
    StopWatch watch;
    reordering->Finish(&tail);
    result.elapsed_seconds += watch.ElapsedSeconds();
    result.outputs.insert(result.outputs.end(), tail.begin(), tail.end());
    if (reordering->dropped_events() > 0) {
      err << "warning: " << reordering->dropped_events()
          << " events arrived beyond --slack and were dropped\n";
    }
  }
  if (!flags.GetBool("quiet")) {
    auto limit_or = flags.GetInt("limit", 20);
    size_t limit = limit_or.ok() && *limit_or >= 0
                       ? static_cast<size_t>(*limit_or)
                       : 20;
    size_t start = result.outputs.size() > limit
                       ? result.outputs.size() - limit
                       : 0;
    if (start > 0) {
      out << "... (" << start << " earlier results omitted; --limit)\n";
    }
    for (size_t i = start; i < result.outputs.size(); ++i) {
      PrintOutput(out, result.outputs[i]);
    }
  }
  out << "engine:        " << (*policy)->name() << "\n";
  out << "query:         " << query->ToString() << "\n";
  const size_t results_count = result.outputs.size();
  PrintStatsBlock(out, *options, result, (*policy)->stats(),
                  (*policy)->shard_busy_seconds(), &results_count);
  MaybeWriteStatsJson(obsv, "run", (*policy)->name(), result,
                      (*policy)->stats(), (*policy)->shard_busy_seconds(),
                      results_count, err);
  return 0;
}

int CmdExplain(const FlagSet& flags, std::ostream& out, std::ostream& err) {
  Status known = flags.CheckKnown({"query"});
  if (!known.ok()) {
    err << known.ToString() << "\n";
    return 2;
  }
  Schema schema;
  auto query = CompileQuery(flags, &schema);
  if (!query.ok()) {
    err << query.status().ToString() << "\n";
    return 1;
  }
  const CompiledQuery& cq = *query;
  out << "query:      " << cq.ToString() << "\n";
  out << "positive:   " << cq.num_positive() << " event types\n";
  for (size_t p = 0; p < cq.positive_types().size(); ++p) {
    out << "  pos " << (p + 1) << ": "
        << schema.EventTypeName(cq.positive_types()[p]) << "\n";
  }
  for (const auto& elem : cq.pattern().elements()) {
    if (!elem.negated) continue;
    const std::vector<Role>* roles = cq.FindRoles(elem.type);
    for (const Role& role : *roles) {
      if (role.negated) {
        out << "  negation: !" << elem.type_name
            << " resets the length-" << role.position << " prefix\n";
      }
    }
  }
  size_t locals = 0;
  for (const auto& preds : cq.local_predicates()) locals += preds.size();
  out << "predicates: " << locals << " local, "
      << cq.join_predicates().size() << " join\n";
  if (cq.partitioned()) {
    out << "partitioning (HPC):\n";
    for (const auto& part : cq.partition_spec().parts) {
      out << "  " << (part.is_group_by ? "group-by" : "equivalence")
          << " on attribute '" << part.attr_name << "'\n";
    }
  }
  out << "window:     "
      << (cq.has_window() ? std::to_string(cq.window_ms()) + " ms"
                          : std::string("unbounded"))
      << "\n";
  const char* engine = cq.has_join_predicates() ? "StackBased (join predicates)"
                       : cq.partitioned()       ? "A-Seq(HPC)"
                       : cq.has_window()        ? "A-Seq(SEM)"
                                                : "A-Seq(DPC)";
  out << "engine:     " << engine << "\n";
  return 0;
}

int CmdGenerate(const FlagSet& flags, std::ostream& out, std::ostream& err) {
  Status known = flags.CheckKnown({"stock", "clicks", "out", "seed", "gap"});
  if (!known.ok()) {
    err << known.ToString() << "\n";
    return 2;
  }
  std::string path = flags.GetString("out");
  if (path.empty()) {
    err << "InvalidArgument: --out FILE is required\n";
    return 1;
  }
  Schema schema;
  auto events = LoadEvents(flags, &schema);
  if (!events.ok()) {
    err << events.status().ToString() << "\n";
    return 1;
  }
  Status st = WriteTraceFile(path, *events, schema);
  if (!st.ok()) {
    err << st.ToString() << "\n";
    return 1;
  }
  out << "wrote " << events->size() << " events to " << path << "\n";
  return 0;
}

int CmdCompare(const FlagSet& flags, std::ostream& out, std::ostream& err) {
  Status known = flags.CheckKnown(
      {"query", "trace", "stock", "clicks", "seed", "gap", "batch-size"});
  if (!known.ok()) {
    err << known.ToString() << "\n";
    return 2;
  }
  Schema schema;
  auto query = CompileQuery(flags, &schema);
  if (!query.ok()) {
    err << query.status().ToString() << "\n";
    return 1;
  }
  auto events = LoadEvents(flags, &schema);
  if (!events.ok()) {
    err << events.status().ToString() << "\n";
    return 1;
  }
  auto options = BatchOptionsFromFlags(flags);
  if (!options.ok()) {
    err << options.status().ToString() << "\n";
    return 1;
  }
  BatchRunner runner(*options);
  StackEngine stack(*query);
  RunResult stack_run = runner.RunEvents(*events, &stack);

  auto aseq = CreateAseqEngine(*query);
  if (!aseq.ok()) {
    err << aseq.status().ToString()
        << " (showing the stack baseline only)\n";
    out << "StackBased: " << stack_run.MillisPerSlide() << " ms/slide, peak "
        << stack.stats().objects.peak() << " objects\n";
    return 0;
  }
  RunResult aseq_run = runner.RunEvents(*events, aseq->get());

  size_t mismatches = 0;
  if (aseq_run.outputs.size() != stack_run.outputs.size()) {
    mismatches = SIZE_MAX;
  } else {
    for (size_t i = 0; i < aseq_run.outputs.size(); ++i) {
      const Value& a = aseq_run.outputs[i].value;
      const Value& b = stack_run.outputs[i].value;
      bool same = a.Equals(b);
      if (!same && a.is_numeric() && b.is_numeric()) {
        double x = a.ToDouble(), y = b.ToDouble();
        double scale = std::max({1.0, std::abs(x), std::abs(y)});
        same = std::abs(x - y) <= 1e-9 * scale;
      }
      if (!same) ++mismatches;
    }
  }
  out << "query:   " << query->ToString() << "\n";
  out << "events:  " << events->size() << "\n\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-14s %14s %14s %10s\n", "engine",
                "ms/slide", "peak objects", "results");
  out << line;
  std::snprintf(line, sizeof(line), "%-14s %14.6f %14lld %10zu\n",
                aseq->get()->name().c_str(), aseq_run.MillisPerSlide(),
                static_cast<long long>(aseq->get()->stats().objects.peak()),
                aseq_run.outputs.size());
  out << line;
  std::snprintf(line, sizeof(line), "%-14s %14.6f %14lld %10zu\n",
                stack.name().c_str(), stack_run.MillisPerSlide(),
                static_cast<long long>(stack.stats().objects.peak()),
                stack_run.outputs.size());
  out << line;
  double speedup = aseq_run.MillisPerSlide() > 0
                       ? stack_run.MillisPerSlide() / aseq_run.MillisPerSlide()
                       : 0;
  out << "\nspeedup: " << speedup << "x; result mismatches: ";
  if (mismatches == SIZE_MAX) {
    out << "output counts differ!\n";
    return 1;
  }
  out << mismatches << "\n";
  return mismatches == 0 ? 0 : 1;
}

int CmdWorkload(const FlagSet& flags, std::ostream& out, std::ostream& err) {
  Status known = flags.CheckKnown(
      {"queries", "trace", "stock", "clicks", "strategy", "seed", "gap",
       "batch-size", "shards", "checkpoint-every", "checkpoint-dir",
       "restore-from", "supervise", "watchdog-timeout-ms", "recovery-every",
       "max-restarts", "overload-policy", "overload-watermark", "fault-spec",
       "fault-seed", "pin-threads", "metrics-out", "metrics-every-ms",
       "trace-out", "stats-json"});
  if (!known.ok()) {
    err << known.ToString() << "\n";
    return 2;
  }
  auto options = BatchOptionsFromFlags(flags);
  if (!options.ok()) {
    err << options.status().ToString() << "\n";
    return 1;
  }
  std::string restore_from;
  Status ckpt_flags = CheckpointFlagsInto(flags, &*options, &restore_from);
  if (!ckpt_flags.ok()) {
    err << ckpt_flags.ToString() << "\n";
    return 1;
  }
  Status sup_flags = SupervisionFlagsInto(flags, &*options);
  if (!sup_flags.ok()) {
    err << sup_flags.ToString() << "\n";
    return 1;
  }
  options->stop_requested = &CliStopFlag();
  // Telemetry must be in the options BEFORE MakeMultiPolicy: executors
  // copy RunOptions at construction.
  Observability obsv;
  Status obs_flags = SetupObservability(
      flags, *options, flags.GetString("strategy", "nonshare"), &obsv);
  if (!obs_flags.ok()) {
    err << obs_flags.ToString() << "\n";
    return 1;
  }
  options->telemetry = obsv.telemetry.get();
  std::string path = flags.GetString("queries");
  if (path.empty()) {
    err << "InvalidArgument: --queries FILE is required (one query per "
           "line; # comments)\n";
    return 1;
  }
  std::ifstream in(path);
  if (!in) {
    err << "IoError: cannot open queries file: " << path << "\n";
    return 1;
  }
  Schema schema;
  Analyzer analyzer(&schema);
  std::vector<CompiledQuery> queries;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto cq = analyzer.AnalyzeText(trimmed);
    if (!cq.ok()) {
      err << path << ":" << lineno << ": " << cq.status().ToString() << "\n";
      return 1;
    }
    queries.push_back(std::move(cq).value());
  }
  if (queries.empty()) {
    err << "InvalidArgument: no queries in " << path << "\n";
    return 1;
  }
  auto events = LoadEvents(flags, &schema);
  if (!events.ok()) {
    err << events.status().ToString() << "\n";
    return 1;
  }

  std::string strategy = flags.GetString("strategy", "nonshare");
  // The factory builds one engine per shard (once, serially); per-strategy
  // plan/routing notes print on the first construction only.
  bool plan_printed = false;
  exec::MultiEngineFactory factory;
  if (strategy == "nonshare") {
    factory = [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(auto e, NonSharedEngine::CreateAseq(queries));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  } else if (strategy == "sase") {
    factory = [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      return std::unique_ptr<MultiQueryEngine>(
          NonSharedEngine::CreateStackBased(queries));
    };
  } else if (strategy == "pretree") {
    factory = [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(auto e, PreTreeEngine::Create(queries));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  } else if (strategy == "cc") {
    factory = [&queries, &schema, &out,
               &plan_printed]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ChopPlan plan = PlanChopConnect(queries);
      if (!plan_printed) {
        plan_printed = true;
        out << "plan: " << plan.ToString(schema) << "\n";
      }
      ASEQ_ASSIGN_OR_RETURN(auto e, ChopConnectEngine::Create(queries, plan));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  } else if (strategy == "hybrid") {
    factory = [&queries, &out,
               &plan_printed]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(auto e, HybridMultiEngine::Create(queries));
      if (!plan_printed) {
        plan_printed = true;
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          out << "  Q" << (qi + 1) << " -> " << e->routing()[qi] << "\n";
        }
      }
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  } else {
    err << "InvalidArgument: --strategy must be "
           "nonshare|sase|pretree|cc|hybrid\n";
    return 1;
  }

  // All workload execution goes through a policy: serial for --shards 1
  // (the default), partition-parallel otherwise. Workloads that cannot
  // shard fall back to serial with a note.
  std::string fallback_reason;
  auto policy = exec::MakeMultiPolicy(queries, factory, *options,
                                      &fallback_reason);
  if (!policy.ok()) {
    err << policy.status().ToString() << "\n";
    return 1;
  }
  if (!fallback_reason.empty()) {
    err << "note: sharding disabled (" << fallback_reason
        << "); running serially\n";
  }

  if (!restore_from.empty()) {
    uint64_t offset = 0;
    Status restored = (*policy)->Restore(restore_from, &offset);
    if (!restored.ok()) {
      err << restored.ToString() << "\n";
      return 1;
    }
    if (offset > events->size()) {
      err << "InvalidArgument: snapshot '" << restore_from
          << "' was taken at stream offset " << offset
          << " but this source has only " << events->size() << " events\n";
      return 1;
    }
    events->erase(events->begin(),
                  events->begin() + static_cast<ptrdiff_t>(offset));
    out << "restored from " << restore_from << " at offset " << offset
        << "; replaying " << events->size() << " remaining events\n";
  }
  if (obsv.emitter != nullptr) obsv.emitter->Start();
  MultiRunResult result = (*policy)->RunEvents(*events);
  obsv.Finish((*policy)->shard_busy_seconds());
  if (!result.fault_status.ok()) {
    err << "fault: run aborted: " << result.fault_status.ToString() << "\n";
    return 1;
  }
  if (result.interrupted) {
    out << "interrupted: stop signal received; drained in-flight batches "
           "after "
        << result.events << " events\n";
  }
  if (!result.checkpoint_status.ok()) {
    err << "warning: checkpointing stopped: "
        << result.checkpoint_status.ToString() << "\n";
  }
  std::vector<size_t> per_query(queries.size(), 0);
  std::vector<Value> last(queries.size());
  for (const MultiOutput& mo : result.outputs) {
    ++per_query[mo.query_index];
    last[mo.query_index] = mo.output.value;
  }
  out << "strategy:      " << (*policy)->name() << "\n";
  out << "queries:       " << queries.size() << "\n";
  PrintStatsBlock(out, *options, result, (*policy)->stats(),
                  (*policy)->shard_busy_seconds(), nullptr);
  MaybeWriteStatsJson(obsv, "workload", (*policy)->name(), result,
                      (*policy)->stats(), (*policy)->shard_busy_seconds(),
                      result.outputs.size(), err);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    out << "  Q" << (qi + 1) << ": " << per_query[qi]
        << " results, last=" << last[qi].ToString() << "  — "
        << queries[qi].ToString() << "\n";
  }
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  auto flags = FlagSet::Parse(args);
  if (!flags.ok()) {
    err << flags.status().ToString() << "\n" << kUsage;
    return 2;
  }
  if (flags->positional().size() != 1) {
    err << kUsage;
    return 2;
  }
  const std::string& cmd = flags->positional()[0];
  if (cmd == "version") {
    out << "aseq " << kVersionString << " — reproduction of: "
        << kPaperCitation << "\n";
    return 0;
  }
  if (cmd == "run") return CmdRun(*flags, out, err);
  if (cmd == "explain") return CmdExplain(*flags, out, err);
  if (cmd == "generate") return CmdGenerate(*flags, out, err);
  if (cmd == "compare") return CmdCompare(*flags, out, err);
  if (cmd == "workload") return CmdWorkload(*flags, out, err);
  err << "unknown command '" << cmd << "'\n" << kUsage;
  return 2;
}

}  // namespace aseq
