// The `aseq` command-line tool: run / explain / compare CEP aggregation
// queries over traces and synthetic streams. See cli.h for the commands.

#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

namespace {

// Async-signal-safe by construction: a lock-free atomic store and nothing
// else. The run loops notice the flag between batches and shut down
// gracefully (drain, final checkpoint, summary, exit 0).
void HandleStopSignal(int) {
  aseq::CliStopFlag().store(true, std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::vector<std::string> args(argv + 1, argv + argc);
  return aseq::RunCli(args, std::cout, std::cerr);
}
