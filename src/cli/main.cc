// The `aseq` command-line tool: run / explain / compare CEP aggregation
// queries over traces and synthetic streams. See cli.h for the commands.

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return aseq::RunCli(args, std::cout, std::cerr);
}
