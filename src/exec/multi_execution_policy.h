#ifndef ASEQ_EXEC_MULTI_EXECUTION_POLICY_H_
#define ASEQ_EXEC_MULTI_EXECUTION_POLICY_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "engine/runtime.h"
#include "query/compiled_query.h"
#include "stream/stream_source.h"

namespace aseq {
namespace exec {

/// Builds one multi-query engine instance for the workload being executed.
/// The sharded policy calls this once per shard — every call must return an
/// identically configured, freshly constructed engine.
using MultiEngineFactory =
    std::function<Result<std::unique_ptr<MultiQueryEngine>>()>;

/// \brief How a run drives its multi-query engine(s): serial on the calling
/// thread, or hash-partitioned across per-shard engine twins on worker
/// threads — the workload-level mirror of ExecutionPolicy.
///
/// Whatever the policy, the contract is exact serial equivalence: outputs
/// in global sequence order (ties broken by each event's own emission
/// order) and EngineStats byte-identical to the serial run (modulo the
/// batch counters, exactly as OnBatch vs OnEvent).
class MultiExecutionPolicy {
 public:
  virtual ~MultiExecutionPolicy() = default;

  /// Policy + engine description, e.g. "Hybrid" (serial) or
  /// "Sharded[Hybrid]" (sharded).
  virtual std::string name() const = 0;
  virtual size_t num_shards() const = 0;

  /// Runs the whole source / the pre-built events through the policy.
  virtual MultiRunResult Run(StreamSource* source) = 0;
  virtual MultiRunResult RunEvents(const std::vector<Event>& events) = 0;

  /// The logical engine's stats: the engine's own for serial, the exact
  /// merged view for sharded.
  virtual const EngineStats& stats() const = 0;

  /// Per-shard stats of the last run (size num_shards; refreshed at the
  /// end of each run).
  virtual std::span<const EngineStats> shard_stats() const = 0;

  /// Per-shard busy seconds of the last run — max(shard_busy_seconds) is
  /// the critical path, the scaling metric the multi-query shard-sweep
  /// bench reports alongside wall clock.
  virtual std::span<const double> shard_busy_seconds() const = 0;

  /// Restores engine state from a snapshot (a multi-query engine snapshot
  /// for serial, the multi-shard container for sharded) and aims
  /// subsequent runs at the recorded stream offset.
  virtual Status Restore(const std::string& path, uint64_t* stream_offset) = 0;

  /// The engine driven on the calling thread, or null for sharded
  /// policies (per-shard engines are internal).
  virtual MultiQueryEngine* serial_engine() { return nullptr; }
};

/// Builds the policy for `options.num_shards`: the sharded multi-query
/// executor when more than one shard is requested, every query shards
/// safely (PlanMultiSharding), and the engine opts in
/// (MultiShardableEngine::shardable) — else the serial executor. When
/// sharding was requested but refused, `*fallback_reason` (optional)
/// receives why; the answer is then still exact, just serial.
Result<std::unique_ptr<MultiExecutionPolicy>> MakeMultiPolicy(
    std::span<const CompiledQuery> queries, const MultiEngineFactory& factory,
    const RunOptions& options, std::string* fallback_reason = nullptr);

}  // namespace exec
}  // namespace aseq

#endif  // ASEQ_EXEC_MULTI_EXECUTION_POLICY_H_
