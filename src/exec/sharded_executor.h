#ifndef ASEQ_EXEC_SHARDED_EXECUTOR_H_
#define ASEQ_EXEC_SHARDED_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "exec/execution_policy.h"
#include "exec/shard_router.h"
#include "metrics/shard_stats.h"

namespace aseq {
namespace exec {

/// \brief The partition-parallel policy: N engine twins, each owning the
/// partitions whose GROUP BY key hashes to it, pumped by one worker
/// thread over a bounded per-shard queue.
///
/// Serial equivalence, piece by piece:
///  - Routing: events go to hash(GROUP BY key) % N — all partitions a
///    trigger reads share that key (PlanSharding guarantees it), so every
///    output is computed from exactly the state the serial engine would
///    read.
///  - Purge markers: a serial trigger purges expired state across every
///    partition. The router detects triggers (same staging logic as the
///    engine) and enqueues a purge marker, in seq order, to every
///    non-owner shard; ShardableEngine::SyncPurgeTo applies exactly the
///    serial cross-partition purge. Unbounded queries skip markers
///    (nothing ever expires).
///  - Outputs: each event's outputs come from exactly one shard, tagged
///    with the event's global seq; a k-way merge by seq restores the
///    serial order byte-identical.
///  - Stats: bulk counters are charged on exactly one shard per event and
///    sum exactly (metrics/shard_stats.h); live/peak objects are
///    reconstructed exactly by StatsTimelineMerger from per-event
///    (seq, current_after, window_peak) records. Workers therefore drive
///    engines through OnEvent — per-event observation boundaries are what
///    make the peak merge exact — so batch counters stay zero, which the
///    equivalence contract already excludes.
///  - Checkpoints: at a due batch boundary the coordinator parks all
///    workers at a barrier and writes one multi-shard container
///    (ckpt::SaveShardedSnapshot) holding every shard's payload plus the
///    merged stats; restore refills the twins and re-seeds the merge.
///
/// Supervision (RunOptions::supervise; docs/internals.md §14): the
/// coordinator doubles as a watchdog. Every worker heartbeats once per op;
/// a worker that dies (injected crash) or goes silent with queued work for
/// longer than the watchdog timeout is quarantined and restarted alone:
/// its engine twin is rebuilt from the lane's last recovery point (an
/// in-memory engine snapshot captured at every barrier) and its routed op
/// slice since that point is replayed from the lane's replay log — outputs
/// and stats end bit-exact with an unfailed run. Restarts back off
/// exponentially and are budgeted per recovery interval; exhausting the
/// budget aborts the run with RunResultBase::fault_status.
///
/// Overload control (RunOptions::overload_policy): when a lane's bounded
/// queue reaches its high-watermark (or the router.route fault point
/// injects overload), the coordinator either keeps blocking (kBlock, the
/// default), drains every queue before routing on (kDegradeSerial), or
/// deterministically sheds the overloaded event's whole partition (kShed,
/// accounted in shed_* counters; surviving partitions stay exact).
class ShardedExecutor : public ExecutionPolicy {
 public:
  /// `engines` must all be freshly constructed twins for `query`, each
  /// implementing ShardableEngine (MakePolicy guarantees both). `factory`
  /// rebuilds a twin after a supervised restart; supervision requires it
  /// (MakePolicy always passes its own factory through).
  ShardedExecutor(const CompiledQuery& query, const RunOptions& options,
                  std::vector<std::unique_ptr<QueryEngine>> engines,
                  EngineFactory factory = nullptr);
  ~ShardedExecutor() override = default;

  std::string name() const override {
    return "Sharded[" + engines_[0]->name() + "]";
  }
  size_t num_shards() const override { return engines_.size(); }

  RunResult Run(StreamSource* source) override;
  RunResult RunEvents(const std::vector<Event>& events) override;

  const EngineStats& stats() const override { return merged_; }
  std::span<const EngineStats> shard_stats() const override {
    return shard_stats_view_;
  }
  std::span<const double> shard_busy_seconds() const override {
    return busy_view_;
  }

  Status Restore(const std::string& path, uint64_t* stream_offset) override;

 private:
  struct ShardOp {
    enum class Kind : uint8_t { kEvent, kPurgeMarker };
    Kind kind = Kind::kEvent;
    Timestamp ts = 0;
    SeqNum seq = 0;
    Event event;  // meaningful for kEvent only
  };

  struct LaneItem {
    enum class Tag : uint8_t { kOps, kBarrier, kStop };
    Tag tag = Tag::kOps;
    std::vector<ShardOp> ops;
  };

  /// One shard's queue plus its worker-owned run state. The coordinator
  /// touches outputs/records/busy_seconds only while the worker is parked
  /// at a barrier or joined (including the joined window of a supervised
  /// restart).
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<LaneItem> queue;
    /// Drained op vectors recycled back to the router (clear-not-shrink).
    std::vector<std::vector<ShardOp>> free_ops;

    std::vector<Output> outputs;
    std::vector<StatsTimelineMerger::Record> records;
    size_t records_consumed = 0;
    std::vector<Output> scratch;
    double busy_seconds = 0;

    // ---- Worker-side supervision state (atomics; coordinator reads). ----
    /// Heartbeat: bumped once per executed op. Frozen progress with queued
    /// work for longer than the watchdog timeout means a stalled worker.
    std::atomic<uint64_t> progress{0};
    /// True while the worker is parked waiting for work (an idle worker is
    /// never "stalled").
    std::atomic<bool> idle{false};
    /// Worker died (injected crash): its thread returned without cleanup.
    std::atomic<bool> dead{false};
    /// Coordinator order to exit: wakes a parked (idle or stalled) worker
    /// so the restart path can join its thread.
    std::atomic<bool> quarantine{false};
    /// Worker is parked at a coordinator barrier (never a failure).
    std::atomic<bool> at_barrier{false};
    /// Queue depth mirror, maintained under mu, read lock-free by the
    /// router loop for the overload high-watermark.
    std::atomic<size_t> depth{0};

    // ---- Coordinator-only recovery state (supervised runs). ----
    /// Engine Checkpoint payload at the last recovery point (barrier).
    std::string snapshot;
    /// outputs/records high-water marks at that recovery point: a restart
    /// truncates back to them before replaying.
    size_t ckpt_outputs = 0;
    size_t ckpt_records = 0;
    /// Every op routed to this lane since the recovery point, in order —
    /// the restart replay slice. Cleared at each barrier.
    std::vector<ShardOp> replay_log;
    /// Restarts burned since the last recovery point (budgeted).
    size_t restart_attempts = 0;
    /// A barrier token is owed: it was enqueued (or lost with a cleared
    /// queue) and the worker has not arrived yet — a restart re-issues it
    /// after the replay slice.
    bool barrier_pending = false;
    /// Watchdog bookkeeping: last observed heartbeat and when it changed.
    uint64_t last_progress = 0;
    std::chrono::steady_clock::time_point last_change;
  };

  /// Coordinator-owned fault/overload accounting, folded into the merged
  /// stats at the end of the run.
  struct FaultCounters {
    uint64_t restarts = 0;
    uint64_t replayed_events = 0;
    uint64_t shed_partitions = 0;
    uint64_t shed_events = 0;
    uint64_t overload_stalls = 0;
  };

  /// The shared run loop; `refill` yields the next batch as a view
  /// (empty = exhausted). The view may be borrowed source storage, so the
  /// loop stamps sequence numbers in place but copies events into shard
  /// ops instead of consuming them.
  RunResult RunImpl(const std::function<std::span<Event>()>& refill);

  void WorkerMain(size_t shard);
  /// Pushes an item, honoring the bounded-queue cap (unsupervised: blocks
  /// indefinitely; a worker always drains).
  void Enqueue(size_t shard, LaneItem item);
  /// Supervised push: bounded waits, restarting the lane if it fails
  /// while the coordinator is parked on its full queue.
  Status EnqueueSupervised(size_t shard, LaneItem item);
  /// Moves pending_[shard] into the lane's queue and re-arms pending_
  /// with a recycled vector.
  Status FlushPending(size_t shard);
  /// Parks every worker at a barrier; returns once all have arrived.
  void BarrierAll();
  /// Supervised barrier: same contract, but failed lanes are restarted
  /// (with their barrier token re-issued) until every lane arrives.
  Status BarrierAllSupervised();
  /// Releases workers parked by BarrierAll / BarrierAllSupervised.
  void ResumeAll();
  /// Feeds each lane's new records to the merger (lanes quiescent).
  void DrainMerger();
  /// Bulk-sums engine stats + the merger's object view.
  EngineStats ComputeMergedStats() const;

  // ---- Supervision (coordinator side). ----
  /// True when the lane's worker is dead, or silent with queued work past
  /// the watchdog timeout. Updates the lane's watchdog bookkeeping.
  bool LaneFailed(size_t shard);
  /// Sweeps all lanes, restarting any that failed.
  Status CheckLanes();
  /// Quarantines + joins the failed worker, rebuilds the engine twin from
  /// the lane's recovery snapshot, truncates outputs/records to the
  /// recovery watermarks, respawns the worker, and replays the lane's
  /// routed slice (plus any owed barrier token). Bounded exponential
  /// backoff; exceeding the restart budget returns an error.
  Status RestartShard(size_t shard);
  /// Captures a recovery point per lane: engine snapshot, output/record
  /// watermarks, replay log truncation, budget reset. Workers must be
  /// parked at a barrier.
  Status CaptureRecoveryPoints();
  /// Waits until every lane is empty and idle (degrade-serial overload
  /// response), restarting failed lanes when supervised.
  Status DrainAllQueues();
  /// Pushes stop tokens to live lanes and joins every worker thread.
  void StopWorkers();

  const CompiledQuery* query_;
  RunOptions options_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::vector<ShardableEngine*> shardables_;
  EngineFactory factory_;
  ShardRouter router_;
  bool send_markers_;  // windowed queries only

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;
  std::vector<std::vector<ShardOp>> pending_;
  std::vector<Event> batch_buf_;

  // Barrier coordination (checkpoints + recovery points).
  std::mutex coord_mu_;
  std::condition_variable coord_cv_;
  size_t barrier_arrived_ = 0;
  uint64_t barrier_epoch_ = 0;

  // Per-run supervision/overload state (coordinator only).
  FaultCounters fcounters_;
  std::unordered_set<uint32_t> shed_keys_;
  uint64_t fired_at_start_ = 0;

  StatsTimelineMerger merger_;
  EngineStats merged_;
  std::vector<EngineStats> shard_stats_view_;
  std::vector<double> busy_view_;
};

}  // namespace exec
}  // namespace aseq

#endif  // ASEQ_EXEC_SHARDED_EXECUTOR_H_
