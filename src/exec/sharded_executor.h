#ifndef ASEQ_EXEC_SHARDED_EXECUTOR_H_
#define ASEQ_EXEC_SHARDED_EXECUTOR_H_

#include <utility>

#include "exec/execution_policy.h"
#include "exec/multi_execution_policy.h"
#include "exec/shard_router.h"
#include "exec/sharded_executor_impl.h"

namespace aseq {
namespace exec {

/// Trait bindings for the single-query sharded executor: one CompiledQuery,
/// ShardableEngine twins, scalar Output, ShardRouter. A route triggers when
/// the query's last positive role matched; markers carry no payload (the
/// purge covers the whole engine).
struct SingleShardTraits {
  using Policy = ExecutionPolicy;
  using Engine = QueryEngine;
  using Shardable = ShardableEngine;
  using OutputT = Output;
  using RunResultT = RunResult;
  using RouterT = ShardRouter;
  using FactoryT = EngineFactory;

  static SeqNum OutputSeq(const OutputT& o) { return o.seq; }
  static bool IsTrigger(const RouterT::Route& route) { return route.trigger; }
  static void StampMarker(const RouterT::Route& route, ShardOp* op) {
    (void)route;
    (void)op;  // single-query markers carry no per-query payload
  }
  static void SyncPurge(Shardable* shardable, const ShardOp& op) {
    shardable->SyncPurgeTo(op.ts);
  }
  /// Single-query engines count objects at add/remove granularity, so
  /// their mid-event peaks are real serial observations.
  static bool BoundaryObjects(const Shardable* shardable) {
    (void)shardable;
    return false;
  }
};

/// Trait bindings for the multi-query (workload) sharded executor:
/// MultiShardableEngine twins over the whole workload, query-tagged
/// MultiOutput, MultiShardRouter. A route triggers when any windowed query
/// completed; the marker carries which ones, so engines with per-query
/// clocks purge exactly the serial set.
struct MultiShardTraits {
  using Policy = MultiExecutionPolicy;
  using Engine = MultiQueryEngine;
  using Shardable = MultiShardableEngine;
  using OutputT = MultiOutput;
  using RunResultT = MultiRunResult;
  using RouterT = MultiShardRouter;
  using FactoryT = MultiEngineFactory;

  static SeqNum OutputSeq(const OutputT& o) { return o.output.seq; }
  static bool IsTrigger(const RouterT::Route& route) {
    return !route.trigger_queries.empty();
  }
  static void StampMarker(const RouterT::Route& route, ShardOp* op) {
    op->trigger_queries = route.trigger_queries;
  }
  static void SyncPurge(Shardable* shardable, const ShardOp& op) {
    shardable->SyncPurgeTo(op.ts, op.trigger_queries);
  }
  /// Wrapper engines (NonShare, Hybrid) sample the combined sub-engine
  /// total once per event, so their window_peak is not a serial
  /// observation — merge boundary totals only.
  static bool BoundaryObjects(const Shardable* shardable) {
    return shardable->objects_sampled_at_boundaries();
  }
};

/// The single-query partition-parallel policy (docs/internals.md §13).
using ShardedExecutor = ShardedExecutorT<SingleShardTraits>;

/// The multi-query partition-parallel policy: the same executor over a
/// shared GROUP BY attribute, one engine-twin set for the whole workload
/// (docs/internals.md §15).
using MultiShardedExecutor = ShardedExecutorT<MultiShardTraits>;

extern template class ShardedExecutorT<SingleShardTraits>;
extern template class ShardedExecutorT<MultiShardTraits>;

}  // namespace exec
}  // namespace aseq

#endif  // ASEQ_EXEC_SHARDED_EXECUTOR_H_
