#ifndef ASEQ_EXEC_SHARDED_EXECUTOR_H_
#define ASEQ_EXEC_SHARDED_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "exec/execution_policy.h"
#include "exec/shard_router.h"
#include "metrics/shard_stats.h"

namespace aseq {
namespace exec {

/// \brief The partition-parallel policy: N engine twins, each owning the
/// partitions whose GROUP BY key hashes to it, pumped by one worker
/// thread over a bounded per-shard queue.
///
/// Serial equivalence, piece by piece:
///  - Routing: events go to hash(GROUP BY key) % N — all partitions a
///    trigger reads share that key (PlanSharding guarantees it), so every
///    output is computed from exactly the state the serial engine would
///    read.
///  - Purge markers: a serial trigger purges expired state across every
///    partition. The router detects triggers (same staging logic as the
///    engine) and enqueues a purge marker, in seq order, to every
///    non-owner shard; ShardableEngine::SyncPurgeTo applies exactly the
///    serial cross-partition purge. Unbounded queries skip markers
///    (nothing ever expires).
///  - Outputs: each event's outputs come from exactly one shard, tagged
///    with the event's global seq; a k-way merge by seq restores the
///    serial order byte-identical.
///  - Stats: bulk counters are charged on exactly one shard per event and
///    sum exactly (metrics/shard_stats.h); live/peak objects are
///    reconstructed exactly by StatsTimelineMerger from per-event
///    (seq, current_after, window_peak) records. Workers therefore drive
///    engines through OnEvent — per-event observation boundaries are what
///    make the peak merge exact — so batch counters stay zero, which the
///    equivalence contract already excludes.
///  - Checkpoints: at a due batch boundary the coordinator parks all
///    workers at a barrier and writes one multi-shard container
///    (ckpt::SaveShardedSnapshot) holding every shard's payload plus the
///    merged stats; restore refills the twins and re-seeds the merge.
class ShardedExecutor : public ExecutionPolicy {
 public:
  /// `engines` must all be freshly constructed twins for `query`, each
  /// implementing ShardableEngine (MakePolicy guarantees both).
  ShardedExecutor(const CompiledQuery& query, const RunOptions& options,
                  std::vector<std::unique_ptr<QueryEngine>> engines);
  ~ShardedExecutor() override = default;

  std::string name() const override {
    return "Sharded[" + engines_[0]->name() + "]";
  }
  size_t num_shards() const override { return engines_.size(); }

  RunResult Run(StreamSource* source) override;
  RunResult RunEvents(const std::vector<Event>& events) override;

  const EngineStats& stats() const override { return merged_; }
  std::span<const EngineStats> shard_stats() const override {
    return shard_stats_view_;
  }
  std::span<const double> shard_busy_seconds() const override {
    return busy_view_;
  }

  Status Restore(const std::string& path, uint64_t* stream_offset) override;

 private:
  struct ShardOp {
    enum class Kind : uint8_t { kEvent, kPurgeMarker };
    Kind kind = Kind::kEvent;
    Timestamp ts = 0;
    SeqNum seq = 0;
    Event event;  // meaningful for kEvent only
  };

  struct LaneItem {
    enum class Tag : uint8_t { kOps, kBarrier, kStop };
    Tag tag = Tag::kOps;
    std::vector<ShardOp> ops;
  };

  /// One shard's queue plus its worker-owned run state. The coordinator
  /// touches outputs/records/busy_seconds only while the worker is parked
  /// at a barrier or joined.
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<LaneItem> queue;
    /// Drained op vectors recycled back to the router (clear-not-shrink).
    std::vector<std::vector<ShardOp>> free_ops;

    std::vector<Output> outputs;
    std::vector<StatsTimelineMerger::Record> records;
    size_t records_consumed = 0;
    std::vector<Output> scratch;
    double busy_seconds = 0;
  };

  /// The shared run loop; `refill` yields the next batch as a view
  /// (empty = exhausted). The view may be borrowed source storage, so the
  /// loop stamps sequence numbers in place but copies events into shard
  /// ops instead of consuming them.
  RunResult RunImpl(const std::function<std::span<Event>()>& refill);

  void WorkerMain(size_t shard);
  /// Pushes an item, honoring the bounded-queue cap.
  void Enqueue(size_t shard, LaneItem item);
  /// Moves pending_[shard] into the lane's queue and re-arms pending_
  /// with a recycled vector.
  void FlushPending(size_t shard);
  /// Parks every worker at a barrier; returns once all have arrived.
  void BarrierAll();
  /// Releases workers parked by BarrierAll.
  void ResumeAll();
  /// Feeds each lane's new records to the merger (lanes quiescent).
  void DrainMerger();
  /// Bulk-sums engine stats + the merger's object view.
  EngineStats ComputeMergedStats() const;

  const CompiledQuery* query_;
  RunOptions options_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::vector<ShardableEngine*> shardables_;
  ShardRouter router_;
  bool send_markers_;  // windowed queries only

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;
  std::vector<std::vector<ShardOp>> pending_;
  std::vector<Event> batch_buf_;

  // Barrier coordination (checkpoints).
  std::mutex coord_mu_;
  std::condition_variable coord_cv_;
  size_t barrier_arrived_ = 0;
  uint64_t barrier_epoch_ = 0;

  StatsTimelineMerger merger_;
  EngineStats merged_;
  std::vector<EngineStats> shard_stats_view_;
  std::vector<double> busy_view_;
};

}  // namespace exec
}  // namespace aseq

#endif  // ASEQ_EXEC_SHARDED_EXECUTOR_H_
