#include "exec/execution_policy.h"

#include <utility>

#include "exec/serial_executor.h"
#include "exec/sharded_executor.h"
#include "exec/shard_router.h"

namespace aseq {
namespace exec {

Result<std::unique_ptr<ExecutionPolicy>> MakePolicy(
    const CompiledQuery& query, const EngineFactory& factory,
    const RunOptions& options, std::string* fallback_reason) {
  if (fallback_reason != nullptr) fallback_reason->clear();
  ASEQ_ASSIGN_OR_RETURN(std::unique_ptr<QueryEngine> first, factory());
  const size_t shards = options.num_shards == 0 ? 1 : options.num_shards;
  if (shards == 1) {
    return std::unique_ptr<ExecutionPolicy>(
        new SerialExecutor(options, std::move(first)));
  }

  ShardPlan plan = PlanSharding(query);
  std::string reason = plan.reason;
  if (reason.empty() && dynamic_cast<ShardableEngine*>(first.get()) == nullptr) {
    // The query shards, but this engine configuration does not — a
    // baseline engine, or a wrapper (reordering, change detection) whose
    // buffering is inherently cross-key-sequential.
    reason = "engine '" + first->name() + "' does not support sharding";
  }
  if (!reason.empty()) {
    if (fallback_reason != nullptr) *fallback_reason = reason;
    return std::unique_ptr<ExecutionPolicy>(
        new SerialExecutor(options, std::move(first)));
  }

  std::vector<std::unique_ptr<QueryEngine>> engines;
  engines.reserve(shards);
  engines.push_back(std::move(first));
  for (size_t i = 1; i < shards; ++i) {
    ASEQ_ASSIGN_OR_RETURN(std::unique_ptr<QueryEngine> twin, factory());
    if (dynamic_cast<ShardableEngine*>(twin.get()) == nullptr) {
      return Status::InvalidArgument(
          "engine factory is not deterministic: shard 0 supports sharding "
          "but shard " +
          std::to_string(i) + " ('" + twin->name() + "') does not");
    }
    engines.push_back(std::move(twin));
  }
  return std::unique_ptr<ExecutionPolicy>(new ShardedExecutor(
      options, std::move(engines), ShardRouter(query, shards),
      /*send_markers=*/query.has_window(), factory));
}

}  // namespace exec
}  // namespace aseq
