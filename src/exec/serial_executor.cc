#include "exec/serial_executor.h"

#include <algorithm>
#include <span>
#include <utility>

#include "ckpt/snapshot.h"
#include "metrics/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace_writer.h"

namespace aseq {
namespace exec {

namespace {

/// Writes a snapshot when the stream offset crosses the next checkpoint
/// threshold. `save` is called with (path, offset); shared between the
/// single- and multi-query loops. After the first I/O failure the status
/// is latched and no further snapshots are attempted.
template <typename SaveFn>
void MaybeCheckpoint(const RunOptions& options, uint64_t offset,
                     uint64_t* next_due, RunResultBase* result, SaveFn&& save) {
  if (options.checkpoint_every == 0 || !result->checkpoint_status.ok() ||
      offset < *next_due) {
    return;
  }
  Status s = save(ckpt::SnapshotPathForOffset(options.checkpoint_dir, offset),
                  offset);
  if (s.ok()) {
    ++result->checkpoints_written;
    if (options.telemetry != nullptr) {
      options.telemetry->coord().checkpoints.Add(1);
    }
    result->last_checkpoint_offset = offset;
  } else {
    result->checkpoint_status = std::move(s);
  }
  while (*next_due <= offset) *next_due += options.checkpoint_every;
}

/// The serial loop, shared across {stream, events} x {single, multi}:
/// `refill` yields the next batch as a mutable view (empty = stream
/// exhausted); the loop stamps sequence numbers straight into the viewed
/// events, so a source that lends its own storage (VectorSource) feeds
/// the engine with zero per-batch copies. `scratch`/`result->outputs`
/// are the matching Output types.
template <typename ResultT, typename EngineT, typename ScratchT,
          typename RefillFn, typename SaveFn>
ResultT RunSerialLoop(const RunOptions& options, ScratchT* scratch,
                      EngineT* engine, RefillFn&& refill, SaveFn&& save) {
  ResultT result;
  result.batch_size = options.batch_size;
  SeqNum seq = options.start_offset;
  uint64_t next_ckpt = options.start_offset + options.checkpoint_every;
  StopWatch watch;
  for (;;) {
    // Stop-flag check before refill: no batch is pulled and then dropped,
    // so the final checkpoint covers exactly the events already fed.
    if (options.stop_requested != nullptr &&
        options.stop_requested->load(std::memory_order_relaxed)) {
      result.interrupted = true;
      break;
    }
    std::span<Event> batch = refill();
    if (batch.empty()) break;
    for (Event& e : batch) e.set_seq(seq++);
    scratch->clear();
    if (options.telemetry == nullptr) {
      engine->OnBatch(std::span<const Event>(batch), scratch);
    } else {
      // Serial telemetry: admission and execution are fused in OnBatch, so
      // one span covers both; the batch elapsed doubles as the
      // trigger-to-output latency when the batch produced outputs.
      obs::Telemetry& tel = *options.telemetry;
      const uint64_t begin_ns = obs::MonotonicNanos();
      engine->OnBatch(std::span<const Event>(batch), scratch);
      const uint64_t end_ns = obs::MonotonicNanos();
      const uint64_t elapsed = end_ns - begin_ns;
      tel.coord().batches.Add(1);
      tel.coord().events.Add(batch.size());
      tel.coord().admit_ns.Record(elapsed);
      obs::ShardCell& cell = tel.shard(0);
      cell.ops.Add(batch.size());
      cell.events.Add(batch.size());
      cell.outputs.Add(scratch->size());
      cell.items.Add(1);
      cell.busy_ns.Add(elapsed);
      cell.op_service_ns.Record(elapsed / batch.size());
      if (!scratch->empty()) cell.trigger_latency_ns.Record(elapsed);
      if (tel.trace() != nullptr) {
        tel.trace()->Span(
            "batch", 0, begin_ns, end_ns,
            {obs::TraceWriter::NumArg("seq", seq - batch.size()),
             obs::TraceWriter::NumArg("events", batch.size()),
             obs::TraceWriter::NumArg("outputs", scratch->size())});
      }
    }
    if (options.collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch->begin(),
                            scratch->end());
    }
    MaybeCheckpoint(options, seq, &next_ckpt, &result,
                    [&](const std::string& path, uint64_t offset) {
                      return save(path, offset);
                    });
  }
  // Graceful stop: write one final snapshot at the current offset so a
  // later --restore-from resumes without replaying anything.
  if (result.interrupted && !options.checkpoint_dir.empty() &&
      result.checkpoint_status.ok() &&
      (result.checkpoints_written == 0 ||
       result.last_checkpoint_offset < seq)) {
    Status s =
        save(ckpt::SnapshotPathForOffset(options.checkpoint_dir, seq), seq);
    if (s.ok()) {
      ++result.checkpoints_written;
      if (options.telemetry != nullptr) {
        options.telemetry->coord().checkpoints.Add(1);
      }
      result.last_checkpoint_offset = seq;
    } else {
      result.checkpoint_status = std::move(s);
    }
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq - options.start_offset;
  return result;
}

/// Refill by borrowing from a StreamSource.
struct StreamRefill {
  StreamSource* source;
  size_t batch_size;
  std::span<Event> operator()() const {
    return source->BorrowBatch(batch_size);
  }
};

/// Refill by slicing a caller-owned (const) event vector: the slice is
/// staged through `batch` because the loop stamps sequence numbers.
struct EventsRefill {
  const std::vector<Event>* events;
  std::vector<Event>* batch;
  size_t batch_size;
  size_t pos = 0;
  std::span<Event> operator()() {
    const size_t n = std::min(batch_size, events->size() - pos);
    batch->assign(events->begin() + static_cast<ptrdiff_t>(pos),
                  events->begin() + static_cast<ptrdiff_t>(pos + n));
    pos += n;
    return {batch->data(), n};
  }
};

}  // namespace

RunResult RunSerialStream(const RunOptions& options, SerialBuffers* buffers,
                          StreamSource* source, QueryEngine* engine) {
  return RunSerialLoop<RunResult>(
      options, &buffers->scratch, engine,
      StreamRefill{source, options.batch_size},
      [&](const std::string& path, uint64_t offset) {
        return ckpt::SaveEngineSnapshot(path, *engine, offset);
      });
}

RunResult RunSerialEvents(const RunOptions& options, SerialBuffers* buffers,
                          const std::vector<Event>& events,
                          QueryEngine* engine) {
  return RunSerialLoop<RunResult>(
      options, &buffers->scratch, engine,
      EventsRefill{&events, &buffers->batch, options.batch_size},
      [&](const std::string& path, uint64_t offset) {
        return ckpt::SaveEngineSnapshot(path, *engine, offset);
      });
}

MultiRunResult RunSerialMultiStream(const RunOptions& options,
                                    SerialBuffers* buffers,
                                    StreamSource* source,
                                    MultiQueryEngine* engine) {
  return RunSerialLoop<MultiRunResult>(
      options, &buffers->multi_scratch, engine,
      StreamRefill{source, options.batch_size},
      [&](const std::string& path, uint64_t offset) {
        return ckpt::SaveMultiSnapshot(path, *engine, offset);
      });
}

MultiRunResult RunSerialMultiEvents(const RunOptions& options,
                                    SerialBuffers* buffers,
                                    const std::vector<Event>& events,
                                    MultiQueryEngine* engine) {
  return RunSerialLoop<MultiRunResult>(
      options, &buffers->multi_scratch, engine,
      EventsRefill{&events, &buffers->batch, options.batch_size},
      [&](const std::string& path, uint64_t offset) {
        return ckpt::SaveMultiSnapshot(path, *engine, offset);
      });
}

SerialExecutor::SerialExecutor(const RunOptions& options,
                               std::unique_ptr<QueryEngine> engine)
    : options_(options), engine_(std::move(engine)) {
  options_.num_shards = 1;
}

RunResult SerialExecutor::Run(StreamSource* source) {
  RunResult result =
      RunSerialStream(options_, &buffers_, source, engine_.get());
  stats_view_ = engine_->stats();
  busy_seconds_ = result.elapsed_seconds;
  return result;
}

RunResult SerialExecutor::RunEvents(const std::vector<Event>& events) {
  RunResult result =
      RunSerialEvents(options_, &buffers_, events, engine_.get());
  stats_view_ = engine_->stats();
  busy_seconds_ = result.elapsed_seconds;
  return result;
}

Status SerialExecutor::Restore(const std::string& path,
                               uint64_t* stream_offset) {
  ASEQ_RETURN_NOT_OK(
      ckpt::RestoreEngineSnapshot(path, engine_.get(), stream_offset));
  options_.start_offset = *stream_offset;
  return Status::OK();
}

SerialMultiExecutor::SerialMultiExecutor(
    const RunOptions& options, std::unique_ptr<MultiQueryEngine> engine)
    : options_(options), engine_(std::move(engine)) {
  options_.num_shards = 1;
}

MultiRunResult SerialMultiExecutor::Run(StreamSource* source) {
  MultiRunResult result =
      RunSerialMultiStream(options_, &buffers_, source, engine_.get());
  stats_view_ = engine_->stats();
  busy_seconds_ = result.elapsed_seconds;
  return result;
}

MultiRunResult SerialMultiExecutor::RunEvents(
    const std::vector<Event>& events) {
  MultiRunResult result =
      RunSerialMultiEvents(options_, &buffers_, events, engine_.get());
  stats_view_ = engine_->stats();
  busy_seconds_ = result.elapsed_seconds;
  return result;
}

Status SerialMultiExecutor::Restore(const std::string& path,
                                    uint64_t* stream_offset) {
  ASEQ_RETURN_NOT_OK(
      ckpt::RestoreMultiSnapshot(path, engine_.get(), stream_offset));
  options_.start_offset = *stream_offset;
  return Status::OK();
}

}  // namespace exec
}  // namespace aseq
