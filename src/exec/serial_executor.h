#ifndef ASEQ_EXEC_SERIAL_EXECUTOR_H_
#define ASEQ_EXEC_SERIAL_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/execution_policy.h"
#include "exec/multi_execution_policy.h"

namespace aseq {
namespace exec {

// ---- The serial execution core, extracted from BatchRunner. ----
//
// These free functions are the one implementation of the batched serial
// loop: refill `buffers->batch` from the source (or a slice of the event
// vector), assign sequence numbers, feed OnBatch, collect outputs, and
// checkpoint at due batch boundaries. BatchRunner and SerialExecutor both
// delegate here, so the engine-pointer API and the policy API can never
// drift apart. All buffers are reused clear-not-shrink.

RunResult RunSerialStream(const RunOptions& options, SerialBuffers* buffers,
                          StreamSource* source, QueryEngine* engine);
RunResult RunSerialEvents(const RunOptions& options, SerialBuffers* buffers,
                          const std::vector<Event>& events,
                          QueryEngine* engine);
MultiRunResult RunSerialMultiStream(const RunOptions& options,
                                    SerialBuffers* buffers,
                                    StreamSource* source,
                                    MultiQueryEngine* engine);
MultiRunResult RunSerialMultiEvents(const RunOptions& options,
                                    SerialBuffers* buffers,
                                    const std::vector<Event>& events,
                                    MultiQueryEngine* engine);

/// \brief The single-threaded policy: owns one engine and drives it on the
/// calling thread through the serial core — exactly the pre-policy
/// BatchRunner behavior.
class SerialExecutor : public ExecutionPolicy {
 public:
  SerialExecutor(const RunOptions& options,
                 std::unique_ptr<QueryEngine> engine);

  std::string name() const override { return engine_->name(); }
  size_t num_shards() const override { return 1; }

  RunResult Run(StreamSource* source) override;
  RunResult RunEvents(const std::vector<Event>& events) override;

  const EngineStats& stats() const override { return engine_->stats(); }
  std::span<const EngineStats> shard_stats() const override {
    return {&stats_view_, 1};
  }
  std::span<const double> shard_busy_seconds() const override {
    return {&busy_seconds_, 1};
  }

  Status Restore(const std::string& path, uint64_t* stream_offset) override;

  QueryEngine* serial_engine() override { return engine_.get(); }

 private:
  RunOptions options_;
  std::unique_ptr<QueryEngine> engine_;
  SerialBuffers buffers_;
  EngineStats stats_view_;   // snapshot of engine stats after the last run
  double busy_seconds_ = 0;  // == elapsed_seconds of the last run
};

/// \brief The single-threaded multi-query policy: owns one multi-query
/// engine and drives it on the calling thread through the serial core —
/// exactly BatchRunner::RunMulti behavior.
class SerialMultiExecutor : public MultiExecutionPolicy {
 public:
  SerialMultiExecutor(const RunOptions& options,
                      std::unique_ptr<MultiQueryEngine> engine);

  std::string name() const override { return engine_->name(); }
  size_t num_shards() const override { return 1; }

  MultiRunResult Run(StreamSource* source) override;
  MultiRunResult RunEvents(const std::vector<Event>& events) override;

  const EngineStats& stats() const override { return engine_->stats(); }
  std::span<const EngineStats> shard_stats() const override {
    return {&stats_view_, 1};
  }
  std::span<const double> shard_busy_seconds() const override {
    return {&busy_seconds_, 1};
  }

  Status Restore(const std::string& path, uint64_t* stream_offset) override;

  MultiQueryEngine* serial_engine() override { return engine_.get(); }

 private:
  RunOptions options_;
  std::unique_ptr<MultiQueryEngine> engine_;
  SerialBuffers buffers_;
  EngineStats stats_view_;   // snapshot of engine stats after the last run
  double busy_seconds_ = 0;  // == elapsed_seconds of the last run
};

}  // namespace exec
}  // namespace aseq

#endif  // ASEQ_EXEC_SERIAL_EXECUTOR_H_
