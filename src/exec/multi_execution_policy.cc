#include "exec/multi_execution_policy.h"

#include <utility>

#include "exec/serial_executor.h"
#include "exec/shard_router.h"
#include "exec/sharded_executor.h"

namespace aseq {
namespace exec {

Result<std::unique_ptr<MultiExecutionPolicy>> MakeMultiPolicy(
    std::span<const CompiledQuery> queries, const MultiEngineFactory& factory,
    const RunOptions& options, std::string* fallback_reason) {
  if (fallback_reason != nullptr) fallback_reason->clear();
  ASEQ_ASSIGN_OR_RETURN(std::unique_ptr<MultiQueryEngine> first, factory());
  const size_t shards = options.num_shards == 0 ? 1 : options.num_shards;
  if (shards == 1) {
    return std::unique_ptr<MultiExecutionPolicy>(
        new SerialMultiExecutor(options, std::move(first)));
  }

  MultiShardPlan plan = PlanMultiSharding(queries);
  std::string reason = std::move(plan.reason);
  if (reason.empty()) {
    // The workload shards; the engine must opt in too. The probe is a
    // dynamic_cast plus shardable(): baselines and wrappers lack the
    // interface, and an engine may implement it yet refuse this workload.
    auto* shardable = dynamic_cast<MultiShardableEngine*>(first.get());
    if (shardable == nullptr || !shardable->shardable()) {
      reason = "engine '" + first->name() + "' does not support sharding";
    }
  }
  if (!reason.empty()) {
    if (fallback_reason != nullptr) *fallback_reason = reason;
    return std::unique_ptr<MultiExecutionPolicy>(
        new SerialMultiExecutor(options, std::move(first)));
  }

  std::vector<std::unique_ptr<MultiQueryEngine>> engines;
  engines.reserve(shards);
  engines.push_back(std::move(first));
  for (size_t i = 1; i < shards; ++i) {
    ASEQ_ASSIGN_OR_RETURN(std::unique_ptr<MultiQueryEngine> twin, factory());
    auto* twin_shardable = dynamic_cast<MultiShardableEngine*>(twin.get());
    if (twin_shardable == nullptr || !twin_shardable->shardable()) {
      return Status::InvalidArgument(
          "engine factory is not deterministic: shard 0 supports sharding "
          "but shard " +
          std::to_string(i) + " ('" + twin->name() + "') does not");
    }
    engines.push_back(std::move(twin));
  }
  bool any_window = false;
  for (const CompiledQuery& q : queries) any_window |= q.has_window();
  return std::unique_ptr<MultiExecutionPolicy>(new MultiShardedExecutor(
      options, std::move(engines), MultiShardRouter(queries, shards),
      /*send_markers=*/any_window, factory));
}

}  // namespace exec
}  // namespace aseq
