#include "exec/sharded_executor.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "ckpt/snapshot.h"
#include "fault/fault.h"

namespace aseq {
namespace exec {

namespace {

/// Bounded-queue depth per lane: enough to keep workers fed ahead of the
/// router, small enough that a fast router cannot buffer the stream.
constexpr size_t kMaxQueuedItems = 16;

/// Supervised waits poll at this period so the coordinator can run the
/// watchdog while parked on a queue or barrier.
constexpr std::chrono::milliseconds kSupervisedPoll{20};

constexpr uint64_t kNeverDue = std::numeric_limits<uint64_t>::max();

}  // namespace

ShardedExecutor::ShardedExecutor(
    const CompiledQuery& query, const RunOptions& options,
    std::vector<std::unique_ptr<QueryEngine>> engines, EngineFactory factory)
    : query_(&query),
      options_(options),
      engines_(std::move(engines)),
      factory_(std::move(factory)),
      router_(query, engines_.size()),
      send_markers_(query.has_window()) {
  assert(engines_.size() > 1);
  options_.num_shards = engines_.size();
  for (auto& e : engines_) {
    auto* shardable = dynamic_cast<ShardableEngine*>(e.get());
    assert(shardable != nullptr &&
           "ShardedExecutor requires ShardableEngine twins (MakePolicy "
           "enforces this)");
    shardables_.push_back(shardable);
  }
  lanes_.reserve(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  pending_.resize(engines_.size());
  shard_stats_view_.resize(engines_.size());
  busy_view_.resize(engines_.size(), 0);
}

void ShardedExecutor::WorkerMain(size_t shard) {
  Lane& lane = *lanes_[shard];
  QueryEngine* engine = engines_[shard].get();
  ShardableEngine* shardable = shardables_[shard];
  EngineStats* stats = shardable->shard_mutable_stats();
  const bool supervised = options_.supervise;
  const bool check_faults = fault::Injector::Global().armed();
  for (;;) {
    LaneItem item;
    {
      std::unique_lock<std::mutex> lk(lane.mu);
      lane.idle.store(true, std::memory_order_relaxed);
      lane.cv.wait(lk, [&] {
        return !lane.queue.empty() ||
               lane.quarantine.load(std::memory_order_relaxed);
      });
      lane.idle.store(false, std::memory_order_relaxed);
      if (lane.quarantine.load(std::memory_order_relaxed)) return;
      item = std::move(lane.queue.front());
      lane.queue.pop_front();
      lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
    }
    // The router may be parked on a full queue.
    lane.cv.notify_all();
    if (item.tag == LaneItem::Tag::kStop) return;
    if (item.tag == LaneItem::Tag::kBarrier) {
      std::unique_lock<std::mutex> lk(coord_mu_);
      const uint64_t epoch = barrier_epoch_;
      ++barrier_arrived_;
      lane.at_barrier.store(true, std::memory_order_release);
      coord_cv_.notify_all();
      // Quarantine must break a barrier park too: an aborted supervised
      // barrier (restart budget exhausted elsewhere) never resumes the
      // epoch, and teardown would otherwise join a thread parked here.
      coord_cv_.wait(lk, [&] {
        return barrier_epoch_ != epoch ||
               lane.quarantine.load(std::memory_order_relaxed);
      });
      lane.at_barrier.store(false, std::memory_order_release);
      continue;
    }
    StopWatch watch;
    for (ShardOp& op : item.ops) {
      if (check_faults) {
        if (auto fired =
                fault::Injector::Global().Hit(fault::Point::kWorkerOp, shard)) {
          if (fired->kind == fault::Kind::kSlow) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(fired->delay_us));
          } else if (supervised && fired->kind == fault::Kind::kCrash) {
            // Abrupt worker death: no cleanup, the op is lost mid-item.
            // The supervisor detects the dead flag, rebuilds this shard
            // from its recovery point, and replays the routed slice.
            lane.dead.store(true, std::memory_order_release);
            coord_cv_.notify_all();
            lane.cv.notify_all();
            return;
          } else if (supervised && fired->kind == fault::Kind::kStall) {
            // Hang without heartbeating until the watchdog quarantines us.
            std::unique_lock<std::mutex> lk(lane.mu);
            lane.cv.wait(lk, [&] {
              return lane.quarantine.load(std::memory_order_relaxed);
            });
            return;
          }
          // Other kinds are not meaningful at this point; ignore.
        }
      }
      ObjectCounter& objects = stats->objects;
      objects.BeginPeakWindow();
      const int64_t before = objects.current();
      if (op.kind == ShardOp::Kind::kEvent) {
        lane.scratch.clear();
        engine->OnEvent(op.event, &lane.scratch);
        if (options_.collect_outputs && !lane.scratch.empty()) {
          lane.outputs.insert(lane.outputs.end(), lane.scratch.begin(),
                              lane.scratch.end());
        }
      } else {
        shardable->SyncPurgeTo(op.ts);
      }
      const int64_t after = objects.current();
      const int64_t window_peak = objects.window_peak();
      // Record only state changes: the merge needs every current
      // transition and every mid-event maximum above the entry count.
      if (after != before || window_peak > before) {
        lane.records.push_back({op.seq, after, window_peak});
      }
      lane.progress.fetch_add(1, std::memory_order_relaxed);
    }
    lane.busy_seconds += watch.ElapsedSeconds();
    {
      std::lock_guard<std::mutex> lk(lane.mu);
      item.ops.clear();
      lane.free_ops.push_back(std::move(item.ops));
    }
  }
}

void ShardedExecutor::Enqueue(size_t shard, LaneItem item) {
  Lane& lane = *lanes_[shard];
  {
    std::unique_lock<std::mutex> lk(lane.mu);
    lane.cv.wait(lk, [&] { return lane.queue.size() < kMaxQueuedItems; });
    lane.queue.push_back(std::move(item));
    lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
  }
  lane.cv.notify_all();
}

Status ShardedExecutor::EnqueueSupervised(size_t shard, LaneItem item) {
  Lane& lane = *lanes_[shard];
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(lane.mu);
      const bool room = lane.cv.wait_for(lk, kSupervisedPoll, [&] {
        return lane.queue.size() < kMaxQueuedItems ||
               lane.dead.load(std::memory_order_relaxed);
      });
      if (room && !lane.dead.load(std::memory_order_relaxed)) {
        lane.queue.push_back(std::move(item));
        lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
        lk.unlock();
        lane.cv.notify_all();
        return Status::OK();
      }
    }
    if (LaneFailed(shard)) {
      ASEQ_RETURN_NOT_OK(RestartShard(shard));
    }
  }
}

Status ShardedExecutor::FlushPending(size_t shard) {
  if (pending_[shard].empty()) return Status::OK();
  Lane& lane = *lanes_[shard];
  std::vector<ShardOp> replacement;
  if (!options_.supervise) {
    {
      std::unique_lock<std::mutex> lk(lane.mu);
      lane.cv.wait(lk, [&] { return lane.queue.size() < kMaxQueuedItems; });
      lane.queue.push_back(
          LaneItem{LaneItem::Tag::kOps, std::move(pending_[shard])});
      lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
      if (!lane.free_ops.empty()) {
        replacement = std::move(lane.free_ops.back());
        lane.free_ops.pop_back();
      }
    }
    lane.cv.notify_all();
    pending_[shard] = std::move(replacement);
    return Status::OK();
  }
  for (;;) {
    bool pushed = false;
    {
      std::unique_lock<std::mutex> lk(lane.mu);
      const bool room = lane.cv.wait_for(lk, kSupervisedPoll, [&] {
        return lane.queue.size() < kMaxQueuedItems ||
               lane.dead.load(std::memory_order_relaxed);
      });
      if (room && !lane.dead.load(std::memory_order_relaxed)) {
        lane.queue.push_back(
            LaneItem{LaneItem::Tag::kOps, std::move(pending_[shard])});
        lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
        if (!lane.free_ops.empty()) {
          replacement = std::move(lane.free_ops.back());
          lane.free_ops.pop_back();
        }
        pushed = true;
      }
    }
    if (pushed) {
      lane.cv.notify_all();
      pending_[shard] = std::move(replacement);
      return Status::OK();
    }
    if (LaneFailed(shard)) {
      ASEQ_RETURN_NOT_OK(RestartShard(shard));
      // The restart replayed everything routed since the recovery point —
      // including the ops still sitting in pending_ — and cleared pending_.
      if (pending_[shard].empty()) return Status::OK();
    }
  }
}

void ShardedExecutor::BarrierAll() {
  {
    std::lock_guard<std::mutex> lk(coord_mu_);
    barrier_arrived_ = 0;
  }
  for (size_t s = 0; s < lanes_.size(); ++s) {
    Enqueue(s, LaneItem{LaneItem::Tag::kBarrier, {}});
  }
  std::unique_lock<std::mutex> lk(coord_mu_);
  coord_cv_.wait(lk, [&] { return barrier_arrived_ == lanes_.size(); });
}

Status ShardedExecutor::BarrierAllSupervised() {
  const size_t n = lanes_.size();
  {
    std::lock_guard<std::mutex> lk(coord_mu_);
    barrier_arrived_ = 0;
  }
  for (size_t s = 0; s < n; ++s) {
    // barrier_pending flips true only once the token is actually queued:
    // a restart during the enqueue must not re-issue a token that was
    // never pushed (EnqueueSupervised pushes it right after the restart).
    ASEQ_RETURN_NOT_OK(
        EnqueueSupervised(s, LaneItem{LaneItem::Tag::kBarrier, {}}));
    lanes_[s]->barrier_pending = true;
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(coord_mu_);
      if (coord_cv_.wait_for(lk, kSupervisedPoll,
                             [&] { return barrier_arrived_ == n; })) {
        break;
      }
    }
    for (size_t s = 0; s < n; ++s) {
      if (!lanes_[s]->at_barrier.load(std::memory_order_acquire) &&
          LaneFailed(s)) {
        // The lane's barrier token died with its queue; RestartShard
        // re-issues it after the replay slice (barrier_pending is set).
        ASEQ_RETURN_NOT_OK(RestartShard(s));
      }
    }
  }
  for (auto& lane : lanes_) lane->barrier_pending = false;
  return Status::OK();
}

void ShardedExecutor::ResumeAll() {
  {
    std::lock_guard<std::mutex> lk(coord_mu_);
    ++barrier_epoch_;
  }
  coord_cv_.notify_all();
}

void ShardedExecutor::DrainMerger() {
  std::vector<std::span<const StatsTimelineMerger::Record>> spans;
  spans.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    spans.push_back(std::span<const StatsTimelineMerger::Record>(
        lane->records.data() + lane->records_consumed,
        lane->records.size() - lane->records_consumed));
  }
  merger_.Consume(spans);
  for (auto& lane : lanes_) lane->records_consumed = lane->records.size();
}

EngineStats ShardedExecutor::ComputeMergedStats() const {
  EngineStats merged;
  for (const auto& e : engines_) MergeBulkStats(e->stats(), &merged);
  merged.objects.RestoreCounts(merger_.merged_current(),
                               merger_.merged_peak());
  return merged;
}

bool ShardedExecutor::LaneFailed(size_t shard) {
  Lane& lane = *lanes_[shard];
  if (lane.dead.load(std::memory_order_acquire)) return true;
  const uint64_t p = lane.progress.load(std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  if (p != lane.last_progress || lane.idle.load(std::memory_order_relaxed) ||
      lane.at_barrier.load(std::memory_order_relaxed)) {
    lane.last_progress = p;
    lane.last_change = now;
    return false;
  }
  // Not idle, not at a barrier, heartbeat frozen: stalled once the silence
  // outlasts the watchdog timeout.
  return std::chrono::duration<double, std::milli>(now - lane.last_change)
             .count() > options_.watchdog_timeout_ms;
}

Status ShardedExecutor::CheckLanes() {
  for (size_t s = 0; s < lanes_.size(); ++s) {
    if (LaneFailed(s)) {
      ASEQ_RETURN_NOT_OK(RestartShard(s));
    }
  }
  return Status::OK();
}

Status ShardedExecutor::RestartShard(size_t shard) {
  Lane& lane = *lanes_[shard];
  // Quarantine + reap: a stalled worker parks until the quarantine flag
  // flips; a crashed one already returned; an idle one wakes and exits.
  {
    std::lock_guard<std::mutex> lk(lane.mu);
    lane.quarantine.store(true, std::memory_order_relaxed);
  }
  lane.cv.notify_all();
  if (workers_[shard].joinable()) workers_[shard].join();

  ++lane.restart_attempts;
  ++fcounters_.restarts;
  if (lane.restart_attempts > options_.max_restarts) {
    return Status::Internal(
        "shard " + std::to_string(shard) + " exhausted its restart budget (" +
        std::to_string(options_.max_restarts) +
        " since the last recovery point); giving up");
  }
  // Bounded exponential backoff before respawning (first restart is
  // immediate): 1, 2, 4, ... 64 ms.
  if (lane.restart_attempts > 1) {
    const size_t shift = std::min<size_t>(lane.restart_attempts - 2, 6);
    std::this_thread::sleep_for(std::chrono::milliseconds(1ll << shift));
  }

  // Roll the lane back to its recovery point. The worker is joined, so
  // everything here is single-threaded.
  {
    std::lock_guard<std::mutex> lk(lane.mu);
    lane.queue.clear();
    lane.free_ops.clear();
    lane.depth.store(0, std::memory_order_relaxed);
    lane.dead.store(false, std::memory_order_relaxed);
    lane.quarantine.store(false, std::memory_order_relaxed);
    lane.at_barrier.store(false, std::memory_order_relaxed);
    lane.idle.store(false, std::memory_order_relaxed);
  }
  lane.outputs.resize(lane.ckpt_outputs);
  lane.records.resize(lane.ckpt_records);
  lane.records_consumed = lane.ckpt_records;
  // Ops routed but not yet flushed are already in the replay log; dropping
  // them here keeps the replay from double-feeding them.
  pending_[shard].clear();

  // Rebuild the engine twin from the recovery snapshot (engine Checkpoint
  // payloads carry stats, so the merged view stays exact).
  if (!factory_) {
    return Status::Internal(
        "supervised restart requires an engine factory (construct the "
        "executor through exec::MakePolicy)");
  }
  ASEQ_ASSIGN_OR_RETURN(std::unique_ptr<QueryEngine> fresh, factory_());
  auto* shardable = dynamic_cast<ShardableEngine*>(fresh.get());
  if (shardable == nullptr) {
    return Status::Internal(
        "engine factory stopped producing shardable engines during a "
        "supervised restart");
  }
  if (!lane.snapshot.empty()) {
    ckpt::Reader reader(lane.snapshot);
    ASEQ_RETURN_NOT_OK(fresh->Restore(&reader));
    ASEQ_RETURN_NOT_OK(reader.ExpectEnd());
  }
  engines_[shard] = std::move(fresh);
  shardables_[shard] = shardable;

  lane.last_progress = lane.progress.load(std::memory_order_relaxed);
  lane.last_change = std::chrono::steady_clock::now();
  workers_[shard] = std::thread(&ShardedExecutor::WorkerMain, this, shard);

  // Replay the routed slice since the recovery point. If the fresh worker
  // dies again mid-replay (another armed fault), abandon — the caller's
  // detection loop restarts again, and the budget bounds the loop.
  uint64_t replayed = 0;
  const size_t chunk_size =
      options_.batch_size == 0 ? kDefaultBatchSize : options_.batch_size;
  for (size_t i = 0; i < lane.replay_log.size();) {
    const size_t chunk = std::min(chunk_size, lane.replay_log.size() - i);
    LaneItem item;
    item.tag = LaneItem::Tag::kOps;
    item.ops.assign(lane.replay_log.begin() + static_cast<ptrdiff_t>(i),
                    lane.replay_log.begin() + static_cast<ptrdiff_t>(i + chunk));
    bool pushed = false;
    while (!pushed) {
      std::unique_lock<std::mutex> lk(lane.mu);
      if (lane.dead.load(std::memory_order_relaxed)) break;
      const bool room = lane.cv.wait_for(lk, kSupervisedPoll, [&] {
        return lane.queue.size() < kMaxQueuedItems ||
               lane.dead.load(std::memory_order_relaxed);
      });
      if (!room || lane.dead.load(std::memory_order_relaxed)) continue;
      lane.queue.push_back(std::move(item));
      lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
      pushed = true;
    }
    if (!pushed) break;
    lane.cv.notify_all();
    for (size_t j = i; j < i + chunk; ++j) {
      if (lane.replay_log[j].kind == ShardOp::Kind::kEvent) ++replayed;
    }
    i += chunk;
  }
  fcounters_.replayed_events += replayed;

  // A barrier token lost with the cleared queue must be re-issued after
  // the replay slice, or the coordinator's barrier would never complete.
  if (lane.barrier_pending && !lane.dead.load(std::memory_order_acquire)) {
    bool pushed = false;
    while (!pushed) {
      std::unique_lock<std::mutex> lk(lane.mu);
      if (lane.dead.load(std::memory_order_relaxed)) break;
      const bool room = lane.cv.wait_for(lk, kSupervisedPoll, [&] {
        return lane.queue.size() < kMaxQueuedItems ||
               lane.dead.load(std::memory_order_relaxed);
      });
      if (!room || lane.dead.load(std::memory_order_relaxed)) continue;
      lane.queue.push_back(LaneItem{LaneItem::Tag::kBarrier, {}});
      lane.depth.store(lane.queue.size(), std::memory_order_relaxed);
      pushed = true;
    }
    if (pushed) lane.cv.notify_all();
  }
  return Status::OK();
}

Status ShardedExecutor::CaptureRecoveryPoints() {
  for (size_t s = 0; s < engines_.size(); ++s) {
    Lane& lane = *lanes_[s];
    ckpt::Writer writer;
    ASEQ_RETURN_NOT_OK(engines_[s]->Checkpoint(&writer));
    lane.snapshot = writer.buffer();
    lane.ckpt_outputs = lane.outputs.size();
    lane.ckpt_records = lane.records.size();
    lane.replay_log.clear();
    lane.restart_attempts = 0;
  }
  return Status::OK();
}

Status ShardedExecutor::DrainAllQueues() {
  for (;;) {
    bool drained = true;
    for (size_t s = 0; s < lanes_.size(); ++s) {
      Lane& lane = *lanes_[s];
      if (lane.depth.load(std::memory_order_relaxed) != 0 ||
          !lane.idle.load(std::memory_order_relaxed)) {
        drained = false;
        if (options_.supervise && LaneFailed(s)) {
          ASEQ_RETURN_NOT_OK(RestartShard(s));
        }
      }
    }
    if (drained) return Status::OK();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void ShardedExecutor::StopWorkers() {
  if (options_.supervise) {
    // Supervised teardown is quarantine-based, not token-based: queues are
    // either empty (the final health barrier ran) or abandoned (the run
    // aborted mid-flight), so nothing needs draining, and the quarantine
    // flag wakes every kind of park — the idle wait, an injected stall,
    // and (with the epoch bump below) a barrier whose resume was skipped
    // when the abort path bailed out of BarrierAllSupervised. Dead lanes'
    // threads have already returned; join just reaps them.
    for (auto& lane : lanes_) {
      {
        std::lock_guard<std::mutex> lk(lane->mu);
        lane->quarantine.store(true, std::memory_order_relaxed);
      }
      lane->cv.notify_all();
    }
    // Quarantine flags are set before the bump: a worker reaching a
    // barrier token after this sees quarantine in the wait predicate and
    // never blocks on the stale epoch.
    ResumeAll();
  } else {
    for (size_t s = 0; s < lanes_.size(); ++s) {
      Enqueue(s, LaneItem{LaneItem::Tag::kStop, {}});
    }
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

RunResult ShardedExecutor::RunImpl(
    const std::function<std::span<Event>()>& refill) {
  const size_t n = engines_.size();
  const bool supervised = options_.supervise;
  RunResult result;
  result.batch_size = options_.batch_size;
  result.num_shards = n;

  // Per-run lane state, clear-not-shrink.
  for (auto& lane : lanes_) {
    lane->outputs.clear();
    lane->records.clear();
    lane->records_consumed = 0;
    lane->busy_seconds = 0;
    lane->progress.store(0, std::memory_order_relaxed);
    lane->idle.store(false, std::memory_order_relaxed);
    lane->dead.store(false, std::memory_order_relaxed);
    lane->quarantine.store(false, std::memory_order_relaxed);
    lane->at_barrier.store(false, std::memory_order_relaxed);
    lane->depth.store(0, std::memory_order_relaxed);
    lane->snapshot.clear();
    lane->ckpt_outputs = 0;
    lane->ckpt_records = 0;
    lane->replay_log.clear();
    lane->restart_attempts = 0;
    lane->barrier_pending = false;
    lane->last_progress = 0;
    lane->last_change = std::chrono::steady_clock::now();
  }
  fcounters_ = FaultCounters{};
  shed_keys_.clear();
  fired_at_start_ = fault::Injector::Global().fired_count();
  {
    std::vector<int64_t> currents;
    currents.reserve(n);
    for (const auto& e : engines_) {
      currents.push_back(e->stats().objects.current());
    }
    // Seed with the merged view carried across runs/restores: engines
    // keep their state, so the peak must continue from where it stood.
    merger_.Reset(currents, merged_.objects.peak());
  }

  if (supervised) {
    // The initial recovery point: a restart before the first barrier must
    // rebuild the engines' *current* state — which, after a Restore(), is
    // not the fresh-constructed one.
    Status cs = CaptureRecoveryPoints();
    if (!cs.ok()) {
      result.fault_status = std::move(cs);
      return result;
    }
  }

  StopWatch watch;
  workers_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    workers_.emplace_back(&ShardedExecutor::WorkerMain, this, s);
  }

  SeqNum seq = options_.start_offset;
  uint64_t next_ckpt = options_.checkpoint_every > 0
                           ? options_.start_offset + options_.checkpoint_every
                           : kNeverDue;
  uint64_t next_rec = supervised && options_.recovery_every > 0
                          ? options_.start_offset + options_.recovery_every
                          : kNeverDue;
  for (;;) {
    if (options_.stop_requested != nullptr &&
        options_.stop_requested->load(std::memory_order_relaxed)) {
      result.interrupted = true;
      break;
    }
    std::span<Event> batch = refill();
    if (batch.empty()) break;
    bool overload_hit = false;
    for (Event& e : batch) {
      e.set_seq(seq++);
      const Timestamp ts = e.ts();
      const SeqNum eseq = e.seq();
      const ShardRouter::Route route = router_.RouteEvent(e);
      if (options_.overload_policy != OverloadPolicy::kBlock) {
        const bool overloaded =
            route.inject_overload ||
            lanes_[route.shard]->depth.load(std::memory_order_relaxed) >=
                options_.overload_high_watermark;
        if (options_.overload_policy == OverloadPolicy::kShed &&
            route.has_key) {
          // Drop whole partitions, deterministically: once a key is shed,
          // every later event of that key is discarded before routing.
          // Events of other keys never read a shed partition's state (the
          // GROUP BY key scopes all reads), so survivors stay exact.
          if (shed_keys_.count(route.key_id) != 0) {
            ++fcounters_.shed_events;
            continue;
          }
          if (overloaded) {
            shed_keys_.insert(route.key_id);
            ++fcounters_.shed_partitions;
            ++fcounters_.shed_events;
            continue;
          }
        } else if (overloaded) {
          overload_hit = true;
        }
      }
      // Copy, not move: the batch may be borrowed source storage that a
      // Reset replay will serve again.
      pending_[route.shard].push_back(
          ShardOp{ShardOp::Kind::kEvent, ts, eseq, e});
      if (supervised) {
        lanes_[route.shard]->replay_log.push_back(
            ShardOp{ShardOp::Kind::kEvent, ts, eseq, e});
      }
      if (route.trigger && send_markers_) {
        // The serial trigger purges every partition; non-owner shards
        // replay it as a marker at the same seq, keeping their state and
        // object counts in lockstep.
        for (size_t s = 0; s < n; ++s) {
          if (s == route.shard) continue;
          pending_[s].push_back(
              ShardOp{ShardOp::Kind::kPurgeMarker, ts, eseq, Event()});
          if (supervised) {
            lanes_[s]->replay_log.push_back(
                ShardOp{ShardOp::Kind::kPurgeMarker, ts, eseq, Event()});
          }
        }
      }
    }
    for (size_t s = 0; s < n; ++s) {
      Status fs = FlushPending(s);
      if (!fs.ok()) {
        result.fault_status = std::move(fs);
        break;
      }
    }
    if (!result.fault_status.ok()) break;
    if (supervised) {
      Status cs = CheckLanes();
      if (!cs.ok()) {
        result.fault_status = std::move(cs);
        break;
      }
    }
    if (overload_hit &&
        options_.overload_policy == OverloadPolicy::kDegradeSerial) {
      ++fcounters_.overload_stalls;
      Status ds = DrainAllQueues();
      if (!ds.ok()) {
        result.fault_status = std::move(ds);
        break;
      }
    }

    const bool ckpt_due = result.checkpoint_status.ok() && seq >= next_ckpt;
    const bool rec_due = seq >= next_rec;
    if (ckpt_due || rec_due) {
      if (supervised) {
        Status bs = BarrierAllSupervised();
        if (!bs.ok()) {
          result.fault_status = std::move(bs);
          break;
        }
      } else {
        BarrierAll();
      }
      DrainMerger();
      if (supervised) {
        Status cs = CaptureRecoveryPoints();
        if (!cs.ok()) {
          result.fault_status = std::move(cs);
          ResumeAll();
          break;
        }
      }
      if (ckpt_due) {
        const EngineStats merged_now = ComputeMergedStats();
        std::vector<const QueryEngine*> shards;
        shards.reserve(n);
        for (const auto& e : engines_) shards.push_back(e.get());
        // The router is quiescent here (this coordinator thread is the
        // only one that touches it, and the workers are parked at the
        // barrier), so its interner table is captured consistently with
        // shard state.
        ckpt::Writer router_state;
        router_.Checkpoint(&router_state);
        Status s = ckpt::SaveShardedSnapshot(
            ckpt::SnapshotPathForOffset(options_.checkpoint_dir, seq), shards,
            seq, merged_now, router_state.buffer());
        if (s.ok()) {
          ++result.checkpoints_written;
          result.last_checkpoint_offset = seq;
        } else {
          result.checkpoint_status = std::move(s);
        }
      }
      ResumeAll();
      if (next_ckpt != kNeverDue) {
        while (next_ckpt <= seq) next_ckpt += options_.checkpoint_every;
      }
      if (next_rec != kNeverDue) {
        while (next_rec <= seq) next_rec += options_.recovery_every;
      }
    }
  }

  // Graceful-stop drain + final snapshot, and (supervised) a final health
  // barrier so a worker that died after the last check still gets its ops
  // recovered before the stop tokens go out.
  const bool want_final_ckpt =
      result.interrupted && !options_.checkpoint_dir.empty() &&
      result.checkpoint_status.ok() &&
      (result.checkpoints_written == 0 ||
       result.last_checkpoint_offset < seq);
  if (result.fault_status.ok() && (supervised || want_final_ckpt)) {
    Status bs;
    if (supervised) {
      bs = BarrierAllSupervised();
    } else {
      BarrierAll();
    }
    if (bs.ok()) {
      if (want_final_ckpt) {
        DrainMerger();
        const EngineStats merged_now = ComputeMergedStats();
        std::vector<const QueryEngine*> shards;
        shards.reserve(n);
        for (const auto& e : engines_) shards.push_back(e.get());
        ckpt::Writer router_state;
        router_.Checkpoint(&router_state);
        Status s = ckpt::SaveShardedSnapshot(
            ckpt::SnapshotPathForOffset(options_.checkpoint_dir, seq), shards,
            seq, merged_now, router_state.buffer());
        if (s.ok()) {
          ++result.checkpoints_written;
          result.last_checkpoint_offset = seq;
        } else {
          result.checkpoint_status = std::move(s);
        }
      }
      ResumeAll();
    } else {
      result.fault_status = std::move(bs);
    }
  }

  StopWorkers();

  DrainMerger();
  merged_ = ComputeMergedStats();
  merged_.fault_injected =
      fault::Injector::Global().fired_count() - fired_at_start_;
  merged_.fault_restarts = fcounters_.restarts;
  merged_.fault_replayed_events = fcounters_.replayed_events;
  merged_.shed_partitions = fcounters_.shed_partitions;
  merged_.shed_events = fcounters_.shed_events;
  merged_.overload_stalls = fcounters_.overload_stalls;
  for (size_t s = 0; s < n; ++s) {
    shard_stats_view_[s] = engines_[s]->stats();
    busy_view_[s] = lanes_[s]->busy_seconds;
  }

  if (options_.collect_outputs) {
    size_t total = 0;
    for (const auto& lane : lanes_) total += lane->outputs.size();
    result.outputs.reserve(total);
    std::vector<size_t> cursor(n, 0);
    for (;;) {
      size_t best = n;
      SeqNum best_seq = std::numeric_limits<SeqNum>::max();
      for (size_t s = 0; s < n; ++s) {
        const auto& outs = lanes_[s]->outputs;
        if (cursor[s] < outs.size() && outs[cursor[s]].seq < best_seq) {
          best_seq = outs[cursor[s]].seq;
          best = s;
        }
      }
      if (best == n) break;
      // One event's outputs all come from its owner shard, in order.
      auto& outs = lanes_[best]->outputs;
      while (cursor[best] < outs.size() &&
             outs[cursor[best]].seq == best_seq) {
        result.outputs.push_back(std::move(outs[cursor[best]]));
        ++cursor[best];
      }
    }
  }

  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq - options_.start_offset;
  return result;
}

RunResult ShardedExecutor::Run(StreamSource* source) {
  return RunImpl(
      [&]() { return source->BorrowBatch(options_.batch_size); });
}

RunResult ShardedExecutor::RunEvents(const std::vector<Event>& events) {
  // The caller's vector is const, and the loop stamps sequence numbers,
  // so slices stage through batch_buf_.
  size_t pos = 0;
  return RunImpl([&]() -> std::span<Event> {
    const size_t count = std::min(options_.batch_size, events.size() - pos);
    batch_buf_.assign(events.begin() + static_cast<ptrdiff_t>(pos),
                      events.begin() + static_cast<ptrdiff_t>(pos + count));
    pos += count;
    return {batch_buf_.data(), count};
  });
}

Status ShardedExecutor::Restore(const std::string& path,
                                uint64_t* stream_offset) {
  std::vector<QueryEngine*> shards;
  shards.reserve(engines_.size());
  for (auto& e : engines_) shards.push_back(e.get());
  EngineStats merged;
  std::string router_state;
  ASEQ_RETURN_NOT_OK(ckpt::RestoreShardedSnapshot(path, shards, stream_offset,
                                                  &merged, &router_state));
  ckpt::Reader router_reader(router_state);
  ASEQ_RETURN_NOT_OK(router_.Restore(&router_reader));
  ASEQ_RETURN_NOT_OK(router_reader.ExpectEnd());
  merged_ = merged;
  options_.start_offset = *stream_offset;
  return Status::OK();
}

}  // namespace exec
}  // namespace aseq
