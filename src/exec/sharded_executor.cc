#include "exec/sharded_executor.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "ckpt/snapshot.h"

namespace aseq {
namespace exec {

namespace {

/// Bounded-queue depth per lane: enough to keep workers fed ahead of the
/// router, small enough that a fast router cannot buffer the stream.
constexpr size_t kMaxQueuedItems = 16;

}  // namespace

ShardedExecutor::ShardedExecutor(
    const CompiledQuery& query, const RunOptions& options,
    std::vector<std::unique_ptr<QueryEngine>> engines)
    : query_(&query),
      options_(options),
      engines_(std::move(engines)),
      router_(query, engines_.size()),
      send_markers_(query.has_window()) {
  assert(engines_.size() > 1);
  options_.num_shards = engines_.size();
  for (auto& e : engines_) {
    auto* shardable = dynamic_cast<ShardableEngine*>(e.get());
    assert(shardable != nullptr &&
           "ShardedExecutor requires ShardableEngine twins (MakePolicy "
           "enforces this)");
    shardables_.push_back(shardable);
  }
  lanes_.reserve(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  pending_.resize(engines_.size());
  shard_stats_view_.resize(engines_.size());
  busy_view_.resize(engines_.size(), 0);
}

void ShardedExecutor::WorkerMain(size_t shard) {
  Lane& lane = *lanes_[shard];
  QueryEngine* engine = engines_[shard].get();
  ShardableEngine* shardable = shardables_[shard];
  EngineStats* stats = shardable->shard_mutable_stats();
  for (;;) {
    LaneItem item;
    {
      std::unique_lock<std::mutex> lk(lane.mu);
      lane.cv.wait(lk, [&] { return !lane.queue.empty(); });
      item = std::move(lane.queue.front());
      lane.queue.pop_front();
    }
    // The router may be parked on a full queue.
    lane.cv.notify_all();
    if (item.tag == LaneItem::Tag::kStop) return;
    if (item.tag == LaneItem::Tag::kBarrier) {
      std::unique_lock<std::mutex> lk(coord_mu_);
      const uint64_t epoch = barrier_epoch_;
      ++barrier_arrived_;
      coord_cv_.notify_all();
      coord_cv_.wait(lk, [&] { return barrier_epoch_ != epoch; });
      continue;
    }
    StopWatch watch;
    for (ShardOp& op : item.ops) {
      ObjectCounter& objects = stats->objects;
      objects.BeginPeakWindow();
      const int64_t before = objects.current();
      if (op.kind == ShardOp::Kind::kEvent) {
        lane.scratch.clear();
        engine->OnEvent(op.event, &lane.scratch);
        if (options_.collect_outputs && !lane.scratch.empty()) {
          lane.outputs.insert(lane.outputs.end(), lane.scratch.begin(),
                              lane.scratch.end());
        }
      } else {
        shardable->SyncPurgeTo(op.ts);
      }
      const int64_t after = objects.current();
      const int64_t window_peak = objects.window_peak();
      // Record only state changes: the merge needs every current
      // transition and every mid-event maximum above the entry count.
      if (after != before || window_peak > before) {
        lane.records.push_back({op.seq, after, window_peak});
      }
    }
    lane.busy_seconds += watch.ElapsedSeconds();
    {
      std::lock_guard<std::mutex> lk(lane.mu);
      item.ops.clear();
      lane.free_ops.push_back(std::move(item.ops));
    }
  }
}

void ShardedExecutor::Enqueue(size_t shard, LaneItem item) {
  Lane& lane = *lanes_[shard];
  {
    std::unique_lock<std::mutex> lk(lane.mu);
    lane.cv.wait(lk, [&] { return lane.queue.size() < kMaxQueuedItems; });
    lane.queue.push_back(std::move(item));
  }
  lane.cv.notify_all();
}

void ShardedExecutor::FlushPending(size_t shard) {
  if (pending_[shard].empty()) return;
  Lane& lane = *lanes_[shard];
  std::vector<ShardOp> replacement;
  {
    std::unique_lock<std::mutex> lk(lane.mu);
    lane.cv.wait(lk, [&] { return lane.queue.size() < kMaxQueuedItems; });
    lane.queue.push_back(
        LaneItem{LaneItem::Tag::kOps, std::move(pending_[shard])});
    if (!lane.free_ops.empty()) {
      replacement = std::move(lane.free_ops.back());
      lane.free_ops.pop_back();
    }
  }
  lane.cv.notify_all();
  pending_[shard] = std::move(replacement);
}

void ShardedExecutor::BarrierAll() {
  {
    std::lock_guard<std::mutex> lk(coord_mu_);
    barrier_arrived_ = 0;
  }
  for (size_t s = 0; s < lanes_.size(); ++s) {
    Enqueue(s, LaneItem{LaneItem::Tag::kBarrier, {}});
  }
  std::unique_lock<std::mutex> lk(coord_mu_);
  coord_cv_.wait(lk, [&] { return barrier_arrived_ == lanes_.size(); });
}

void ShardedExecutor::ResumeAll() {
  {
    std::lock_guard<std::mutex> lk(coord_mu_);
    ++barrier_epoch_;
  }
  coord_cv_.notify_all();
}

void ShardedExecutor::DrainMerger() {
  std::vector<std::span<const StatsTimelineMerger::Record>> spans;
  spans.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    spans.push_back(std::span<const StatsTimelineMerger::Record>(
        lane->records.data() + lane->records_consumed,
        lane->records.size() - lane->records_consumed));
  }
  merger_.Consume(spans);
  for (auto& lane : lanes_) lane->records_consumed = lane->records.size();
}

EngineStats ShardedExecutor::ComputeMergedStats() const {
  EngineStats merged;
  for (const auto& e : engines_) MergeBulkStats(e->stats(), &merged);
  merged.objects.RestoreCounts(merger_.merged_current(),
                               merger_.merged_peak());
  return merged;
}

RunResult ShardedExecutor::RunImpl(
    const std::function<std::span<Event>()>& refill) {
  const size_t n = engines_.size();
  RunResult result;
  result.batch_size = options_.batch_size;
  result.num_shards = n;

  // Per-run lane state, clear-not-shrink.
  for (auto& lane : lanes_) {
    lane->outputs.clear();
    lane->records.clear();
    lane->records_consumed = 0;
    lane->busy_seconds = 0;
  }
  {
    std::vector<int64_t> currents;
    currents.reserve(n);
    for (const auto& e : engines_) {
      currents.push_back(e->stats().objects.current());
    }
    // Seed with the merged view carried across runs/restores: engines
    // keep their state, so the peak must continue from where it stood.
    merger_.Reset(currents, merged_.objects.peak());
  }

  StopWatch watch;
  workers_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    workers_.emplace_back(&ShardedExecutor::WorkerMain, this, s);
  }

  SeqNum seq = options_.start_offset;
  uint64_t next_ckpt = options_.start_offset + options_.checkpoint_every;
  for (std::span<Event> batch = refill(); !batch.empty(); batch = refill()) {
    for (Event& e : batch) {
      e.set_seq(seq++);
      const Timestamp ts = e.ts();
      const SeqNum eseq = e.seq();
      const ShardRouter::Route route = router_.RouteEvent(e);
      // Copy, not move: the batch may be borrowed source storage that a
      // Reset replay will serve again.
      pending_[route.shard].push_back(
          ShardOp{ShardOp::Kind::kEvent, ts, eseq, e});
      if (route.trigger && send_markers_) {
        // The serial trigger purges every partition; non-owner shards
        // replay it as a marker at the same seq, keeping their state and
        // object counts in lockstep.
        for (size_t s = 0; s < n; ++s) {
          if (s == route.shard) continue;
          pending_[s].push_back(
              ShardOp{ShardOp::Kind::kPurgeMarker, ts, eseq, Event()});
        }
      }
    }
    for (size_t s = 0; s < n; ++s) FlushPending(s);
    if (options_.checkpoint_every > 0 && result.checkpoint_status.ok() &&
        seq >= next_ckpt) {
      BarrierAll();
      DrainMerger();
      const EngineStats merged_now = ComputeMergedStats();
      std::vector<const QueryEngine*> shards;
      shards.reserve(n);
      for (const auto& e : engines_) shards.push_back(e.get());
      // The router is quiescent here (this coordinator thread is the only
      // one that touches it, and the workers are parked at the barrier),
      // so its interner table is captured consistently with shard state.
      ckpt::Writer router_state;
      router_.Checkpoint(&router_state);
      Status s = ckpt::SaveShardedSnapshot(
          ckpt::SnapshotPathForOffset(options_.checkpoint_dir, seq), shards,
          seq, merged_now, router_state.buffer());
      ResumeAll();
      if (s.ok()) {
        ++result.checkpoints_written;
        result.last_checkpoint_offset = seq;
      } else {
        result.checkpoint_status = std::move(s);
      }
      while (next_ckpt <= seq) next_ckpt += options_.checkpoint_every;
    }
  }

  for (size_t s = 0; s < n; ++s) {
    Enqueue(s, LaneItem{LaneItem::Tag::kStop, {}});
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();

  DrainMerger();
  merged_ = ComputeMergedStats();
  for (size_t s = 0; s < n; ++s) {
    shard_stats_view_[s] = engines_[s]->stats();
    busy_view_[s] = lanes_[s]->busy_seconds;
  }

  if (options_.collect_outputs) {
    size_t total = 0;
    for (const auto& lane : lanes_) total += lane->outputs.size();
    result.outputs.reserve(total);
    std::vector<size_t> cursor(n, 0);
    for (;;) {
      size_t best = n;
      SeqNum best_seq = std::numeric_limits<SeqNum>::max();
      for (size_t s = 0; s < n; ++s) {
        const auto& outs = lanes_[s]->outputs;
        if (cursor[s] < outs.size() && outs[cursor[s]].seq < best_seq) {
          best_seq = outs[cursor[s]].seq;
          best = s;
        }
      }
      if (best == n) break;
      // One event's outputs all come from its owner shard, in order.
      auto& outs = lanes_[best]->outputs;
      while (cursor[best] < outs.size() &&
             outs[cursor[best]].seq == best_seq) {
        result.outputs.push_back(std::move(outs[cursor[best]]));
        ++cursor[best];
      }
    }
  }

  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq - options_.start_offset;
  return result;
}

RunResult ShardedExecutor::Run(StreamSource* source) {
  return RunImpl(
      [&]() { return source->BorrowBatch(options_.batch_size); });
}

RunResult ShardedExecutor::RunEvents(const std::vector<Event>& events) {
  // The caller's vector is const, and the loop stamps sequence numbers,
  // so slices stage through batch_buf_.
  size_t pos = 0;
  return RunImpl([&]() -> std::span<Event> {
    const size_t count = std::min(options_.batch_size, events.size() - pos);
    batch_buf_.assign(events.begin() + static_cast<ptrdiff_t>(pos),
                      events.begin() + static_cast<ptrdiff_t>(pos + count));
    pos += count;
    return {batch_buf_.data(), count};
  });
}

Status ShardedExecutor::Restore(const std::string& path,
                                uint64_t* stream_offset) {
  std::vector<QueryEngine*> shards;
  shards.reserve(engines_.size());
  for (auto& e : engines_) shards.push_back(e.get());
  EngineStats merged;
  std::string router_state;
  ASEQ_RETURN_NOT_OK(ckpt::RestoreShardedSnapshot(path, shards, stream_offset,
                                                  &merged, &router_state));
  ckpt::Reader router_reader(router_state);
  ASEQ_RETURN_NOT_OK(router_.Restore(&router_reader));
  ASEQ_RETURN_NOT_OK(router_reader.ExpectEnd());
  merged_ = merged;
  options_.start_offset = *stream_offset;
  return Status::OK();
}

}  // namespace exec
}  // namespace aseq
