#include "exec/sharded_executor.h"

namespace aseq {
namespace exec {

// The executor body lives in exec/sharded_executor_impl.h as a template
// over the trait bindings; these are the only two instantiations, kept
// here so every other translation unit links against them instead of
// re-instantiating ~1k lines of coordinator code.
template class ShardedExecutorT<SingleShardTraits>;
template class ShardedExecutorT<MultiShardTraits>;

}  // namespace exec
}  // namespace aseq
