#ifndef ASEQ_EXEC_SPSC_RING_H_
#define ASEQ_EXEC_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace aseq {
namespace exec {

/// Architectural pause inside a bounded spin loop: keeps the spinning
/// hardware thread from starving its sibling and from flooding the memory
/// pipeline with speculative loads of the index it is polling.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// \brief Fixed-capacity single-producer/single-consumer ring buffer — the
/// lock-free lane queue of the sharded dataplane (docs/internals.md §16).
///
/// Exactly one thread may call TryPush (the coordinator) and exactly one
/// may call TryPop (the lane's worker) at any time. The protocol is two
/// free-running uint64 indexes: the producer owns `tail_`, the consumer
/// owns `head_`, and each publishes its side with a release store that the
/// other side acquires — the slot payload is therefore transferred with
/// plain moves, no per-item lock. Capacity is rounded up to a power of two
/// so the slot index is a mask, and the hot indexes live on their own
/// cache lines (with a cached copy of the *other* side's index next to
/// each, so an uncontended push/pop touches one line, not two).
///
/// There is deliberately no blocking here: full/empty return false and the
/// caller decides between spinning and parking (the executor's
/// spin-then-park protocol, which also keeps the watchdog heartbeat and
/// overload semantics observable). Clear() is NOT part of the concurrent
/// protocol — it requires both sides quiescent (the supervised restart
/// path, where the worker is joined).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Moves `item` into the ring and returns true, or leaves
  /// it untouched and returns false when the ring is full.
  bool TryPush(T& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Moves the oldest item into `*out` and returns true, or
  /// returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == head) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy from raw index loads. Exact from the producer
  /// thread (its own tail is current and head only shrinks the count), a
  /// safe over-estimate from the consumer; the executor reads it for the
  /// overload high-watermark and drain polling, both tolerant of staleness.
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  bool Empty() const { return size() == 0; }
  bool Full() const { return size() > mask_; }
  size_t capacity() const { return mask_ + 1; }

  /// Drops every queued item. Single-threaded only: both sides must be
  /// quiescent (worker joined, as in a supervised restart or run reset).
  void Clear() {
    T discard;
    while (TryPop(&discard)) discard = T();
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  /// Producer-owned line: the free-running publish index plus the
  /// producer's last view of the consumer's index.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  /// Consumer-owned line, symmetric.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
};

}  // namespace exec
}  // namespace aseq

#endif  // ASEQ_EXEC_SPSC_RING_H_
