#ifndef ASEQ_EXEC_SHARDED_EXECUTOR_IMPL_H_
#define ASEQ_EXEC_SHARDED_EXECUTOR_IMPL_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "ckpt/snapshot.h"
#include "engine/runtime.h"
#include "exec/spsc_ring.h"
#include "fault/fault.h"
#include "metrics/shard_stats.h"
#include "obs/telemetry.h"
#include "obs/trace_writer.h"

namespace aseq {
namespace exec {

namespace shard_detail {

/// Bounded-queue depth per lane (ring capacity): enough to keep workers fed
/// ahead of the router, small enough that a fast router cannot buffer the
/// stream.
inline constexpr size_t kMaxQueuedItems = 16;

/// Supervised waits poll at this period so the coordinator can run the
/// watchdog while parked on a queue or barrier.
inline constexpr std::chrono::milliseconds kSupervisedPoll{20};

/// Unsupervised parks are timed too: the ring protocol's wake handshake is
/// best-effort (a parked-flag miss between the release store and the
/// acquire load is possible by design — making it airtight would need
/// seq_cst fences on the hot path), so a park bounds the cost of a lost
/// wakeup to this, and the coordinator polls stop_requested at the same
/// cadence.
inline constexpr std::chrono::milliseconds kParkPoll{1};

/// Spin budget before parking, per push/pop attempt. The common stall is a
/// counterpart mid-item, gone within microseconds; parking for those would
/// trade two atomic ops for a futex round-trip.
inline constexpr size_t kRingSpinIters = 128;

inline constexpr uint64_t kNeverDue = std::numeric_limits<uint64_t>::max();

}  // namespace shard_detail

/// One unit of shard work: an event for the owner shard, or a purge marker
/// replaying a trigger's cross-partition purge on a non-owner shard.
/// Shared between the single- and multi-query executor instantiations;
/// `trigger_queries` is meaningful for multi-query markers only (which
/// workload queries the trigger completed) and stays empty otherwise.
struct ShardOp {
  enum class Kind : uint8_t { kEvent, kPurgeMarker };
  Kind kind = Kind::kEvent;
  Timestamp ts = 0;
  SeqNum seq = 0;
  Event event;  // meaningful for kEvent only
  std::vector<size_t> trigger_queries;  // meaningful for multi markers only
};

/// \brief The partition-parallel policy, generic over single- vs
/// multi-query execution: N engine twins, each owning the partitions whose
/// GROUP BY key hashes to it, pumped by one worker thread over a bounded
/// per-shard SPSC ring.
///
/// `Traits` binds the two instantiations (see exec/sharded_executor.h):
///   - Policy        the policy interface implemented
///                   (ExecutionPolicy / MultiExecutionPolicy)
///   - Engine        QueryEngine / MultiQueryEngine
///   - Shardable     ShardableEngine / MultiShardableEngine
///   - OutputT       Output / MultiOutput
///   - RunResultT    RunResult / MultiRunResult
///   - RouterT       ShardRouter / MultiShardRouter
///   - FactoryT      EngineFactory / MultiEngineFactory
///   - OutputSeq     the output's global event seq (merge key)
///   - IsTrigger     whether a route completes any (windowed) query
///   - StampMarker   copies the route's trigger payload into a marker op
///   - SyncPurge     applies a marker through the shardable interface
///
/// The dataplane (docs/internals.md §16): each lane's queue is a
/// fixed-capacity single-producer/single-consumer ring (exec/spsc_ring.h)
/// — the coordinator is the only pusher, the lane's worker the only
/// popper, so an uncontended publication or drain is two acquire/release
/// atomic ops, no lock. The lane's mutex + condition variable survive only
/// as the *park* layer of a spin-then-park protocol: both sides spin a
/// bounded budget first, then park with a timed wait (the wake handshake
/// via the parked flags is best-effort; the timed wait bounds a lost
/// wakeup, keeps supervised waits on the watchdog cadence, and lets the
/// coordinator poll stop_requested while blocked on a full ring). Routing
/// itself is batched: the router admits the whole borrowed batch through
/// the vectorized admission prefilter in one pass, and the coordinator
/// publishes each shard's op run as one ring push per shard per batch.
///
/// Serial equivalence, piece by piece:
///  - Routing: events go to hash(GROUP BY key) % N — all partitions a
///    trigger reads share that key (PlanSharding / PlanMultiSharding
///    guarantees it), so every output is computed from exactly the state
///    the serial engine would read.
///  - Purge markers: a serial trigger purges expired state across every
///    partition (of the triggered queries, for a workload). The router
///    detects triggers with the engines' own admission programs and
///    enqueues a purge marker, in seq order, to every non-owner shard;
///    SyncPurgeTo applies exactly the serial cross-partition purge.
///    Unbounded queries skip markers (nothing ever expires).
///  - Outputs: each event's outputs come from exactly one shard, tagged
///    with the event's global seq; a k-way merge by seq restores the
///    serial order byte-identical.
///  - Stats: bulk counters are charged on exactly one shard per event and
///    sum exactly (metrics/shard_stats.h); live/peak objects are
///    reconstructed exactly by StatsTimelineMerger from per-event
///    (seq, current_after, window_peak) records. Workers therefore drive
///    engines through OnEvent — per-event observation boundaries are what
///    make the peak merge exact — so batch counters stay zero, which the
///    equivalence contract already excludes.
///  - Checkpoints: at a due batch boundary the coordinator parks all
///    workers at a barrier and writes one multi-shard container
///    (ckpt::SaveShardedSnapshot) holding every shard's payload plus the
///    merged stats; restore refills the twins and re-seeds the merge.
///
/// Supervision (RunOptions::supervise; docs/internals.md §14): the
/// coordinator doubles as a watchdog. Every worker heartbeats once per op;
/// a worker that dies (injected crash) or goes silent with queued work for
/// longer than the watchdog timeout is quarantined and restarted alone:
/// its engine twin is rebuilt from the lane's last recovery point (an
/// in-memory engine snapshot captured at every barrier) and its routed op
/// slice since that point is replayed from the lane's replay log — outputs
/// and stats end bit-exact with an unfailed run. Restarts back off
/// exponentially and are budgeted per recovery interval; exhausting the
/// budget aborts the run with RunResultBase::fault_status.
///
/// Overload control (RunOptions::overload_policy): when a lane's bounded
/// ring reaches its high-watermark (or the router.route fault point
/// injects overload), the coordinator either keeps blocking (kBlock, the
/// default), drains every queue before routing on (kDegradeSerial), or
/// deterministically sheds the overloaded event's whole partition (kShed,
/// accounted in shed_* counters; surviving partitions stay exact).
template <class Traits>
class ShardedExecutorT : public Traits::Policy {
 public:
  using Engine = typename Traits::Engine;
  using Shardable = typename Traits::Shardable;
  using OutputT = typename Traits::OutputT;
  using RunResultT = typename Traits::RunResultT;
  using RouterT = typename Traits::RouterT;
  using FactoryT = typename Traits::FactoryT;

  /// `engines` must all be freshly constructed twins for the workload,
  /// each implementing `Shardable` (the policy factory guarantees both).
  /// `router` is the matching pre-built router; `send_markers` gates
  /// purge markers (false when nothing ever expires). `factory` rebuilds
  /// a twin after a supervised restart; supervision requires it.
  ShardedExecutorT(const RunOptions& options,
                   std::vector<std::unique_ptr<Engine>> engines,
                   RouterT router, bool send_markers, FactoryT factory);
  ~ShardedExecutorT() override = default;

  std::string name() const override {
    return "Sharded[" + engines_[0]->name() + "]";
  }
  size_t num_shards() const override { return engines_.size(); }

  RunResultT Run(StreamSource* source) override;
  RunResultT RunEvents(const std::vector<Event>& events) override;

  const EngineStats& stats() const override { return merged_; }
  std::span<const EngineStats> shard_stats() const override {
    return shard_stats_view_;
  }
  std::span<const double> shard_busy_seconds() const override {
    return busy_view_;
  }

  Status Restore(const std::string& path, uint64_t* stream_offset) override;

 private:
  struct LaneItem {
    enum class Tag : uint8_t { kOps, kBarrier, kStop };
    Tag tag = Tag::kOps;
    std::vector<ShardOp> ops;
    /// Publication timestamp (obs::MonotonicNanos at ring push), stamped
    /// only when telemetry is on — the base of the trigger-to-output
    /// latency histogram. Zero when telemetry is off.
    uint64_t publish_ns = 0;
  };

  /// One shard's dataplane plus its worker-owned run state. The
  /// coordinator touches outputs/records/busy_seconds only while the
  /// worker is parked at a barrier or joined (including the joined window
  /// of a supervised restart).
  struct Lane {
    /// Work ring: the coordinator publishes, the worker drains (SPSC by
    /// construction — nothing else ever touches it while both live).
    SpscRing<LaneItem> ring{shard_detail::kMaxQueuedItems};
    /// Reverse ring, worker → coordinator: drained op vectors recycled
    /// back to the router, clear-not-shrink. Best-effort — a full ring
    /// just lets the vector deallocate.
    SpscRing<std::vector<ShardOp>> free_ring{shard_detail::kMaxQueuedItems};

    /// Park layer (never on the fast path): both ring sides spin first,
    /// then park on cv with a timed wait. The parked flags let the
    /// counterpart skip the lock+notify when nobody is parked.
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> consumer_parked{false};
    std::atomic<bool> producer_parked{false};
    /// Spin iterations this worker burned before parking (worker-owned
    /// plain counter; the coordinator reads it only after the join in
    /// StopWorkers, which synchronizes).
    uint64_t spin_count = 0;

    std::vector<OutputT> outputs;
    std::vector<StatsTimelineMerger::Record> records;
    size_t records_consumed = 0;
    std::vector<OutputT> scratch;
    double busy_seconds = 0;

    // ---- Worker-side supervision state (atomics; coordinator reads). ----
    /// Heartbeat: bumped once per executed op. Frozen progress with queued
    /// work for longer than the watchdog timeout means a stalled worker.
    std::atomic<uint64_t> progress{0};
    /// True while the worker is parked waiting for work (an idle worker is
    /// never "stalled").
    std::atomic<bool> idle{false};
    /// Worker died (injected crash): its thread returned without cleanup.
    std::atomic<bool> dead{false};
    /// Coordinator order to exit: wakes a parked (idle or stalled) worker
    /// so the restart path can join its thread. Checked once per popped
    /// item, so a quarantined worker exits promptly even with a non-empty
    /// ring.
    std::atomic<bool> quarantine{false};
    /// Worker is parked at a coordinator barrier (never a failure).
    std::atomic<bool> at_barrier{false};

    // ---- Coordinator-only recovery state (supervised runs). ----
    /// Engine Checkpoint payload at the last recovery point (barrier).
    std::string snapshot;
    /// outputs/records high-water marks at that recovery point: a restart
    /// truncates back to them before replaying.
    size_t ckpt_outputs = 0;
    size_t ckpt_records = 0;
    /// Every op routed to this lane since the recovery point, in order —
    /// the restart replay slice. Cleared at each barrier.
    std::vector<ShardOp> replay_log;
    /// Restarts burned since the last recovery point (budgeted).
    size_t restart_attempts = 0;
    /// A barrier token is owed: it was enqueued (or lost with a cleared
    /// queue) and the worker has not arrived yet — a restart re-issues it
    /// after the replay slice.
    bool barrier_pending = false;
    /// Watchdog bookkeeping: last observed heartbeat and when it changed.
    uint64_t last_progress = 0;
    std::chrono::steady_clock::time_point last_change;
  };

  /// Coordinator-owned fault/overload accounting, folded into the merged
  /// stats at the end of the run.
  struct FaultCounters {
    uint64_t restarts = 0;
    uint64_t replayed_events = 0;
    uint64_t shed_partitions = 0;
    uint64_t shed_events = 0;
    uint64_t overload_stalls = 0;
  };

  /// Coordinator-owned dataplane accounting (workers keep their spin
  /// counts lane-local; see Lane::spin_count), folded into the merged
  /// stats at the end of the run.
  struct RingCounters {
    uint64_t pub_batches = 0;
    uint64_t full_waits = 0;
    uint64_t spins = 0;
  };

  /// The shared run loop; `refill` yields the next batch as a view
  /// (empty = exhausted). The view may be borrowed source storage, so the
  /// loop stamps sequence numbers in place but copies events into shard
  /// ops instead of consuming them.
  RunResultT RunImpl(const std::function<std::span<Event>()>& refill);

  void WorkerMain(size_t shard);
  /// Lock-free wake hint: lock + notify only when the counterpart's
  /// parked flag is up (a missed flag costs at most one kParkPoll).
  void WakeConsumer(Lane& lane) {
    if (lane.consumer_parked.load(std::memory_order_acquire)) {
      { std::lock_guard<std::mutex> lk(lane.mu); }
      lane.cv.notify_all();
    }
  }
  void WakeProducer(Lane& lane) {
    if (lane.producer_parked.load(std::memory_order_acquire)) {
      { std::lock_guard<std::mutex> lk(lane.mu); }
      lane.cv.notify_all();
    }
  }
  bool StopRequestedNow() const {
    return options_.stop_requested != nullptr &&
           options_.stop_requested->load(std::memory_order_relaxed);
  }
  /// Pushes an item, honoring the bounded ring (unsupervised): spins, then
  /// parks with timed waits. Returns false — leaving the item unqueued —
  /// only when stop_requested flips while the ring stays full, so SIGINT
  /// during a full-queue stall exits instead of waiting for a drain that
  /// may never come.
  bool Enqueue(size_t shard, LaneItem item);
  /// Supervised push: bounded waits, restarting the lane if it fails
  /// while the coordinator is parked on its full ring.
  Status EnqueueSupervised(size_t shard, LaneItem item);
  /// Publishes pending_[shard] to the lane's ring as one chunked
  /// publication and re-arms pending_ with a recycled vector.
  /// `publish_ns`: the batch's shared publication timestamp for trigger-
  /// latency telemetry (one clock read covers every shard's publication of
  /// a batch); 0 when telemetry is off. `sample_occupancy`: record this
  /// lane's ring depth into the coordinator's occupancy histogram (the
  /// caller rotates the sample across shards, one per batch).
  Status FlushPending(size_t shard, uint64_t publish_ns,
                      bool sample_occupancy);
  /// Parks every worker at a barrier; returns true once all have arrived,
  /// false when a stop request aborted the park on a full ring (the run
  /// then tears down via quarantine and skips the final checkpoint).
  bool BarrierAll();
  /// Supervised barrier: same contract, but failed lanes are restarted
  /// (with their barrier token re-issued) until every lane arrives.
  Status BarrierAllSupervised();
  /// Telemetry for a completed barrier: duration histogram + trace span
  /// (no-op when telemetry is off; `barrier_begin` is then ignored).
  void RecordBarrier(uint64_t barrier_begin);
  /// Releases workers parked by BarrierAll / BarrierAllSupervised.
  void ResumeAll();
  /// Feeds each lane's new records to the merger (lanes quiescent).
  void DrainMerger();
  /// Bulk-sums engine stats + the merger's object view.
  EngineStats ComputeMergedStats() const;
  /// Writes the multi-shard snapshot container at `seq` (workers parked).
  Status SaveSnapshotAt(uint64_t seq);
  /// Applies --pin-threads to a freshly spawned worker (Linux affinity;
  /// no-op with a one-shot warning when cores < shards or unsupported).
  void PinWorker(size_t shard);

  // ---- Supervision (coordinator side). ----
  /// True when the lane's worker is dead, or silent with queued work past
  /// the watchdog timeout. Updates the lane's watchdog bookkeeping.
  bool LaneFailed(size_t shard);
  /// Sweeps all lanes, restarting any that failed.
  Status CheckLanes();
  /// Quarantines + joins the failed worker, rebuilds the engine twin from
  /// the lane's recovery snapshot, truncates outputs/records to the
  /// recovery watermarks, respawns the worker, and replays the lane's
  /// routed slice (plus any owed barrier token). Bounded exponential
  /// backoff; exceeding the restart budget returns an error.
  Status RestartShard(size_t shard);
  /// Captures a recovery point per lane: engine snapshot, output/record
  /// watermarks, replay log truncation, budget reset. Workers must be
  /// parked at a barrier.
  Status CaptureRecoveryPoints();
  /// Waits until every lane is empty and idle (degrade-serial overload
  /// response), restarting failed lanes when supervised; an unsupervised
  /// stop request aborts the wait (stop_stalled_).
  Status DrainAllQueues();
  /// Pushes stop tokens to live lanes and joins every worker thread.
  /// Falls back to quarantine teardown when the run is supervised or a
  /// stop request stranded work on a full ring.
  void StopWorkers();

  RunOptions options_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Shardable*> shardables_;
  FactoryT factory_;
  RouterT router_;
  bool send_markers_;  // false when nothing ever expires

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;
  std::vector<std::vector<ShardOp>> pending_;
  std::vector<Event> batch_buf_;

  // Barrier coordination (checkpoints + recovery points).
  std::mutex coord_mu_;
  std::condition_variable coord_cv_;
  size_t barrier_arrived_ = 0;
  uint64_t barrier_epoch_ = 0;

  // Per-run supervision/overload state (coordinator only).
  FaultCounters fcounters_;
  RingCounters rcounters_;
  std::unordered_set<uint32_t> shed_keys_;
  uint64_t fired_at_start_ = 0;
  /// A stop request caught the coordinator parked on a full ring (or a
  /// drain): queued work could not flush, so the final barrier/checkpoint
  /// are skipped and teardown quarantines instead of draining.
  bool stop_stalled_ = false;
  bool pin_warned_ = false;

  StatsTimelineMerger merger_;
  EngineStats merged_;
  std::vector<EngineStats> shard_stats_view_;
  std::vector<double> busy_view_;
};

template <class Traits>
ShardedExecutorT<Traits>::ShardedExecutorT(
    const RunOptions& options, std::vector<std::unique_ptr<Engine>> engines,
    RouterT router, bool send_markers, FactoryT factory)
    : options_(options),
      engines_(std::move(engines)),
      factory_(std::move(factory)),
      router_(std::move(router)),
      send_markers_(send_markers) {
  assert(engines_.size() > 1);
  options_.num_shards = engines_.size();
  for (auto& e : engines_) {
    auto* shardable = dynamic_cast<Shardable*>(e.get());
    assert(shardable != nullptr &&
           "ShardedExecutorT requires shardable engine twins (the policy "
           "factory enforces this)");
    shardables_.push_back(shardable);
  }
  lanes_.reserve(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  pending_.resize(engines_.size());
  shard_stats_view_.resize(engines_.size());
  busy_view_.resize(engines_.size(), 0);
}

template <class Traits>
void ShardedExecutorT<Traits>::WorkerMain(size_t shard) {
  Lane& lane = *lanes_[shard];
  Engine* engine = engines_[shard].get();
  Shardable* shardable = shardables_[shard];
  EngineStats* stats = shardable->shard_mutable_stats();
  const bool boundary_objects = Traits::BoundaryObjects(shardable);
  const bool supervised = options_.supervise;
  const bool check_faults = fault::Injector::Global().armed();
  // Telemetry cell for this shard (null = off). The worker is the cell's
  // only writer; all record sites below are relaxed stores, and the per-op
  // sites reuse timing the busy-seconds accounting already pays for.
  obs::ShardCell* const cell = options_.telemetry != nullptr
                                   ? &options_.telemetry->shard(shard)
                                   : nullptr;
  // Per-drain accumulators for the cell's counter fields: the hot loop
  // adds into plain locals and flushes to the shared cell only at drain
  // boundaries (ring empty before a park, barrier, ordered exit) or every
  // kCellFlushItems items under saturation — one batch of relaxed stores
  // per drain instead of six per item keeps the record cost inside the
  // <= 3% bench_dataplane overhead gate. The emitter sees counters at
  // most one drain (bounded by kCellFlushItems items) stale.
  constexpr uint64_t kCellFlushItems = 64;
  uint64_t acc_items = 0, acc_ops = 0, acc_events = 0, acc_outputs = 0,
           acc_busy_ns = 0;
  const auto flush_cell = [&] {
    if (cell == nullptr || acc_items == 0) return;
    cell->items.Add(acc_items);
    cell->ops.Add(acc_ops);
    cell->events.Add(acc_events);
    if (acc_outputs > 0) cell->outputs.Add(acc_outputs);
    cell->busy_ns.Add(acc_busy_ns);
    // Occupancy observed at the end of a drain (or a saturation flush):
    // zero when the worker caught up, queue depth when it didn't.
    cell->ring_occupancy.Set(lane.ring.size());
    acc_items = acc_ops = acc_events = acc_outputs = acc_busy_ns = 0;
  };
  for (;;) {
    LaneItem item;
    // Pop protocol: quarantine first (an ordered exit must not drain the
    // ring — the restart path replays it), then a bounded spin on the
    // ring, then a timed park flying the idle + parked flags.
    for (size_t spin = 0;;) {
      if (lane.quarantine.load(std::memory_order_relaxed)) {
        flush_cell();
        return;
      }
      if (lane.ring.TryPop(&item)) break;
      if (++spin <= shard_detail::kRingSpinIters) {
        CpuRelax();
        ++lane.spin_count;
        continue;
      }
      // Drain over (spin budget exhausted on an empty ring): publish the
      // accumulated counters before parking.
      flush_cell();
      lane.idle.store(true, std::memory_order_relaxed);
      const uint64_t park_begin =
          cell != nullptr ? obs::MonotonicNanos() : 0;
      {
        std::unique_lock<std::mutex> lk(lane.mu);
        lane.consumer_parked.store(true, std::memory_order_release);
        lane.cv.wait_for(lk, shard_detail::kParkPoll, [&] {
          return !lane.ring.Empty() ||
                 lane.quarantine.load(std::memory_order_relaxed);
        });
        lane.consumer_parked.store(false, std::memory_order_relaxed);
      }
      if (cell != nullptr) {
        const uint64_t parked = obs::MonotonicNanos() - park_begin;
        cell->parks.Add(1);
        cell->park_ns.Add(parked);
        cell->park_wait_ns.Record(parked);
      }
      lane.idle.store(false, std::memory_order_relaxed);
      spin = 0;
    }
    // The coordinator may be parked on a full ring.
    WakeProducer(lane);
    if (item.tag == LaneItem::Tag::kStop) {
      flush_cell();
      return;
    }
    if (item.tag == LaneItem::Tag::kBarrier) {
      flush_cell();
      std::unique_lock<std::mutex> lk(coord_mu_);
      const uint64_t epoch = barrier_epoch_;
      ++barrier_arrived_;
      lane.at_barrier.store(true, std::memory_order_release);
      coord_cv_.notify_all();
      // Quarantine must break a barrier park too: an aborted supervised
      // barrier (restart budget exhausted elsewhere) never resumes the
      // epoch, and teardown would otherwise join a thread parked here.
      coord_cv_.wait(lk, [&] {
        return barrier_epoch_ != epoch ||
               lane.quarantine.load(std::memory_order_relaxed);
      });
      lane.at_barrier.store(false, std::memory_order_release);
      continue;
    }
    StopWatch watch;
    // Per-item accumulators for the per-op telemetry counts: one cell
    // store per drained item instead of one per op keeps the record cost
    // inside the <= 3% bench_dataplane overhead gate.
    uint64_t item_events = 0;
    uint64_t item_outputs = 0;
    for (ShardOp& op : item.ops) {
      if (check_faults) {
        if (auto fired =
                fault::Injector::Global().Hit(fault::Point::kWorkerOp, shard)) {
          if (fired->kind == fault::Kind::kSlow) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(fired->delay_us));
          } else if (supervised && fired->kind == fault::Kind::kCrash) {
            // Abrupt worker death: no cleanup, the op is lost mid-item.
            // The supervisor detects the dead flag, rebuilds this shard
            // from its recovery point, and replays the routed slice.
            lane.dead.store(true, std::memory_order_release);
            coord_cv_.notify_all();
            lane.cv.notify_all();
            return;
          } else if (supervised && fired->kind == fault::Kind::kStall) {
            // Hang without heartbeating until the watchdog quarantines us.
            std::unique_lock<std::mutex> lk(lane.mu);
            lane.cv.wait(lk, [&] {
              return lane.quarantine.load(std::memory_order_relaxed);
            });
            return;
          }
          // Other kinds are not meaningful at this point; ignore.
        }
      }
      ObjectCounter& objects = stats->objects;
      objects.BeginPeakWindow();
      const int64_t before = objects.current();
      if (op.kind == ShardOp::Kind::kEvent) {
        lane.scratch.clear();
        engine->OnEvent(op.event, &lane.scratch);
        if (cell != nullptr) {
          ++item_events;
          item_outputs += lane.scratch.size();
        }
        if (options_.collect_outputs && !lane.scratch.empty()) {
          lane.outputs.insert(lane.outputs.end(), lane.scratch.begin(),
                              lane.scratch.end());
        }
      } else {
        Traits::SyncPurge(shardable, op);
      }
      const int64_t after = objects.current();
      int64_t window_peak = objects.window_peak();
      // Boundary-sampled engines take one Add per event, so window_peak
      // (= max(before, after)) is not a point the serial engine observed;
      // clamping it to min(before, after) silences the merger's mid-event
      // candidate and leaves the exact boundary totals.
      if (boundary_objects) window_peak = std::min(before, after);
      // Record only state changes: the merge needs every current
      // transition and every mid-event maximum above the entry count.
      if (after != before || window_peak > before) {
        lane.records.push_back({op.seq, after, window_peak});
      }
      lane.progress.fetch_add(1, std::memory_order_relaxed);
    }
    if (cell == nullptr) {
      lane.busy_seconds += watch.ElapsedSeconds();
    } else {
      // One elapsed read serves both the busy-seconds accounting and the
      // telemetry cell; the service-time histogram amortizes its record
      // over the whole drained item, and the counter fields land in the
      // per-drain accumulators (flushed by flush_cell at drain
      // boundaries).
      const uint64_t busy = watch.ElapsedNanos();
      lane.busy_seconds += static_cast<double>(busy) * 1e-9;
      ++acc_items;
      acc_ops += item.ops.size();
      acc_events += item_events;
      acc_outputs += item_outputs;
      acc_busy_ns += busy;
      cell->op_service_ns.Record(busy / item.ops.size());
      if (item_outputs > 0) {
        // Trigger-to-output latency: the batch's publication to the
        // completion of the item that produced the outputs. The absolute
        // end instant is reconstructed from the busy StopWatch (same
        // steady-clock epoch), so the record costs no extra clock read.
        cell->trigger_latency_ns.Record(watch.StartNanos() + busy -
                                        item.publish_ns);
      }
      if (acc_items >= kCellFlushItems) flush_cell();
    }
    // Recycle the drained op vector to the router (best-effort: a full
    // free ring just lets the capacity go).
    item.ops.clear();
    lane.free_ring.TryPush(item.ops);
  }
}

template <class Traits>
bool ShardedExecutorT<Traits>::Enqueue(size_t shard, LaneItem item) {
  Lane& lane = *lanes_[shard];
  if (lane.ring.TryPush(item)) {
    WakeConsumer(lane);
    return true;
  }
  ++rcounters_.full_waits;
  for (size_t spin = 0;;) {
    if (lane.ring.TryPush(item)) {
      WakeConsumer(lane);
      return true;
    }
    if (++spin <= shard_detail::kRingSpinIters) {
      CpuRelax();
      ++rcounters_.spins;
      continue;
    }
    // A stop request while the ring stays full must not wait for a drain
    // (the worker may be wedged): bail with the item unqueued; the caller
    // marks the run stop-stalled.
    if (StopRequestedNow()) return false;
    {
      std::unique_lock<std::mutex> lk(lane.mu);
      lane.producer_parked.store(true, std::memory_order_release);
      lane.cv.wait_for(lk, shard_detail::kParkPoll,
                       [&] { return !lane.ring.Full(); });
      lane.producer_parked.store(false, std::memory_order_relaxed);
    }
    spin = 0;
  }
}

template <class Traits>
Status ShardedExecutorT<Traits>::EnqueueSupervised(size_t shard,
                                                   LaneItem item) {
  Lane& lane = *lanes_[shard];
  for (;;) {
    if (!lane.dead.load(std::memory_order_acquire) &&
        lane.ring.TryPush(item)) {
      WakeConsumer(lane);
      return Status::OK();
    }
    {
      std::unique_lock<std::mutex> lk(lane.mu);
      lane.producer_parked.store(true, std::memory_order_release);
      lane.cv.wait_for(lk, shard_detail::kSupervisedPoll, [&] {
        return !lane.ring.Full() || lane.dead.load(std::memory_order_relaxed);
      });
      lane.producer_parked.store(false, std::memory_order_relaxed);
    }
    if (LaneFailed(shard)) {
      // A restart clears the ring, so the retry above pushes the item
      // (e.g. a barrier token) right after the replay slice.
      ASEQ_RETURN_NOT_OK(RestartShard(shard));
    }
  }
}

template <class Traits>
Status ShardedExecutorT<Traits>::FlushPending(size_t shard,
                                              uint64_t publish_ns,
                                              bool sample_occupancy) {
  if (pending_[shard].empty()) return Status::OK();
  Lane& lane = *lanes_[shard];
  ++rcounters_.pub_batches;
  LaneItem item{LaneItem::Tag::kOps, std::move(pending_[shard])};
  if (options_.telemetry != nullptr) {
    obs::CoordCell& cc = options_.telemetry->coord();
    cc.publications.Add(1);
    // Occupancy sampled before the push: what the publication found in
    // front of it — the dataplane's backpressure profile. One rotating
    // shard per batch (see the occ_rotor in RunImpl) keeps the histogram
    // off the per-publication hot path.
    if (sample_occupancy) cc.ring_occupancy.Record(lane.ring.size());
    item.publish_ns = publish_ns;
  }
  if (!options_.supervise) {
    if (!Enqueue(shard, std::move(item))) {
      // Stop request on a full ring: the ops are dropped with the run
      // marked stop-stalled (interrupted, no final checkpoint).
      stop_stalled_ = true;
      return Status::OK();
    }
  } else {
    bool dropped = false;
    for (;;) {
      if (!lane.dead.load(std::memory_order_acquire) &&
          lane.ring.TryPush(item)) {
        WakeConsumer(lane);
        break;
      }
      {
        std::unique_lock<std::mutex> lk(lane.mu);
        lane.producer_parked.store(true, std::memory_order_release);
        lane.cv.wait_for(lk, shard_detail::kSupervisedPoll, [&] {
          return !lane.ring.Full() ||
                 lane.dead.load(std::memory_order_relaxed);
        });
        lane.producer_parked.store(false, std::memory_order_relaxed);
      }
      if (LaneFailed(shard)) {
        ASEQ_RETURN_NOT_OK(RestartShard(shard));
        // The restart replayed everything routed since the recovery
        // point — including the ops still held in `item` — so pushing
        // them now would double-feed; drop them and recycle the vector.
        item.ops.clear();
        dropped = true;
        break;
      }
    }
    if (dropped) {
      pending_[shard] = std::move(item.ops);
      return Status::OK();
    }
  }
  // Re-arm pending_ with a worker-recycled vector when one is available.
  std::vector<ShardOp> replacement;
  lane.free_ring.TryPop(&replacement);
  pending_[shard] = std::move(replacement);
  return Status::OK();
}

template <class Traits>
bool ShardedExecutorT<Traits>::BarrierAll() {
  const uint64_t barrier_begin =
      options_.telemetry != nullptr ? obs::MonotonicNanos() : 0;
  {
    std::lock_guard<std::mutex> lk(coord_mu_);
    barrier_arrived_ = 0;
  }
  for (size_t s = 0; s < lanes_.size(); ++s) {
    if (!Enqueue(s, LaneItem{LaneItem::Tag::kBarrier, {}})) {
      // Stop request on a full ring: abandon the barrier. Lanes that did
      // get a token park on the epoch; the quarantine teardown wakes them.
      stop_stalled_ = true;
      return false;
    }
  }
  std::unique_lock<std::mutex> lk(coord_mu_);
  while (!coord_cv_.wait_for(lk, shard_detail::kParkPoll, [&] {
    return barrier_arrived_ == lanes_.size();
  })) {
    if (StopRequestedNow() && barrier_arrived_ < lanes_.size()) {
      // Tokens are queued but a worker is not arriving (stalled): a stop
      // request must still exit cleanly.
      stop_stalled_ = true;
      return false;
    }
  }
  RecordBarrier(barrier_begin);
  return true;
}

template <class Traits>
void ShardedExecutorT<Traits>::RecordBarrier(uint64_t barrier_begin) {
  if (options_.telemetry == nullptr) return;
  const uint64_t end = obs::MonotonicNanos();
  obs::CoordCell& cc = options_.telemetry->coord();
  cc.barriers.Add(1);
  cc.barrier_ns.Record(end - barrier_begin);
  if (options_.telemetry->trace() != nullptr) {
    options_.telemetry->trace()->Span(
        "barrier", obs::TraceWriter::kCoordTid, barrier_begin, end,
        {obs::TraceWriter::NumArg("shards", lanes_.size())});
  }
}

template <class Traits>
Status ShardedExecutorT<Traits>::BarrierAllSupervised() {
  const uint64_t barrier_begin =
      options_.telemetry != nullptr ? obs::MonotonicNanos() : 0;
  const size_t n = lanes_.size();
  {
    std::lock_guard<std::mutex> lk(coord_mu_);
    barrier_arrived_ = 0;
  }
  for (size_t s = 0; s < n; ++s) {
    // barrier_pending flips true only once the token is actually queued:
    // a restart during the enqueue must not re-issue a token that was
    // never pushed (EnqueueSupervised pushes it right after the restart).
    ASEQ_RETURN_NOT_OK(
        EnqueueSupervised(s, LaneItem{LaneItem::Tag::kBarrier, {}}));
    lanes_[s]->barrier_pending = true;
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(coord_mu_);
      if (coord_cv_.wait_for(lk, shard_detail::kSupervisedPoll,
                             [&] { return barrier_arrived_ == n; })) {
        break;
      }
    }
    for (size_t s = 0; s < n; ++s) {
      if (!lanes_[s]->at_barrier.load(std::memory_order_acquire) &&
          LaneFailed(s)) {
        // The lane's barrier token died with its queue; RestartShard
        // re-issues it after the replay slice (barrier_pending is set).
        ASEQ_RETURN_NOT_OK(RestartShard(s));
      }
    }
  }
  for (auto& lane : lanes_) lane->barrier_pending = false;
  RecordBarrier(barrier_begin);
  return Status::OK();
}

template <class Traits>
void ShardedExecutorT<Traits>::ResumeAll() {
  {
    std::lock_guard<std::mutex> lk(coord_mu_);
    ++barrier_epoch_;
  }
  coord_cv_.notify_all();
}

template <class Traits>
void ShardedExecutorT<Traits>::DrainMerger() {
  std::vector<std::span<const StatsTimelineMerger::Record>> spans;
  spans.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    spans.push_back(std::span<const StatsTimelineMerger::Record>(
        lane->records.data() + lane->records_consumed,
        lane->records.size() - lane->records_consumed));
  }
  merger_.Consume(spans);
  for (auto& lane : lanes_) lane->records_consumed = lane->records.size();
}

template <class Traits>
EngineStats ShardedExecutorT<Traits>::ComputeMergedStats() const {
  EngineStats merged;
  for (const auto& e : engines_) MergeBulkStats(e->stats(), &merged);
  merged.objects.RestoreCounts(merger_.merged_current(),
                               merger_.merged_peak());
  return merged;
}

template <class Traits>
Status ShardedExecutorT<Traits>::SaveSnapshotAt(uint64_t seq) {
  const EngineStats merged_now = ComputeMergedStats();
  std::vector<const Engine*> shards;
  shards.reserve(engines_.size());
  for (const auto& e : engines_) shards.push_back(e.get());
  // The router is quiescent here (this coordinator thread is the only one
  // that touches it, and the workers are parked at the barrier), so its
  // interner table is captured consistently with shard state.
  ckpt::Writer router_state;
  router_.Checkpoint(&router_state);
  return ckpt::SaveShardedSnapshot(
      ckpt::SnapshotPathForOffset(options_.checkpoint_dir, seq), shards, seq,
      merged_now, router_state.buffer());
}

template <class Traits>
void ShardedExecutorT<Traits>::PinWorker(size_t shard) {
  if (!options_.pin_threads) return;
#if defined(__linux__)
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < engines_.size()) {
    if (!pin_warned_) {
      pin_warned_ = true;
      std::fprintf(stderr,
                   "warning: --pin-threads: %u core(s) for %zu shards; "
                   "pinning disabled\n",
                   cores, engines_.size());
    }
    return;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(shard % cores, &set);
  if (pthread_setaffinity_np(workers_[shard].native_handle(), sizeof(set),
                             &set) != 0 &&
      !pin_warned_) {
    pin_warned_ = true;
    std::fprintf(stderr,
                 "warning: --pin-threads: pthread_setaffinity_np failed; "
                 "running unpinned\n");
  }
#else
  if (!pin_warned_) {
    pin_warned_ = true;
    std::fprintf(stderr,
                 "warning: --pin-threads is not supported on this platform; "
                 "running unpinned\n");
  }
#endif
}

template <class Traits>
bool ShardedExecutorT<Traits>::LaneFailed(size_t shard) {
  Lane& lane = *lanes_[shard];
  if (lane.dead.load(std::memory_order_acquire)) return true;
  const uint64_t p = lane.progress.load(std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  if (p != lane.last_progress || lane.idle.load(std::memory_order_relaxed) ||
      lane.at_barrier.load(std::memory_order_relaxed)) {
    lane.last_progress = p;
    lane.last_change = now;
    return false;
  }
  // Not idle, not at a barrier, heartbeat frozen: stalled once the silence
  // outlasts the watchdog timeout.
  return std::chrono::duration<double, std::milli>(now - lane.last_change)
             .count() > options_.watchdog_timeout_ms;
}

template <class Traits>
Status ShardedExecutorT<Traits>::CheckLanes() {
  for (size_t s = 0; s < lanes_.size(); ++s) {
    if (LaneFailed(s)) {
      ASEQ_RETURN_NOT_OK(RestartShard(s));
    }
  }
  return Status::OK();
}

template <class Traits>
Status ShardedExecutorT<Traits>::RestartShard(size_t shard) {
  Lane& lane = *lanes_[shard];
  obs::TraceWriter* const trace = options_.telemetry != nullptr
                                      ? options_.telemetry->trace()
                                      : nullptr;
  const bool was_dead = lane.dead.load(std::memory_order_acquire);
  if (trace != nullptr) {
    trace->Instant("quarantine", obs::TraceWriter::kCoordTid,
                   obs::MonotonicNanos(),
                   {obs::TraceWriter::NumArg("shard", shard),
                    {"cause", was_dead ? "crash" : "stall"}});
  }
  // Quarantine + reap: a stalled worker parks until the quarantine flag
  // flips; a crashed one already returned; an idle one wakes and exits.
  {
    std::lock_guard<std::mutex> lk(lane.mu);
    lane.quarantine.store(true, std::memory_order_relaxed);
  }
  lane.cv.notify_all();
  if (workers_[shard].joinable()) workers_[shard].join();

  ++lane.restart_attempts;
  ++fcounters_.restarts;
  if (lane.restart_attempts > options_.max_restarts) {
    return Status::Internal(
        "shard " + std::to_string(shard) + " exhausted its restart budget (" +
        std::to_string(options_.max_restarts) +
        " since the last recovery point); giving up");
  }
  // Bounded exponential backoff before respawning (first restart is
  // immediate): 1, 2, 4, ... 64 ms.
  if (lane.restart_attempts > 1) {
    const size_t shift = std::min<size_t>(lane.restart_attempts - 2, 6);
    std::this_thread::sleep_for(std::chrono::milliseconds(1ll << shift));
  }

  // Roll the lane back to its recovery point. The worker is joined, so
  // everything here is single-threaded (including the ring Clears — the
  // SPSC protocol does not cover concurrent resets).
  lane.ring.Clear();
  lane.free_ring.Clear();
  lane.consumer_parked.store(false, std::memory_order_relaxed);
  lane.producer_parked.store(false, std::memory_order_relaxed);
  lane.dead.store(false, std::memory_order_relaxed);
  lane.quarantine.store(false, std::memory_order_relaxed);
  lane.at_barrier.store(false, std::memory_order_relaxed);
  lane.idle.store(false, std::memory_order_relaxed);
  lane.outputs.resize(lane.ckpt_outputs);
  lane.records.resize(lane.ckpt_records);
  lane.records_consumed = lane.ckpt_records;
  // Ops routed but not yet flushed are already in the replay log; dropping
  // them here keeps the replay from double-feeding them.
  pending_[shard].clear();

  // Rebuild the engine twin from the recovery snapshot (engine Checkpoint
  // payloads carry stats, so the merged view stays exact).
  if (!factory_) {
    return Status::Internal(
        "supervised restart requires an engine factory (construct the "
        "executor through exec::MakePolicy / exec::MakeMultiPolicy)");
  }
  ASEQ_ASSIGN_OR_RETURN(std::unique_ptr<Engine> fresh, factory_());
  auto* shardable = dynamic_cast<Shardable*>(fresh.get());
  if (shardable == nullptr) {
    return Status::Internal(
        "engine factory stopped producing shardable engines during a "
        "supervised restart");
  }
  if (!lane.snapshot.empty()) {
    ckpt::Reader reader(lane.snapshot);
    ASEQ_RETURN_NOT_OK(fresh->Restore(&reader));
    ASEQ_RETURN_NOT_OK(reader.ExpectEnd());
  }
  engines_[shard] = std::move(fresh);
  shardables_[shard] = shardable;

  lane.last_progress = lane.progress.load(std::memory_order_relaxed);
  lane.last_change = std::chrono::steady_clock::now();
  workers_[shard] =
      std::thread(&ShardedExecutorT<Traits>::WorkerMain, this, shard);
  PinWorker(shard);
  if (trace != nullptr) {
    trace->Instant("restart", obs::TraceWriter::kCoordTid,
                   obs::MonotonicNanos(),
                   {obs::TraceWriter::NumArg("shard", shard),
                    obs::TraceWriter::NumArg("attempt", lane.restart_attempts)});
  }

  // Replay the routed slice since the recovery point. If the fresh worker
  // dies again mid-replay (another armed fault), abandon — the caller's
  // detection loop restarts again, and the budget bounds the loop.
  uint64_t replayed = 0;
  const size_t chunk_size =
      options_.batch_size == 0 ? kDefaultBatchSize : options_.batch_size;
  for (size_t i = 0; i < lane.replay_log.size();) {
    const size_t chunk = std::min(chunk_size, lane.replay_log.size() - i);
    LaneItem item;
    item.tag = LaneItem::Tag::kOps;
    item.ops.assign(lane.replay_log.begin() + static_cast<ptrdiff_t>(i),
                    lane.replay_log.begin() + static_cast<ptrdiff_t>(i + chunk));
    if (options_.telemetry != nullptr) item.publish_ns = obs::MonotonicNanos();
    bool pushed = false;
    while (!pushed) {
      if (lane.dead.load(std::memory_order_acquire)) break;
      if (lane.ring.TryPush(item)) {
        WakeConsumer(lane);
        pushed = true;
        break;
      }
      std::unique_lock<std::mutex> lk(lane.mu);
      lane.producer_parked.store(true, std::memory_order_release);
      lane.cv.wait_for(lk, shard_detail::kSupervisedPoll, [&] {
        return !lane.ring.Full() || lane.dead.load(std::memory_order_relaxed);
      });
      lane.producer_parked.store(false, std::memory_order_relaxed);
    }
    if (!pushed) break;
    for (size_t j = i; j < i + chunk; ++j) {
      if (lane.replay_log[j].kind == ShardOp::Kind::kEvent) ++replayed;
    }
    i += chunk;
  }
  fcounters_.replayed_events += replayed;
  if (trace != nullptr) {
    trace->Instant("replay", obs::TraceWriter::kCoordTid,
                   obs::MonotonicNanos(),
                   {obs::TraceWriter::NumArg("shard", shard),
                    obs::TraceWriter::NumArg("events", replayed)});
  }

  // A barrier token lost with the cleared queue must be re-issued after
  // the replay slice, or the coordinator's barrier would never complete.
  if (lane.barrier_pending && !lane.dead.load(std::memory_order_acquire)) {
    LaneItem token{LaneItem::Tag::kBarrier, {}};
    bool pushed = false;
    while (!pushed) {
      if (lane.dead.load(std::memory_order_acquire)) break;
      if (lane.ring.TryPush(token)) {
        WakeConsumer(lane);
        pushed = true;
        break;
      }
      std::unique_lock<std::mutex> lk(lane.mu);
      lane.producer_parked.store(true, std::memory_order_release);
      lane.cv.wait_for(lk, shard_detail::kSupervisedPoll, [&] {
        return !lane.ring.Full() || lane.dead.load(std::memory_order_relaxed);
      });
      lane.producer_parked.store(false, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

template <class Traits>
Status ShardedExecutorT<Traits>::CaptureRecoveryPoints() {
  for (size_t s = 0; s < engines_.size(); ++s) {
    Lane& lane = *lanes_[s];
    ckpt::Writer writer;
    ASEQ_RETURN_NOT_OK(engines_[s]->Checkpoint(&writer));
    lane.snapshot = writer.buffer();
    lane.ckpt_outputs = lane.outputs.size();
    lane.ckpt_records = lane.records.size();
    lane.replay_log.clear();
    lane.restart_attempts = 0;
  }
  return Status::OK();
}

template <class Traits>
Status ShardedExecutorT<Traits>::DrainAllQueues() {
  for (;;) {
    bool drained = true;
    for (size_t s = 0; s < lanes_.size(); ++s) {
      Lane& lane = *lanes_[s];
      if (!lane.ring.Empty() ||
          !lane.idle.load(std::memory_order_relaxed)) {
        drained = false;
        if (options_.supervise && LaneFailed(s)) {
          ASEQ_RETURN_NOT_OK(RestartShard(s));
        }
      }
    }
    if (drained) return Status::OK();
    if (!options_.supervise && StopRequestedNow()) {
      // A stop against a wedged unsupervised worker must not poll forever:
      // abandon the drain; the run ends interrupted via quarantine.
      stop_stalled_ = true;
      return Status::OK();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

template <class Traits>
void ShardedExecutorT<Traits>::StopWorkers() {
  bool quarantine_teardown = options_.supervise || stop_stalled_;
  if (!quarantine_teardown) {
    for (size_t s = 0; s < lanes_.size(); ++s) {
      if (!Enqueue(s, LaneItem{LaneItem::Tag::kStop, {}})) {
        // Stop request against a full ring: fall back to quarantine for
        // every lane (workers that already took their token just exit).
        stop_stalled_ = true;
        quarantine_teardown = true;
        break;
      }
    }
  }
  if (quarantine_teardown) {
    // Quarantine-based teardown: rings are either empty (the final health
    // barrier ran) or abandoned (the run aborted or stop-stalled), so
    // nothing needs draining, and the quarantine flag wakes every kind of
    // park — the idle wait, an injected stall, and (with the epoch bump
    // below) a barrier whose resume was skipped by an abort path.
    for (auto& lane : lanes_) {
      {
        std::lock_guard<std::mutex> lk(lane->mu);
        lane->quarantine.store(true, std::memory_order_relaxed);
      }
      lane->cv.notify_all();
    }
    // Quarantine flags are set before the bump: a worker reaching a
    // barrier token after this sees quarantine in the wait predicate and
    // never blocks on the stale epoch.
    ResumeAll();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

template <class Traits>
typename Traits::RunResultT ShardedExecutorT<Traits>::RunImpl(
    const std::function<std::span<Event>()>& refill) {
  const size_t n = engines_.size();
  const bool supervised = options_.supervise;
  obs::Telemetry* const tel = options_.telemetry;
  obs::TraceWriter* const trace = tel != nullptr ? tel->trace() : nullptr;
  RunResultT result;
  result.batch_size = options_.batch_size;
  result.num_shards = n;

  // Per-run lane state, clear-not-shrink. Workers are not spawned yet, so
  // the single-threaded ring Clears are safe.
  for (auto& lane : lanes_) {
    lane->ring.Clear();
    lane->free_ring.Clear();
    lane->consumer_parked.store(false, std::memory_order_relaxed);
    lane->producer_parked.store(false, std::memory_order_relaxed);
    lane->spin_count = 0;
    lane->outputs.clear();
    lane->records.clear();
    lane->records_consumed = 0;
    lane->busy_seconds = 0;
    lane->progress.store(0, std::memory_order_relaxed);
    lane->idle.store(false, std::memory_order_relaxed);
    lane->dead.store(false, std::memory_order_relaxed);
    lane->quarantine.store(false, std::memory_order_relaxed);
    lane->at_barrier.store(false, std::memory_order_relaxed);
    lane->snapshot.clear();
    lane->ckpt_outputs = 0;
    lane->ckpt_records = 0;
    lane->replay_log.clear();
    lane->restart_attempts = 0;
    lane->barrier_pending = false;
    lane->last_progress = 0;
    lane->last_change = std::chrono::steady_clock::now();
  }
  fcounters_ = FaultCounters{};
  rcounters_ = RingCounters{};
  shed_keys_.clear();
  stop_stalled_ = false;
  fired_at_start_ = fault::Injector::Global().fired_count();
  {
    std::vector<int64_t> currents;
    currents.reserve(n);
    for (const auto& e : engines_) {
      currents.push_back(e->stats().objects.current());
    }
    // Seed with the merged view carried across runs/restores: engines
    // keep their state, so the peak must continue from where it stood.
    merger_.Reset(currents, merged_.objects.peak());
  }

  if (supervised) {
    // The initial recovery point: a restart before the first barrier must
    // rebuild the engines' *current* state — which, after a Restore(), is
    // not the fresh-constructed one.
    Status cs = CaptureRecoveryPoints();
    if (!cs.ok()) {
      result.fault_status = std::move(cs);
      return result;
    }
  }

  StopWatch watch;
  workers_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    workers_.emplace_back(&ShardedExecutorT<Traits>::WorkerMain, this, s);
    PinWorker(s);
  }

  SeqNum seq = options_.start_offset;
  // Occupancy-sample rotor: each batch samples ONE shard's ring depth into
  // the coordinator's occupancy histogram, rotating through the shards —
  // full coverage over n batches at 1/n of the per-publication record
  // cost (and no shard aliasing, which a modulo on the publication count
  // would produce).
  size_t occ_rotor = 0;
  uint64_t next_ckpt = options_.checkpoint_every > 0
                           ? options_.start_offset + options_.checkpoint_every
                           : shard_detail::kNeverDue;
  uint64_t next_rec = supervised && options_.recovery_every > 0
                          ? options_.start_offset + options_.recovery_every
                          : shard_detail::kNeverDue;
  for (;;) {
    if (StopRequestedNow()) {
      result.interrupted = true;
      break;
    }
    std::span<Event> batch = refill();
    if (batch.empty()) break;
    // Stamp the whole batch, then route it in one pass: the router runs
    // the vectorized admission prefilter + one BatchAdmitter sweep over
    // the borrowed batch instead of a per-event walk.
    for (Event& e : batch) e.set_seq(seq++);
    const uint64_t batch_begin = tel != nullptr ? obs::MonotonicNanos() : 0;
    const auto routes =
        router_.RouteBatch(std::span<const Event>(batch.data(), batch.size()));
    if (tel != nullptr) {
      // Batch-admission latency: the routing pass alone (vectorized
      // prefilter + compiled admission + hash routing).
      tel->coord().admit_ns.Record(obs::MonotonicNanos() - batch_begin);
      tel->coord().batches.Add(1);
      tel->coord().events.Add(batch.size());
    }
    bool overload_hit = false;
    for (size_t bi = 0; bi < batch.size(); ++bi) {
      Event& e = batch[bi];
      const auto& route = routes[bi];
      const Timestamp ts = e.ts();
      const SeqNum eseq = e.seq();
      if (options_.overload_policy != OverloadPolicy::kBlock) {
        const bool overloaded =
            route.inject_overload ||
            lanes_[route.shard]->ring.size() >=
                options_.overload_high_watermark;
        if (options_.overload_policy == OverloadPolicy::kShed &&
            route.has_key) {
          // Drop whole partitions, deterministically: once a key is shed,
          // every later event of that key is discarded before routing.
          // Events of other keys never read a shed partition's state (the
          // GROUP BY key scopes all reads), so survivors stay exact.
          if (shed_keys_.count(route.key_id) != 0) {
            ++fcounters_.shed_events;
            continue;
          }
          if (overloaded) {
            shed_keys_.insert(route.key_id);
            ++fcounters_.shed_partitions;
            ++fcounters_.shed_events;
            if (trace != nullptr) {
              trace->Instant("shed", obs::TraceWriter::kCoordTid,
                             obs::MonotonicNanos(),
                             {obs::TraceWriter::NumArg("key", route.key_id),
                              obs::TraceWriter::NumArg("seq", eseq)});
            }
            continue;
          }
        } else if (overloaded) {
          overload_hit = true;
        }
      }
      // Copy, not move: the batch may be borrowed source storage that a
      // Reset replay will serve again.
      pending_[route.shard].push_back(
          ShardOp{ShardOp::Kind::kEvent, ts, eseq, e, {}});
      if (supervised) {
        lanes_[route.shard]->replay_log.push_back(
            ShardOp{ShardOp::Kind::kEvent, ts, eseq, e, {}});
      }
      if (send_markers_ && Traits::IsTrigger(route)) {
        // The serial trigger purges every partition (of each triggered
        // query); non-owner shards replay it as a marker at the same seq,
        // keeping their state and object counts in lockstep.
        for (size_t s = 0; s < n; ++s) {
          if (s == route.shard) continue;
          ShardOp marker{ShardOp::Kind::kPurgeMarker, ts, eseq, Event(), {}};
          Traits::StampMarker(route, &marker);
          if (supervised) {
            lanes_[s]->replay_log.push_back(marker);
          }
          pending_[s].push_back(std::move(marker));
        }
      }
    }
    // One chunked publication per shard per batch; one shared timestamp
    // covers all of them (the trigger-latency epoch is the batch's
    // publication, not each shard's push).
    const uint64_t publish_ns = tel != nullptr ? obs::MonotonicNanos() : 0;
    const size_t occ_shard = occ_rotor++ % n;
    for (size_t s = 0; s < n; ++s) {
      Status fs = FlushPending(s, publish_ns, s == occ_shard);
      if (!fs.ok()) {
        result.fault_status = std::move(fs);
        break;
      }
    }
    if (trace != nullptr) {
      // The coordinator-side batch span: routing through publication
      // (worker-side execution shows up in the shard rows).
      trace->Span("batch", obs::TraceWriter::kCoordTid, batch_begin,
                  obs::MonotonicNanos(),
                  {obs::TraceWriter::NumArg("seq", seq - batch.size()),
                   obs::TraceWriter::NumArg("events", batch.size())});
    }
    if (!result.fault_status.ok()) break;
    if (stop_stalled_) {
      result.interrupted = true;
      break;
    }
    if (supervised) {
      Status cs = CheckLanes();
      if (!cs.ok()) {
        result.fault_status = std::move(cs);
        break;
      }
    }
    if (overload_hit &&
        options_.overload_policy == OverloadPolicy::kDegradeSerial) {
      ++fcounters_.overload_stalls;
      if (trace != nullptr) {
        trace->Instant("overload-degrade", obs::TraceWriter::kCoordTid,
                       obs::MonotonicNanos(),
                       {obs::TraceWriter::NumArg("seq", seq)});
      }
      Status ds = DrainAllQueues();
      if (!ds.ok()) {
        result.fault_status = std::move(ds);
        break;
      }
      if (stop_stalled_) {
        result.interrupted = true;
        break;
      }
    }

    const bool ckpt_due = result.checkpoint_status.ok() && seq >= next_ckpt;
    const bool rec_due = seq >= next_rec;
    if (ckpt_due || rec_due) {
      if (supervised) {
        Status bs = BarrierAllSupervised();
        if (!bs.ok()) {
          result.fault_status = std::move(bs);
          break;
        }
      } else if (!BarrierAll()) {
        result.interrupted = true;
        break;
      }
      DrainMerger();
      if (supervised) {
        Status cs = CaptureRecoveryPoints();
        if (!cs.ok()) {
          result.fault_status = std::move(cs);
          ResumeAll();
          break;
        }
      }
      if (ckpt_due) {
        Status s = SaveSnapshotAt(seq);
        if (s.ok()) {
          ++result.checkpoints_written;
          if (tel != nullptr) tel->coord().checkpoints.Add(1);
          result.last_checkpoint_offset = seq;
        } else {
          result.checkpoint_status = std::move(s);
        }
      }
      ResumeAll();
      if (next_ckpt != shard_detail::kNeverDue) {
        while (next_ckpt <= seq) next_ckpt += options_.checkpoint_every;
      }
      if (next_rec != shard_detail::kNeverDue) {
        while (next_rec <= seq) next_rec += options_.recovery_every;
      }
    }
  }

  // Graceful-stop drain + final snapshot, and (supervised) a final health
  // barrier so a worker that died after the last check still gets its ops
  // recovered before the stop tokens go out. A stop-stalled run skips all
  // of it: queued work could not flush, so a snapshot at the stop offset
  // would be inconsistent, and the barrier could never complete.
  const bool want_final_ckpt =
      result.interrupted && !options_.checkpoint_dir.empty() &&
      result.checkpoint_status.ok() &&
      (result.checkpoints_written == 0 ||
       result.last_checkpoint_offset < seq);
  if (result.fault_status.ok() && !stop_stalled_ &&
      (supervised || want_final_ckpt)) {
    Status bs;
    bool arrived = true;
    if (supervised) {
      bs = BarrierAllSupervised();
    } else {
      arrived = BarrierAll();
    }
    if (bs.ok() && arrived) {
      if (want_final_ckpt) {
        DrainMerger();
        Status s = SaveSnapshotAt(seq);
        if (s.ok()) {
          ++result.checkpoints_written;
          if (tel != nullptr) tel->coord().checkpoints.Add(1);
          result.last_checkpoint_offset = seq;
        } else {
          result.checkpoint_status = std::move(s);
        }
      }
      ResumeAll();
    } else if (!bs.ok()) {
      result.fault_status = std::move(bs);
    }
    // !arrived: stop_stalled_ is set; StopWorkers tears down by quarantine.
  }

  StopWorkers();

  DrainMerger();
  merged_ = ComputeMergedStats();
  merged_.fault_injected =
      fault::Injector::Global().fired_count() - fired_at_start_;
  merged_.fault_restarts = fcounters_.restarts;
  merged_.fault_replayed_events = fcounters_.replayed_events;
  merged_.shed_partitions = fcounters_.shed_partitions;
  merged_.shed_events = fcounters_.shed_events;
  merged_.overload_stalls = fcounters_.overload_stalls;
  merged_.pub_batches = rcounters_.pub_batches;
  merged_.ring_full_waits = rcounters_.full_waits;
  {
    // Workers are joined, so their plain spin counters are visible.
    uint64_t spins = rcounters_.spins;
    for (const auto& lane : lanes_) spins += lane->spin_count;
    merged_.ring_spins = spins;
  }
  for (size_t s = 0; s < n; ++s) {
    shard_stats_view_[s] = engines_[s]->stats();
    busy_view_[s] = lanes_[s]->busy_seconds;
  }

  if (options_.collect_outputs) {
    size_t total = 0;
    for (const auto& lane : lanes_) total += lane->outputs.size();
    result.outputs.reserve(total);
    std::vector<size_t> cursor(n, 0);
    for (;;) {
      size_t best = n;
      SeqNum best_seq = std::numeric_limits<SeqNum>::max();
      for (size_t s = 0; s < n; ++s) {
        const auto& outs = lanes_[s]->outputs;
        if (cursor[s] < outs.size() &&
            Traits::OutputSeq(outs[cursor[s]]) < best_seq) {
          best_seq = Traits::OutputSeq(outs[cursor[s]]);
          best = s;
        }
      }
      if (best == n) break;
      // One event's outputs all come from its owner shard, in order.
      auto& outs = lanes_[best]->outputs;
      while (cursor[best] < outs.size() &&
             Traits::OutputSeq(outs[cursor[best]]) == best_seq) {
        result.outputs.push_back(std::move(outs[cursor[best]]));
        ++cursor[best];
      }
    }
  }

  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq - options_.start_offset;
  return result;
}

template <class Traits>
typename Traits::RunResultT ShardedExecutorT<Traits>::Run(
    StreamSource* source) {
  return RunImpl(
      [&]() { return source->BorrowBatch(options_.batch_size); });
}

template <class Traits>
typename Traits::RunResultT ShardedExecutorT<Traits>::RunEvents(
    const std::vector<Event>& events) {
  // The caller's vector is const, and the loop stamps sequence numbers,
  // so slices stage through batch_buf_.
  size_t pos = 0;
  return RunImpl([&]() -> std::span<Event> {
    const size_t count = std::min(options_.batch_size, events.size() - pos);
    batch_buf_.assign(events.begin() + static_cast<ptrdiff_t>(pos),
                      events.begin() + static_cast<ptrdiff_t>(pos + count));
    pos += count;
    return {batch_buf_.data(), count};
  });
}

template <class Traits>
Status ShardedExecutorT<Traits>::Restore(const std::string& path,
                                         uint64_t* stream_offset) {
  std::vector<Engine*> shards;
  shards.reserve(engines_.size());
  for (auto& e : engines_) shards.push_back(e.get());
  EngineStats merged;
  std::string router_state;
  ASEQ_RETURN_NOT_OK(ckpt::RestoreShardedSnapshot(path, shards, stream_offset,
                                                  &merged, &router_state));
  ckpt::Reader router_reader(router_state);
  ASEQ_RETURN_NOT_OK(router_.Restore(&router_reader));
  ASEQ_RETURN_NOT_OK(router_reader.ExpectEnd());
  merged_ = merged;
  options_.start_offset = *stream_offset;
  return Status::OK();
}

}  // namespace exec
}  // namespace aseq

#endif  // ASEQ_EXEC_SHARDED_EXECUTOR_IMPL_H_
