#ifndef ASEQ_EXEC_SHARD_ROUTER_H_
#define ASEQ_EXEC_SHARD_ROUTER_H_

#include <span>
#include <string>
#include <vector>

#include "ckpt/ckpt.h"
#include "common/event.h"
#include "common/status.h"
#include "container/key_interner.h"
#include "plan/admission.h"
#include "query/compiled_query.h"

namespace aseq {
namespace exec {

/// \brief Whether a query's state can be split by GROUP BY key across
/// independent engine twins with byte-identical outputs and stats.
struct ShardPlan {
  bool shardable = false;
  /// Why not, phrased for the CLI's fallback log (empty when shardable).
  std::string reason;
};

/// The fallback matrix (docs/internals.md §11). A query shards iff:
///  - it is partitioned with per-group output (GROUP BY): each group's
///    partitions then share one GROUP BY key value, so hash-routing on
///    that value keeps all state a trigger reads on one shard;
///  - every negated role is constrained by the GROUP BY part (always true
///    for GROUP BY queries — the group part covers every element — but
///    checked, not assumed), so negative instances cannot invalidate
///    partitions on other shards;
///  - the aggregate's cross-partition merge is order-insensitive: COUNT
///    (integer totals), any aggregate over a single-part key (one
///    partition per group, nothing to merge), or MIN/MAX (exact in any
///    order). SUM/AVG over a multi-part key merge a group's partitions in
///    map-iteration order, which resharding cannot reproduce bit-exact.
/// Everything else — ungrouped queries, equivalence-only partitioning,
/// join predicates — falls back to serial with the reason logged.
ShardPlan PlanSharding(const CompiledQuery& query);

/// \brief Routes events to shards with the engine's own compiled admission
/// program (src/plan/), so an event always lands on the shard whose engine
/// twin owns its GROUP BY key — and trigger events are recognized with
/// exactly the condition HpcEngine stages them under (a qualifying positive
/// role at the final position whose partition key extracts).
class ShardRouter {
 public:
  ShardRouter(const CompiledQuery& query, size_t num_shards);

  struct Route {
    /// Owner shard. Events that stage no probe (type not in the pattern,
    /// failed local predicates, missing key attribute) touch no partition
    /// state on any shard; they spread round-robin by seq for balanced
    /// event accounting.
    size_t shard = 0;
    /// True when the event completes the pattern: the serial engine then
    /// purges expired state across *every* partition, so the executor
    /// must send purge markers to the non-owner shards.
    bool trigger = false;
    /// True when the event staged a probe and its GROUP BY key extracted;
    /// key_id then holds the router's dense id for that key. The shed
    /// overload policy drops whole partitions by key_id — events without
    /// a key touch no partition state and are never shed.
    bool has_key = false;
    uint32_t key_id = 0;
    /// Fault injection (point router.route, kind overload): the executor
    /// treats this event as if the owner shard's queue had hit its
    /// high-watermark, engaging the overload policy deterministically.
    bool inject_overload = false;
  };

  /// `e` must carry its final seq number. Single-event path — tests and
  /// shed-oracle replicas use it; the executor's hot path is RouteBatch.
  Route RouteEvent(const Event& e);

  /// \brief Routes a whole borrowed batch in one pass: a vectorized
  /// admission prefilter over the event-type column, one BatchAdmitter
  /// pass for the surviving events, then per-event route assembly. Events
  /// must carry their final seq numbers. The fault point `router.route`
  /// still fires once per *event* (offset semantics are part of the fault
  /// specs' contract), and interning order stays event order, so routes
  /// are identical to per-event RouteEvent calls. The returned span is
  /// valid until the next RouteBatch/RouteEvent call.
  std::span<const Route> RouteBatch(std::span<const Event> batch);

  /// \brief Router state round-trip for sharded snapshots.
  ///
  /// Shard ownership is `interned id % num_shards`, and ids are assigned
  /// in first-routed order — so the interner table is part of the sharded
  /// run's durable state. A restored run must replay the stream suffix
  /// through a router holding the checkpointed table, or previously-seen
  /// keys would re-intern under fresh ids and land on the wrong shards.
  /// The payload is the interner's values in id order.
  void Checkpoint(ckpt::Writer* writer) const;
  Status Restore(ckpt::Reader* reader);

 private:
  const CompiledQuery* query_;
  size_t num_shards_;
  size_t length_;
  size_t group_part_;
  /// Compiled admission program — the *same* lowering the shard engines
  /// run, so "stages a probe" means exactly the same thing on both sides.
  /// Borrows query_'s predicate storage (the query outlives the router).
  plan::AdmissionProgram program_;
  /// Admission scratch. The batch interning pass is NOT used (AdmitBatch
  /// runs with a null interner): the router interns only the GROUP BY part
  /// value, below, and its id order is durable state.
  plan::BatchAdmitter admitter_;
  /// Per-batch type-relevance bitmask (RouteBatch only).
  plan::BatchPrefilter prefilter_;
  /// RouteBatch scratch, clear-not-shrink.
  std::vector<Route> routes_;
  /// GROUP BY values → dense ids, in first-routed order. Independent of
  /// any engine-side interner: routing only needs its *own* ids to be
  /// stable, and shard engines never see them.
  container::KeyInterner interner_;
};

/// \brief Whether a *workload's* combined state can be split by GROUP BY
/// key across independent multi-query engine twins, bit-exact.
struct MultiShardPlan {
  bool shardable = false;
  /// Why not, phrased for the CLI's fallback log (empty when shardable).
  std::string reason;
};

/// A workload shards iff every query shards on its own (PlanSharding) AND
/// every query groups by the same attribute: a multi-query event lands on
/// exactly one shard, so all queries' partition keys must derive from the
/// same event attribute — otherwise one query's partitions for a key would
/// scatter across shards chosen by another query's key.
MultiShardPlan PlanMultiSharding(std::span<const CompiledQuery> queries);

/// \brief Multi-query router: one compiled admission program per workload
/// query over one shared key interner. An event's owner shard is fixed by
/// the (common) GROUP BY attribute value; the route also carries which
/// queries the event completes, so purge markers replay exactly the
/// per-query purges the serial multi-engine would perform at that trigger.
class MultiShardRouter {
 public:
  MultiShardRouter(std::span<const CompiledQuery> queries, size_t num_shards);

  struct Route {
    /// Owner shard (seq round-robin when no query stages a probe).
    size_t shard = 0;
    /// True when some query staged a probe and the GROUP BY key extracted;
    /// key_id then holds the router's dense id for that key.
    bool has_key = false;
    uint32_t key_id = 0;
    /// Fault injection (point router.route, kind overload).
    bool inject_overload = false;
    /// Ascending workload indexes of the windowed queries this event
    /// completes — the serial engine purges those queries' expired state
    /// at this event, so non-owner shards get a marker carrying the set.
    /// Unbounded queries never appear (nothing of theirs expires).
    std::vector<size_t> trigger_queries;
  };

  /// `e` must carry its final seq number. The returned reference is
  /// invalidated by the next RouteEvent call (the route's trigger vector
  /// is reused scratch). Single-event path; the executor uses RouteBatch.
  const Route& RouteEvent(const Event& e);

  /// \brief Batched routing: per-event `router.route` fault hits in seq
  /// order first, then one prefiltered BatchAdmitter pass per workload
  /// query — a query with no relevant event in the batch is skipped
  /// entirely. Interning is query-major over the batch (all of query 0's
  /// records, then query 1's, ...): a different — but equally
  /// deterministic — first-seen id order than the event-major single-event
  /// path, self-consistent within a run and across its checkpoints, and
  /// irrelevant to outputs (any deterministic placement merges back
  /// bit-exact). The returned span is valid until the next RouteBatch
  /// call.
  std::span<const Route> RouteBatch(std::span<const Event> batch);

  /// Same contract as ShardRouter::Checkpoint/Restore: the shared
  /// interner's values in id order are the router's durable state.
  void Checkpoint(ckpt::Writer* writer) const;
  Status Restore(ckpt::Reader* reader);

 private:
  struct PerQuery {
    size_t length = 0;
    size_t group_part = 0;
    bool windowed = false;
    /// Borrows the query's predicate storage (the workload outlives the
    /// router — MakeMultiPolicy guarantees it).
    plan::AdmissionProgram program;
  };

  size_t num_shards_;
  std::vector<PerQuery> queries_;
  plan::BatchAdmitter admitter_;
  plan::BatchPrefilter prefilter_;
  container::KeyInterner interner_;
  Route route_;  // reused across calls (clear-not-shrink)
  std::vector<Route> routes_;  // RouteBatch scratch, clear-not-shrink
};

}  // namespace exec
}  // namespace aseq

#endif  // ASEQ_EXEC_SHARD_ROUTER_H_
