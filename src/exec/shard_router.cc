#include "exec/shard_router.h"

#include <cassert>
#include <cstdlib>

#include "fault/fault.h"

namespace aseq {
namespace exec {

ShardPlan PlanSharding(const CompiledQuery& query) {
  ShardPlan plan;
  if (query.has_join_predicates()) {
    plan.reason =
        "query has join predicates: only match-constructing engines "
        "support them, and those do not shard";
    return plan;
  }
  if (!query.partitioned()) {
    plan.reason =
        "query has no GROUP BY or equivalence partitioning: all events "
        "share one counter set";
    return plan;
  }
  const PartitionSpec& spec = query.partition_spec();
  if (!spec.per_group_output) {
    plan.reason =
        "query partitions by equivalence only (no GROUP BY): triggers "
        "aggregate across every partition, which sharding would split";
    return plan;
  }
  assert(spec.group_part >= 0);
  const PartitionSpec::Part& group =
      spec.parts[static_cast<size_t>(spec.group_part)];
  for (const auto& [type, roles] : query.roles()) {
    (void)type;
    for (const Role& role : roles) {
      if (!role.negated) continue;
      if (role.elem_index >= group.covers_elem.size() ||
          !group.covers_elem[role.elem_index]) {
        plan.reason =
            "a negated element is not constrained by the GROUP BY "
            "attribute: negative instances would invalidate partitions "
            "across shards";
        return plan;
      }
    }
  }
  const AggFunc f = query.agg().func;
  if (f != AggFunc::kCount && spec.parts.size() > 1 && f != AggFunc::kMin &&
      f != AggFunc::kMax) {
    plan.reason =
        "AGG SUM/AVG over a multi-part partition key merges a group's "
        "partitions in map-iteration order at trigger time; resharding "
        "cannot reproduce that floating-point order bit-exact";
    return plan;
  }
  plan.shardable = true;
  return plan;
}

ShardRouter::ShardRouter(const CompiledQuery& query, size_t num_shards)
    : query_(&query),
      num_shards_(num_shards),
      length_(query.num_positive()),
      group_part_(static_cast<size_t>(query.partition_spec().group_part)),
      program_(query) {
  assert(num_shards_ > 0);
  assert(query.partition_spec().per_group_output);
}

ShardRouter::Route ShardRouter::RouteEvent(const Event& e) {
  Route route;
  if (fault::Injector::Global().armed()) {
    if (auto fired = fault::Injector::Global().Hit(fault::Point::kRouterRoute)) {
      if (fired->kind == fault::Kind::kCrash) {
        // Coordinator death: the process is gone; recovery is the
        // restore-from-snapshot path, exercised by the CI fault smoke.
        std::_Exit(fault::kCrashExitCode);
      }
      if (fired->kind == fault::Kind::kOverload) route.inject_overload = true;
    }
  }
  route.shard = static_cast<size_t>(e.seq() % num_shards_);
  // Exactly HpcEngine's staging condition: a record exists iff the local
  // predicates pass and the partition key extracts. No interner is passed —
  // the router speaks its *own* id space, interned below.
  admitter_.AdmitBatch(program_, std::span<const Event>(&e, 1),
                       /*interner=*/nullptr, /*stats=*/nullptr);
  bool has_key = false;
  for (const plan::AdmissionRecord& rec : admitter_.RecordsFor(0)) {
    if (!has_key) {
      has_key = true;
      route.has_key = true;
      // Every role extracts the same GROUP BY part value (it comes from
      // the event's own attribute; sharding requires the group part to
      // cover every element), so the first staged record fixes the owner
      // shard. Interning gives a dense id per distinct key, so
      // `id % num_shards` spreads keys round-robin in first-seen order —
      // immune to hash clustering — at the cost of making the table part
      // of the checkpointed router state (see Checkpoint).
      route.key_id = interner_.InternHashed(rec.part_hashes[group_part_],
                                            *rec.part_vals[group_part_]);
      route.shard = route.key_id % num_shards_;
    }
    const Role& role = rec.role->role;
    if (!role.negated && role.position == length_) {
      route.trigger = true;
      break;  // shard already fixed; nothing left to learn
    }
  }
  return route;
}

std::span<const ShardRouter::Route> ShardRouter::RouteBatch(
    std::span<const Event> batch) {
  routes_.assign(batch.size(), Route{});
  // One columnar relevance pass + one admission pass for the whole batch
  // (the prefilter skips the role-table walk for events the query cannot
  // see), instead of a BatchAdmitter call per event.
  prefilter_.Scan(program_, batch);
  admitter_.AdmitBatch(program_, batch, /*interner=*/nullptr,
                       /*stats=*/nullptr, &prefilter_);
  const bool armed = fault::Injector::Global().armed();
  for (size_t i = 0; i < batch.size(); ++i) {
    Route& route = routes_[i];
    if (armed) {
      // Per *event*, not per batch: fault-spec offsets count routed events.
      if (auto fired =
              fault::Injector::Global().Hit(fault::Point::kRouterRoute)) {
        if (fired->kind == fault::Kind::kCrash) {
          std::_Exit(fault::kCrashExitCode);
        }
        if (fired->kind == fault::Kind::kOverload) route.inject_overload = true;
      }
    }
    route.shard = static_cast<size_t>(batch[i].seq() % num_shards_);
    for (const plan::AdmissionRecord& rec : admitter_.RecordsFor(i)) {
      if (!route.has_key) {
        route.has_key = true;
        // Interning runs in event order across the batch — identical id
        // assignment to the per-event path (see RouteEvent).
        route.key_id = interner_.InternHashed(rec.part_hashes[group_part_],
                                              *rec.part_vals[group_part_]);
        route.shard = route.key_id % num_shards_;
      }
      const Role& role = rec.role->role;
      if (!role.negated && role.position == length_) {
        route.trigger = true;
        break;
      }
    }
  }
  return routes_;
}

void ShardRouter::Checkpoint(ckpt::Writer* writer) const {
  writer->WriteU64(interner_.size());
  for (const Value& v : interner_.values()) ckpt::WriteValue(writer, v);
}

Status ShardRouter::Restore(ckpt::Reader* reader) {
  uint64_t n = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n, 1, "router interned values"));
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    ASEQ_RETURN_NOT_OK(ckpt::ReadValue(reader, &v));
    values.push_back(std::move(v));
  }
  if (!interner_.RestoreFromValues(std::move(values))) {
    return Status::ParseError(
        "snapshot corrupt: duplicate value in router interner table");
  }
  return Status::OK();
}

MultiShardPlan PlanMultiSharding(std::span<const CompiledQuery> queries) {
  MultiShardPlan plan;
  if (queries.empty()) {
    plan.reason = "workload is empty: nothing to shard";
    return plan;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    ShardPlan single = PlanSharding(queries[i]);
    if (!single.shardable) {
      plan.reason = "query " + std::to_string(i) + ": " + single.reason;
      return plan;
    }
  }
  // One event lands on exactly one shard, so every query's key must derive
  // from the same event attribute; otherwise query A's hash placement
  // would scatter query B's partitions for one B-key across shards.
  const PartitionSpec& first = queries[0].partition_spec();
  const AttrId group_attr =
      first.parts[static_cast<size_t>(first.group_part)].attr;
  for (size_t i = 1; i < queries.size(); ++i) {
    const PartitionSpec& spec = queries[i].partition_spec();
    if (spec.parts[static_cast<size_t>(spec.group_part)].attr != group_attr) {
      plan.reason =
          "queries group by different attributes ('" +
          first.parts[static_cast<size_t>(first.group_part)].attr_name +
          "' vs '" +
          spec.parts[static_cast<size_t>(spec.group_part)].attr_name +
          "' in query " + std::to_string(i) +
          "): one event cannot land on every query's owner shard at once";
      return plan;
    }
  }
  plan.shardable = true;
  return plan;
}

MultiShardRouter::MultiShardRouter(std::span<const CompiledQuery> queries,
                                   size_t num_shards)
    : num_shards_(num_shards) {
  assert(num_shards_ > 0);
  queries_.reserve(queries.size());
  for (const CompiledQuery& q : queries) {
    assert(q.partition_spec().per_group_output);
    queries_.push_back(
        PerQuery{q.num_positive(),
                 static_cast<size_t>(q.partition_spec().group_part),
                 q.has_window(), plan::AdmissionProgram(q)});
  }
}

const MultiShardRouter::Route& MultiShardRouter::RouteEvent(const Event& e) {
  Route& route = route_;
  route.has_key = false;
  route.key_id = 0;
  route.inject_overload = false;
  route.trigger_queries.clear();
  if (fault::Injector::Global().armed()) {
    if (auto fired = fault::Injector::Global().Hit(fault::Point::kRouterRoute)) {
      if (fired->kind == fault::Kind::kCrash) {
        std::_Exit(fault::kCrashExitCode);
      }
      if (fired->kind == fault::Kind::kOverload) route.inject_overload = true;
    }
  }
  route.shard = static_cast<size_t>(e.seq() % num_shards_);
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    PerQuery& pq = queries_[qi];
    admitter_.AdmitBatch(pq.program, std::span<const Event>(&e, 1),
                         /*interner=*/nullptr, /*stats=*/nullptr);
    bool triggered = false;
    for (const plan::AdmissionRecord& rec : admitter_.RecordsFor(0)) {
      if (!route.has_key) {
        // Every query keys on the same attribute (PlanMultiSharding), so
        // the first staged record of the event — whichever query it came
        // from — fixes the one owner shard, and the part hash is a pure
        // function of the value (ValueHash), identical across programs.
        route.has_key = true;
        route.key_id = interner_.InternHashed(rec.part_hashes[pq.group_part],
                                              *rec.part_vals[pq.group_part]);
        route.shard = route.key_id % num_shards_;
      }
      const Role& role = rec.role->role;
      if (!role.negated && role.position == pq.length) {
        triggered = true;
        break;  // key already fixed (every staged record extracts it)
      }
    }
    if (triggered && pq.windowed) route.trigger_queries.push_back(qi);
  }
  return route_;
}

std::span<const MultiShardRouter::Route> MultiShardRouter::RouteBatch(
    std::span<const Event> batch) {
  // Reset the route scratch in place (trigger vectors keep their capacity).
  routes_.resize(batch.size());
  const bool armed = fault::Injector::Global().armed();
  for (size_t i = 0; i < batch.size(); ++i) {
    Route& route = routes_[i];
    route.has_key = false;
    route.key_id = 0;
    route.inject_overload = false;
    route.trigger_queries.clear();
    if (armed) {
      // Per *event*, in seq order, before any admission — fault-spec
      // offsets count routed events exactly as the per-event path did.
      if (auto fired =
              fault::Injector::Global().Hit(fault::Point::kRouterRoute)) {
        if (fired->kind == fault::Kind::kCrash) {
          std::_Exit(fault::kCrashExitCode);
        }
        if (fired->kind == fault::Kind::kOverload) route.inject_overload = true;
      }
    }
    route.shard = static_cast<size_t>(batch[i].seq() % num_shards_);
  }
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    PerQuery& pq = queries_[qi];
    // Whole-query early-out: a batch with no event of any type the query
    // plays is invisible to it — skip its admission pass entirely.
    if (prefilter_.Scan(pq.program, batch) == 0) continue;
    admitter_.AdmitBatch(pq.program, batch, /*interner=*/nullptr,
                         /*stats=*/nullptr, &prefilter_);
    for (size_t i = 0; i < batch.size(); ++i) {
      Route& route = routes_[i];
      bool triggered = false;
      for (const plan::AdmissionRecord& rec : admitter_.RecordsFor(i)) {
        if (!route.has_key) {
          // Every query keys on the same attribute (PlanMultiSharding), so
          // whichever query stages the event's first record fixes the one
          // owner shard. Batched interning is query-major — a different
          // deterministic first-seen order than RouteEvent's event-major
          // one (see the header comment), equally valid for placement.
          route.has_key = true;
          route.key_id = interner_.InternHashed(rec.part_hashes[pq.group_part],
                                                *rec.part_vals[pq.group_part]);
          route.shard = route.key_id % num_shards_;
        }
        const Role& role = rec.role->role;
        if (!role.negated && role.position == pq.length) {
          triggered = true;
          break;  // key already fixed (every staged record extracts it)
        }
      }
      if (triggered && pq.windowed) route.trigger_queries.push_back(qi);
    }
  }
  return routes_;
}

void MultiShardRouter::Checkpoint(ckpt::Writer* writer) const {
  writer->WriteU64(interner_.size());
  for (const Value& v : interner_.values()) ckpt::WriteValue(writer, v);
}

Status MultiShardRouter::Restore(ckpt::Reader* reader) {
  uint64_t n = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n, 1, "router interned values"));
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    ASEQ_RETURN_NOT_OK(ckpt::ReadValue(reader, &v));
    values.push_back(std::move(v));
  }
  if (!interner_.RestoreFromValues(std::move(values))) {
    return Status::ParseError(
        "snapshot corrupt: duplicate value in router interner table");
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace aseq
