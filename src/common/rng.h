#ifndef ASEQ_COMMON_RNG_H_
#define ASEQ_COMMON_RNG_H_

#include <cstdint>

namespace aseq {

/// \brief Deterministic xoshiro256** pseudo-random generator.
///
/// Used by every workload generator so that streams, tests, and benchmarks
/// are exactly reproducible across platforms and standard-library versions
/// (std::mt19937 distributions are not portable across implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t* s = state_;
    const uint64_t result = Rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUInt(uint64_t n) {
    // Lemire-style rejection-free-enough reduction; bias is negligible for
    // the small ranges used by workload generators.
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextUInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace aseq

#endif  // ASEQ_COMMON_RNG_H_
