#ifndef ASEQ_COMMON_HASH_MIX_H_
#define ASEQ_COMMON_HASH_MIX_H_

#include <cstddef>
#include <cstdint>

namespace aseq {

/// \brief 64-bit avalanching finalizer (MurmurHash3 fmix64).
///
/// Open addressing needs every input bit to influence every output bit:
/// the probe start is taken from the high bits and the 7-bit control tag
/// from the low bits, so the identity-like std::hash<int64_t> of libstdc++
/// (fine for chained buckets) would cluster sequential keys into one probe
/// chain and collide every tag. All flat-store hashing funnels through
/// this finalizer; tests/hash_distribution_test.cc smoke-tests the
/// avalanche and bucket spread.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combiner for composite keys: fold `value` into `seed`
/// and re-avalanche, so part order matters and no part can cancel another.
inline uint64_t HashCombine64(uint64_t seed, uint64_t value) {
  return HashMix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                           (seed >> 2)));
}

}  // namespace aseq

#endif  // ASEQ_COMMON_HASH_MIX_H_
