#ifndef ASEQ_COMMON_SCHEMA_H_
#define ASEQ_COMMON_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace aseq {

/// Dense id of an event type within a Schema.
using EventTypeId = uint32_t;
/// Dense id of an attribute name within a Schema.
using AttrId = uint32_t;

/// Sentinel for "no such type/attribute".
inline constexpr EventTypeId kInvalidEventType = UINT32_MAX;
inline constexpr AttrId kInvalidAttr = UINT32_MAX;

/// \brief Catalog of event types and attribute names.
///
/// Interns names to dense integer ids so the per-event hot paths (pattern
/// position lookup, predicate evaluation) never compare strings. Events are
/// schemaless beyond their type: any attribute may appear on any event; the
/// Schema only provides the name<->id mapping.
///
/// Registration is idempotent: registering an existing name returns the
/// existing id.
class Schema {
 public:
  Schema() = default;

  /// Registers (or looks up) an event type by name and returns its id.
  EventTypeId RegisterEventType(std::string_view name);

  /// Registers (or looks up) an attribute by name and returns its id.
  AttrId RegisterAttribute(std::string_view name);

  /// Looks up an event type id; error if the name was never registered.
  Result<EventTypeId> FindEventType(std::string_view name) const;

  /// Looks up an attribute id; error if the name was never registered.
  Result<AttrId> FindAttribute(std::string_view name) const;

  /// Name of a registered event type; "?" for invalid ids.
  const std::string& EventTypeName(EventTypeId id) const;

  /// Name of a registered attribute; "?" for invalid ids.
  const std::string& AttributeName(AttrId id) const;

  size_t num_event_types() const { return type_names_.size(); }
  size_t num_attributes() const { return attr_names_.size(); }

 private:
  std::unordered_map<std::string, EventTypeId> type_ids_;
  std::vector<std::string> type_names_;
  std::unordered_map<std::string, AttrId> attr_ids_;
  std::vector<std::string> attr_names_;
};

}  // namespace aseq

#endif  // ASEQ_COMMON_SCHEMA_H_
