#ifndef ASEQ_COMMON_STRING_UTIL_H_
#define ASEQ_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace aseq {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Joins pieces with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Upper-cases ASCII letters.
std::string ToUpperAscii(std::string_view s);

}  // namespace aseq

#endif  // ASEQ_COMMON_STRING_UTIL_H_
