#ifndef ASEQ_COMMON_VALUE_H_
#define ASEQ_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace aseq {

/// \brief Runtime type of an attribute value.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// \brief Dynamically typed attribute value carried by events.
///
/// Values are small, copyable, ordered within a type, hashable, and
/// printable. Cross-type numeric comparison (int64 vs double) compares the
/// numeric magnitudes; comparing a number to a string or null is always
/// "unordered" and yields false for every relational operator except `!=`.
class Value {
 public:
  /// Constructs a null value.
  Value() : rep_(std::monostate{}) {}
  Value(int64_t v) : rep_(v) {}             // NOLINT(runtime/explicit)
  Value(int v) : rep_(int64_t{v}) {}        // NOLINT(runtime/explicit)
  Value(double v) : rep_(v) {}              // NOLINT(runtime/explicit)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const {
    switch (rep_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  /// Accessors assume the matching type; call only after checking type().
  int64_t AsInt64() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric value widened to double; 0.0 for non-numeric values.
  double ToDouble() const;

  /// Equality: numerics compare by magnitude across int64/double; other
  /// cross-type comparisons are unequal. Null equals only null.
  bool Equals(const Value& other) const;

  /// Strict-weak "less than" for same-kind values (numeric vs numeric or
  /// string vs string). Returns false for unordered combinations.
  bool LessThan(const Value& other) const;

  /// True when the two values are comparable with relational operators.
  bool ComparableWith(const Value& other) const;

  std::size_t Hash() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
  friend bool operator!=(const Value& a, const Value& b) { return !a.Equals(b); }

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

/// Hash functor so Value can key unordered containers.
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Deterministic total order across value kinds (null < numeric < string),
/// consistent with Equals within each kind; for ordered containers.
struct ValueTotalLess {
  static int Rank(const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  }
  bool operator()(const Value& a, const Value& b) const {
    int ra = Rank(a), rb = Rank(b);
    if (ra != rb) return ra < rb;
    if (ra == 1) return a.ToDouble() < b.ToDouble();
    if (ra == 2) return a.AsString() < b.AsString();
    return false;
  }
};

}  // namespace aseq

#endif  // ASEQ_COMMON_VALUE_H_
