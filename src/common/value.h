#ifndef ASEQ_COMMON_VALUE_H_
#define ASEQ_COMMON_VALUE_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/hash_mix.h"

namespace aseq {

/// \brief Runtime type of an attribute value.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// \brief Dynamically typed attribute value carried by events.
///
/// Values are small, copyable, ordered within a type, hashable, and
/// printable. Cross-type numeric comparison (int64 vs double) compares the
/// numeric magnitudes; comparing a number to a string or null is always
/// "unordered" and yields false for every relational operator except `!=`.
class Value {
 public:
  /// Constructs a null value.
  Value() : rep_(std::monostate{}) {}
  Value(int64_t v) : rep_(v) {}             // NOLINT(runtime/explicit)
  Value(int v) : rep_(int64_t{v}) {}        // NOLINT(runtime/explicit)
  Value(double v) : rep_(v) {}              // NOLINT(runtime/explicit)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const {
    switch (rep_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  /// Accessors assume the matching type; call only after checking type().
  /// get_if instead of get: the admission opcodes sit on these, and get's
  /// bad_variant_access throw path is a branch they never need.
  int64_t AsInt64() const { return *std::get_if<int64_t>(&rep_); }
  double AsDouble() const { return *std::get_if<double>(&rep_); }
  const std::string& AsString() const { return *std::get_if<std::string>(&rep_); }

  // The comparison/hash kernel is inline: admission evaluates these on
  // every event, and the call overhead measurably outweighed the bodies.

  /// Numeric value widened to double; 0.0 for non-numeric values.
  double ToDouble() const {
    switch (type()) {
      case ValueType::kInt64:
        return static_cast<double>(AsInt64());
      case ValueType::kDouble:
        return AsDouble();
      default:
        return 0.0;
    }
  }

  /// Equality: numerics compare by magnitude across int64/double; other
  /// cross-type comparisons are unequal. Null equals only null.
  bool Equals(const Value& other) const {
    if (is_numeric() && other.is_numeric()) {
      if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
        return AsInt64() == other.AsInt64();
      }
      return ToDouble() == other.ToDouble();
    }
    if (type() != other.type()) return false;
    switch (type()) {
      case ValueType::kNull:
        return true;
      case ValueType::kString:
        return AsString() == other.AsString();
      default:
        return false;  // unreachable; numerics handled above
    }
  }

  /// Strict-weak "less than" for same-kind values (numeric vs numeric or
  /// string vs string). Returns false for unordered combinations.
  bool LessThan(const Value& other) const {
    if (is_numeric() && other.is_numeric()) {
      if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
        return AsInt64() < other.AsInt64();
      }
      return ToDouble() < other.ToDouble();
    }
    if (type() == ValueType::kString && other.type() == ValueType::kString) {
      return AsString() < other.AsString();
    }
    return false;
  }

  /// True when the two values are comparable with relational operators.
  bool ComparableWith(const Value& other) const {
    if (is_numeric() && other.is_numeric()) return true;
    return type() == ValueType::kString && other.type() == ValueType::kString;
  }

  std::size_t Hash() const {
    // Every case runs through the HashMix64 avalanche: the open-addressing
    // flat tables (src/container/) slice this hash into a probe start (high
    // bits) and a 7-bit tag (low bits), and libstdc++'s identity-like
    // std::hash<int64_t> would cluster sequential ids into one probe chain.
    switch (type()) {
      case ValueType::kNull:
        return HashMix64(0x9e3779b97f4a7c15ULL);
      case ValueType::kInt64:
        return HashMix64(static_cast<uint64_t>(AsInt64()));
      case ValueType::kDouble: {
        // Hash integral doubles like the equal int64 so Equals/Hash agree.
        double d = AsDouble();
        double i;
        if (std::modf(d, &i) == 0.0 && i >= -9.2e18 && i <= 9.2e18) {
          return HashMix64(static_cast<uint64_t>(static_cast<int64_t>(i)));
        }
        return HashMix64(std::hash<double>()(d));
      }
      case ValueType::kString:
        return HashMix64(std::hash<std::string>()(AsString()));
    }
    return 0;
  }

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
  friend bool operator!=(const Value& a, const Value& b) { return !a.Equals(b); }

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

/// Hash functor so Value can key unordered containers.
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Deterministic total order across value kinds (null < numeric < string),
/// consistent with Equals within each kind; for ordered containers.
struct ValueTotalLess {
  static int Rank(const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  }
  bool operator()(const Value& a, const Value& b) const {
    int ra = Rank(a), rb = Rank(b);
    if (ra != rb) return ra < rb;
    if (ra == 1) return a.ToDouble() < b.ToDouble();
    if (ra == 2) return a.AsString() < b.AsString();
    return false;
  }
};

}  // namespace aseq

#endif  // ASEQ_COMMON_VALUE_H_
