#include "common/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash_mix.h"

namespace aseq {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}


std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

}  // namespace aseq
