#include "common/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash_mix.h"

namespace aseq {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

double Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return 0.0;
  }
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      return AsInt64() == other.AsInt64();
    }
    return ToDouble() == other.ToDouble();
  }
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kString:
      return AsString() == other.AsString();
    default:
      return false;  // unreachable; numerics handled above
  }
}

bool Value::ComparableWith(const Value& other) const {
  if (is_numeric() && other.is_numeric()) return true;
  return type() == ValueType::kString && other.type() == ValueType::kString;
}

bool Value::LessThan(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      return AsInt64() < other.AsInt64();
    }
    return ToDouble() < other.ToDouble();
  }
  if (type() == ValueType::kString && other.type() == ValueType::kString) {
    return AsString() < other.AsString();
  }
  return false;
}

std::size_t Value::Hash() const {
  // Every case runs through the HashMix64 avalanche: the open-addressing
  // flat tables (src/container/) slice this hash into a probe start (high
  // bits) and a 7-bit tag (low bits), and libstdc++'s identity-like
  // std::hash<int64_t> would cluster sequential ids into one probe chain.
  switch (type()) {
    case ValueType::kNull:
      return HashMix64(0x9e3779b97f4a7c15ULL);
    case ValueType::kInt64:
      return HashMix64(static_cast<uint64_t>(AsInt64()));
    case ValueType::kDouble: {
      // Hash integral doubles like the equal int64 so Equals/Hash agree.
      double d = AsDouble();
      double i;
      if (std::modf(d, &i) == 0.0 && i >= -9.2e18 && i <= 9.2e18) {
        return HashMix64(static_cast<uint64_t>(static_cast<int64_t>(i)));
      }
      return HashMix64(std::hash<double>()(d));
    }
    case ValueType::kString:
      return HashMix64(std::hash<std::string>()(AsString()));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

}  // namespace aseq
