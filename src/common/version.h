#ifndef ASEQ_COMMON_VERSION_H_
#define ASEQ_COMMON_VERSION_H_

namespace aseq {

/// Library version (semantic versioning).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

/// The paper this library reproduces.
inline constexpr const char* kPaperCitation =
    "Qi, Cao, Ray, Rundensteiner. Complex Event Analytics: Online "
    "Aggregation of Stream Sequence Patterns. SIGMOD 2014.";

}  // namespace aseq

#endif  // ASEQ_COMMON_VERSION_H_
