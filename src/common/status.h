#ifndef ASEQ_COMMON_STATUS_H_
#define ASEQ_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace aseq {

/// \brief Error category of a Status.
///
/// The library does not throw exceptions from its public API; fallible
/// operations return Status or Result<T> (Arrow / RocksDB idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kIoError,
  kInternal,
};

/// \brief Returns a human-readable name of the status code ("InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: either OK or a code plus message.
///
/// Cheap to copy in the OK case (no allocation); error construction allocates
/// only for the message string.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for an OK status; reads better at call sites than `Status()`.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return 42;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status: `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out of the Result.
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the current function.
#define ASEQ_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::aseq::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Evaluates a Result-producing expression, assigning the value on success
/// and returning the error Status otherwise.
#define ASEQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define ASEQ_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define ASEQ_ASSIGN_OR_RETURN_NAME(x, y) ASEQ_ASSIGN_OR_RETURN_CONCAT(x, y)

#define ASEQ_ASSIGN_OR_RETURN(lhs, expr) \
  ASEQ_ASSIGN_OR_RETURN_IMPL(            \
      ASEQ_ASSIGN_OR_RETURN_NAME(_aseq_result_, __LINE__), lhs, expr)

}  // namespace aseq

#endif  // ASEQ_COMMON_STATUS_H_
