#include "common/event.h"

namespace aseq {

void Event::SetAttr(AttrId attr, Value value) {
  for (auto& kv : attrs_) {
    if (kv.first == attr) {
      kv.second = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(attr, std::move(value));
}

std::string Event::ToString(const Schema& schema) const {
  std::string out = schema.EventTypeName(type_);
  out += "@";
  out += std::to_string(ts_);
  if (!attrs_.empty()) {
    out += "{";
    bool first = true;
    for (const auto& kv : attrs_) {
      if (!first) out += ",";
      first = false;
      out += schema.AttributeName(kv.first);
      out += "=";
      out += kv.second.ToString();
    }
    out += "}";
  }
  return out;
}

}  // namespace aseq
