#include "common/schema.h"

namespace aseq {

namespace {
const std::string kUnknownName = "?";
}  // namespace

EventTypeId Schema::RegisterEventType(std::string_view name) {
  auto it = type_ids_.find(std::string(name));
  if (it != type_ids_.end()) return it->second;
  EventTypeId id = static_cast<EventTypeId>(type_names_.size());
  type_names_.emplace_back(name);
  type_ids_.emplace(type_names_.back(), id);
  return id;
}

AttrId Schema::RegisterAttribute(std::string_view name) {
  auto it = attr_ids_.find(std::string(name));
  if (it != attr_ids_.end()) return it->second;
  AttrId id = static_cast<AttrId>(attr_names_.size());
  attr_names_.emplace_back(name);
  attr_ids_.emplace(attr_names_.back(), id);
  return id;
}

Result<EventTypeId> Schema::FindEventType(std::string_view name) const {
  auto it = type_ids_.find(std::string(name));
  if (it == type_ids_.end()) {
    return Status::NotFound("unknown event type: " + std::string(name));
  }
  return it->second;
}

Result<AttrId> Schema::FindAttribute(std::string_view name) const {
  auto it = attr_ids_.find(std::string(name));
  if (it == attr_ids_.end()) {
    return Status::NotFound("unknown attribute: " + std::string(name));
  }
  return it->second;
}

const std::string& Schema::EventTypeName(EventTypeId id) const {
  if (id >= type_names_.size()) return kUnknownName;
  return type_names_[id];
}

const std::string& Schema::AttributeName(AttrId id) const {
  if (id >= attr_names_.size()) return kUnknownName;
  return attr_names_[id];
}

}  // namespace aseq
