#ifndef ASEQ_COMMON_EVENT_H_
#define ASEQ_COMMON_EVENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace aseq {

/// Event occurrence time in milliseconds. The paper assumes in-order arrival;
/// engines treat the stream order as the timestamp order (strict `<` in
/// Eq. 1 is enforced via the arrival sequence number for ties).
using Timestamp = int64_t;

/// Monotone arrival sequence number, assigned by the feeding runtime.
using SeqNum = uint64_t;

/// \brief A single event instance: a type, a timestamp, and attributes.
///
/// Attributes are stored as a small flat vector of (AttrId, Value) pairs;
/// events in CEP workloads carry a handful of attributes, for which a linear
/// scan beats hashing.
class Event {
 public:
  Event() = default;
  Event(EventTypeId type, Timestamp ts) : type_(type), ts_(ts) {}

  EventTypeId type() const { return type_; }
  Timestamp ts() const { return ts_; }
  SeqNum seq() const { return seq_; }

  void set_type(EventTypeId type) { type_ = type; }
  void set_ts(Timestamp ts) { ts_ = ts; }
  void set_seq(SeqNum seq) { seq_ = seq; }

  /// Sets (or overwrites) an attribute value.
  void SetAttr(AttrId attr, Value value);

  /// Returns the attribute value, or nullptr if absent. Inline: this is
  /// the single hottest call of the admission path (a few compares over a
  /// tiny flat vector — the call overhead used to cost more than the scan).
  const Value* FindAttr(AttrId attr) const {
    for (const auto& kv : attrs_) {
      if (kv.first == attr) return &kv.second;
    }
    return nullptr;
  }

  /// Returns the attribute value, or a null Value if absent.
  const Value& GetAttr(AttrId attr) const {
    static const Value kNull;
    const Value* v = FindAttr(attr);
    return v != nullptr ? *v : kNull;
  }

  const std::vector<std::pair<AttrId, Value>>& attrs() const { return attrs_; }

  /// Debug rendering: "Type@ts{attr=value,...}" using names from `schema`.
  std::string ToString(const Schema& schema) const;

 private:
  EventTypeId type_ = kInvalidEventType;
  Timestamp ts_ = 0;
  SeqNum seq_ = 0;
  std::vector<std::pair<AttrId, Value>> attrs_;
};

}  // namespace aseq

#endif  // ASEQ_COMMON_EVENT_H_
