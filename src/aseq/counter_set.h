#ifndef ASEQ_ASEQ_COUNTER_SET_H_
#define ASEQ_ASEQ_COUNTER_SET_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>

#include "aseq/prefix_counter.h"
#include "common/event.h"
#include "common/status.h"
#include "metrics/metrics.h"

namespace aseq {

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

/// \brief The live prefix-counter state of one (sub)stream.
///
/// Two modes, matching Sec. 3.1 vs Sec. 3.2:
///
///  * **Unbounded (DPC)** — `window_ms == 0`: a single PreCntr; START
///    arrivals increment cell 1 (Fig. 3). Nothing ever expires.
///  * **Windowed (SEM)** — `window_ms > 0`: one PreCntr per live START
///    instance, marked with its expiration timestamp
///    `exp = arrival + window` (Fig. 5). Cell 1 of a per-start counter is
///    its own start (count 1) and UPD/negation arrivals touch every live
///    counter. Expired counters are purged from the front (starts expire in
///    arrival order), pre-isolating each start's influence so no per-match
///    bookkeeping is ever needed (Lemma 3/4).
///
/// Object accounting: one live object per PreCntr, as the paper measures
/// memory (Sec. 6.1). Work accounting: one unit per counter-cell update.
class CounterSet {
 public:
  /// \param stats optional sink for work/object accounting (may be null).
  CounterSet(size_t length, AggFunc func, size_t carrier_pos1,
             Timestamp window_ms, EngineStats* stats);
  ~CounterSet();

  CounterSet(CounterSet&&) noexcept;
  CounterSet& operator=(CounterSet&&) = delete;
  CounterSet(const CounterSet&) = delete;
  CounterSet& operator=(const CounterSet&) = delete;

  /// Purges counters whose start has expired at `now` (exp <= now).
  void Purge(Timestamp now);

  /// START arrival: creates a per-start counter (SEM) or increments cell 1
  /// (DPC). `value` is the carrier attribute value when the carrier is
  /// position 1.
  void OnStart(const Event& e, double value = 0);

  /// UPD/TRIG arrival at 1-based position `pos` >= 2: updates every live
  /// counter.
  void ApplyUpdate(size_t pos, double value = 0);

  /// Qualifying negated arrival: Recounting Rule on every live counter.
  void ResetPrefix(size_t gap);

  /// Aggregate over the full pattern across all live counters. Call after
  /// Purge(now). O(1) for COUNT (a running tail total is maintained across
  /// updates and purges); O(live counters) otherwise.
  AggAccum Total() const;

  /// Count of full-pattern matches across all live counters. O(1): starts,
  /// tail updates, and purges maintain it incrementally (integer-exact, so
  /// it always equals the freshly-recomputed sum). Call after Purge(now).
  uint64_t total_count() const {
    return windowed() ? total_count_ : single_->count_at(length_);
  }

  /// Number of live per-start counters (1 in unbounded mode once any START
  /// arrived).
  size_t num_counters() const;

  bool windowed() const { return window_ms_ > 0; }
  Timestamp window_ms() const { return window_ms_; }

  /// Earliest expiration among live counters, or Timestamp max when nothing
  /// can expire (unbounded mode, or no live counters). Purge(now) is a
  /// no-op for any `now < next_expiry()` — the batched engines use this to
  /// skip provably-idle purge calls without changing observable state.
  Timestamp next_expiry() const {
    if (window_ms_ <= 0 || entries_.empty()) {
      return std::numeric_limits<Timestamp>::max();
    }
    return entries_.front().exp;
  }

  /// Serializes the live counters (per-start entries or the single DPC
  /// counter) and the running total.
  void Checkpoint(ckpt::Writer* w) const;

  /// Restores into a freshly constructed set with the same shape. Fills
  /// the structures directly *without* object accounting — the owning
  /// engine restores its EngineStats wholesale afterwards, which already
  /// includes these objects (and the destructor's removal stays balanced).
  Status Restore(ckpt::Reader* r);

 private:
  struct Entry {
    Timestamp exp;
    PrefixCounter counter;
  };

  size_t length_;
  AggFunc func_;
  size_t carrier_;
  Timestamp window_ms_;
  EngineStats* stats_;

  // Windowed mode: per-start counters in arrival (== expiry) order.
  std::deque<Entry> entries_;
  // Unbounded mode: the single global counter.
  std::optional<PrefixCounter> single_;
  // Windowed mode: running sum of the live counters' tail counts (full
  // matches). The tail only changes on OnStart (a length-1 pattern's start
  // is itself a match), on ApplyUpdate at the last position (Lemma 1:
  // cell L grows by cell L-1), and when a counter is purged — ResetPrefix
  // never touches the tail (negation may not trail the pattern).
  uint64_t total_count_ = 0;
};

}  // namespace aseq

#endif  // ASEQ_ASEQ_COUNTER_SET_H_
