#ifndef ASEQ_ASEQ_ASEQ_ENGINE_H_
#define ASEQ_ASEQ_ASEQ_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "aseq/counter_set.h"
#include "common/status.h"
#include "engine/engine.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief The single-query A-Seq engine for unpartitioned queries:
/// Dynamic Prefix Counting (Sec. 3.1) for unbounded windows, Start Event
/// Marking (Sec. 3.2) for sliding windows, with negation via the
/// Recounting Rule (Sec. 3.3) and local predicates pushed in front.
///
/// No sequence match is ever constructed: each event updates O(1) cells in
/// each live prefix counter and is immediately discarded.
class AseqEngine : public QueryEngine {
 public:
  explicit AseqEngine(CompiledQuery query);

  void OnEvent(const Event& e, std::vector<Output>* out) override;
  std::vector<Output> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  std::string name() const override {
    return query_.has_window() ? "A-Seq(SEM)" : "A-Seq(DPC)";
  }

  const CompiledQuery& query() const { return query_; }

  /// Number of live prefix counters (testing hook).
  size_t num_counters() const { return counters_.num_counters(); }

 private:
  CompiledQuery query_;
  EngineStats stats_;
  size_t length_;        // L: number of positive elements
  size_t carrier_pos1_;  // 1-based aggregate carrier position; 0 for COUNT
  CounterSet counters_;
};

/// \brief The partitioned A-Seq engine: Hashed Prefix Counters (Sec. 3.4)
/// for equivalence predicates and GROUP BY.
///
/// Each distinct partition key owns a CounterSet; positive instances route
/// to their partition, negated instances invalidate the partitions matching
/// on the key parts that constrain them.
class HpcEngine : public QueryEngine {
 public:
  explicit HpcEngine(CompiledQuery query);

  void OnEvent(const Event& e, std::vector<Output>* out) override;
  std::vector<Output> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  std::string name() const override { return "A-Seq(HPC)"; }

  const CompiledQuery& query() const { return query_; }

  size_t num_partitions() const { return partitions_.size(); }

 private:
  using PartitionMap =
      std::unordered_map<PartitionKey, CounterSet, PartitionKeyHash>;

  /// Sums live counters of partitions matching `key` on the group part;
  /// with `match_group == false`, sums every partition. Purges as it goes
  /// and drops empty partitions.
  AggAccum ScanTotal(Timestamp now, bool match_group, const Value& group);

  CompiledQuery query_;
  EngineStats stats_;
  size_t length_;
  size_t carrier_pos1_;
  PartitionMap partitions_;
};

/// \brief Builds the right A-Seq engine for an analyzed query.
///
/// Fails with Unsupported if the query carries join predicates (A-Seq
/// pushes only local and equivalence predicates into counting; use the
/// stack-based baseline for general joins).
Result<std::unique_ptr<QueryEngine>> CreateAseqEngine(
    const CompiledQuery& query);

}  // namespace aseq

#endif  // ASEQ_ASEQ_ASEQ_ENGINE_H_
