#ifndef ASEQ_ASEQ_ASEQ_ENGINE_H_
#define ASEQ_ASEQ_ASEQ_ENGINE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "aseq/counter_set.h"
#include "common/status.h"
#include "container/flat_map.h"
#include "container/key_interner.h"
#include "container/slab_pool.h"
#include "engine/engine.h"
#include "plan/admission.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief The single-query A-Seq engine for unpartitioned queries:
/// Dynamic Prefix Counting (Sec. 3.1) for unbounded windows, Start Event
/// Marking (Sec. 3.2) for sliding windows, with negation via the
/// Recounting Rule (Sec. 3.3) and local predicates pushed in front.
///
/// No sequence match is ever constructed: each event updates O(1) cells in
/// each live prefix counter and is immediately discarded.
class AseqEngine : public QueryEngine {
 public:
  explicit AseqEngine(CompiledQuery query);

  void OnEvent(const Event& e, std::vector<Output>* out) override;
  /// Batched path: hoists the window-expiry check out of the per-event
  /// loop via a cached next-expiry lower bound (purge calls that would be
  /// no-ops are skipped, so state and stats stay byte-identical to the
  /// per-event path) and dispatches roles through a flat per-type table
  /// instead of a hash probe.
  void OnBatch(std::span<const Event> batch, std::vector<Output>* out) override;
  std::vector<Output> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override {
    return query_.has_window() ? "A-Seq(SEM)" : "A-Seq(DPC)";
  }

  const CompiledQuery& query() const { return query_; }

  /// Number of live prefix counters (testing hook).
  size_t num_counters() const { return counters_.num_counters(); }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  /// Role dispatch + trigger handling for one event; the caller has
  /// already ensured expired counters are purged as of e.ts().
  void ProcessEvent(const Event& e, std::vector<Output>* out);

  CompiledQuery query_;
  EngineStats stats_;
  size_t length_;        // L: number of positive elements
  size_t carrier_pos1_;  // 1-based aggregate carrier position; 0 for COUNT
  CounterSet counters_;
  /// Compiled admission program (src/plan/): dense EventTypeId-indexed
  /// role dispatch + typed local-predicate opcodes + fused carrier load.
  /// Borrows query_'s predicate storage — declared after it.
  plan::AdmissionProgram program_;
};

/// \brief The partitioned A-Seq engine: Hashed Prefix Counters (Sec. 3.4)
/// for equivalence predicates and GROUP BY.
///
/// Each distinct partition key owns a CounterSet; positive instances route
/// to their partition, negated instances invalidate the partitions matching
/// on the key parts that constrain them.
///
/// Execution is staged through the compiled admission layer (src/plan/):
/// plan::BatchAdmitter::AdmitBatch qualifies, extracts, and *interns*
/// every partition key of a batch up front (each distinct key Value maps
/// to a dense uint32_t id, so a staged key is a fixed-size id array — no
/// Value copies or allocations), PrefetchIndex/PrefetchPartitions issue
/// DRAMHiT-style software prefetches for the flat-table slots the batch
/// will probe, and ExecuteEvent replays the staged records in arrival
/// order. OnEvent stages a one-event batch through the same path, so both
/// paths share one code path and stay exactly equivalent.
///
/// State lives in the flat partition store (src/container/):
///  - a SlabPool of Partition objects — the *iteration authority*: every
///    observable sweep (ScanTotal's SUM/AVG merge order, Poll's per-group
///    output order, partial-negation scans) walks ascending slot order,
///    and checkpoints carry the exact slab geometry so restores reproduce
///    it byte-for-byte;
///  - a partition index with no ordering obligations, rebuilt fresh on
///    restore: single-part keys (the common GROUP BY / single-equivalence
///    case) use a dense direct-mapped slot array — interned ids index it
///    outright, no hashing — and wider keys use an open-addressing FlatMap
///    from InternedKey to slab slot;
///  - a KeyInterner mapping distinct key Values to ids, append-only and
///    serialized in id order.
///
/// HPC is the one engine that shards: each partition key owns disjoint
/// state, so the executor can split the partition store across N twin
/// instances by GROUP BY key. The only cross-partition coupling is window
/// expiry at trigger time, which ShardableEngine::SyncPurgeTo replicates
/// on the shards that do not own the trigger.
class HpcEngine : public QueryEngine, public ShardableEngine {
 public:
  explicit HpcEngine(CompiledQuery query);

  void OnEvent(const Event& e, std::vector<Output>* out) override;
  void OnBatch(std::span<const Event> batch, std::vector<Output>* out) override;
  std::vector<Output> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  /// Serializes the interner table (values in id order), the partition
  /// slab — entries in canonical interned-id key order, each with its slot
  /// index, plus the freelist and high-water mark, pinning the slab's
  /// observable iteration order exactly — the running COUNT totals (group
  /// counts sorted by group id), and the expiry heap verbatim in array
  /// order (equal-deadline pops must replay identically after a restore;
  /// see ckpt::HeapContainer). The FlatMap index is *not* serialized: its
  /// layout is never observable, so Restore() rebuilds it fresh.
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override { return "A-Seq(HPC)"; }

  const CompiledQuery& query() const { return query_; }

  size_t num_partitions() const { return slab_.size(); }

  /// ShardableEngine: replays the cross-partition purge a trigger at `now`
  /// performs — AdvanceExpiry on the COUNT fast path, ScanTotal's
  /// purge-and-erase sweep (without the aggregation) otherwise.
  void SyncPurgeTo(Timestamp now) override;
  EngineStats* shard_mutable_stats() override { return &stats_; }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  /// One partition: its interned key (plus the key's hash, pinned at
  /// creation so erase/expiry paths never rehash) and its counter state.
  /// Slab-allocated; the CounterSet's deque storage is the only per-
  /// partition heap allocation left.
  struct Partition {
    container::InternedKey key;
    uint64_t hash = 0;
    CounterSet counters;

    Partition(const container::InternedKey& k, uint64_t h, size_t length,
              AggFunc func, size_t carrier_pos1, Timestamp window_ms,
              EngineStats* stats)
        : key(k),
          hash(h),
          counters(length, func, carrier_pos1, window_ms, stats) {}
  };

  using PartitionIndex =
      container::FlatMap<container::InternedKey, uint32_t,
                         container::InternedKeyHash>;

  /// "No partition" sentinel in the dense slot index.
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Dense-index position for an interned id. Ids map to id+1 and the
  /// kNoId sentinel wraps to 0, so wildcard keys (a key part no spec part
  /// covers) get a reserved bucket instead of an out-of-range access.
  static constexpr uint32_t DenseIdx(uint32_t id) { return id + 1u; }

  /// Prefetch pass after admission: warms the partition-index (and
  /// group-count) slots each staged record will probe. The interner slots
  /// were already prefetched during admission's extraction pass.
  void PrefetchIndex() const;

  /// Resolves each staged record against the partition index and issues
  /// software prefetches for the slab lines ExecuteEvent will touch (read
  /// intent, high temporal locality). Purely a cache warmer: results are
  /// deliberately not reused, since executing earlier batch events can
  /// create or erase partitions and stale slots must never be trusted.
  void PrefetchPartitions() const;

  /// Replays one event's staged admission records against the partition
  /// store.
  void ExecuteEvent(const Event& e,
                    std::span<const plan::AdmissionRecord> records,
                    std::vector<Output>* out);

  /// Sums live counters of partitions whose group id equals `gid`; with
  /// `match_group == false`, sums every partition. Walks the slab in slot
  /// order (the engine's observable iteration order), purging as it goes
  /// and erasing partitions left empty.
  AggAccum ScanTotal(Timestamp now, bool match_group, uint32_t gid);

  /// Removes the partition at `slot` from the index and the slab.
  void ErasePartition(uint32_t slot);

  /// A due date in the partition-expiry heap. Keys are carried by value
  /// (trivially copyable id arrays) so stale entries — the partition was
  /// purged further, or erased — can be recognized and skipped safely.
  struct ExpiryEntry {
    Timestamp exp = 0;
    uint64_t hash = 0;
    container::InternedKey key;
  };
  struct ExpiryLater {
    bool operator()(const ExpiryEntry& a, const ExpiryEntry& b) const {
      return a.exp > b.exp;
    }
  };

  /// True when triggers read the O(1) running COUNT totals instead of
  /// scanning every partition.
  bool count_fast_path() const { return query_.agg().func == AggFunc::kCount; }

  /// Runs `mutate` against `part` and folds the resulting change of its
  /// full-match count into the running totals (COUNT fast path only;
  /// other aggregates still scan at trigger time).
  template <typename Fn>
  void MutatePartition(Partition& part, Fn&& mutate) {
    if (!count_fast_path()) {
      mutate();
      return;
    }
    const uint64_t before = part.counters.total_count();
    mutate();
    const uint64_t after = part.counters.total_count();
    if (after != before) {
      const int64_t delta =
          static_cast<int64_t>(after) - static_cast<int64_t>(before);
      if (per_group_) {
        const uint32_t idx = DenseIdx(part.key.ids[group_part_]);
        if (idx >= group_counts_.size()) {
          // Interned ids are dense, so the interner size bounds every
          // group id the engine can ever hand us right now.
          group_counts_.resize(interner_.size() + 1, 0);
        }
        group_counts_[idx] += delta;
      } else {
        running_count_ += delta;
      }
    }
  }

  /// Resolves a sealed probe key to its partition's slab slot, or kNoSlot.
  /// Single-part keys are a direct array access; wider keys probe the
  /// hash index.
  uint32_t LookupSlot(uint64_t hash, const container::InternedKey& key) const {
    if (single_part_) {
      const uint32_t idx = DenseIdx(key.ids[0]);
      return idx < slot_by_id_.size() ? slot_by_id_[idx] : kNoSlot;
    }
    const uint32_t* slot = index_.FindHashed(hash, key);
    return slot == nullptr ? kNoSlot : *slot;
  }

  /// Index entry for a position-1 record: returns the slot cell (holding
  /// kNoSlot if the entry was just created) and whether it was created.
  std::pair<uint32_t*, bool> UpsertSlot(uint64_t hash,
                                        const container::InternedKey& key) {
    if (single_part_) {
      const uint32_t idx = DenseIdx(key.ids[0]);
      if (idx >= slot_by_id_.size()) {
        slot_by_id_.resize(interner_.size() + 1, kNoSlot);
      }
      uint32_t* slot = &slot_by_id_[idx];
      return {slot, *slot == kNoSlot};
    }
    return index_.TryEmplaceHashed(hash, key, kNoSlot);
  }

  /// Drops `part`'s index entry (the slab slot itself is freed separately).
  void EraseIndexEntry(const Partition& part) {
    if (single_part_) {
      slot_by_id_[DenseIdx(part.key.ids[0])] = kNoSlot;
    } else {
      index_.EraseHashed(part.hash, part.key);
    }
  }

  /// Pushes `part`'s next expiration onto the heap (windowed mode, COUNT
  /// fast path; a no-op when nothing can expire).
  void EnqueueExpiry(const Partition& part);

  /// Purges every partition whose earliest expiration is due at `now`,
  /// keeping the running totals exact; erases partitions left empty. The
  /// lazy heap makes this amortized O(expired counters), so COUNT triggers
  /// are O(1) instead of O(partitions).
  void AdvanceExpiry(Timestamp now);

  /// Refreshes the transient EngineStats::ht_* probe/occupancy gauges
  /// from the flat tables (index + group counts + interner).
  void UpdateHtStats();

  CompiledQuery query_;
  EngineStats stats_;
  size_t length_;
  size_t carrier_pos1_;
  size_t num_parts_;
  uint64_t full_mask_;    // covered_mask value meaning "every part"
  bool per_group_;        // GROUP BY present
  size_t group_part_;     // index of the GROUP BY part (0 if none)
  bool single_part_;      // one-part key: dense slot_by_id_ index
  // The flat partition store.
  container::KeyInterner interner_;
  /// Hash index, used only when the key has several parts.
  PartitionIndex index_;
  /// Dense index for single-part keys: slot_by_id_[DenseIdx(id)] is the
  /// partition's slab slot (kNoSlot = none). Interned ids are dense, so
  /// this stays as small as the key cardinality itself and a probe is one
  /// array read — no hashing, no collisions.
  std::vector<uint32_t> slot_by_id_;
  container::SlabPool<Partition> slab_;
  /// Compiled admission program (src/plan/): dense role dispatch, typed
  /// local-predicate opcodes, fused carrier load + key extraction.
  /// Borrows query_'s predicate storage — declared after it.
  plan::AdmissionProgram program_;
  /// Batched admission scratch, reused (clear-not-shrink) across batches.
  plan::BatchAdmitter admitter_;
  // COUNT fast path: running full-match totals (global, or per group id)
  // and the partition-expiry heap that keeps them exact under lazy
  // purging. Group totals live in a flat array indexed by DenseIdx(gid) —
  // interned group ids are dense, so a trigger reads its total with one
  // array access and zero means "no full matches", exactly as an absent
  // hash-table entry used to.
  int64_t running_count_ = 0;
  std::vector<int64_t> group_counts_;
  std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>, ExpiryLater>
      expiry_heap_;
};

/// \brief Builds the right A-Seq engine for an analyzed query.
///
/// Fails with Unsupported if the query carries join predicates (A-Seq
/// pushes only local and equivalence predicates into counting; use the
/// stack-based baseline for general joins), or if a partitioned query's
/// composite key is wider than container::kMaxKeyParts (the flat store
/// carries keys as fixed-size interned-id arrays).
Result<std::unique_ptr<QueryEngine>> CreateAseqEngine(
    const CompiledQuery& query);

}  // namespace aseq

#endif  // ASEQ_ASEQ_ASEQ_ENGINE_H_
