#ifndef ASEQ_ASEQ_ASEQ_ENGINE_H_
#define ASEQ_ASEQ_ASEQ_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "aseq/counter_set.h"
#include "common/status.h"
#include "container/key_interner.h"
#include "engine/engine.h"
#include "plan/admission.h"
#include "query/compiled_query.h"
#include "state/partition_store.h"
#include "state/window_clock.h"

namespace aseq {

/// \brief The single-query A-Seq engine for unpartitioned queries:
/// Dynamic Prefix Counting (Sec. 3.1) for unbounded windows, Start Event
/// Marking (Sec. 3.2) for sliding windows, with negation via the
/// Recounting Rule (Sec. 3.3) and local predicates pushed in front.
///
/// No sequence match is ever constructed: each event updates O(1) cells in
/// each live prefix counter and is immediately discarded.
class AseqEngine : public QueryEngine {
 public:
  explicit AseqEngine(CompiledQuery query);

  void OnEvent(const Event& e, std::vector<Output>* out) override;
  /// Batched path: hoists the window-expiry check out of the per-event
  /// loop via a cached next-expiry lower bound (purge calls that would be
  /// no-ops are skipped, so state and stats stay byte-identical to the
  /// per-event path) and dispatches roles through a flat per-type table
  /// instead of a hash probe.
  void OnBatch(std::span<const Event> batch, std::vector<Output>* out) override;
  std::vector<Output> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override {
    return query_.has_window() ? "A-Seq(SEM)" : "A-Seq(DPC)";
  }

  const CompiledQuery& query() const { return query_; }

  /// Number of live prefix counters (testing hook).
  size_t num_counters() const { return counters_.num_counters(); }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  /// Role dispatch + trigger handling for one event; the caller has
  /// already ensured expired counters are purged as of e.ts().
  void ProcessEvent(const Event& e, std::vector<Output>* out);

  CompiledQuery query_;
  EngineStats stats_;
  size_t length_;        // L: number of positive elements
  size_t carrier_pos1_;  // 1-based aggregate carrier position; 0 for COUNT
  CounterSet counters_;
  /// Compiled admission program (src/plan/): dense EventTypeId-indexed
  /// role dispatch + typed local-predicate opcodes + fused carrier load.
  /// Borrows query_'s predicate storage — declared after it.
  plan::AdmissionProgram program_;
};

/// \brief The partitioned A-Seq engine: Hashed Prefix Counters (Sec. 3.4)
/// for equivalence predicates and GROUP BY.
///
/// Each distinct partition key owns a CounterSet; positive instances route
/// to their partition, negated instances invalidate the partitions matching
/// on the key parts that constrain them.
///
/// Execution is staged through the compiled admission layer (src/plan/):
/// plan::BatchAdmitter::AdmitBatch qualifies, extracts, and *interns*
/// every partition key of a batch up front (each distinct key Value maps
/// to a dense uint32_t id, so a staged key is a fixed-size id array — no
/// Value copies or allocations), PrefetchIndex/PrefetchPartitions issue
/// DRAMHiT-style software prefetches for the flat-table slots the batch
/// will probe, and ExecuteEvent replays the staged records in arrival
/// order. OnEvent stages a one-event batch through the same path, so both
/// paths share one code path and stay exactly equivalent.
///
/// State lives in the partition-state spine (src/state/): a
/// state::PartitionStore of Partition entries (interned keys, slab slots
/// as the observable iteration order, dense single-part index) and a
/// state::WindowClock driving lazy window expiry on the COUNT fast path.
/// Every observable sweep (ScanTotal's SUM/AVG merge order, Poll's
/// per-group output order, partial-negation scans) walks ascending slot
/// order, and checkpoints carry the exact slab geometry so restores
/// reproduce it byte-for-byte.
///
/// Each partition key owns disjoint state, so the executor can split the
/// partition store across N twin instances by GROUP BY key (the grouped
/// sharing engines shard the same way). The only cross-partition coupling
/// is window expiry at trigger time, which ShardableEngine::SyncPurgeTo
/// replicates on the shards that do not own the trigger.
class HpcEngine : public QueryEngine, public ShardableEngine {
 public:
  explicit HpcEngine(CompiledQuery query);

  void OnEvent(const Event& e, std::vector<Output>* out) override;
  void OnBatch(std::span<const Event> batch, std::vector<Output>* out) override;
  std::vector<Output> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  /// Serializes the interner table (values in id order), the partition
  /// slab — entries in canonical interned-id key order, each with its slot
  /// index, plus the freelist and high-water mark, pinning the slab's
  /// observable iteration order exactly — the running COUNT totals (group
  /// counts sorted by group id), and the expiry heap verbatim in array
  /// order (equal-deadline pops must replay identically after a restore;
  /// see ckpt::HeapContainer). The FlatMap index is *not* serialized: its
  /// layout is never observable, so Restore() rebuilds it fresh.
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override { return "A-Seq(HPC)"; }

  const CompiledQuery& query() const { return query_; }

  size_t num_partitions() const { return store_.size(); }

  /// ShardableEngine: replays the cross-partition purge a trigger at `now`
  /// performs — AdvanceExpiry on the COUNT fast path, ScanTotal's
  /// purge-and-erase sweep (without the aggregation) otherwise.
  void SyncPurgeTo(Timestamp now) override;
  EngineStats* shard_mutable_stats() override { return &stats_; }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  /// One partition: its interned key (plus the key's hash, pinned at
  /// creation so erase/expiry paths never rehash) and its counter state.
  /// Slab-allocated; the CounterSet's deque storage is the only per-
  /// partition heap allocation left.
  struct Partition {
    container::InternedKey key;
    uint64_t hash = 0;
    CounterSet counters;

    Partition(const container::InternedKey& k, uint64_t h, size_t length,
              AggFunc func, size_t carrier_pos1, Timestamp window_ms,
              EngineStats* stats)
        : key(k),
          hash(h),
          counters(length, func, carrier_pos1, window_ms, stats) {}
  };

  /// "No partition" sentinel in the dense slot index (see src/state/).
  static constexpr uint32_t kNoSlot = state::kNoSlot;

  /// Dense-index position for an interned id (see state::DenseIdx): used
  /// here for the group_counts_ array, which is indexed the same way the
  /// store's single-part slot array is.
  static constexpr uint32_t DenseIdx(uint32_t id) {
    return state::DenseIdx(id);
  }

  /// Prefetch pass after admission: warms the partition-index (and
  /// group-count) slots each staged record will probe. The interner slots
  /// were already prefetched during admission's extraction pass.
  void PrefetchIndex() const;

  /// Resolves each staged record against the partition index and issues
  /// software prefetches for the slab lines ExecuteEvent will touch (read
  /// intent, high temporal locality). Purely a cache warmer: results are
  /// deliberately not reused, since executing earlier batch events can
  /// create or erase partitions and stale slots must never be trusted.
  void PrefetchPartitions() const;

  /// Replays one event's staged admission records against the partition
  /// store.
  void ExecuteEvent(const Event& e,
                    std::span<const plan::AdmissionRecord> records,
                    std::vector<Output>* out);

  /// Sums live counters of partitions whose group id equals `gid`; with
  /// `match_group == false`, sums every partition. Walks the slab in slot
  /// order (the engine's observable iteration order), purging as it goes
  /// and erasing partitions left empty.
  AggAccum ScanTotal(Timestamp now, bool match_group, uint32_t gid);

  /// Removes the partition at `slot` from the index and the slab.
  void ErasePartition(uint32_t slot);

  /// True when triggers read the O(1) running COUNT totals instead of
  /// scanning every partition.
  bool count_fast_path() const { return query_.agg().func == AggFunc::kCount; }

  /// Runs `mutate` against `part` and folds the resulting change of its
  /// full-match count into the running totals (COUNT fast path only;
  /// other aggregates still scan at trigger time).
  template <typename Fn>
  void MutatePartition(Partition& part, Fn&& mutate) {
    if (!count_fast_path()) {
      mutate();
      return;
    }
    const uint64_t before = part.counters.total_count();
    mutate();
    const uint64_t after = part.counters.total_count();
    if (after != before) {
      const int64_t delta =
          static_cast<int64_t>(after) - static_cast<int64_t>(before);
      if (per_group_) {
        const uint32_t idx = DenseIdx(part.key.ids[group_part_]);
        if (idx >= group_counts_.size()) {
          // Interned ids are dense, so the interner size bounds every
          // group id the engine can ever hand us right now.
          group_counts_.resize(store_.interner().size() + 1, 0);
        }
        group_counts_[idx] += delta;
      } else {
        running_count_ += delta;
      }
    }
  }

  /// Pushes `part`'s next expiration onto the clock (windowed mode, COUNT
  /// fast path; a no-op when nothing can expire).
  void EnqueueExpiry(const Partition& part);

  /// Purges every partition whose earliest expiration is due at `now`,
  /// keeping the running totals exact; erases partitions left empty. The
  /// lazy heap makes this amortized O(expired counters), so COUNT triggers
  /// are O(1) instead of O(partitions).
  void AdvanceExpiry(Timestamp now);

  /// Refreshes the transient EngineStats::ht_* probe/occupancy gauges
  /// from the flat tables (index + group counts + interner).
  void UpdateHtStats();

  CompiledQuery query_;
  EngineStats stats_;
  size_t length_;
  size_t carrier_pos1_;
  size_t num_parts_;
  uint64_t full_mask_;    // covered_mask value meaning "every part"
  bool per_group_;        // GROUP BY present
  size_t group_part_;     // index of the GROUP BY part (0 if none)
  bool single_part_;      // one-part key: dense direct-mapped store index
  /// The partition-state spine (src/state/): interner + index + slab.
  state::PartitionStore<Partition> store_;
  /// Compiled admission program (src/plan/): dense role dispatch, typed
  /// local-predicate opcodes, fused carrier load + key extraction.
  /// Borrows query_'s predicate storage — declared after it.
  plan::AdmissionProgram program_;
  /// Batched admission scratch, reused (clear-not-shrink) across batches.
  plan::BatchAdmitter admitter_;
  // COUNT fast path: running full-match totals (global, or per group id)
  // and the window clock that keeps them exact under lazy purging. Group
  // totals live in a flat array indexed by DenseIdx(gid) — interned group
  // ids are dense, so a trigger reads its total with one array access and
  // zero means "no full matches", exactly as an absent hash-table entry
  // used to.
  int64_t running_count_ = 0;
  std::vector<int64_t> group_counts_;
  state::WindowClock clock_;
};

/// \brief Builds the right A-Seq engine for an analyzed query.
///
/// Fails with Unsupported if the query carries join predicates (A-Seq
/// pushes only local and equivalence predicates into counting; use the
/// stack-based baseline for general joins), or if a partitioned query's
/// composite key is wider than container::kMaxKeyParts (the flat store
/// carries keys as fixed-size interned-id arrays).
Result<std::unique_ptr<QueryEngine>> CreateAseqEngine(
    const CompiledQuery& query);

}  // namespace aseq

#endif  // ASEQ_ASEQ_ASEQ_ENGINE_H_
