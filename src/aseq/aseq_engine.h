#ifndef ASEQ_ASEQ_ASEQ_ENGINE_H_
#define ASEQ_ASEQ_ASEQ_ENGINE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "aseq/counter_set.h"
#include "common/status.h"
#include "engine/engine.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief The single-query A-Seq engine for unpartitioned queries:
/// Dynamic Prefix Counting (Sec. 3.1) for unbounded windows, Start Event
/// Marking (Sec. 3.2) for sliding windows, with negation via the
/// Recounting Rule (Sec. 3.3) and local predicates pushed in front.
///
/// No sequence match is ever constructed: each event updates O(1) cells in
/// each live prefix counter and is immediately discarded.
class AseqEngine : public QueryEngine {
 public:
  explicit AseqEngine(CompiledQuery query);

  void OnEvent(const Event& e, std::vector<Output>* out) override;
  /// Batched path: hoists the window-expiry check out of the per-event
  /// loop via a cached next-expiry lower bound (purge calls that would be
  /// no-ops are skipped, so state and stats stay byte-identical to the
  /// per-event path) and dispatches roles through a flat per-type table
  /// instead of a hash probe.
  void OnBatch(std::span<const Event> batch, std::vector<Output>* out) override;
  std::vector<Output> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override {
    return query_.has_window() ? "A-Seq(SEM)" : "A-Seq(DPC)";
  }

  const CompiledQuery& query() const { return query_; }

  /// Number of live prefix counters (testing hook).
  size_t num_counters() const { return counters_.num_counters(); }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  /// Role dispatch + trigger handling for one event; the caller has
  /// already ensured expired counters are purged as of e.ts().
  void ProcessEvent(const Event& e, std::vector<Output>* out);

  CompiledQuery query_;
  EngineStats stats_;
  size_t length_;        // L: number of positive elements
  size_t carrier_pos1_;  // 1-based aggregate carrier position; 0 for COUNT
  CounterSet counters_;
  /// Flat role table indexed by EventTypeId (nullptr = type not in
  /// pattern); replaces the per-event FindRoles hash lookup.
  std::vector<const std::vector<Role>*> role_table_;
};

/// \brief The partitioned A-Seq engine: Hashed Prefix Counters (Sec. 3.4)
/// for equivalence predicates and GROUP BY.
///
/// Each distinct partition key owns a CounterSet; positive instances route
/// to their partition, negated instances invalidate the partitions matching
/// on the key parts that constrain them.
///
/// Execution is staged: StageBatch extracts and hashes every partition key
/// of a batch up front, PrefetchPartitions issues DRAMHiT-style software
/// prefetches for the partition-map buckets the batch will probe, and
/// ExecuteEvent replays the staged probes in arrival order. OnEvent stages
/// a one-event batch through the same path, so both paths share one code
/// path and stay exactly equivalent.
///
/// HPC is the one engine that shards: each partition key owns disjoint
/// state, so the executor can split the partition map across N twin
/// instances by GROUP BY key. The only cross-partition coupling is window
/// expiry at trigger time, which ShardableEngine::SyncPurgeTo replicates
/// on the shards that do not own the trigger.
class HpcEngine : public QueryEngine, public ShardableEngine {
 public:
  explicit HpcEngine(CompiledQuery query);

  void OnEvent(const Event& e, std::vector<Output>* out) override;
  void OnBatch(std::span<const Event> batch, std::vector<Output>* out) override;
  std::vector<Output> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  /// Serializes the partition map (bucket count + partitions in iteration
  /// order), the running COUNT totals, and the stats. The expiry heap is
  /// not serialized: Restore() rebuilds one entry per live windowed
  /// partition, which is behaviorally equivalent (stale heap entries only
  /// ever cause no-op purges).
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override { return "A-Seq(HPC)"; }

  const CompiledQuery& query() const { return query_; }

  size_t num_partitions() const { return partitions_.size(); }

  /// ShardableEngine: replays the cross-partition purge a trigger at `now`
  /// performs — AdvanceExpiry on the COUNT fast path, ScanTotal's
  /// purge-and-erase sweep (without the aggregation) otherwise.
  void SyncPurgeTo(Timestamp now) override;
  EngineStats* shard_mutable_stats() override { return &stats_; }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  using PartitionMap = std::unordered_map<PartitionKey, CounterSet,
                                          PartitionKeyHash, PartitionKeyEq>;

  /// One qualifying role of one batch event, with its partition key
  /// extracted and pre-hashed. Probe slots are pooled (grow-only) so key
  /// vectors keep their capacity across batches.
  struct RoleProbe {
    enum class Kind : uint8_t { kPositive, kNegated };

    const Role* role = nullptr;
    Kind kind = Kind::kPositive;
    /// Negated roles only: does the partition key cover every part? A
    /// fully covered probe targets one partition; a partial one scans all.
    bool fully_covered = true;
    /// Precomputed PartitionKeyHash (meaningless for partial negation).
    size_t hash = 0;
    PartitionKey key;
    /// Per-part coverage flags (negated roles only).
    std::vector<bool> covered;
  };

  /// The staged probes of one event: probes_[first_probe, first_probe+n).
  struct EventPlan {
    size_t first_probe = 0;
    size_t num_probes = 0;
  };

  /// Extracts, qualifies, and hashes every role probe of the batch into
  /// probes_/plans_. Pure with respect to partition state.
  void StageBatch(std::span<const Event> batch);

  /// Issues software prefetches for the partition-map buckets the staged
  /// probes will touch (read intent, high temporal locality).
  void PrefetchPartitions() const;

  /// Replays one event's staged probes against the partition map.
  void ExecuteEvent(const Event& e, const EventPlan& plan,
                    std::vector<Output>* out);

  RoleProbe& NextProbe();

  /// Sums live counters of partitions matching `key` on the group part;
  /// with `match_group == false`, sums every partition. Purges as it goes
  /// and drops empty partitions.
  AggAccum ScanTotal(Timestamp now, bool match_group, const Value& group);

  /// A due date in the partition-expiry heap. Keys are stored by value so
  /// stale entries (the partition was purged further, or erased) can be
  /// recognized and skipped safely after the map node is gone.
  struct ExpiryEntry {
    Timestamp exp = 0;
    size_t hash = 0;
    PartitionKey key;
  };
  struct ExpiryLater {
    bool operator()(const ExpiryEntry& a, const ExpiryEntry& b) const {
      return a.exp > b.exp;
    }
  };

  /// True when triggers read the O(1) running COUNT totals instead of
  /// scanning every partition.
  bool count_fast_path() const { return query_.agg().func == AggFunc::kCount; }

  /// Runs `mutate` against partition `it` and folds the resulting change
  /// of its full-match count into the running totals (COUNT fast path
  /// only; other aggregates still scan at trigger time).
  template <typename Fn>
  void MutatePartition(PartitionMap::iterator it, Fn&& mutate) {
    if (!count_fast_path()) {
      mutate();
      return;
    }
    const uint64_t before = it->second.total_count();
    mutate();
    const uint64_t after = it->second.total_count();
    if (after != before) {
      const int64_t delta =
          static_cast<int64_t>(after) - static_cast<int64_t>(before);
      const PartitionSpec& spec = query_.partition_spec();
      if (spec.per_group_output) {
        group_counts_[it->first.parts[spec.group_part]] += delta;
      } else {
        running_count_ += delta;
      }
    }
  }

  /// Pushes `it`'s next expiration onto the heap (windowed mode, COUNT
  /// fast path; a no-op when nothing can expire).
  void EnqueueExpiry(PartitionMap::iterator it, size_t hash);

  /// Purges every partition whose earliest expiration is due at `now`,
  /// keeping the running totals exact; erases partitions left empty. The
  /// lazy heap makes this amortized O(expired counters), so COUNT triggers
  /// are O(1) instead of O(partitions).
  void AdvanceExpiry(Timestamp now);

  CompiledQuery query_;
  EngineStats stats_;
  size_t length_;
  size_t carrier_pos1_;
  PartitionMap partitions_;
  /// Flat role table indexed by EventTypeId (see AseqEngine::role_table_).
  std::vector<const std::vector<Role>*> role_table_;
  // Staging scratch, reused (clear-not-shrink) across batches.
  std::vector<RoleProbe> probes_;
  size_t probes_used_ = 0;
  std::vector<EventPlan> plans_;
  // COUNT fast path: running full-match totals (global, or per group) and
  // the partition-expiry heap that keeps them exact under lazy purging.
  int64_t running_count_ = 0;
  std::unordered_map<Value, int64_t, ValueHash> group_counts_;
  std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>, ExpiryLater>
      expiry_heap_;
};

/// \brief Builds the right A-Seq engine for an analyzed query.
///
/// Fails with Unsupported if the query carries join predicates (A-Seq
/// pushes only local and equivalence predicates into counting; use the
/// stack-based baseline for general joins).
Result<std::unique_ptr<QueryEngine>> CreateAseqEngine(
    const CompiledQuery& query);

}  // namespace aseq

#endif  // ASEQ_ASEQ_ASEQ_ENGINE_H_
