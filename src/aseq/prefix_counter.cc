#include "aseq/prefix_counter.h"

#include <cassert>

#include "ckpt/ckpt.h"

namespace aseq {

PrefixCounter::PrefixCounter(size_t length, AggFunc func, size_t carrier_pos1)
    : length_(length), func_(func), carrier_(carrier_pos1) {
  assert(length_ >= 1);
  counts_.assign(length_ + 1, 0);
  counts_[0] = 1;  // virtual empty prefix
  if (func_ == AggFunc::kSum || func_ == AggFunc::kAvg) {
    assert(carrier_ >= 1 && carrier_ <= length_);
    wsum_.assign(length_ + 1, 0.0);
  } else if (func_ == AggFunc::kMin || func_ == AggFunc::kMax) {
    assert(carrier_ >= 1 && carrier_ <= length_);
    ext_.assign(length_ + 1, 0.0);
    ext_valid_.assign(length_ + 1, 0);
  }
}

void PrefixCounter::ApplyPositive(size_t pos, double value) {
  assert(pos >= 1 && pos <= length_);
  const uint64_t prev = counts_[pos - 1];
  if (!wsum_.empty()) {
    if (pos == carrier_) {
      wsum_[pos] += static_cast<double>(prev) * value;
    } else if (pos > carrier_) {
      wsum_[pos] += wsum_[pos - 1];
    }
  }
  if (!ext_.empty()) {
    if (pos == carrier_) {
      if (prev > 0) {
        if (!ext_valid_[pos]) {
          ext_[pos] = value;
          ext_valid_[pos] = 1;
        } else if (func_ == AggFunc::kMin ? (value < ext_[pos])
                                          : (value > ext_[pos])) {
          ext_[pos] = value;
        }
      }
    } else if (pos > carrier_) {
      if (ext_valid_[pos - 1]) {
        if (!ext_valid_[pos]) {
          ext_[pos] = ext_[pos - 1];
          ext_valid_[pos] = 1;
        } else if (func_ == AggFunc::kMin ? (ext_[pos - 1] < ext_[pos])
                                          : (ext_[pos - 1] > ext_[pos])) {
          ext_[pos] = ext_[pos - 1];
        }
      }
    }
  }
  counts_[pos] += prev;
}

void PrefixCounter::ResetPrefix(size_t gap) {
  assert(gap >= 1 && gap < length_);
  counts_[gap] = 0;
  if (!wsum_.empty() && gap >= carrier_) wsum_[gap] = 0.0;
  if (!ext_.empty() && gap >= carrier_) {
    ext_[gap] = 0.0;
    ext_valid_[gap] = 0;
  }
}

AggAccum PrefixCounter::At(size_t m) const {
  assert(m >= 1 && m <= length_);
  AggAccum acc;
  acc.count = counts_[m];
  if (!wsum_.empty() && m >= carrier_) acc.sum = wsum_[m];
  if (!ext_.empty() && m >= carrier_ && ext_valid_[m]) {
    acc.has_ext = true;
    acc.ext = ext_[m];
  }
  return acc;
}

void PrefixCounter::Checkpoint(ckpt::Writer* w) const {
  w->WriteU64(length_);
  for (size_t m = 0; m <= length_; ++m) w->WriteU64(counts_[m]);
  if (!wsum_.empty()) {
    for (size_t m = 0; m <= length_; ++m) w->WriteDouble(wsum_[m]);
  }
  if (!ext_.empty()) {
    for (size_t m = 0; m <= length_; ++m) {
      w->WriteDouble(ext_[m]);
      w->WriteU8(ext_valid_[m]);
    }
  }
}

Status PrefixCounter::Restore(ckpt::Reader* r) {
  uint64_t length = 0;
  ASEQ_RETURN_NOT_OK(r->ReadU64(&length, "prefix counter length"));
  if (length != length_) {
    return Status::ParseError(
        "snapshot corrupt: prefix counter has length " +
        std::to_string(length) + " but the query expects " +
        std::to_string(length_));
  }
  for (size_t m = 0; m <= length_; ++m) {
    ASEQ_RETURN_NOT_OK(r->ReadU64(&counts_[m], "prefix counter cell"));
  }
  if (counts_[0] != 1) {
    return Status::ParseError(
        "snapshot corrupt: prefix counter virtual cell 0 holds " +
        std::to_string(counts_[0]) + " (must be 1)");
  }
  if (!wsum_.empty()) {
    for (size_t m = 0; m <= length_; ++m) {
      ASEQ_RETURN_NOT_OK(r->ReadDouble(&wsum_[m], "prefix counter wsum"));
    }
  }
  if (!ext_.empty()) {
    for (size_t m = 0; m <= length_; ++m) {
      ASEQ_RETURN_NOT_OK(r->ReadDouble(&ext_[m], "prefix counter ext"));
      ASEQ_RETURN_NOT_OK(r->ReadU8(&ext_valid_[m], "prefix counter ext flag"));
    }
  }
  return Status::OK();
}

std::string PrefixCounter::ToString() const {
  std::string out = "[";
  for (size_t m = 1; m <= length_; ++m) {
    if (m > 1) out += " ";
    out += std::to_string(counts_[m]);
  }
  out += "]";
  return out;
}

}  // namespace aseq
