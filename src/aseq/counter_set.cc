#include "aseq/counter_set.h"

#include "ckpt/ckpt.h"

namespace aseq {

CounterSet::CounterSet(size_t length, AggFunc func, size_t carrier_pos1,
                       Timestamp window_ms, EngineStats* stats)
    : length_(length),
      func_(func),
      carrier_(carrier_pos1),
      window_ms_(window_ms),
      stats_(stats) {
  if (window_ms_ == 0) {
    single_.emplace(length_, func_, carrier_);
    if (stats_ != nullptr) stats_->objects.Add(1);
  }
}

CounterSet::~CounterSet() {
  if (stats_ != nullptr) {
    stats_->objects.Remove(static_cast<int64_t>(entries_.size()) +
                           (single_.has_value() ? 1 : 0));
  }
}

CounterSet::CounterSet(CounterSet&& other) noexcept
    : length_(other.length_),
      func_(other.func_),
      carrier_(other.carrier_),
      window_ms_(other.window_ms_),
      stats_(other.stats_),
      entries_(std::move(other.entries_)),
      single_(std::move(other.single_)),
      total_count_(other.total_count_) {
  // Ownership of the object accounting moves with the state.
  other.stats_ = nullptr;
  other.entries_.clear();
  other.single_.reset();
  other.total_count_ = 0;
}

void CounterSet::Purge(Timestamp now) {
  while (!entries_.empty() && entries_.front().exp <= now) {
    total_count_ -= entries_.front().counter.count_at(length_);
    entries_.pop_front();
    if (stats_ != nullptr) stats_->objects.Remove(1);
  }
}

void CounterSet::OnStart(const Event& e, double value) {
  if (!windowed()) {
    single_->ApplyPositive(1, value);
    if (stats_ != nullptr) ++stats_->work_units;
    return;
  }
  Entry entry{e.ts() + window_ms_, PrefixCounter(length_, func_, carrier_)};
  entry.counter.ApplyPositive(1, value);
  total_count_ += entry.counter.count_at(length_);  // non-zero iff L == 1
  entries_.push_back(std::move(entry));
  if (stats_ != nullptr) {
    stats_->objects.Add(1);
    ++stats_->work_units;
  }
}

void CounterSet::ApplyUpdate(size_t pos, double value) {
  if (!windowed()) {
    single_->ApplyPositive(pos, value);
    if (stats_ != nullptr) ++stats_->work_units;
    return;
  }
  const bool tail = pos == length_;
  for (Entry& entry : entries_) {
    // Lemma 1: the tail cell grows by the length-(L-1) prefix count.
    if (tail) total_count_ += entry.counter.count_at(length_ - 1);
    entry.counter.ApplyPositive(pos, value);
  }
  if (stats_ != nullptr) stats_->work_units += entries_.size();
}

void CounterSet::ResetPrefix(size_t gap) {
  if (!windowed()) {
    single_->ResetPrefix(gap);
    if (stats_ != nullptr) ++stats_->work_units;
    return;
  }
  for (Entry& entry : entries_) {
    entry.counter.ResetPrefix(gap);
  }
  if (stats_ != nullptr) stats_->work_units += entries_.size();
}

AggAccum CounterSet::Total() const {
  AggAccum acc;
  if (!windowed()) {
    acc.Merge(single_->Tail(), func_);
    return acc;
  }
  if (func_ == AggFunc::kCount) {
    // Integer-exact running total: identical to the walk below, without
    // visiting every live counter.
    acc.count = total_count_;
    return acc;
  }
  for (const Entry& entry : entries_) {
    acc.Merge(entry.counter.Tail(), func_);
  }
  return acc;
}

size_t CounterSet::num_counters() const {
  return windowed() ? entries_.size() : 1;
}

void CounterSet::Checkpoint(ckpt::Writer* w) const {
  w->WriteBool(windowed());
  if (!windowed()) {
    single_->Checkpoint(w);
    return;
  }
  w->WriteU64(entries_.size());
  for (const Entry& entry : entries_) {
    w->WriteI64(entry.exp);
    entry.counter.Checkpoint(w);
  }
  w->WriteU64(total_count_);
}

Status CounterSet::Restore(ckpt::Reader* r) {
  bool windowed_flag = false;
  ASEQ_RETURN_NOT_OK(r->ReadBool(&windowed_flag, "counter set mode"));
  if (windowed_flag != windowed()) {
    return Status::ParseError(
        "snapshot corrupt: counter set mode mismatch (snapshot is " +
        std::string(windowed_flag ? "windowed" : "unbounded") +
        ", query compiles to the opposite)");
  }
  if (!windowed()) {
    return single_->Restore(r);
  }
  uint64_t n = 0;
  // A serialized entry is at least 8 (exp) + 8 (counter length) bytes.
  ASEQ_RETURN_NOT_OK(r->ReadCount(&n, 16, "counter set entries"));
  entries_.clear();
  Timestamp prev_exp = std::numeric_limits<Timestamp>::min();
  for (uint64_t i = 0; i < n; ++i) {
    Entry entry{0, PrefixCounter(length_, func_, carrier_)};
    ASEQ_RETURN_NOT_OK(r->ReadI64(&entry.exp, "counter entry expiry"));
    if (entry.exp < prev_exp) {
      return Status::ParseError(
          "snapshot corrupt: counter entries out of expiry order");
    }
    prev_exp = entry.exp;
    ASEQ_RETURN_NOT_OK(entry.counter.Restore(r));
    entries_.push_back(std::move(entry));
  }
  ASEQ_RETURN_NOT_OK(r->ReadU64(&total_count_, "counter set total"));
  return Status::OK();
}

}  // namespace aseq
