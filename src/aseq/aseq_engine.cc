#include "aseq/aseq_engine.h"

#include <cassert>
#include <limits>
#include <memory>
#include <utility>

#include "ckpt/ckpt.h"
#include "query/role_table.h"

namespace aseq {

namespace {

/// Carrier attribute value of an event, for roles at the carrier position.
double CarrierValue(const CompiledQuery& q, const Event& e) {
  return e.GetAttr(q.agg().attr).ToDouble();
}

}  // namespace

// ---------------------------------------------------------------------------
// AseqEngine (DPC / SEM)
// ---------------------------------------------------------------------------

AseqEngine::AseqEngine(CompiledQuery query)
    : query_(std::move(query)),
      length_(query_.num_positive()),
      carrier_pos1_(query_.agg_positive_pos() >= 0
                        ? static_cast<size_t>(query_.agg_positive_pos()) + 1
                        : 0),
      counters_(length_, query_.agg().func, carrier_pos1_, query_.window_ms(),
                &stats_),
      role_table_(BuildRoleTable(query_)) {
  assert(!query_.partitioned());
  assert(!query_.has_join_predicates());
}

void AseqEngine::ProcessEvent(const Event& e, std::vector<Output>* out) {
  ++stats_.events_processed;
  const std::vector<Role>* roles = LookupRoles(role_table_, e.type());
  if (roles == nullptr) return;
  bool trigger = false;
  for (const Role& role : *roles) {
    if (!query_.QualifiesFor(e, role.elem_index)) continue;
    if (role.negated) {
      counters_.ResetPrefix(role.position);
      continue;
    }
    double v = role.position == carrier_pos1_ ? CarrierValue(query_, e) : 0;
    if (role.position == 1) {
      counters_.OnStart(e, v);
    } else {
      counters_.ApplyUpdate(role.position, v);
    }
    if (role.position == length_) trigger = true;
  }
  if (trigger) {
    Output output;
    output.ts = e.ts();
    output.seq = e.seq();
    output.value = counters_.Total().Finalize(query_.agg().func);
    out->push_back(std::move(output));
    ++stats_.outputs;
  }
}

void AseqEngine::OnEvent(const Event& e, std::vector<Output>* out) {
  counters_.Purge(e.ts());
  ProcessEvent(e, out);
}

void AseqEngine::OnBatch(std::span<const Event> batch,
                         std::vector<Output>* out) {
  if (batch.empty()) return;
  const bool windowed = counters_.windowed();
  const Timestamp window_ms = counters_.window_ms();
  // Lower bound on the earliest live expiration: Purge(now) is a no-op for
  // now < next_expiry, so those calls are skipped without changing state.
  Timestamp next_expiry = counters_.next_expiry();
  for (const Event& e : batch) {
    if (e.ts() >= next_expiry) {
      counters_.Purge(e.ts());
      next_expiry = counters_.next_expiry();
    }
    ProcessEvent(e, out);
    if (windowed) {
      // Any counter ProcessEvent created expires at e.ts() + window or
      // later, so the cached bound stays a valid lower bound.
      const Timestamp bound = e.ts() + window_ms;
      if (bound < next_expiry) next_expiry = bound;
    }
  }
  stats_.NoteBatch(batch.size());
}

std::vector<Output> AseqEngine::Poll(Timestamp now) {
  counters_.Purge(now);
  Output output;
  output.ts = now;
  output.value = counters_.Total().Finalize(query_.agg().func);
  return {std::move(output)};
}

Status AseqEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  counters_.Checkpoint(writer);
  return Status::OK();
}

Status AseqEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  ASEQ_RETURN_NOT_OK(counters_.Restore(reader));
  // Stats last: the structural rebuild above must not perturb the restored
  // object accounting.
  stats_ = stats;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// HpcEngine
// ---------------------------------------------------------------------------

HpcEngine::HpcEngine(CompiledQuery query)
    : query_(std::move(query)),
      length_(query_.num_positive()),
      carrier_pos1_(query_.agg_positive_pos() >= 0
                        ? static_cast<size_t>(query_.agg_positive_pos()) + 1
                        : 0),
      role_table_(BuildRoleTable(query_)) {
  assert(query_.partitioned());
  assert(!query_.has_join_predicates());
}

HpcEngine::RoleProbe& HpcEngine::NextProbe() {
  if (probes_used_ == probes_.size()) probes_.emplace_back();
  return probes_[probes_used_++];
}

void HpcEngine::StageBatch(std::span<const Event> batch) {
  probes_used_ = 0;
  plans_.clear();
  for (const Event& e : batch) {
    EventPlan plan;
    plan.first_probe = probes_used_;
    const std::vector<Role>* roles = LookupRoles(role_table_, e.type());
    if (roles != nullptr) {
      for (const Role& role : *roles) {
        if (!query_.QualifiesFor(e, role.elem_index)) continue;
        RoleProbe& probe = NextProbe();
        probe.role = &role;
        if (role.negated) {
          if (!query_.PartitionKeyFor(e, role.elem_index, &probe.key,
                                      &probe.covered)) {
            --probes_used_;  // missing partition attribute: ignored
            continue;
          }
          probe.kind = RoleProbe::Kind::kNegated;
          probe.fully_covered = true;
          for (bool c : probe.covered) {
            probe.fully_covered = probe.fully_covered && c;
          }
          probe.hash =
              probe.fully_covered ? PartitionKeyHash{}(probe.key) : 0;
        } else {
          // Positive role: the key always fully covers positive elements.
          if (!query_.PartitionKeyFor(e, role.elem_index, &probe.key)) {
            --probes_used_;
            continue;
          }
          probe.kind = RoleProbe::Kind::kPositive;
          probe.fully_covered = true;
          probe.hash = PartitionKeyHash{}(probe.key);
        }
      }
    }
    plan.num_probes = probes_used_ - plan.first_probe;
    plans_.push_back(plan);
  }
}

void HpcEngine::PrefetchPartitions() const {
  const size_t buckets = partitions_.bucket_count();
  if (buckets == 0) return;
  for (size_t i = 0; i < probes_used_; ++i) {
    const RoleProbe& probe = probes_[i];
    // Partial-coverage negation scans every partition; nothing to target.
    if (probe.kind == RoleProbe::Kind::kNegated && !probe.fully_covered) {
      continue;
    }
    const size_t bucket = probe.hash % buckets;
    auto it = partitions_.cbegin(bucket);
    if (it != partitions_.cend(bucket)) {
      // Pull the bucket's first node into cache without dereferencing it;
      // the probe in ExecuteEvent then hits warm lines (DRAMHiT-style).
      __builtin_prefetch(std::addressof(*it), /*rw=*/0, /*locality=*/3);
    }
  }
}

void HpcEngine::ExecuteEvent(const Event& e, const EventPlan& plan,
                             std::vector<Output>* out) {
  ++stats_.events_processed;
  bool trigger = false;
  const PartitionKey* trigger_key = nullptr;

  for (size_t i = plan.first_probe; i < plan.first_probe + plan.num_probes;
       ++i) {
    RoleProbe& probe = probes_[i];
    const Role& role = *probe.role;
    if (probe.kind == RoleProbe::Kind::kNegated) {
      if (probe.fully_covered) {
        auto it = partitions_.find(HashedPartitionKeyRef{&probe.key,
                                                         probe.hash});
        if (it != partitions_.end()) {
          MutatePartition(it, [&] {
            it->second.Purge(e.ts());
            it->second.ResetPrefix(role.position);
          });
        }
      } else {
        // Invalidate every partition matching on the covering parts.
        for (auto it = partitions_.begin(); it != partitions_.end(); ++it) {
          bool match = true;
          for (size_t p = 0; p < probe.covered.size() && match; ++p) {
            if (probe.covered[p] &&
                !it->first.parts[p].Equals(probe.key.parts[p])) {
              match = false;
            }
          }
          if (match) {
            MutatePartition(it, [&] {
              it->second.Purge(e.ts());
              it->second.ResetPrefix(role.position);
            });
          }
        }
      }
      continue;
    }
    // Positive role.
    if (role.position == 1) {
      auto it = partitions_.find(HashedPartitionKeyRef{&probe.key, probe.hash});
      if (it == partitions_.end()) {
        it = partitions_
                 .try_emplace(std::move(probe.key), length_, query_.agg().func,
                              carrier_pos1_, query_.window_ms(), &stats_)
                 .first;
      }
      MutatePartition(it, [&] { it->second.Purge(e.ts()); });
      // A start landing in an empty windowed partition establishes a new
      // earliest expiration; put it on the expiry heap.
      const bool was_empty =
          it->second.windowed() && it->second.num_counters() == 0;
      MutatePartition(it, [&] {
        it->second.OnStart(e, role.position == carrier_pos1_
                                  ? CarrierValue(query_, e)
                                  : 0);
      });
      if (was_empty) EnqueueExpiry(it, probe.hash);
      if (role.position == length_) {
        trigger = true;
        trigger_key = &it->first;  // node-stable under rehash
      }
    } else {
      auto it = partitions_.find(HashedPartitionKeyRef{&probe.key, probe.hash});
      if (it != partitions_.end()) {
        MutatePartition(it, [&] {
          it->second.Purge(e.ts());
          it->second.ApplyUpdate(role.position,
                                 role.position == carrier_pos1_
                                     ? CarrierValue(query_, e)
                                     : 0);
        });
      }
      if (role.position == length_) {
        trigger = true;
        // Triggers fire even into an absent partition (the total is then
        // whatever the other live partitions hold).
        trigger_key = &probe.key;
      }
    }
  }

  if (trigger) {
    Output output;
    output.ts = e.ts();
    output.seq = e.seq();
    const PartitionSpec& spec = query_.partition_spec();
    if (count_fast_path()) {
      // O(1) trigger: purge what is due, then read the running totals —
      // integer-exact, so identical to the full partition scan.
      AdvanceExpiry(e.ts());
      AggAccum acc;
      if (spec.per_group_output) {
        const Value& group = trigger_key->parts[spec.group_part];
        output.group = group;
        auto git = group_counts_.find(group);
        acc.count = git == group_counts_.end()
                        ? 0
                        : static_cast<uint64_t>(git->second);
      } else {
        acc.count = static_cast<uint64_t>(running_count_);
      }
      output.value = acc.Finalize(AggFunc::kCount);
    } else if (spec.per_group_output) {
      const Value& group = trigger_key->parts[spec.group_part];
      output.group = group;
      output.value =
          ScanTotal(e.ts(), /*match_group=*/true, group)
              .Finalize(query_.agg().func);
    } else {
      output.value = ScanTotal(e.ts(), /*match_group=*/false, Value())
                         .Finalize(query_.agg().func);
    }
    out->push_back(std::move(output));
    ++stats_.outputs;
  }
}

void HpcEngine::OnEvent(const Event& e, std::vector<Output>* out) {
  StageBatch(std::span<const Event>(&e, 1));
  ExecuteEvent(e, plans_[0], out);
}

void HpcEngine::OnBatch(std::span<const Event> batch,
                        std::vector<Output>* out) {
  if (batch.empty()) return;
  StageBatch(batch);
  PrefetchPartitions();
  for (size_t i = 0; i < batch.size(); ++i) {
    ExecuteEvent(batch[i], plans_[i], out);
  }
  stats_.NoteBatch(batch.size());
}

AggAccum HpcEngine::ScanTotal(Timestamp now, bool match_group,
                              const Value& group) {
  const PartitionSpec& spec = query_.partition_spec();
  AggAccum acc;
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    MutatePartition(it, [&] { it->second.Purge(now); });
    if (it->second.windowed() && it->second.num_counters() == 0) {
      it = partitions_.erase(it);
      continue;
    }
    if (!match_group ||
        it->first.parts[spec.group_part].Equals(group)) {
      acc.Merge(it->second.Total(), query_.agg().func);
    }
    ++it;
  }
  return acc;
}

void HpcEngine::SyncPurgeTo(Timestamp now) {
  if (!query_.has_window()) return;  // nothing ever expires
  if (count_fast_path()) {
    AdvanceExpiry(now);
    return;
  }
  // Mirror ScanTotal's purge-and-erase sweep exactly, minus the
  // accumulation: the serial trigger purges *every* partition as it scans,
  // and erases the ones left empty.
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    it->second.Purge(now);
    if (it->second.windowed() && it->second.num_counters() == 0) {
      it = partitions_.erase(it);
    } else {
      ++it;
    }
  }
}

void HpcEngine::EnqueueExpiry(PartitionMap::iterator it, size_t hash) {
  if (!count_fast_path()) return;  // triggers re-scan; no heap needed
  const Timestamp exp = it->second.next_expiry();
  if (exp == std::numeric_limits<Timestamp>::max()) return;
  expiry_heap_.push(ExpiryEntry{exp, hash, it->first});
}

void HpcEngine::AdvanceExpiry(Timestamp now) {
  while (!expiry_heap_.empty() && expiry_heap_.top().exp <= now) {
    ExpiryEntry top = expiry_heap_.top();
    expiry_heap_.pop();
    auto it = partitions_.find(HashedPartitionKeyRef{&top.key, top.hash});
    if (it == partitions_.end()) continue;  // stale: already erased
    MutatePartition(it, [&] { it->second.Purge(now); });
    const Timestamp next = it->second.next_expiry();
    if (next == std::numeric_limits<Timestamp>::max()) {
      if (it->second.windowed() && it->second.num_counters() == 0) {
        partitions_.erase(it);
      }
      continue;
    }
    // Still live (or the heap entry was stale-early): revisit when due.
    top.exp = next;
    expiry_heap_.push(std::move(top));
  }
}

std::vector<Output> HpcEngine::Poll(Timestamp now) {
  const PartitionSpec& spec = query_.partition_spec();
  std::vector<Output> outputs;
  if (!spec.per_group_output) {
    Output output;
    output.ts = now;
    output.value = ScanTotal(now, /*match_group=*/false, Value())
                       .Finalize(query_.agg().func);
    outputs.push_back(std::move(output));
    return outputs;
  }
  // One output per live group.
  std::unordered_map<Value, AggAccum, ValueHash> groups;
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    MutatePartition(it, [&] { it->second.Purge(now); });
    if (it->second.windowed() && it->second.num_counters() == 0) {
      it = partitions_.erase(it);
      continue;
    }
    groups[it->first.parts[spec.group_part]].Merge(it->second.Total(),
                                                   query_.agg().func);
    ++it;
  }
  for (const auto& [group, acc] : groups) {
    Output output;
    output.ts = now;
    output.group = group;
    output.value = acc.Finalize(query_.agg().func);
    outputs.push_back(std::move(output));
  }
  return outputs;
}

Status HpcEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  // The bucket count pins the map's iteration order (see Restore), which
  // floating-point aggregates observe through ScanTotal's merge order.
  writer->WriteU64(partitions_.bucket_count());
  writer->WriteU64(partitions_.size());
  for (const auto& [key, counters] : partitions_) {
    ckpt::WritePartitionKey(writer, key);
    counters.Checkpoint(writer);
  }
  writer->WriteI64(running_count_);
  writer->WriteU64(group_counts_.size());
  for (const auto& [group, count] : group_counts_) {
    ckpt::WriteValue(writer, group);
    writer->WriteI64(count);
  }
  return Status::OK();
}

Status HpcEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  uint64_t bucket_count = 0;
  uint64_t n_partitions = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadU64(&bucket_count, "partition buckets"));
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_partitions, 16, "partitions"));
  std::vector<std::pair<PartitionKey, CounterSet>> parsed;
  parsed.reserve(n_partitions);
  for (uint64_t i = 0; i < n_partitions; ++i) {
    PartitionKey key;
    ASEQ_RETURN_NOT_OK(ckpt::ReadPartitionKey(reader, &key));
    CounterSet counters(length_, query_.agg().func, carrier_pos1_,
                        query_.window_ms(), &stats_);
    ASEQ_RETURN_NOT_OK(counters.Restore(reader));
    parsed.emplace_back(std::move(key), std::move(counters));
  }
  // Rebuild the map with the checkpointed bucket count, inserting in
  // *reverse* serialized order: libstdc++ keeps a bucket's nodes adjacent
  // and inserts at the bucket head, so this reproduces the source map's
  // iteration order exactly — which ScanTotal's floating-point merge order
  // (SUM/AVG) observes. COUNT/MIN/MAX would be order-insensitive, but
  // byte-identical recovery must not depend on the aggregate.
  partitions_.clear();
  partitions_.rehash(bucket_count);
  for (auto it = parsed.rbegin(); it != parsed.rend(); ++it) {
    if (!partitions_.emplace(std::move(it->first), std::move(it->second))
             .second) {
      return Status::ParseError(
          "snapshot corrupt: duplicate partition key in HPC payload");
    }
  }
  ASEQ_RETURN_NOT_OK(reader->ReadI64(&running_count_, "running count"));
  uint64_t n_groups = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_groups, 9, "group counts"));
  group_counts_.clear();
  for (uint64_t i = 0; i < n_groups; ++i) {
    Value group;
    int64_t count = 0;
    ASEQ_RETURN_NOT_OK(ckpt::ReadValue(reader, &group));
    ASEQ_RETURN_NOT_OK(reader->ReadI64(&count, "group count"));
    group_counts_[std::move(group)] = count;
  }
  // The expiry heap is rebuilt rather than serialized: one entry per live
  // windowed partition at its next expiration. The original heap may have
  // carried stale or duplicate entries, but those only ever trigger no-op
  // purges, so the rebuilt heap is behaviorally identical.
  expiry_heap_ = {};
  for (auto it = partitions_.begin(); it != partitions_.end(); ++it) {
    EnqueueExpiry(it, PartitionKeyHash{}(it->first));
  }
  stats_ = stats;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

Result<std::unique_ptr<QueryEngine>> CreateAseqEngine(
    const CompiledQuery& query) {
  if (query.has_join_predicates()) {
    return Status::Unsupported(
        "A-Seq supports local and equivalence predicates only; query '" +
        query.ToString() +
        "' has general join predicates (use the stack-based baseline)");
  }
  if (query.partitioned()) {
    return std::unique_ptr<QueryEngine>(new HpcEngine(query));
  }
  return std::unique_ptr<QueryEngine>(new AseqEngine(query));
}

}  // namespace aseq
