#include "aseq/aseq_engine.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <utility>

#include "ckpt/ckpt.h"

namespace aseq {

// ---------------------------------------------------------------------------
// AseqEngine (DPC / SEM)
// ---------------------------------------------------------------------------

AseqEngine::AseqEngine(CompiledQuery query)
    : query_(std::move(query)),
      length_(query_.num_positive()),
      carrier_pos1_(query_.agg_positive_pos() >= 0
                        ? static_cast<size_t>(query_.agg_positive_pos()) + 1
                        : 0),
      counters_(length_, query_.agg().func, carrier_pos1_, query_.window_ms(),
                &stats_),
      program_(query_) {
  assert(!query_.partitioned());
  assert(!query_.has_join_predicates());
}

void AseqEngine::ProcessEvent(const Event& e, std::vector<Output>* out) {
  ++stats_.events_processed;
  bool trigger = false;
  plan::AdmissionRecord rec;
  for (const plan::RoleProgram& rp : program_.RolesFor(e.type())) {
    // Fused qualify + carrier load; no partition parts to extract here.
    if (!program_.AdmitRole(e, rp, &rec, &stats_)) continue;
    const Role& role = rp.role;
    if (role.negated) {
      counters_.ResetPrefix(role.position);
      continue;
    }
    if (role.position == 1) {
      counters_.OnStart(e, rec.carrier);
    } else {
      counters_.ApplyUpdate(role.position, rec.carrier);
    }
    if (role.position == length_) trigger = true;
  }
  if (trigger) {
    Output output;
    output.ts = e.ts();
    output.seq = e.seq();
    output.value = counters_.Total().Finalize(query_.agg().func);
    out->push_back(std::move(output));
    ++stats_.outputs;
  }
}

void AseqEngine::OnEvent(const Event& e, std::vector<Output>* out) {
  counters_.Purge(e.ts());
  ProcessEvent(e, out);
}

void AseqEngine::OnBatch(std::span<const Event> batch,
                         std::vector<Output>* out) {
  if (batch.empty()) return;
  const bool windowed = counters_.windowed();
  const Timestamp window_ms = counters_.window_ms();
  // Lower bound on the earliest live expiration: Purge(now) is a no-op for
  // now < next_expiry, so those calls are skipped without changing state.
  Timestamp next_expiry = counters_.next_expiry();
  for (const Event& e : batch) {
    if (e.ts() >= next_expiry) {
      counters_.Purge(e.ts());
      next_expiry = counters_.next_expiry();
    }
    ProcessEvent(e, out);
    if (windowed) {
      // Any counter ProcessEvent created expires at e.ts() + window or
      // later, so the cached bound stays a valid lower bound.
      const Timestamp bound = e.ts() + window_ms;
      if (bound < next_expiry) next_expiry = bound;
    }
  }
  stats_.NoteBatch(batch.size());
}

std::vector<Output> AseqEngine::Poll(Timestamp now) {
  counters_.Purge(now);
  Output output;
  output.ts = now;
  output.value = counters_.Total().Finalize(query_.agg().func);
  return {std::move(output)};
}

Status AseqEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  counters_.Checkpoint(writer);
  return Status::OK();
}

Status AseqEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  ASEQ_RETURN_NOT_OK(counters_.Restore(reader));
  // Stats last: the structural rebuild above must not perturb the restored
  // object accounting.
  stats_ = stats;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// HpcEngine
// ---------------------------------------------------------------------------

HpcEngine::HpcEngine(CompiledQuery query)
    : query_(std::move(query)),
      length_(query_.num_positive()),
      carrier_pos1_(query_.agg_positive_pos() >= 0
                        ? static_cast<size_t>(query_.agg_positive_pos()) + 1
                        : 0),
      num_parts_(query_.partition_spec().parts.size()),
      full_mask_((uint64_t{1} << num_parts_) - 1),
      per_group_(query_.partition_spec().per_group_output),
      group_part_(query_.partition_spec().group_part >= 0
                      ? static_cast<size_t>(query_.partition_spec().group_part)
                      : 0),
      single_part_(num_parts_ == 1),
      store_(single_part_),
      program_(query_) {
  assert(query_.partitioned());
  assert(!query_.has_join_predicates());
  assert(num_parts_ <= container::kMaxKeyParts &&
         "CreateAseqEngine rejects wider keys");
}

void HpcEngine::PrefetchIndex() const {
  for (const plan::AdmissionRecord& rec : admitter_.records()) {
    // Partial-coverage negation scans every partition; nothing to target.
    if (rec.role->role.negated && !rec.role->fully_covered) continue;
    store_.PrefetchLookup(rec.key_hash, rec.key);
    if (per_group_ && count_fast_path()) {
      // The COUNT fast path folds counter deltas into group_counts_; warm
      // that cell too while the batch pipeline has distance to spare.
      const uint32_t idx = DenseIdx(rec.key.ids[group_part_]);
      if (idx < group_counts_.size()) {
        __builtin_prefetch(&group_counts_[idx], /*rw=*/1, /*locality=*/3);
      }
    }
  }
}

void HpcEngine::PrefetchPartitions() const {
  for (const plan::AdmissionRecord& rec : admitter_.records()) {
    // Partial-coverage negation scans every partition; nothing to target.
    if (rec.role->role.negated && !rec.role->fully_covered) continue;
    // The index lines are warm from staging (see store_.PrefetchEntry for
    // why the resolved slot is deliberately discarded).
    store_.PrefetchEntry(rec.key_hash, rec.key);
  }
}

void HpcEngine::ExecuteEvent(const Event& e,
                             std::span<const plan::AdmissionRecord> records,
                             std::vector<Output>* out) {
  ++stats_.events_processed;
  bool trigger = false;
  container::InternedKey trigger_key;

  for (const plan::AdmissionRecord& rec : records) {
    const Role& role = rec.role->role;
    if (role.negated) {
      if (rec.role->fully_covered) {
        const uint32_t slot = store_.Lookup(rec.key_hash, rec.key);
        if (slot != kNoSlot) {
          Partition& part = store_.at(slot);
          MutatePartition(part, [&] {
            part.counters.Purge(e.ts());
            part.counters.ResetPrefix(role.position);
          });
        }
      } else {
        // Invalidate every partition matching on the covering parts —
        // slab slot order, like every observable sweep. An id compare is
        // exactly a Value::Equals compare (the interner is
        // Equals-consistent), and an unseen value staged as kNoId matches
        // no live partition.
        for (uint32_t s = 0; s < store_.end(); ++s) {
          if (!store_.live(s)) continue;
          Partition& part = store_.at(s);
          bool match = true;
          for (size_t p = 0; p < num_parts_ && match; ++p) {
            if ((rec.role->covered_mask >> p) & 1) {
              match = part.key.ids[p] == rec.key.ids[p];
            }
          }
          if (match) {
            MutatePartition(part, [&] {
              part.counters.Purge(e.ts());
              part.counters.ResetPrefix(role.position);
            });
          }
        }
      }
      continue;
    }
    // Positive role.
    if (role.position == 1) {
      // Single-probe upsert: the index entry is created first (with a
      // placeholder slot), then the partition is slab-allocated into it.
      auto [slot_ref, inserted] = store_.Upsert(rec.key_hash, rec.key);
      if (inserted) {
        *slot_ref = store_.Emplace(rec.key, rec.key_hash, length_,
                                   query_.agg().func, carrier_pos1_,
                                   query_.window_ms(), &stats_);
      }
      Partition& part = store_.at(*slot_ref);
      MutatePartition(part, [&] { part.counters.Purge(e.ts()); });
      // A start landing in an empty windowed partition establishes a new
      // earliest expiration; put it on the expiry heap.
      const bool was_empty =
          part.counters.windowed() && part.counters.num_counters() == 0;
      MutatePartition(part, [&] { part.counters.OnStart(e, rec.carrier); });
      if (was_empty) EnqueueExpiry(part);
      if (role.position == length_) {
        trigger = true;
        trigger_key = part.key;
      }
    } else {
      const uint32_t found = store_.Lookup(rec.key_hash, rec.key);
      if (found != kNoSlot) {
        Partition& part = store_.at(found);
        MutatePartition(part, [&] {
          part.counters.Purge(e.ts());
          part.counters.ApplyUpdate(role.position, rec.carrier);
        });
      }
      if (role.position == length_) {
        trigger = true;
        // Triggers fire even into an absent partition (the total is then
        // whatever the other live partitions hold).
        trigger_key = rec.key;
      }
    }
  }

  if (trigger) {
    Output output;
    output.ts = e.ts();
    output.seq = e.seq();
    if (count_fast_path()) {
      // O(1) trigger: purge what is due, then read the running totals —
      // integer-exact, so identical to the full partition scan.
      AdvanceExpiry(e.ts());
      AggAccum acc;
      if (per_group_) {
        const uint32_t gid = trigger_key.ids[group_part_];
        output.group = store_.interner().ValueOf(gid);
        const uint32_t idx = DenseIdx(gid);
        acc.count = idx < group_counts_.size()
                        ? static_cast<uint64_t>(group_counts_[idx])
                        : 0;
      } else {
        acc.count = static_cast<uint64_t>(running_count_);
      }
      output.value = acc.Finalize(AggFunc::kCount);
    } else if (per_group_) {
      const uint32_t gid = trigger_key.ids[group_part_];
      output.group = store_.interner().ValueOf(gid);
      output.value = ScanTotal(e.ts(), /*match_group=*/true, gid)
                         .Finalize(query_.agg().func);
    } else {
      output.value = ScanTotal(e.ts(), /*match_group=*/false, 0)
                         .Finalize(query_.agg().func);
    }
    out->push_back(std::move(output));
    ++stats_.outputs;
  }
}

void HpcEngine::OnEvent(const Event& e, std::vector<Output>* out) {
  admitter_.AdmitBatch(program_, std::span<const Event>(&e, 1),
                       &store_.interner(), &stats_);
  PrefetchIndex();
  ExecuteEvent(e, admitter_.RecordsFor(0), out);
  UpdateHtStats();
}

void HpcEngine::OnBatch(std::span<const Event> batch,
                        std::vector<Output>* out) {
  if (batch.empty()) return;
  admitter_.AdmitBatch(program_, batch, &store_.interner(), &stats_);
  PrefetchIndex();
  PrefetchPartitions();
  for (size_t i = 0; i < batch.size(); ++i) {
    ExecuteEvent(batch[i], admitter_.RecordsFor(i), out);
  }
  stats_.NoteBatch(batch.size());
  UpdateHtStats();
}

void HpcEngine::UpdateHtStats() {
  // The dense slot/group arrays are not hash tables; only the interner and
  // the multi-part index probe (see PartitionStore's gauges).
  stats_.ht_probes = store_.probes();
  stats_.ht_probe_steps = store_.probe_steps();
  stats_.ht_slots = store_.table_capacity();
  stats_.ht_entries = store_.table_entries();
}

AggAccum HpcEngine::ScanTotal(Timestamp now, bool match_group, uint32_t gid) {
  AggAccum acc;
  // Slab slot order is the engine's observable iteration order: the
  // floating-point merge order below (SUM/AVG) must survive
  // checkpoint/restore byte-identically, and the checkpointed slab
  // geometry guarantees exactly that.
  for (uint32_t s = 0; s < store_.end(); ++s) {
    if (!store_.live(s)) continue;
    Partition& part = store_.at(s);
    MutatePartition(part, [&] { part.counters.Purge(now); });
    if (part.counters.windowed() && part.counters.num_counters() == 0) {
      ErasePartition(s);
      continue;
    }
    if (!match_group || part.key.ids[group_part_] == gid) {
      acc.Merge(part.counters.Total(), query_.agg().func);
    }
  }
  return acc;
}

void HpcEngine::ErasePartition(uint32_t slot) { store_.Erase(slot); }

void HpcEngine::SyncPurgeTo(Timestamp now) {
  if (!query_.has_window()) return;  // nothing ever expires
  if (count_fast_path()) {
    AdvanceExpiry(now);
    return;
  }
  // Mirror ScanTotal's purge-and-erase sweep exactly, minus the
  // accumulation: the serial trigger purges *every* partition as it scans,
  // and erases the ones left empty.
  for (uint32_t s = 0; s < store_.end(); ++s) {
    if (!store_.live(s)) continue;
    Partition& part = store_.at(s);
    part.counters.Purge(now);
    if (part.counters.windowed() && part.counters.num_counters() == 0) {
      ErasePartition(s);
    }
  }
}

void HpcEngine::EnqueueExpiry(const Partition& part) {
  if (!count_fast_path()) return;  // triggers re-scan; no clock needed
  clock_.Schedule(part.counters.next_expiry(), part.hash, part.key);
}

void HpcEngine::AdvanceExpiry(Timestamp now) {
  clock_.AdvanceTo(
      now, [&](const state::WindowClock::Entry& top) -> Timestamp {
        const uint32_t slot = store_.Lookup(top.hash, top.key);
        if (slot == kNoSlot) {  // stale: already erased
          return state::WindowClock::kNever;
        }
        Partition& part = store_.at(slot);
        MutatePartition(part, [&] { part.counters.Purge(now); });
        const Timestamp next = part.counters.next_expiry();
        if (next == state::WindowClock::kNever) {
          if (part.counters.windowed() && part.counters.num_counters() == 0) {
            ErasePartition(slot);
          }
          return state::WindowClock::kNever;
        }
        // Still live (or the entry was stale-early): revisit when due.
        return next;
      });
}

std::vector<Output> HpcEngine::Poll(Timestamp now) {
  std::vector<Output> outputs;
  if (!per_group_) {
    Output output;
    output.ts = now;
    output.value = ScanTotal(now, /*match_group=*/false, 0)
                       .Finalize(query_.agg().func);
    outputs.push_back(std::move(output));
    return outputs;
  }
  // One output per live group, in first-seen slab-slot order — a pure
  // function of engine state, so a restored engine polls byte-identically.
  std::vector<std::pair<uint32_t, AggAccum>> groups;
  container::FlatMap<uint32_t, uint32_t, container::IdHash> group_pos;
  for (uint32_t s = 0; s < store_.end(); ++s) {
    if (!store_.live(s)) continue;
    Partition& part = store_.at(s);
    MutatePartition(part, [&] { part.counters.Purge(now); });
    if (part.counters.windowed() && part.counters.num_counters() == 0) {
      ErasePartition(s);
      continue;
    }
    const uint32_t gid = part.key.ids[group_part_];
    auto [pos, inserted] = group_pos.TryEmplaceHashed(
        container::IdHash{}(gid), gid, static_cast<uint32_t>(groups.size()));
    if (inserted) groups.emplace_back(gid, AggAccum());
    groups[*pos].second.Merge(part.counters.Total(), query_.agg().func);
  }
  for (const auto& [gid, acc] : groups) {
    Output output;
    output.ts = now;
    output.group = store_.interner().ValueOf(gid);
    output.value = acc.Finalize(query_.agg().func);
    outputs.push_back(std::move(output));
  }
  return outputs;
}

Status HpcEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  // The store serializes the structural spine (interner values in id
  // order, slab geometry, entries in canonical key order, freelist); the
  // per-partition counter payload rides along via the callback.
  ASEQ_RETURN_NOT_OK(
      store_.Checkpoint(writer, [](const Partition& part, ckpt::Writer* w) {
        part.counters.Checkpoint(w);
        return Status::OK();
      }));
  writer->WriteI64(running_count_);
  // Nonzero group totals, ascending group id. Zero and absent are the same
  // reading (see group_counts_), so nonzero-only is the canonical payload:
  // two logically identical states serialize byte-identically no matter
  // which groups ever held a count. (DenseIdx wraps kNoId to cell 0, and
  // wraps back here — it sorts last, as the old map payload had it.)
  std::vector<std::pair<uint32_t, int64_t>> groups;
  for (uint32_t idx = 0; idx < group_counts_.size(); ++idx) {
    if (group_counts_[idx] != 0) {
      groups.emplace_back(idx - 1u, group_counts_[idx]);
    }
  }
  std::sort(groups.begin(), groups.end());
  writer->WriteU64(groups.size());
  for (const auto& [gid, count] : groups) {
    writer->WriteU32(gid);
    writer->WriteI64(count);
  }
  // Window clock, verbatim heap order: the pop order of equal deadlines
  // depends on the heap's internal layout, and AdvanceExpiry's
  // purge-then-erase order feeds the slab freelist — observable through
  // later slot assignment.
  clock_.Checkpoint(writer);
  return Status::OK();
}

Status HpcEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  // The store validates the slab geometry and rebuilds the index; the
  // callback re-creates each partition in its checkpointed slot and reads
  // its counter payload.
  ASEQ_RETURN_NOT_OK(store_.Restore(
      reader, [&](uint32_t slot, const container::InternedKey& key,
                  uint64_t hash, ckpt::Reader* r) -> Status {
        Partition& part = store_.RestoreEmplaceAt(
            slot, key, hash, length_, query_.agg().func, carrier_pos1_,
            query_.window_ms(), &stats_);
        return part.counters.Restore(r);
      }));
  ASEQ_RETURN_NOT_OK(reader->ReadI64(&running_count_, "running count"));
  uint64_t n_groups = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_groups, 12, "group counts"));
  group_counts_.assign(store_.interner().size() + 1, 0);
  uint32_t prev_gid = 0;
  for (uint64_t i = 0; i < n_groups; ++i) {
    uint32_t gid = 0;
    int64_t count = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadU32(&gid, "group id"));
    ASEQ_RETURN_NOT_OK(reader->ReadI64(&count, "group count"));
    if (gid >= store_.interner().size() || (i > 0 && gid <= prev_gid)) {
      return Status::ParseError(
          "snapshot corrupt: group id out of range or out of order");
    }
    prev_gid = gid;
    group_counts_[DenseIdx(gid)] = count;
  }
  ASEQ_RETURN_NOT_OK(clock_.Restore(reader, store_.interner().size()));
  // Stats last: the structural rebuild above must not perturb the restored
  // object accounting; the transient ht_* gauges refresh from the rebuilt
  // tables.
  stats_ = stats;
  UpdateHtStats();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

Result<std::unique_ptr<QueryEngine>> CreateAseqEngine(
    const CompiledQuery& query) {
  if (query.has_join_predicates()) {
    return Status::Unsupported(
        "A-Seq supports local and equivalence predicates only; query '" +
        query.ToString() +
        "' has general join predicates (use the stack-based baseline)");
  }
  if (query.partitioned()) {
    return std::unique_ptr<QueryEngine>(new HpcEngine(query));
  }
  return std::unique_ptr<QueryEngine>(new AseqEngine(query));
}

}  // namespace aseq
