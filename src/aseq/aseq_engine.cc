#include "aseq/aseq_engine.h"

#include <cassert>

namespace aseq {

namespace {

/// Carrier attribute value of an event, for roles at the carrier position.
double CarrierValue(const CompiledQuery& q, const Event& e) {
  return e.GetAttr(q.agg().attr).ToDouble();
}

}  // namespace

// ---------------------------------------------------------------------------
// AseqEngine (DPC / SEM)
// ---------------------------------------------------------------------------

AseqEngine::AseqEngine(CompiledQuery query)
    : query_(std::move(query)),
      length_(query_.num_positive()),
      carrier_pos1_(query_.agg_positive_pos() >= 0
                        ? static_cast<size_t>(query_.agg_positive_pos()) + 1
                        : 0),
      counters_(length_, query_.agg().func, carrier_pos1_, query_.window_ms(),
                &stats_) {
  assert(!query_.partitioned());
  assert(!query_.has_join_predicates());
}

void AseqEngine::OnEvent(const Event& e, std::vector<Output>* out) {
  ++stats_.events_processed;
  counters_.Purge(e.ts());
  const std::vector<Role>* roles = query_.FindRoles(e.type());
  if (roles == nullptr) return;
  bool trigger = false;
  for (const Role& role : *roles) {
    if (!query_.QualifiesFor(e, role.elem_index)) continue;
    if (role.negated) {
      counters_.ResetPrefix(role.position);
      continue;
    }
    double v = role.position == carrier_pos1_ ? CarrierValue(query_, e) : 0;
    if (role.position == 1) {
      counters_.OnStart(e, v);
    } else {
      counters_.ApplyUpdate(role.position, v);
    }
    if (role.position == length_) trigger = true;
  }
  if (trigger) {
    Output output;
    output.ts = e.ts();
    output.seq = e.seq();
    output.value = counters_.Total().Finalize(query_.agg().func);
    out->push_back(std::move(output));
    ++stats_.outputs;
  }
}

std::vector<Output> AseqEngine::Poll(Timestamp now) {
  counters_.Purge(now);
  Output output;
  output.ts = now;
  output.value = counters_.Total().Finalize(query_.agg().func);
  return {std::move(output)};
}

// ---------------------------------------------------------------------------
// HpcEngine
// ---------------------------------------------------------------------------

HpcEngine::HpcEngine(CompiledQuery query)
    : query_(std::move(query)),
      length_(query_.num_positive()),
      carrier_pos1_(query_.agg_positive_pos() >= 0
                        ? static_cast<size_t>(query_.agg_positive_pos()) + 1
                        : 0) {
  assert(query_.partitioned());
  assert(!query_.has_join_predicates());
}

void HpcEngine::OnEvent(const Event& e, std::vector<Output>* out) {
  ++stats_.events_processed;
  const std::vector<Role>* roles = query_.FindRoles(e.type());
  if (roles == nullptr) return;

  bool trigger = false;
  PartitionKey trigger_key;
  PartitionKey key;
  std::vector<bool> covered;

  for (const Role& role : *roles) {
    if (!query_.QualifiesFor(e, role.elem_index)) continue;
    if (role.negated) {
      if (!query_.PartitionKeyFor(e, role.elem_index, &key, &covered)) {
        continue;  // missing partition attribute: instance is ignored
      }
      bool fully_covered = true;
      for (bool c : covered) fully_covered = fully_covered && c;
      if (fully_covered) {
        auto it = partitions_.find(key);
        if (it != partitions_.end()) {
          it->second.Purge(e.ts());
          it->second.ResetPrefix(role.position);
        }
      } else {
        // Invalidate every partition matching on the covering parts.
        for (auto& [pkey, counters] : partitions_) {
          bool match = true;
          for (size_t i = 0; i < covered.size() && match; ++i) {
            if (covered[i] && !pkey.parts[i].Equals(key.parts[i])) {
              match = false;
            }
          }
          if (match) {
            counters.Purge(e.ts());
            counters.ResetPrefix(role.position);
          }
        }
      }
      continue;
    }
    // Positive role: the key always fully covers positive elements.
    if (!query_.PartitionKeyFor(e, role.elem_index, &key)) continue;
    if (role.position == 1) {
      auto [it, inserted] = partitions_.try_emplace(
          key, length_, query_.agg().func, carrier_pos1_, query_.window_ms(),
          &stats_);
      it->second.Purge(e.ts());
      it->second.OnStart(e, role.position == carrier_pos1_
                                ? CarrierValue(query_, e)
                                : 0);
    } else {
      auto it = partitions_.find(key);
      if (it != partitions_.end()) {
        it->second.Purge(e.ts());
        it->second.ApplyUpdate(role.position,
                               role.position == carrier_pos1_
                                   ? CarrierValue(query_, e)
                                   : 0);
      }
    }
    if (role.position == length_) {
      trigger = true;
      trigger_key = key;
    }
  }

  if (trigger) {
    Output output;
    output.ts = e.ts();
    output.seq = e.seq();
    const PartitionSpec& spec = query_.partition_spec();
    if (spec.per_group_output) {
      const Value& group = trigger_key.parts[spec.group_part];
      output.group = group;
      output.value =
          ScanTotal(e.ts(), /*match_group=*/true, group)
              .Finalize(query_.agg().func);
    } else {
      output.value = ScanTotal(e.ts(), /*match_group=*/false, Value())
                         .Finalize(query_.agg().func);
    }
    out->push_back(std::move(output));
    ++stats_.outputs;
  }
}

AggAccum HpcEngine::ScanTotal(Timestamp now, bool match_group,
                              const Value& group) {
  const PartitionSpec& spec = query_.partition_spec();
  AggAccum acc;
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    it->second.Purge(now);
    if (it->second.windowed() && it->second.num_counters() == 0) {
      it = partitions_.erase(it);
      continue;
    }
    if (!match_group ||
        it->first.parts[spec.group_part].Equals(group)) {
      acc.Merge(it->second.Total(), query_.agg().func);
    }
    ++it;
  }
  return acc;
}

std::vector<Output> HpcEngine::Poll(Timestamp now) {
  const PartitionSpec& spec = query_.partition_spec();
  std::vector<Output> outputs;
  if (!spec.per_group_output) {
    Output output;
    output.ts = now;
    output.value = ScanTotal(now, /*match_group=*/false, Value())
                       .Finalize(query_.agg().func);
    outputs.push_back(std::move(output));
    return outputs;
  }
  // One output per live group.
  std::unordered_map<Value, AggAccum, ValueHash> groups;
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    it->second.Purge(now);
    if (it->second.windowed() && it->second.num_counters() == 0) {
      it = partitions_.erase(it);
      continue;
    }
    groups[it->first.parts[spec.group_part]].Merge(it->second.Total(),
                                                   query_.agg().func);
    ++it;
  }
  for (const auto& [group, acc] : groups) {
    Output output;
    output.ts = now;
    output.group = group;
    output.value = acc.Finalize(query_.agg().func);
    outputs.push_back(std::move(output));
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

Result<std::unique_ptr<QueryEngine>> CreateAseqEngine(
    const CompiledQuery& query) {
  if (query.has_join_predicates()) {
    return Status::Unsupported(
        "A-Seq supports local and equivalence predicates only; query '" +
        query.ToString() +
        "' has general join predicates (use the stack-based baseline)");
  }
  if (query.partitioned()) {
    return std::unique_ptr<QueryEngine>(new HpcEngine(query));
  }
  return std::unique_ptr<QueryEngine>(new AseqEngine(query));
}

}  // namespace aseq
