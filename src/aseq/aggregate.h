#ifndef ASEQ_ASEQ_AGGREGATE_H_
#define ASEQ_ASEQ_AGGREGATE_H_

#include <cstdint>

#include "common/value.h"
#include "query/aggregate_spec.h"

namespace aseq {

/// \brief A combinable partial aggregate over a set of sequence matches.
///
/// The A-Seq engines never materialize matches; each prefix counter carries
/// the pieces needed for the final aggregate (Sec. 5):
///   * `count` — number of matches (COUNT, and the divisor of AVG);
///   * `sum`   — sum of the carrier attribute over matches (SUM/AVG);
///   * `ext`   — min/max of the carrier attribute over matches (MIN/MAX),
///               valid only when `has_ext`.
///
/// Accumulators merge across prefix counters (SEM sums per-start counters,
/// HPC additionally merges partitions) and finalize into an output Value.
struct AggAccum {
  uint64_t count = 0;
  double sum = 0;
  bool has_ext = false;
  double ext = 0;

  /// Folds `other` into this accumulator under function `func`.
  void Merge(const AggAccum& other, AggFunc func) {
    count += other.count;
    sum += other.sum;
    if (other.has_ext) {
      if (!has_ext) {
        has_ext = true;
        ext = other.ext;
      } else if (func == AggFunc::kMin ? (other.ext < ext)
                                       : (other.ext > ext)) {
        ext = other.ext;
      }
    }
  }

  /// Final output value:
  ///   COUNT -> int64; SUM -> double (0.0 over the empty match set);
  ///   AVG/MIN/MAX -> double, or null over the empty match set.
  Value Finalize(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return Value(static_cast<int64_t>(count));
      case AggFunc::kSum:
        return Value(sum);
      case AggFunc::kAvg:
        if (count == 0) return Value();
        return Value(sum / static_cast<double>(count));
      case AggFunc::kMin:
      case AggFunc::kMax:
        if (!has_ext) return Value();
        return Value(ext);
    }
    return Value();
  }
};

}  // namespace aseq

#endif  // ASEQ_ASEQ_AGGREGATE_H_
