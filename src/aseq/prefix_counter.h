#ifndef ASEQ_ASEQ_PREFIX_COUNTER_H_
#define ASEQ_ASEQ_PREFIX_COUNTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "aseq/aggregate.h"
#include "common/status.h"
#include "query/aggregate_spec.h"

namespace aseq {

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

/// \brief The PreCntr structure (Sec. 3.1): one cell per prefix pattern.
///
/// For a pattern with L positive event types, cell m (1-based) holds the
/// aggregate state over all matches of the length-m prefix pattern
/// constructed so far. The count recurrence is Lemma 1:
///
///   count(p_m) += count(p_{m-1})   when an instance of E_m arrives,
///
/// with the virtual `count(p_0) = 1` (so a START arrival increments cell 1;
/// in per-start SEM counters the constructor applies that first increment).
///
/// For SUM/AVG/MIN/MAX (Sec. 5) the counter carries parallel per-prefix
/// fields for cells at/after the carrier position `carrier_pos1` (the
/// positive position whose attribute is aggregated):
///
///   wsum(p_c)  += count(p_{c-1}) * v      (carrier arrival with value v)
///   wsum(p_m)  += wsum(p_{m-1})           (m > c)
///   ext(p_c)    = min/max(ext(p_c), v)    if count(p_{c-1}) > 0
///   ext(p_m)    = min/max(ext(p_m), ext(p_{m-1}))
///
/// These are the exact generalizations of Lemma 1 to the weighted and
/// extremal cases (see DESIGN.md §4 for how this relates to the paper's
/// sketch). The negation Recounting Rule (Lemma 6) resets one cell — count,
/// wsum, and ext together.
class PrefixCounter {
 public:
  /// \param length      number of positive pattern elements L (>= 1)
  /// \param func        aggregation function
  /// \param carrier_pos1 1-based positive position whose attribute is
  ///        aggregated; 0 for COUNT.
  PrefixCounter(size_t length, AggFunc func, size_t carrier_pos1);

  /// Applies a positive arrival at 1-based position `pos`. `value` is the
  /// aggregated attribute value, used only when pos == carrier position.
  void ApplyPositive(size_t pos, double value = 0);

  /// Recounting Rule: a qualifying negated instance arrived whose gap is
  /// `gap` positive elements from the start — reset the prefix of that
  /// length (1 <= gap < L).
  void ResetPrefix(size_t gap);

  /// Aggregate state of the full pattern (cell L).
  AggAccum Tail() const { return At(length_); }

  /// Aggregate state of the length-m prefix (1 <= m <= L).
  AggAccum At(size_t m) const;

  /// Count cell accessor (tests and the multi-query engines).
  uint64_t count_at(size_t m) const { return counts_[m]; }

  size_t length() const { return length_; }
  AggFunc func() const { return func_; }

  /// Serializes the cells (counts, wsum, ext/ext_valid as configured).
  void Checkpoint(ckpt::Writer* w) const;

  /// Restores the cells into a counter constructed with the same
  /// (length, func, carrier); fails on any shape mismatch.
  Status Restore(ckpt::Reader* r);

  /// Debug rendering: "[3 5 2 1]".
  std::string ToString() const;

 private:
  size_t length_;
  AggFunc func_;
  size_t carrier_;  // 1-based; 0 = none (COUNT)
  // Index 1..L used; index 0 is the virtual empty-prefix cell (count 1).
  std::vector<uint64_t> counts_;
  std::vector<double> wsum_;           // SUM/AVG only
  std::vector<double> ext_;            // MIN/MAX only
  std::vector<uint8_t> ext_valid_;     // MIN/MAX only
};

}  // namespace aseq

#endif  // ASEQ_ASEQ_PREFIX_COUNTER_H_
