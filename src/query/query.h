#ifndef ASEQ_QUERY_QUERY_H_
#define ASEQ_QUERY_QUERY_H_

#include <optional>
#include <string>

#include "common/event.h"
#include "query/aggregate_spec.h"
#include "query/pattern.h"
#include "query/predicate.h"

namespace aseq {

/// \brief The GROUP BY clause: partitions results by an attribute value.
///
/// Following Application I of the paper ("GROUP BY <IP>"), the grouping
/// attribute correlates *all* events of a match: every positive element of a
/// match carries the same value for the attribute, and one aggregation
/// result is produced per distinct value.
struct GroupBy {
  std::string attr_name;
  AttrId attr = kInvalidAttr;  // resolved attribute id
};

/// \brief A parsed (but not yet analyzed) CEP aggregation query:
///
/// ```
/// PATTERN SEQ(E1, ..., !Ei, ..., En)
/// [WHERE <comparison> [AND <comparison>]*]
/// [GROUP BY <attr>]
/// [AGG COUNT | SUM(T.a) | AVG(T.a) | MIN(T.a) | MAX(T.a)]
/// [WITHIN <duration>]
/// ```
///
/// AGG defaults to COUNT; WITHIN defaults to an unbounded window
/// (window_ms == 0).
struct Query {
  Pattern pattern;
  WhereClause where;
  std::optional<GroupBy> group_by;
  AggregateSpec agg;
  /// Sliding-window size in milliseconds; 0 means unbounded.
  Timestamp window_ms = 0;

  /// Renders the query back to (canonical) query-language text.
  std::string ToString() const;
};

}  // namespace aseq

#endif  // ASEQ_QUERY_QUERY_H_
