#include "query/parser.h"

#include <cmath>

#include "common/string_util.h"
#include "query/lexer.h"

namespace aseq {

namespace {

/// Milliseconds per duration-suffix unit; empty suffix means milliseconds.
Result<int64_t> UnitToMillis(std::string_view unit) {
  if (unit.empty() || EqualsIgnoreCase(unit, "ms")) return int64_t{1};
  if (EqualsIgnoreCase(unit, "s") || EqualsIgnoreCase(unit, "sec") ||
      EqualsIgnoreCase(unit, "second") || EqualsIgnoreCase(unit, "seconds")) {
    return int64_t{1000};
  }
  if (EqualsIgnoreCase(unit, "m") || EqualsIgnoreCase(unit, "min") ||
      EqualsIgnoreCase(unit, "minute") || EqualsIgnoreCase(unit, "minutes")) {
    return int64_t{60 * 1000};
  }
  if (EqualsIgnoreCase(unit, "h") || EqualsIgnoreCase(unit, "hour") ||
      EqualsIgnoreCase(unit, "hours")) {
    return int64_t{3600 * 1000};
  }
  return Status::ParseError("unknown duration unit: " + std::string(unit));
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query q;
    ASEQ_RETURN_NOT_OK(Expect("PATTERN"));
    ASEQ_RETURN_NOT_OK(ParsePattern(&q));
    if (PeekKeyword("WHERE")) {
      Advance();
      ASEQ_RETURN_NOT_OK(ParseWhere(&q));
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      ASEQ_RETURN_NOT_OK(Expect("BY"));
      ASEQ_RETURN_NOT_OK(ParseGroupBy(&q));
    }
    if (PeekKeyword("AGG")) {
      Advance();
      ASEQ_RETURN_NOT_OK(ParseAgg(&q));
    }
    if (PeekKeyword("WITHIN")) {
      Advance();
      ASEQ_RETURN_NOT_OK(ParseWithin(&q));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return ErrorAt(Peek(), "unexpected trailing input");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw) const { return Peek().IsKeyword(kw); }

  /// True at a position that ends an angle-wrapped clause: `>` followed by a
  /// clause keyword or end of input.
  bool AtClauseClosingAngle() const {
    if (Peek().kind != TokenKind::kGt) return false;
    const Token& next = Peek(1);
    return next.kind == TokenKind::kEnd || next.IsKeyword("WHERE") ||
           next.IsKeyword("GROUP") || next.IsKeyword("AGG") ||
           next.IsKeyword("WITHIN");
  }

  Status Expect(std::string_view kw) {
    if (!PeekKeyword(kw)) {
      return ErrorAt(Peek(), "expected keyword '" + std::string(kw) + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectKind(TokenKind kind) {
    if (Peek().kind != kind) {
      return ErrorAt(Peek(),
                     std::string("expected ") + TokenKindToString(kind));
    }
    Advance();
    return Status::OK();
  }

  Status ErrorAt(const Token& tok, std::string msg) const {
    msg += " at offset ";
    msg += std::to_string(tok.offset);
    msg += " (got ";
    msg += TokenKindToString(tok.kind);
    if (!tok.text.empty()) {
      msg += " '" + tok.text + "'";
    }
    msg += ")";
    return Status::ParseError(std::move(msg));
  }

  /// Consumes an optional '<' clause wrapper; returns whether one was eaten.
  bool MaybeOpenAngle() {
    if (Peek().kind == TokenKind::kLt) {
      Advance();
      return true;
    }
    return false;
  }

  Status CloseAngle(bool wrapped) {
    if (!wrapped) return Status::OK();
    if (Peek().kind != TokenKind::kGt) {
      return ErrorAt(Peek(), "expected closing '>'");
    }
    Advance();
    return Status::OK();
  }

  Status ParsePattern(Query* q) {
    bool wrapped = MaybeOpenAngle();
    ASEQ_RETURN_NOT_OK(Expect("SEQ"));
    ASEQ_RETURN_NOT_OK(ExpectKind(TokenKind::kLParen));
    std::vector<PatternElement> elems;
    while (true) {
      PatternElement e;
      if (Peek().kind == TokenKind::kBang) {
        Advance();
        e.negated = true;
      }
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorAt(Peek(), "expected event type name");
      }
      e.type_name = Advance().text;
      elems.push_back(std::move(e));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    ASEQ_RETURN_NOT_OK(ExpectKind(TokenKind::kRParen));
    ASEQ_RETURN_NOT_OK(CloseAngle(wrapped));
    q->pattern = Pattern(std::move(elems));
    return Status::OK();
  }

  Result<Operand> ParseOperand() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kIdentifier: {
        std::string elem = Advance().text;
        ASEQ_RETURN_NOT_OK(ExpectKind(TokenKind::kDot));
        if (Peek().kind != TokenKind::kIdentifier) {
          return ErrorAt(Peek(), "expected attribute name");
        }
        std::string attr = Advance().text;
        return Operand::AttrRef(std::move(elem), std::move(attr));
      }
      case TokenKind::kInteger: {
        Operand op = Operand::Literal(Value(Advance().int_value));
        return op;
      }
      case TokenKind::kFloat: {
        Operand op = Operand::Literal(Value(Advance().float_value));
        return op;
      }
      case TokenKind::kString: {
        Operand op = Operand::Literal(Value(Advance().text));
        return op;
      }
      default:
        return ErrorAt(tok, "expected attribute reference or literal");
    }
  }

  Result<CmpOp> ParseCmpOp() {
    switch (Peek().kind) {
      case TokenKind::kEq:
        Advance();
        return CmpOp::kEq;
      case TokenKind::kNe:
        Advance();
        return CmpOp::kNe;
      case TokenKind::kLt:
        Advance();
        return CmpOp::kLt;
      case TokenKind::kLe:
        Advance();
        return CmpOp::kLe;
      case TokenKind::kGt:
        Advance();
        return CmpOp::kGt;
      case TokenKind::kGe:
        Advance();
        return CmpOp::kGe;
      default:
        return ErrorAt(Peek(), "expected comparison operator");
    }
  }

  bool AtCmpOp() const {
    switch (Peek().kind) {
      case TokenKind::kEq:
      case TokenKind::kNe:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGe:
        return true;
      case TokenKind::kGt:
        // '>' closing an angle-wrapped clause is not an operator.
        return !AtClauseClosingAngle();
      default:
        return false;
    }
  }

  /// Parses one comparison chain `a op b [op c ...]`, expanding chained
  /// operators pairwise (so `A.id = B.id = C.id` becomes two equalities).
  Status ParseChain(WhereClause* where) {
    ASEQ_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    bool any = false;
    while (AtCmpOp()) {
      ASEQ_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
      ASEQ_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
      Comparison cmp;
      cmp.lhs = lhs;
      cmp.op = op;
      cmp.rhs = rhs;
      where->terms.push_back(std::move(cmp));
      lhs = std::move(rhs);
      any = true;
    }
    if (!any) {
      return ErrorAt(Peek(), "expected comparison operator");
    }
    return Status::OK();
  }

  Status ParseWhere(Query* q) {
    bool wrapped = MaybeOpenAngle();
    ASEQ_RETURN_NOT_OK(ParseChain(&q->where));
    while (PeekKeyword("AND")) {
      Advance();
      ASEQ_RETURN_NOT_OK(ParseChain(&q->where));
    }
    ASEQ_RETURN_NOT_OK(CloseAngle(wrapped));
    return Status::OK();
  }

  Status ParseGroupBy(Query* q) {
    bool wrapped = MaybeOpenAngle();
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorAt(Peek(), "expected GROUP BY attribute name");
    }
    GroupBy gb;
    gb.attr_name = Advance().text;
    ASEQ_RETURN_NOT_OK(CloseAngle(wrapped));
    q->group_by = std::move(gb);
    return Status::OK();
  }

  Status ParseAgg(Query* q) {
    bool wrapped = MaybeOpenAngle();
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorAt(Peek(), "expected aggregation function");
    }
    std::string fname = ToUpperAscii(Peek().text);
    AggFunc func;
    if (fname == "COUNT") {
      func = AggFunc::kCount;
    } else if (fname == "SUM") {
      func = AggFunc::kSum;
    } else if (fname == "AVG") {
      func = AggFunc::kAvg;
    } else if (fname == "MIN") {
      func = AggFunc::kMin;
    } else if (fname == "MAX") {
      func = AggFunc::kMax;
    } else {
      return ErrorAt(Peek(), "unknown aggregation function '" + Peek().text +
                                 "' (expected COUNT/SUM/AVG/MIN/MAX)");
    }
    Advance();
    if (func == AggFunc::kCount) {
      // Optional empty parens: COUNT().
      if (Peek().kind == TokenKind::kLParen) {
        Advance();
        ASEQ_RETURN_NOT_OK(ExpectKind(TokenKind::kRParen));
      }
      q->agg = AggregateSpec::Count();
    } else {
      ASEQ_RETURN_NOT_OK(ExpectKind(TokenKind::kLParen));
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorAt(Peek(), "expected event type name");
      }
      std::string elem = Advance().text;
      ASEQ_RETURN_NOT_OK(ExpectKind(TokenKind::kDot));
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorAt(Peek(), "expected attribute name");
      }
      std::string attr = Advance().text;
      ASEQ_RETURN_NOT_OK(ExpectKind(TokenKind::kRParen));
      q->agg = AggregateSpec::Make(func, std::move(elem), std::move(attr));
    }
    ASEQ_RETURN_NOT_OK(CloseAngle(wrapped));
    return Status::OK();
  }

  Status ParseWithin(Query* q) {
    bool wrapped = MaybeOpenAngle();
    const Token& tok = Peek();
    double amount = 0;
    if (tok.kind == TokenKind::kInteger) {
      amount = static_cast<double>(Advance().int_value);
    } else if (tok.kind == TokenKind::kFloat) {
      amount = Advance().float_value;
    } else {
      return ErrorAt(tok, "expected window duration");
    }
    std::string unit;
    if (Peek().kind == TokenKind::kIdentifier && !AtClauseClosingAngle()) {
      unit = Advance().text;
    }
    ASEQ_ASSIGN_OR_RETURN(int64_t scale, UnitToMillis(unit));
    double ms = amount * static_cast<double>(scale);
    if (!(ms > 0)) {
      return Status::ParseError("window duration must be positive");
    }
    q->window_ms = static_cast<Timestamp>(std::llround(ms));
    ASEQ_RETURN_NOT_OK(CloseAngle(wrapped));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  ASEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<Timestamp> ParseDuration(std::string_view text) {
  std::string_view s = TrimWhitespace(text);
  size_t i = 0;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.')) {
    ++i;
  }
  if (i == 0) return Status::ParseError("expected duration: " + std::string(s));
  double amount = std::strtod(std::string(s.substr(0, i)).c_str(), nullptr);
  ASEQ_ASSIGN_OR_RETURN(int64_t scale,
                        UnitToMillis(TrimWhitespace(s.substr(i))));
  double ms = amount * static_cast<double>(scale);
  if (!(ms > 0)) return Status::ParseError("duration must be positive");
  return static_cast<Timestamp>(std::llround(ms));
}

}  // namespace aseq
