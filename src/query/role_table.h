#ifndef ASEQ_QUERY_ROLE_TABLE_H_
#define ASEQ_QUERY_ROLE_TABLE_H_

#include <vector>

#include "query/compiled_query.h"

namespace aseq {

/// DEPRECATED: superseded by plan::AdmissionProgram (src/plan/admission.h),
/// which folds this dense dispatch table into the compiled admission
/// program every engine and the shard router now share — one lowering, so
/// dispatch cannot drift between consumers.
///
/// This shim is retained only for the dispatch-order regression test
/// (tests/admission_equivalence_test.cc), which pins that
/// AdmissionProgram::RolesFor yields exactly the role sequence this table
/// yields for every event type. Do not add new callers.
///
/// Flattens a query's role map into a table indexed by EventTypeId. The
/// entries point into `q`'s own role storage (node-stable), so `q` must
/// outlive the table.
inline std::vector<const std::vector<Role>*> BuildRoleTable(
    const CompiledQuery& q) {
  std::vector<const std::vector<Role>*> table;
  for (const auto& [type, roles] : q.roles()) {
    if (type >= table.size()) table.resize(type + 1, nullptr);
    table[type] = &roles;
  }
  return table;
}

inline const std::vector<Role>* LookupRoles(
    const std::vector<const std::vector<Role>*>& table, EventTypeId type) {
  return type < table.size() ? table[type] : nullptr;
}

}  // namespace aseq

#endif  // ASEQ_QUERY_ROLE_TABLE_H_
