#ifndef ASEQ_QUERY_ROLE_TABLE_H_
#define ASEQ_QUERY_ROLE_TABLE_H_

#include <vector>

#include "query/compiled_query.h"

namespace aseq {

/// Flattens a query's role map into a table indexed by EventTypeId so hot
/// paths dispatch with one bounds check instead of a hash probe. The
/// entries point into `q`'s own role storage (node-stable), so `q` must
/// outlive the table. Shared by the A-Seq engines and the shard router —
/// both must dispatch roles identically or routing would diverge from
/// execution.
inline std::vector<const std::vector<Role>*> BuildRoleTable(
    const CompiledQuery& q) {
  std::vector<const std::vector<Role>*> table;
  for (const auto& [type, roles] : q.roles()) {
    if (type >= table.size()) table.resize(type + 1, nullptr);
    table[type] = &roles;
  }
  return table;
}

inline const std::vector<Role>* LookupRoles(
    const std::vector<const std::vector<Role>*>& table, EventTypeId type) {
  return type < table.size() ? table[type] : nullptr;
}

}  // namespace aseq

#endif  // ASEQ_QUERY_ROLE_TABLE_H_
