#include "query/pattern.h"

namespace aseq {

Pattern Pattern::FromNames(const std::vector<std::string>& names) {
  std::vector<PatternElement> elems;
  elems.reserve(names.size());
  for (const std::string& name : names) {
    PatternElement e;
    if (!name.empty() && name[0] == '!') {
      e.negated = true;
      e.type_name = name.substr(1);
    } else {
      e.type_name = name;
    }
    elems.push_back(std::move(e));
  }
  return Pattern(std::move(elems));
}

size_t Pattern::num_positive() const {
  size_t n = 0;
  for (const auto& e : elements_) {
    if (!e.negated) ++n;
  }
  return n;
}

bool Pattern::has_negation() const {
  for (const auto& e : elements_) {
    if (e.negated) return true;
  }
  return false;
}

std::string Pattern::ToString() const {
  std::string out = "SEQ(";
  for (size_t i = 0; i < elements_.size(); ++i) {
    if (i > 0) out += ", ";
    if (elements_[i].negated) out += "!";
    out += elements_[i].type_name;
  }
  out += ")";
  return out;
}

}  // namespace aseq
