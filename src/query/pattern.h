#ifndef ASEQ_QUERY_PATTERN_H_
#define ASEQ_QUERY_PATTERN_H_

#include <string>
#include <vector>

#include "common/schema.h"

namespace aseq {

/// \brief One element of a SEQ pattern: an event type, possibly negated.
///
/// `SEQ(A, B, !C, D)` has four elements; `!C` asserts the *non-occurrence*
/// of a C instance between the matched B and D instances (Eq. 2).
struct PatternElement {
  std::string type_name;
  EventTypeId type = kInvalidEventType;  // resolved by the Analyzer
  bool negated = false;

  friend bool operator==(const PatternElement& a, const PatternElement& b) {
    return a.type_name == b.type_name && a.negated == b.negated;
  }
};

/// \brief A SEQ pattern: an ordered list of (possibly negated) event types.
class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(std::vector<PatternElement> elements)
      : elements_(std::move(elements)) {}

  /// Convenience factory from type names; names starting with '!' are
  /// negated ("!QQQ").
  static Pattern FromNames(const std::vector<std::string>& names);

  const std::vector<PatternElement>& elements() const { return elements_; }
  std::vector<PatternElement>& elements() { return elements_; }

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }

  /// Number of positive (non-negated) elements.
  size_t num_positive() const;

  /// True if any element is negated.
  bool has_negation() const;

  /// Renders "SEQ(A, B, !C, D)".
  std::string ToString() const;

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.elements_ == b.elements_;
  }

 private:
  std::vector<PatternElement> elements_;
};

}  // namespace aseq

#endif  // ASEQ_QUERY_PATTERN_H_
