#include "query/predicate.h"

namespace aseq {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs.Equals(rhs);
    case CmpOp::kNe:
      return !lhs.Equals(rhs);
    case CmpOp::kLt:
      return lhs.ComparableWith(rhs) && lhs.LessThan(rhs);
    case CmpOp::kLe:
      return lhs.ComparableWith(rhs) && !rhs.LessThan(lhs);
    case CmpOp::kGt:
      return lhs.ComparableWith(rhs) && rhs.LessThan(lhs);
    case CmpOp::kGe:
      return lhs.ComparableWith(rhs) && !lhs.LessThan(rhs);
  }
  return false;
}

std::string Operand::ToString() const {
  if (kind == Kind::kAttrRef) {
    return elem_name + "." + attr_name;
  }
  if (literal.type() == ValueType::kString) {
    std::string out = "'";
    out += literal.ToString();
    out += "'";
    return out;
  }
  return literal.ToString();
}

std::string Comparison::ToString() const {
  return lhs.ToString() + " " + CmpOpToString(op) + " " + rhs.ToString();
}

std::string WhereClause::ToString() const {
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += " AND ";
    out += terms[i].ToString();
  }
  return out;
}

}  // namespace aseq
