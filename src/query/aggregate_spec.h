#ifndef ASEQ_QUERY_AGGREGATE_SPEC_H_
#define ASEQ_QUERY_AGGREGATE_SPEC_H_

#include <string>

#include "common/schema.h"

namespace aseq {

/// Aggregation function of the AGG clause (Sec. 2.1 / Sec. 5).
enum class AggFunc {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

inline const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

/// \brief The AGG clause: COUNT, or SUM/AVG/MIN/MAX over one attribute of
/// one positive pattern element ("AGG SUM(C.weight)").
struct AggregateSpec {
  AggFunc func = AggFunc::kCount;
  // For non-COUNT functions:
  std::string elem_name;       // event-type name of the carrier element
  std::string attr_name;       // attribute whose value is aggregated
  int elem_index = -1;         // resolved pattern element index
  AttrId attr = kInvalidAttr;  // resolved attribute id

  static AggregateSpec Count() { return AggregateSpec{}; }

  static AggregateSpec Make(AggFunc func, std::string elem, std::string attr) {
    AggregateSpec s;
    s.func = func;
    s.elem_name = std::move(elem);
    s.attr_name = std::move(attr);
    return s;
  }

  std::string ToString() const {
    if (func == AggFunc::kCount) return "COUNT";
    return std::string(AggFuncToString(func)) + "(" + elem_name + "." +
           attr_name + ")";
  }
};

}  // namespace aseq

#endif  // ASEQ_QUERY_AGGREGATE_SPEC_H_
