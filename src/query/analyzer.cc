#include "query/analyzer.h"

#include <algorithm>

#include "query/parser.h"

namespace aseq {

namespace {

/// Value of an operand evaluated against a single event (local predicates).
const Value& OperandValue(const Operand& op, const Event& e) {
  static const Value kNull;
  if (op.is_attr_ref()) return e.GetAttr(op.attr);
  return op.literal;
}

}  // namespace

bool CompiledQuery::QualifiesFor(const Event& e, size_t elem_index) const {
  if (elem_index >= local_preds_.size()) return false;
  for (const Comparison& cmp : local_preds_[elem_index]) {
    if (!EvalCmp(cmp.op, OperandValue(cmp.lhs, e), OperandValue(cmp.rhs, e))) {
      return false;
    }
  }
  if (agg_positive_pos_ >= 0 &&
      static_cast<int>(elem_index) == query_.agg.elem_index) {
    // SUM/AVG/MIN/MAX carrier instances must have a numeric value.
    const Value* v = e.FindAttr(query_.agg.attr);
    if (v == nullptr || !v->is_numeric()) return false;
  }
  return true;
}

bool CompiledQuery::PartitionKeyFor(const Event& e, size_t elem_index,
                                    PartitionKey* key,
                                    std::vector<bool>* covered_out) const {
  const size_t n = partition_spec_.parts.size();
  // Resize-and-assign into the caller's scratch: slot capacity (string
  // payloads included) survives across calls, so a reused key allocates
  // nothing once warm — clear()+push_back discarded it every call.
  key->parts.resize(n);
  if (covered_out != nullptr) covered_out->assign(n, false);
  for (size_t p = 0; p < n; ++p) {
    const PartitionSpec::Part& part = partition_spec_.parts[p];
    const bool covers = elem_index < part.covers_elem.size() &&
                        part.covers_elem[elem_index];
    if (covers) {
      const Value* v = e.FindAttr(part.attr);
      if (v == nullptr || v->is_null()) return false;
      key->parts[p] = *v;
      if (covered_out != nullptr) (*covered_out)[p] = true;
    } else {
      key->parts[p] = Value();  // null placeholder: matches any partition
    }
  }
  return true;
}

Result<CompiledQuery> Analyzer::AnalyzeText(std::string_view query_text) {
  ASEQ_ASSIGN_OR_RETURN(Query q, ParseQuery(query_text));
  return Analyze(q);
}

Result<CompiledQuery> Analyzer::Analyze(const Query& query) {
  CompiledQuery cq;
  cq.query_ = query;
  Query& q = cq.query_;
  auto& elems = q.pattern.elements();

  // --- Pattern validation & resolution -------------------------------------
  if (elems.empty()) {
    return Status::InvalidArgument("pattern must have at least one element");
  }
  if (elems.front().negated) {
    return Status::InvalidArgument(
        "pattern must not start with a negated event type (negation asserts "
        "non-occurrence between matched positive events)");
  }
  if (elems.back().negated) {
    return Status::InvalidArgument(
        "pattern must not end with a negated event type");
  }
  size_t positives = 0;
  for (size_t i = 0; i < elems.size(); ++i) {
    PatternElement& e = elems[i];
    if (e.type_name.empty()) {
      return Status::InvalidArgument("empty event type name in pattern");
    }
    e.type = schema_->RegisterEventType(e.type_name);
    if (!e.negated) {
      ++positives;
      cq.positive_types_.push_back(e.type);
      Role role;
      role.negated = false;
      role.elem_index = i;
      role.position = positives;  // 1-based
      cq.roles_[e.type].push_back(role);
    }
  }
  // Negation roles (gap = number of positive elements before the element).
  size_t seen_positives = 0;
  for (size_t i = 0; i < elems.size(); ++i) {
    if (!elems[i].negated) {
      ++seen_positives;
      continue;
    }
    Role role;
    role.negated = true;
    role.elem_index = i;
    role.position = seen_positives;  // reset prefix of this length
    cq.roles_[elems[i].type].push_back(role);
  }
  // Positive roles must be applied in descending position order so a type
  // occurring at several positions never consumes its own same-arrival
  // update; negated roles come after positive roles (a new instance first
  // extends prefixes with pre-arrival counts, then invalidates).
  for (auto& [type, roles] : cq.roles_) {
    std::stable_sort(roles.begin(), roles.end(),
                     [](const Role& a, const Role& b) {
                       if (a.negated != b.negated) return !a.negated;
                       if (!a.negated) return a.position > b.position;
                       return a.position < b.position;
                     });
  }
  cq.local_preds_.resize(elems.size());

  // --- Resolve WHERE --------------------------------------------------------
  // Resolves one attr ref in place; returns the element index.
  auto resolve_ref = [&](Operand* op) -> Result<size_t> {
    int found = -1;
    for (size_t i = 0; i < elems.size(); ++i) {
      if (elems[i].type_name == op->elem_name) {
        if (found >= 0) {
          return Status::InvalidArgument(
              "ambiguous reference '" + op->elem_name +
              "': event type occurs more than once in the pattern");
        }
        found = static_cast<int>(i);
      }
    }
    if (found < 0) {
      return Status::InvalidArgument("reference to '" + op->elem_name +
                                     "' which is not in the pattern");
    }
    op->elem_index = found;
    op->attr = schema_->RegisterAttribute(op->attr_name);
    return static_cast<size_t>(found);
  };

  // Equivalence candidates: (attr id, elem a, elem b).
  struct EquivPair {
    AttrId attr;
    size_t a, b;
    Comparison cmp;  // retained so demotion to join predicate keeps the term
  };
  std::vector<EquivPair> equiv_pairs;

  for (Comparison cmp : q.where.terms) {
    bool lref = cmp.lhs.is_attr_ref();
    bool rref = cmp.rhs.is_attr_ref();
    if (!lref && !rref) {
      if (!EvalCmp(cmp.op, cmp.lhs.literal, cmp.rhs.literal)) {
        return Status::InvalidArgument("WHERE clause is constantly false: " +
                                       cmp.ToString());
      }
      continue;  // constantly true; drop
    }
    size_t le = 0, re = 0;
    if (lref) {
      ASEQ_ASSIGN_OR_RETURN(le, resolve_ref(&cmp.lhs));
    }
    if (rref) {
      ASEQ_ASSIGN_OR_RETURN(re, resolve_ref(&cmp.rhs));
    }
    if (lref && rref && le != re) {
      if (cmp.op == CmpOp::kEq && cmp.lhs.attr == cmp.rhs.attr) {
        equiv_pairs.push_back(EquivPair{cmp.lhs.attr, le, re, cmp});
      } else {
        cq.join_preds_.push_back(std::move(cmp));
      }
      continue;
    }
    size_t elem = lref ? le : re;
    cq.local_preds_[elem].push_back(std::move(cmp));
  }

  // --- Equivalence classes → partition parts --------------------------------
  // Union-find over (attr, elem) pairs; one class per attribute.
  struct Class {
    AttrId attr;
    std::vector<bool> covers;
    std::vector<Comparison> terms;
  };
  std::vector<Class> classes;
  for (const EquivPair& p : equiv_pairs) {
    Class* cls = nullptr;
    for (Class& c : classes) {
      if (c.attr == p.attr) {
        cls = &c;
        break;
      }
    }
    if (cls == nullptr) {
      classes.push_back(Class{p.attr, std::vector<bool>(elems.size(), false), {}});
      cls = &classes.back();
    }
    cls->covers[p.a] = true;
    cls->covers[p.b] = true;
    cls->terms.push_back(p.cmp);
  }
  // NOTE: distinct chains on the same attribute merge into one class. Two
  // disjoint chains `A.id=B.id AND C.id=D.id` would over-constrain if merged;
  // such patterns fall outside the paper's model and a merged class either
  // covers all positives (then it genuinely is one equivalence class as far
  // as HPC partitioning is concerned only if the user meant that) or is
  // demoted to join predicates below. We accept this simplification and
  // verify engine-vs-oracle agreement under the *compiled* semantics.
  for (Class& c : classes) {
    bool all_positive_covered = true;
    for (size_t i = 0; i < elems.size(); ++i) {
      if (!elems[i].negated && !c.covers[i]) all_positive_covered = false;
    }
    if (all_positive_covered) {
      PartitionSpec::Part part;
      part.attr = c.attr;
      part.attr_name = schema_->AttributeName(c.attr);
      part.is_group_by = false;
      part.covers_elem = c.covers;
      cq.partition_spec_.parts.push_back(std::move(part));
    } else {
      // Partial coverage: A-Seq cannot partition on it; keep as join preds.
      for (Comparison& t : c.terms) cq.join_preds_.push_back(std::move(t));
    }
  }

  // Join predicates are evaluated on constructed matches; a negated element
  // has no bound instance there. Cross-element predicates touching negated
  // elements are only meaningful as full equivalence classes.
  for (const Comparison& cmp : cq.join_preds_) {
    for (const Operand* op : {&cmp.lhs, &cmp.rhs}) {
      if (op->is_attr_ref() && elems[op->elem_index].negated) {
        return Status::InvalidArgument(
            "predicate '" + cmp.ToString() +
            "' references a negated element; only local predicates or full "
            "equivalence classes may constrain negated event types");
      }
    }
  }

  // --- GROUP BY --------------------------------------------------------------
  if (q.group_by.has_value()) {
    q.group_by->attr = schema_->RegisterAttribute(q.group_by->attr_name);
    PartitionSpec::Part part;
    part.attr = q.group_by->attr;
    part.attr_name = q.group_by->attr_name;
    part.is_group_by = true;
    part.covers_elem.assign(elems.size(), true);
    cq.partition_spec_.group_part =
        static_cast<int>(cq.partition_spec_.parts.size());
    cq.partition_spec_.parts.push_back(std::move(part));
    cq.partition_spec_.per_group_output = true;
  }

  // --- AGG -------------------------------------------------------------------
  if (q.agg.func != AggFunc::kCount) {
    int found = -1;
    for (size_t i = 0; i < elems.size(); ++i) {
      if (elems[i].type_name == q.agg.elem_name) {
        if (found >= 0) {
          return Status::InvalidArgument(
              "ambiguous aggregate reference '" + q.agg.elem_name + "'");
        }
        found = static_cast<int>(i);
      }
    }
    if (found < 0) {
      return Status::InvalidArgument("aggregate references '" +
                                     q.agg.elem_name +
                                     "' which is not in the pattern");
    }
    if (elems[found].negated) {
      return Status::InvalidArgument(
          "aggregate must reference a positive pattern element");
    }
    q.agg.elem_index = found;
    q.agg.attr = schema_->RegisterAttribute(q.agg.attr_name);
    // 0-based positive position of the carrier.
    int pos = 0;
    for (int i = 0; i < found; ++i) {
      if (!elems[i].negated) ++pos;
    }
    cq.agg_positive_pos_ = pos;
  }

  if (q.window_ms < 0) {
    return Status::InvalidArgument("window must be non-negative");
  }
  return cq;
}

}  // namespace aseq
