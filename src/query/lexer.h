#ifndef ASEQ_QUERY_LEXER_H_
#define ASEQ_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace aseq {

/// Token kinds of the query language.
enum class TokenKind {
  kIdentifier,   // Kindle, userId ...
  kInteger,      // 42
  kFloat,        // 3.14
  kString,       // 'touch' or "touch"
  kLParen,       // (
  kRParen,       // )
  kComma,        // ,
  kDot,          // .
  kBang,         // !
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kEq,           // = or ==
  kNe,           // !=
  kEnd,          // end of input
};

const char* TokenKindToString(TokenKind kind);

/// \brief A lexed token with its source position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier / literal spelling
  int64_t int_value = 0;  // for kInteger
  double float_value = 0; // for kFloat
  size_t offset = 0;      // byte offset in the input

  /// Case-insensitive keyword check for identifier tokens.
  bool IsKeyword(std::string_view kw) const;
};

/// \brief Tokenizes query text.
///
/// Keywords are not distinguished from identifiers at the lexing level; the
/// parser matches them case-insensitively (so `pattern`, `PATTERN`, and
/// `Pattern` all work while `Count` stays usable as an event-type name in
/// positions where no keyword is expected).
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace aseq

#endif  // ASEQ_QUERY_LEXER_H_
