#ifndef ASEQ_QUERY_COMPILED_QUERY_H_
#define ASEQ_QUERY_COMPILED_QUERY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/event.h"
#include "common/hash_mix.h"
#include "common/schema.h"
#include "query/query.h"

namespace aseq {

/// \brief A composite partition key: one Value per PartitionSpec part.
///
/// Used by the Hashed Prefix Counter (Sec. 3.4) to route events to
/// equivalence / GROUP BY partitions.
struct PartitionKey {
  std::vector<Value> parts;

  bool operator==(const PartitionKey& other) const {
    if (parts.size() != other.parts.size()) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (!parts[i].Equals(other.parts[i])) return false;
    }
    return true;
  }

  std::string ToString() const {
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) out += "|";
      out += parts[i].ToString();
    }
    return out;
  }
};

/// \brief A partition key paired with its precomputed hash.
///
/// The batched HpcEngine hashes every key in a batch up front (so the
/// partition-map buckets can be software-prefetched) and then probes with
/// this reference type via C++20 heterogeneous lookup — no rehash, no key
/// copy on the hit path.
struct HashedPartitionKeyRef {
  const PartitionKey* key = nullptr;
  size_t hash = 0;
};

struct PartitionKeyHash {
  using is_transparent = void;

  size_t operator()(const PartitionKey& k) const {
    // HashCombine64 re-avalanches after every part: the old xor-shift fold
    // let a part cancel another and left the low bits weak, which the
    // flat-store probing (src/container/flat_map.h) cannot tolerate.
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : k.parts) {
      h = HashCombine64(h, v.Hash());
    }
    return h;
  }

  size_t operator()(const HashedPartitionKeyRef& ref) const {
    return ref.hash;
  }
};

struct PartitionKeyEq {
  using is_transparent = void;

  bool operator()(const PartitionKey& a, const PartitionKey& b) const {
    return a == b;
  }
  bool operator()(const HashedPartitionKeyRef& a, const PartitionKey& b) const {
    return *a.key == b;
  }
  bool operator()(const PartitionKey& a, const HashedPartitionKeyRef& b) const {
    return a == *b.key;
  }
};

/// \brief How the query partitions its state (equivalence predicates and/or
/// GROUP BY), per Sec. 3.4.
///
/// Each part contributes one attribute to the composite partition key.
/// Positive elements are always covered by every part (the Analyzer rejects
/// partial coverage as a join predicate); negated elements may be outside a
/// part, in which case a negative instance invalidates every partition whose
/// key matches on the parts that *do* cover it.
struct PartitionSpec {
  struct Part {
    AttrId attr = kInvalidAttr;
    std::string attr_name;
    bool is_group_by = false;
    /// Per pattern-element index: does this part constrain the element?
    std::vector<bool> covers_elem;
  };

  std::vector<Part> parts;

  bool empty() const { return parts.empty(); }

  /// True when results are reported per group (GROUP BY present).
  bool per_group_output = false;
  /// Index in `parts` of the GROUP BY part, or -1.
  int group_part = -1;
};

/// \brief One role an event type plays in a pattern.
///
/// Positive role at 1-based position `position` of the positive
/// subsequence; or a negation role that, per the Recounting Rule (Lemma 6),
/// resets the prefix count of length `gap` (the number of positive elements
/// before the negated element).
struct Role {
  bool negated = false;
  size_t elem_index = 0;  // index into pattern.elements()
  size_t position = 0;    // positive: 1..L; negated: reset prefix length gap
};

/// \brief An analyzed, schema-resolved query ready for execution.
///
/// Produced by Analyzer::Analyze; consumed by every engine (A-Seq, the
/// stack-based baseline, and the multi-query engines).
class CompiledQuery {
 public:
  CompiledQuery() = default;

  const Query& query() const { return query_; }
  const Pattern& pattern() const { return query_.pattern; }
  const AggregateSpec& agg() const { return query_.agg; }
  Timestamp window_ms() const { return query_.window_ms; }
  bool has_window() const { return query_.window_ms > 0; }

  /// Positive event types in pattern order (length L).
  const std::vector<EventTypeId>& positive_types() const {
    return positive_types_;
  }
  size_t num_positive() const { return positive_types_.size(); }

  /// Roles played by `type`, positive roles in descending position order
  /// (so duplicate-type updates are applied safely), then negation roles.
  /// Returns nullptr if the type does not occur in the pattern.
  const std::vector<Role>* FindRoles(EventTypeId type) const {
    auto it = roles_.find(type);
    return it == roles_.end() ? nullptr : &it->second;
  }

  /// Full role table (engines build flat per-type-id dispatch tables from
  /// this to skip the hash probe on the per-event hot path).
  const std::unordered_map<EventTypeId, std::vector<Role>>& roles() const {
    return roles_;
  }

  /// Local-predicate filter: does `e` qualify for the pattern element at
  /// `elem_index`? (Sec. 3.4, "Local Predicates": non-qualifying instances
  /// are discarded before aggregation.) For non-COUNT aggregates the carrier
  /// element additionally requires a numeric aggregated attribute.
  bool QualifiesFor(const Event& e, size_t elem_index) const;

  /// Partitioning state (equivalence predicates / GROUP BY).
  const PartitionSpec& partition_spec() const { return partition_spec_; }
  bool partitioned() const { return !partition_spec_.empty(); }

  /// Builds the partition key for an event acting as pattern element
  /// `elem_index`. Returns false if a covering part's attribute is missing
  /// from the event (the event is then ignored for that role).
  /// `covered_out`, if non-null, receives per-part coverage flags (parts not
  /// covering this element get a null key slot and `false` coverage —
  /// meaningful only for negated roles, which then invalidate every
  /// partition matching on the covered parts).
  bool PartitionKeyFor(const Event& e, size_t elem_index, PartitionKey* key,
                       std::vector<bool>* covered_out = nullptr) const;

  /// Cross-element predicates that are not equivalence tests. A-Seq cannot
  /// push these into prefix counting; only match-constructing engines
  /// support them.
  const std::vector<Comparison>& join_predicates() const { return join_preds_; }
  bool has_join_predicates() const { return !join_preds_.empty(); }

  /// 0-based positive position of the aggregate carrier element, or -1 for
  /// COUNT.
  int agg_positive_pos() const { return agg_positive_pos_; }

  /// Local predicates resolved per element (exposed for engines that need
  /// to re-check, e.g. the brute-force oracle).
  const std::vector<std::vector<Comparison>>& local_predicates() const {
    return local_preds_;
  }

  std::string ToString() const { return query_.ToString(); }

 private:
  friend class Analyzer;

  Query query_;
  std::vector<EventTypeId> positive_types_;
  std::unordered_map<EventTypeId, std::vector<Role>> roles_;
  std::vector<std::vector<Comparison>> local_preds_;  // per elem index
  std::vector<Comparison> join_preds_;
  PartitionSpec partition_spec_;
  int agg_positive_pos_ = -1;
};

}  // namespace aseq

#endif  // ASEQ_QUERY_COMPILED_QUERY_H_
