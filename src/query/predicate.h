#ifndef ASEQ_QUERY_PREDICATE_H_
#define ASEQ_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "common/event.h"
#include "common/schema.h"
#include "common/value.h"

namespace aseq {

/// Relational comparison operator in a WHERE clause.
enum class CmpOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CmpOpToString(CmpOp op);

/// Evaluates `lhs op rhs` with Value comparison semantics: unordered
/// combinations (e.g. string vs number) are false for everything but `!=`.
bool EvalCmp(CmpOp op, const Value& lhs, const Value& rhs);

/// \brief One operand of a comparison: an attribute reference or a literal.
///
/// Attribute references name a pattern element by its event-type name
/// ("Kindle.model"); the Analyzer resolves them to element indexes.
struct Operand {
  enum class Kind { kAttrRef, kLiteral };

  Kind kind = Kind::kLiteral;
  // kAttrRef fields:
  std::string elem_name;                  // event-type name in the pattern
  std::string attr_name;                  // attribute name
  int elem_index = -1;                    // resolved pattern element index
  AttrId attr = kInvalidAttr;             // resolved attribute id
  // kLiteral field:
  Value literal;

  static Operand AttrRef(std::string elem, std::string attr) {
    Operand op;
    op.kind = Kind::kAttrRef;
    op.elem_name = std::move(elem);
    op.attr_name = std::move(attr);
    return op;
  }
  static Operand Literal(Value v) {
    Operand op;
    op.kind = Kind::kLiteral;
    op.literal = std::move(v);
    return op;
  }

  bool is_attr_ref() const { return kind == Kind::kAttrRef; }

  std::string ToString() const;
};

/// \brief One comparison term of a WHERE conjunction.
///
/// The Analyzer classifies each term:
///   * **local**      — references at most one pattern element
///     (e.g. `Kindle.model = "touch"`); pushed in front of the engines as a
///     per-event filter.
///   * **equivalence**— `X.a = Y.a` across two elements on the same
///     attribute; merged into equivalence classes and handled by the Hashed
///     Prefix Counter partitioning (Sec. 3.4).
///   * **join**       — any other cross-element comparison; requires match
///     construction and is supported only by the stack-based baseline.
struct Comparison {
  Operand lhs;
  CmpOp op = CmpOp::kEq;
  Operand rhs;

  std::string ToString() const;
};

/// \brief The WHERE clause: a conjunction of comparisons.
struct WhereClause {
  std::vector<Comparison> terms;

  bool empty() const { return terms.empty(); }
  std::string ToString() const;
};

}  // namespace aseq

#endif  // ASEQ_QUERY_PREDICATE_H_
