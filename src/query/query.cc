#include "query/query.h"

namespace aseq {

std::string Query::ToString() const {
  std::string out = "PATTERN " + pattern.ToString();
  if (!where.empty()) {
    out += " WHERE " + where.ToString();
  }
  if (group_by.has_value()) {
    out += " GROUP BY " + group_by->attr_name;
  }
  out += " AGG " + agg.ToString();
  if (window_ms > 0) {
    out += " WITHIN " + std::to_string(window_ms) + "ms";
  }
  return out;
}

}  // namespace aseq
