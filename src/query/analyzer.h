#ifndef ASEQ_QUERY_ANALYZER_H_
#define ASEQ_QUERY_ANALYZER_H_

#include <string_view>

#include "common/schema.h"
#include "common/status.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief Resolves and validates a parsed Query against a Schema.
///
/// Responsibilities:
///  * interning pattern event types and referenced attributes (registering
///    them in the Schema if new — events of a never-seen type simply never
///    arrive);
///  * validating the pattern: non-empty, no leading/trailing negation
///    (negation asserts non-occurrence *between* matched positive events,
///    Eq. 2);
///  * resolving attribute references to pattern elements (a reference by
///    type name must be unambiguous);
///  * classifying WHERE terms into local predicates, equivalence classes,
///    and join predicates;
///  * building the PartitionSpec: a GROUP BY attribute covers every
///    element; an equivalence class is eligible for Hashed-Prefix-Counter
///    partitioning only if it covers all positive elements (partial
///    coverage degenerates to a join predicate);
///  * resolving the AGG clause (the carrier element of SUM/AVG/MIN/MAX must
///    be a positive element).
class Analyzer {
 public:
  explicit Analyzer(Schema* schema) : schema_(schema) {}

  /// Analyzes `query`; on success returns an executable CompiledQuery.
  Result<CompiledQuery> Analyze(const Query& query);

  /// Convenience: parse + analyze in one step.
  Result<CompiledQuery> AnalyzeText(std::string_view query_text);

 private:
  Schema* schema_;
};

}  // namespace aseq

#endif  // ASEQ_QUERY_ANALYZER_H_
