#ifndef ASEQ_QUERY_PARSER_H_
#define ASEQ_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/query.h"

namespace aseq {

/// \brief Parses the paper's query language into a Query.
///
/// Accepted grammar (keywords case-insensitive; `<...>` wrappers around
/// clause bodies, as written in the paper, are optional):
///
/// ```
/// query    := PATTERN pattern [WHERE conj] [GROUP BY attr] [AGG agg]
///             [WITHIN duration]
/// pattern  := SEQ '(' ['!'] type (',' ['!'] type)* ')'
/// conj     := chain (AND chain)*
/// chain    := operand (cmpop operand)+        // A.id = B.id = C.id expands
///                                             // into pairwise equalities
/// operand  := type '.' attr | int | float | 'string'
/// agg      := COUNT | (SUM|AVG|MIN|MAX) '(' type '.' attr ')'
/// duration := number [ms|s|sec|seconds|m|min|minutes|h|hour|hours]
/// ```
///
/// Example:
/// ```
/// PATTERN SEQ(Kindle, KindleCase, Stylus)
/// WHERE Kindle.userId = KindleCase.userId = Stylus.userId
/// AGG COUNT
/// WITHIN 1hour
/// ```
///
/// The result is *unresolved*: event types, attributes, and element
/// references are still names. Run Analyzer::Analyze to resolve and
/// validate against a Schema.
Result<Query> ParseQuery(std::string_view text);

/// Parses a duration like "1500", "1500ms", "10s", "5min", "1hour" into
/// milliseconds.
Result<Timestamp> ParseDuration(std::string_view text);

}  // namespace aseq

#endif  // ASEQ_QUERY_PARSER_H_
