#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace aseq {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kBang:
      return "'!'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      tok.kind = TokenKind::kIdentifier;
      tok.text = std::string(input.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      bool is_float = false;
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      tok.text = std::string(input.substr(start, i - start));
      if (is_float) {
        tok.kind = TokenKind::kFloat;
        tok.float_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInteger;
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
      }
      // Allow duration suffixes to lex as a separate identifier ("10s"
      // tokenizes as 10 then s) — handled naturally since 's' is IdentStart.
    } else {
      switch (c) {
        case '(':
          tok.kind = TokenKind::kLParen;
          ++i;
          break;
        case ')':
          tok.kind = TokenKind::kRParen;
          ++i;
          break;
        case ',':
          tok.kind = TokenKind::kComma;
          ++i;
          break;
        case '.':
          tok.kind = TokenKind::kDot;
          ++i;
          break;
        case '!':
          if (i + 1 < n && input[i + 1] == '=') {
            tok.kind = TokenKind::kNe;
            i += 2;
          } else {
            tok.kind = TokenKind::kBang;
            ++i;
          }
          break;
        case '<':
          if (i + 1 < n && input[i + 1] == '=') {
            tok.kind = TokenKind::kLe;
            i += 2;
          } else {
            tok.kind = TokenKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && input[i + 1] == '=') {
            tok.kind = TokenKind::kGe;
            i += 2;
          } else {
            tok.kind = TokenKind::kGt;
            ++i;
          }
          break;
        case '=':
          tok.kind = TokenKind::kEq;
          ++i;
          if (i < n && input[i] == '=') ++i;  // accept '=='
          break;
        case '\'':
        case '"': {
          char quote = c;
          ++i;
          size_t start = i;
          while (i < n && input[i] != quote) ++i;
          if (i >= n) {
            return Status::ParseError("unterminated string literal at offset " +
                                      std::to_string(tok.offset));
          }
          tok.kind = TokenKind::kString;
          tok.text = std::string(input.substr(start, i - start));
          ++i;  // closing quote
          break;
        }
        default:
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at offset " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace aseq
