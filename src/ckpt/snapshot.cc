#include "ckpt/snapshot.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "fault/fault.h"

namespace aseq {
namespace ckpt {

namespace {

constexpr size_t kMagicLen = 8;

std::string ErrnoSuffix() {
  return std::string(": ") + std::strerror(errno);
}

/// Fsyncs a file or directory by path. POSIX durability for an atomic
/// write-then-rename needs both halves: the temp file's *contents* must be
/// on disk before the rename publishes them, and the *directory entry*
/// created by the rename is only durable once the parent directory itself
/// is synced — without the latter, a crash after rename can come back with
/// the old (or no) snapshot under the published name.
Status SyncPath(const std::string& path, bool directory) {
#ifndef _WIN32
  const int fd =
      ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "' for fsync" +
                           ErrnoSuffix());
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return Status::IoError("fsync failed for '" + path + "'" + ErrnoSuffix());
  }
#else
  (void)path;
  (void)directory;
#endif
  return Status::OK();
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status PayloadToEngine(const std::string& path, const std::string& name,
                       const std::function<Status(Reader*)>& restore,
                       uint64_t* stream_offset) {
  SnapshotInfo info;
  std::string payload;
  ASEQ_RETURN_NOT_OK(ReadSnapshotFile(path, &info, &payload));
  if (info.engine_name != name) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' was taken by engine '" + info.engine_name +
        "' but is being restored into '" + name + "'");
  }
  Reader reader(payload);
  ASEQ_RETURN_NOT_OK(restore(&reader));
  ASEQ_RETURN_NOT_OK(reader.ExpectEnd());
  *stream_offset = info.stream_offset;
  return Status::OK();
}

}  // namespace

namespace {
/// See SetSnapshotWriteObserver: registered before a run, read on the
/// (single) checkpointing thread during it.
std::function<void(const std::string&, uint64_t)> g_write_observer;
}  // namespace

void SetSnapshotWriteObserver(
    std::function<void(const std::string&, uint64_t)> observer) {
  g_write_observer = std::move(observer);
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

Status WriteSnapshotFile(const std::string& path,
                         const std::string& engine_name,
                         uint64_t stream_offset, std::string_view payload) {
  if (fault::Injector::Global().armed()) {
    if (auto fired = fault::Injector::Global().Hit(fault::Point::kCkptWrite)) {
      if (fired->kind == fault::Kind::kIoError) {
        return Status::IoError("injected ckpt.write fault writing '" + path +
                               "'");
      }
      if (fired->kind == fault::Kind::kCrash) {
        std::_Exit(fault::kCrashExitCode);
      }
    }
  }
  Writer body;
  body.WriteString(engine_name);
  body.WriteU64(stream_offset);

  std::string out;
  out.append(kSnapshotMagic, kMagicLen);
  Writer header;
  header.WriteU32(kSnapshotFormatVersion);
  header.WriteU64(body.size() + payload.size());
  out.append(header.buffer());
  out.append(body.buffer());
  out.append(payload.data(), payload.size());
  Writer checksum;
  std::string_view full_body(out.data() + kMagicLen + 12,
                             body.size() + payload.size());
  checksum.WriteU64(Fnv1a64(full_body));
  out.append(checksum.buffer());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      return Status::IoError("cannot open checkpoint temp file '" + tmp + "'" +
                             ErrnoSuffix());
    }
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    f.flush();
    if (!f) {
      std::remove(tmp.c_str());
      return Status::IoError("failed writing checkpoint temp file '" + tmp +
                             "'" + ErrnoSuffix());
    }
  }
  if (Status st = SyncPath(tmp, /*directory=*/false); !st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::IoError("failed renaming checkpoint '" + tmp +
                                "' to '" + path + "'" + ErrnoSuffix());
    std::remove(tmp.c_str());
    return st;
  }
  Status st = SyncPath(ParentDir(path), /*directory=*/true);
  if (st.ok() && g_write_observer) g_write_observer(path, stream_offset);
  return st;
}

Status ReadSnapshotFile(const std::string& path, SnapshotInfo* info,
                        std::string* payload) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return Status::IoError("cannot open snapshot file '" + path + "'" +
                           ErrnoSuffix());
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  std::string data = std::move(buf).str();

  if (data.size() < kMagicLen + 12 + 8) {
    return Status::ParseError("snapshot file '" + path +
                              "' is truncated: " + std::to_string(data.size()) +
                              " byte(s), smaller than the fixed framing");
  }
  if (std::memcmp(data.data(), kSnapshotMagic, kMagicLen) != 0) {
    return Status::ParseError("snapshot file '" + path +
                              "' has a bad magic header (not an A-Seq "
                              "checkpoint, or the header was corrupted)");
  }
  Reader header(std::string_view(data).substr(kMagicLen, 12));
  uint32_t version = 0;
  uint64_t body_len = 0;
  ASEQ_RETURN_NOT_OK(header.ReadU32(&version, "snapshot format version"));
  if (version != kSnapshotFormatVersion) {
    return Status::ParseError(
        "snapshot file '" + path + "' has format version " +
        std::to_string(version) + " but this build reads version " +
        std::to_string(kSnapshotFormatVersion));
  }
  ASEQ_RETURN_NOT_OK(header.ReadU64(&body_len, "snapshot body length"));
  const size_t body_off = kMagicLen + 12;
  if (body_len > data.size() - body_off - 8) {
    return Status::ParseError(
        "snapshot file '" + path + "' is truncated: body length field says " +
        std::to_string(body_len) + " byte(s) but only " +
        std::to_string(data.size() - body_off - 8) + " are present");
  }
  if (data.size() != body_off + body_len + 8) {
    return Status::ParseError("snapshot file '" + path + "' carries " +
                              std::to_string(data.size() - body_off -
                                             body_len - 8) +
                              " trailing byte(s) after the checksum");
  }
  std::string_view body = std::string_view(data).substr(body_off, body_len);
  Reader footer(std::string_view(data).substr(body_off + body_len, 8));
  uint64_t stored_sum = 0;
  ASEQ_RETURN_NOT_OK(footer.ReadU64(&stored_sum, "snapshot checksum"));
  const uint64_t actual_sum = Fnv1a64(body);
  if (stored_sum != actual_sum) {
    return Status::ParseError(
        "snapshot file '" + path + "' failed its checksum (stored " +
        std::to_string(stored_sum) + ", computed " +
        std::to_string(actual_sum) + "): the body is corrupted");
  }

  Reader body_reader(body);
  ASEQ_RETURN_NOT_OK(
      body_reader.ReadString(&info->engine_name, "snapshot engine name"));
  ASEQ_RETURN_NOT_OK(
      body_reader.ReadU64(&info->stream_offset, "snapshot stream offset"));
  payload->assign(body.substr(body_reader.position()));
  return Status::OK();
}

Status SaveEngineSnapshot(const std::string& path, const QueryEngine& engine,
                          uint64_t stream_offset) {
  Writer payload;
  ASEQ_RETURN_NOT_OK(engine.Checkpoint(&payload));
  return WriteSnapshotFile(path, engine.name(), stream_offset,
                           payload.buffer());
}

Status SaveMultiSnapshot(const std::string& path,
                         const MultiQueryEngine& engine,
                         uint64_t stream_offset) {
  Writer payload;
  ASEQ_RETURN_NOT_OK(engine.Checkpoint(&payload));
  return WriteSnapshotFile(path, engine.name(), stream_offset,
                           payload.buffer());
}

Status RestoreEngineSnapshot(const std::string& path, QueryEngine* engine,
                             uint64_t* stream_offset) {
  return PayloadToEngine(
      path, engine->name(),
      [engine](Reader* r) { return engine->Restore(r); }, stream_offset);
}

Status RestoreMultiSnapshot(const std::string& path, MultiQueryEngine* engine,
                            uint64_t* stream_offset) {
  return PayloadToEngine(
      path, engine->name(),
      [engine](Reader* r) { return engine->Restore(r); }, stream_offset);
}

namespace {

/// Shared container writer/reader behind both the single- and multi-query
/// SaveShardedSnapshot / RestoreShardedSnapshot overloads: the layout is
/// identical, only the engine type the shard payloads round-trip through
/// differs (the engine name in the header separates the two families).
template <typename EngineT>
Status SaveShardedSnapshotImpl(const std::string& path,
                               std::span<const EngineT* const> shards,
                               uint64_t stream_offset,
                               const EngineStats& merged,
                               std::string_view router_state) {
  if (shards.empty()) {
    return Status::InvalidArgument(
        "sharded snapshot requires at least one shard engine");
  }
  Writer payload;
  payload.WriteU32(static_cast<uint32_t>(shards.size()));
  WriteStats(&payload, merged);
  payload.WriteString(router_state);
  for (const EngineT* shard : shards) {
    Writer sub;
    ASEQ_RETURN_NOT_OK(shard->Checkpoint(&sub));
    payload.WriteString(sub.buffer());
  }
  return WriteSnapshotFile(path, "Sharded[" + shards[0]->name() + "]",
                           stream_offset, payload.buffer());
}

template <typename EngineT>
Status RestoreShardedSnapshotImpl(const std::string& path,
                                  std::span<EngineT* const> shards,
                                  uint64_t* stream_offset, EngineStats* merged,
                                  std::string* router_state) {
  if (shards.empty()) {
    return Status::InvalidArgument(
        "sharded snapshot requires at least one shard engine");
  }
  SnapshotInfo info;
  std::string payload;
  ASEQ_RETURN_NOT_OK(ReadSnapshotFile(path, &info, &payload));
  const std::string expected = "Sharded[" + shards[0]->name() + "]";
  if (info.engine_name != expected) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' was taken by engine '" + info.engine_name +
        "' but is being restored into '" + expected +
        "' (a non-sharded snapshot cannot seed a sharded run)");
  }
  Reader reader(payload);
  uint32_t count = 0;
  ASEQ_RETURN_NOT_OK(reader.ReadU32(&count, "shard count"));
  if (count != shards.size()) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' holds " + std::to_string(count) +
        " shard(s) but " + std::to_string(shards.size()) +
        " were supplied; rerun with --shards " + std::to_string(count));
  }
  ASEQ_RETURN_NOT_OK(ReadStats(&reader, merged));
  ASEQ_RETURN_NOT_OK(reader.ReadString(router_state, "router state"));
  for (size_t i = 0; i < shards.size(); ++i) {
    std::string sub;
    ASEQ_RETURN_NOT_OK(reader.ReadString(&sub, "shard payload"));
    Reader sub_reader(sub);
    ASEQ_RETURN_NOT_OK(shards[i]->Restore(&sub_reader));
    ASEQ_RETURN_NOT_OK(sub_reader.ExpectEnd());
  }
  ASEQ_RETURN_NOT_OK(reader.ExpectEnd());
  *stream_offset = info.stream_offset;
  return Status::OK();
}

}  // namespace

Status SaveShardedSnapshot(const std::string& path,
                           std::span<const QueryEngine* const> shards,
                           uint64_t stream_offset, const EngineStats& merged,
                           std::string_view router_state) {
  return SaveShardedSnapshotImpl(path, shards, stream_offset, merged,
                                 router_state);
}

Status RestoreShardedSnapshot(const std::string& path,
                              std::span<QueryEngine* const> shards,
                              uint64_t* stream_offset, EngineStats* merged,
                              std::string* router_state) {
  return RestoreShardedSnapshotImpl(path, shards, stream_offset, merged,
                                    router_state);
}

Status SaveShardedSnapshot(const std::string& path,
                           std::span<const MultiQueryEngine* const> shards,
                           uint64_t stream_offset, const EngineStats& merged,
                           std::string_view router_state) {
  return SaveShardedSnapshotImpl(path, shards, stream_offset, merged,
                                 router_state);
}

Status RestoreShardedSnapshot(const std::string& path,
                              std::span<MultiQueryEngine* const> shards,
                              uint64_t* stream_offset, EngineStats* merged,
                              std::string* router_state) {
  return RestoreShardedSnapshotImpl(path, shards, stream_offset, merged,
                                    router_state);
}

std::string SnapshotPathForOffset(const std::string& dir, uint64_t offset) {
  std::string digits = std::to_string(offset);
  std::string padded(20 - std::min<size_t>(20, digits.size()), '0');
  padded += digits;
  return dir + "/ckpt-" + padded + ".aseqckpt";
}

}  // namespace ckpt
}  // namespace aseq
