#ifndef ASEQ_CKPT_SNAPSHOT_H_
#define ASEQ_CKPT_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "ckpt/ckpt.h"
#include "common/status.h"
#include "engine/engine.h"

namespace aseq {
namespace ckpt {

/// Snapshot file layout (all integers little-endian):
///
///   [8]  magic "ASEQCKPT"
///   [4]  u32 format version (kSnapshotFormatVersion)
///   [8]  u64 body length B
///   [B]  body: engine name (length-prefixed) + u64 stream offset +
///        the engine's Checkpoint() payload
///   [8]  u64 FNV-1a checksum of the body
///
/// Writes are atomic: the file is written to `<path>.tmp` and renamed over
/// `path`, so a crash mid-write can never leave a half-written snapshot
/// under the published name.
///
/// Version history:
///   1  node-based partition map (bucket-count + insertion-order payload)
///   2  flat partition store: interner table + slab geometry + verbatim
///      expiry heap; sharded containers additionally carry router state
inline constexpr uint32_t kSnapshotFormatVersion = 2;
inline constexpr char kSnapshotMagic[] = "ASEQCKPT";  // 8 bytes, no NUL

/// Header fields recovered before the engine payload is touched.
struct SnapshotInfo {
  std::string engine_name;
  /// Number of stream events the engine had consumed when the snapshot was
  /// taken; resuming replays the trace from this offset.
  uint64_t stream_offset = 0;
};

/// FNV-1a 64-bit over `data` (the body checksum).
uint64_t Fnv1a64(std::string_view data);

/// Writes a complete snapshot file atomically (temp file + rename).
Status WriteSnapshotFile(const std::string& path,
                         const std::string& engine_name,
                         uint64_t stream_offset, std::string_view payload);

/// Process-wide observer invoked with (path, stream_offset) after every
/// successful WriteSnapshotFile — i.e. after the rename published the
/// snapshot. The telemetry layer registers one to flush the metrics
/// emitter and stamp a trace instant at each durability point, so the
/// observability files on disk always cover at least as much of the run
/// as the newest checkpoint. Pass an empty function to clear. Not
/// thread-safe against concurrent snapshot writes: register before the
/// run starts (the CLI does this during flag setup).
void SetSnapshotWriteObserver(
    std::function<void(const std::string&, uint64_t)> observer);

/// Reads and validates a snapshot file: magic, version, body length, and
/// checksum. On success `*info` holds the header and `*payload` the engine
/// payload bytes. Corrupt, truncated, or version-skewed files fail with a
/// descriptive ParseError/IoError and never touch an engine.
Status ReadSnapshotFile(const std::string& path, SnapshotInfo* info,
                        std::string* payload);

/// Checkpoints `engine` (plus the stream offset) into a snapshot file.
Status SaveEngineSnapshot(const std::string& path, const QueryEngine& engine,
                          uint64_t stream_offset);
Status SaveMultiSnapshot(const std::string& path,
                         const MultiQueryEngine& engine,
                         uint64_t stream_offset);

/// Restores a snapshot into a freshly constructed engine for the same
/// query. Fails without modifying `engine` if the file is invalid or was
/// taken by a different engine (name mismatch).
Status RestoreEngineSnapshot(const std::string& path, QueryEngine* engine,
                             uint64_t* stream_offset);
Status RestoreMultiSnapshot(const std::string& path, MultiQueryEngine* engine,
                            uint64_t* stream_offset);

/// \brief Multi-shard snapshot container (sharded execution).
///
/// Same outer file format as every snapshot; the engine name is
/// "Sharded[<inner engine name>]" so restoring a sharded container into a
/// serial engine (or vice versa) fails the existing name check up front.
/// The payload packs every shard under the one body checksum:
///
///   [4]  u32 shard count N
///   [..] merged EngineStats — the exact cross-shard merged view at the
///        checkpoint (the restored run seeds its peak-object merge from
///        it; per-shard stats live inside each shard payload)
///   [..] u64 length prefix + the router's Checkpoint() payload (the
///        router's key-interner table, whose dense ids decide shard
///        ownership; restoring it makes the replayed suffix route every
///        key to the shard that already owns it)
///   N x  u64 length prefix + the shard engine's Checkpoint() payload
///
/// Restore validates the shard count against the engines supplied, so a
/// run restored with a different --shards N fails with a clear message
/// instead of scrambling partition ownership.
Status SaveShardedSnapshot(const std::string& path,
                           std::span<const QueryEngine* const> shards,
                           uint64_t stream_offset, const EngineStats& merged,
                           std::string_view router_state);
Status RestoreShardedSnapshot(const std::string& path,
                              std::span<QueryEngine* const> shards,
                              uint64_t* stream_offset, EngineStats* merged,
                              std::string* router_state);

/// Multi-query variants: identical container layout, the shard payloads
/// are MultiQueryEngine checkpoints (the engine name check keeps the two
/// container families from restoring into each other — a multi-query
/// engine's name never equals a single-query engine's).
Status SaveShardedSnapshot(const std::string& path,
                           std::span<const MultiQueryEngine* const> shards,
                           uint64_t stream_offset, const EngineStats& merged,
                           std::string_view router_state);
Status RestoreShardedSnapshot(const std::string& path,
                              std::span<MultiQueryEngine* const> shards,
                              uint64_t* stream_offset, EngineStats* merged,
                              std::string* router_state);

/// Canonical snapshot filename for a stream offset: `<dir>/ckpt-<offset
/// zero-padded to 20>.aseqckpt` — zero-padding makes lexicographic order
/// equal numeric order, so "latest" is the last name in a sorted listing.
std::string SnapshotPathForOffset(const std::string& dir, uint64_t offset);

}  // namespace ckpt
}  // namespace aseq

#endif  // ASEQ_CKPT_SNAPSHOT_H_
