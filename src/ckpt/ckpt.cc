#include "ckpt/ckpt.h"

#include <cstring>

#include "query/compiled_query.h"

namespace aseq {
namespace ckpt {

namespace {

std::string TruncatedMessage(const char* what, size_t need, size_t have,
                             size_t offset) {
  return std::string("snapshot truncated: need ") + std::to_string(need) +
         " byte(s) for " + what + " at payload offset " +
         std::to_string(offset) + ", have " + std::to_string(have);
}

}  // namespace

void Writer::WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void Writer::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Writer::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Writer::WriteDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void Writer::WriteString(std::string_view s) {
  WriteU64(s.size());
  buf_.append(s.data(), s.size());
}

Status Reader::Need(size_t n, const char* what) {
  if (remaining() < n) {
    return Status::ParseError(TruncatedMessage(what, n, remaining(), pos_));
  }
  return Status::OK();
}

Status Reader::ReadU8(uint8_t* v, const char* what) {
  ASEQ_RETURN_NOT_OK(Need(1, what));
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status Reader::ReadBool(bool* v, const char* what) {
  uint8_t b = 0;
  ASEQ_RETURN_NOT_OK(ReadU8(&b, what));
  if (b > 1) {
    return Status::ParseError(std::string("snapshot corrupt: boolean field ") +
                              what + " holds " + std::to_string(b));
  }
  *v = b != 0;
  return Status::OK();
}

Status Reader::ReadU32(uint32_t* v, const char* what) {
  ASEQ_RETURN_NOT_OK(Need(4, what));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status Reader::ReadU64(uint64_t* v, const char* what) {
  ASEQ_RETURN_NOT_OK(Need(8, what));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status Reader::ReadI64(int64_t* v, const char* what) {
  uint64_t u = 0;
  ASEQ_RETURN_NOT_OK(ReadU64(&u, what));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status Reader::ReadDouble(double* v, const char* what) {
  uint64_t bits = 0;
  ASEQ_RETURN_NOT_OK(ReadU64(&bits, what));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Reader::ReadString(std::string* s, const char* what) {
  uint64_t len = 0;
  ASEQ_RETURN_NOT_OK(ReadCount(&len, 1, what));
  s->assign(data_.substr(pos_, len));
  pos_ += len;
  return Status::OK();
}

Status Reader::ReadCount(uint64_t* n, uint64_t min_elem_bytes,
                         const char* what) {
  uint64_t count = 0;
  ASEQ_RETURN_NOT_OK(ReadU64(&count, what));
  if (min_elem_bytes > 0 && count > remaining() / min_elem_bytes) {
    return Status::ParseError(
        std::string("snapshot corrupt: count of ") + what + " (" +
        std::to_string(count) + ") exceeds the " +
        std::to_string(remaining()) + " payload byte(s) left");
  }
  *n = count;
  return Status::OK();
}

Status Reader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::ParseError("snapshot corrupt: " +
                              std::to_string(remaining()) +
                              " unconsumed payload byte(s) after restore");
  }
  return Status::OK();
}

void WriteValue(Writer* w, const Value& v) {
  w->WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      w->WriteI64(v.AsInt64());
      break;
    case ValueType::kDouble:
      w->WriteDouble(v.AsDouble());
      break;
    case ValueType::kString:
      w->WriteString(v.AsString());
      break;
  }
}

Status ReadValue(Reader* r, Value* v) {
  uint8_t tag = 0;
  ASEQ_RETURN_NOT_OK(r->ReadU8(&tag, "value type tag"));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value();
      return Status::OK();
    case ValueType::kInt64: {
      int64_t i = 0;
      ASEQ_RETURN_NOT_OK(r->ReadI64(&i, "int64 value"));
      *v = Value(i);
      return Status::OK();
    }
    case ValueType::kDouble: {
      double d = 0;
      ASEQ_RETURN_NOT_OK(r->ReadDouble(&d, "double value"));
      *v = Value(d);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      ASEQ_RETURN_NOT_OK(r->ReadString(&s, "string value"));
      *v = Value(std::move(s));
      return Status::OK();
    }
  }
  return Status::ParseError("snapshot corrupt: unknown value type tag " +
                            std::to_string(tag));
}

void WriteEvent(Writer* w, const Event& e) {
  w->WriteU32(e.type());
  w->WriteI64(e.ts());
  w->WriteU64(e.seq());
  w->WriteU64(e.attrs().size());
  for (const auto& [attr, value] : e.attrs()) {
    w->WriteU32(attr);
    WriteValue(w, value);
  }
}

Status ReadEvent(Reader* r, Event* e) {
  uint32_t type = 0;
  int64_t ts = 0;
  uint64_t seq = 0;
  ASEQ_RETURN_NOT_OK(r->ReadU32(&type, "event type"));
  ASEQ_RETURN_NOT_OK(r->ReadI64(&ts, "event timestamp"));
  ASEQ_RETURN_NOT_OK(r->ReadU64(&seq, "event seq"));
  *e = Event(type, ts);
  e->set_seq(seq);
  uint64_t n_attrs = 0;
  ASEQ_RETURN_NOT_OK(r->ReadCount(&n_attrs, 5, "event attributes"));
  for (uint64_t i = 0; i < n_attrs; ++i) {
    uint32_t attr = 0;
    Value value;
    ASEQ_RETURN_NOT_OK(r->ReadU32(&attr, "event attribute id"));
    ASEQ_RETURN_NOT_OK(ReadValue(r, &value));
    e->SetAttr(attr, std::move(value));
  }
  return Status::OK();
}

void WritePartitionKey(Writer* w, const PartitionKey& key) {
  w->WriteU64(key.parts.size());
  for (const Value& v : key.parts) WriteValue(w, v);
}

Status ReadPartitionKey(Reader* r, PartitionKey* key) {
  uint64_t n = 0;
  ASEQ_RETURN_NOT_OK(r->ReadCount(&n, 1, "partition key parts"));
  key->parts.clear();
  key->parts.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    ASEQ_RETURN_NOT_OK(ReadValue(r, &v));
    key->parts.push_back(std::move(v));
  }
  return Status::OK();
}

void WriteStats(Writer* w, const EngineStats& s) {
  w->WriteU64(s.events_processed);
  w->WriteU64(s.outputs);
  w->WriteU64(s.work_units);
  w->WriteI64(s.objects.current());
  w->WriteI64(s.objects.peak());
  w->WriteU64(s.batches_processed);
  w->WriteU64(s.max_batch_events);
  w->WriteU64(s.dropped_events);
}

Status ReadStats(Reader* r, EngineStats* s) {
  ASEQ_RETURN_NOT_OK(r->ReadU64(&s->events_processed, "stats.events"));
  ASEQ_RETURN_NOT_OK(r->ReadU64(&s->outputs, "stats.outputs"));
  ASEQ_RETURN_NOT_OK(r->ReadU64(&s->work_units, "stats.work_units"));
  int64_t current = 0;
  int64_t peak = 0;
  ASEQ_RETURN_NOT_OK(r->ReadI64(&current, "stats.objects.current"));
  ASEQ_RETURN_NOT_OK(r->ReadI64(&peak, "stats.objects.peak"));
  if (current < 0 || peak < current) {
    return Status::ParseError(
        "snapshot corrupt: object counters current=" + std::to_string(current) +
        " peak=" + std::to_string(peak));
  }
  s->objects.RestoreCounts(current, peak);
  ASEQ_RETURN_NOT_OK(r->ReadU64(&s->batches_processed, "stats.batches"));
  ASEQ_RETURN_NOT_OK(r->ReadU64(&s->max_batch_events, "stats.max_batch"));
  ASEQ_RETURN_NOT_OK(r->ReadU64(&s->dropped_events, "stats.dropped"));
  return Status::OK();
}

}  // namespace ckpt
}  // namespace aseq
