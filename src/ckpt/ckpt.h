#ifndef ASEQ_CKPT_CKPT_H_
#define ASEQ_CKPT_CKPT_H_

#include <cstdint>
#include <queue>
#include <string>
#include <string_view>

#include "common/event.h"
#include "common/status.h"
#include "common/value.h"
#include "metrics/metrics.h"

namespace aseq {

struct PartitionKey;

namespace ckpt {

/// \brief Append-only serializer for checkpoint payloads.
///
/// All primitives are fixed-width little-endian; strings and repeated
/// sections are length-prefixed, so a payload can always be skipped or
/// bounds-checked without knowing its producer. Doubles are bit-cast to
/// uint64, preserving every payload bit (NaNs, -0.0) — restore must be
/// byte-exact, not merely value-approximate.
class Writer {
 public:
  void WriteU8(uint8_t v);
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);
  /// u64 length prefix + raw bytes.
  void WriteString(std::string_view s);

  const std::string& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// \brief Bounds-checked deserializer for checkpoint payloads.
///
/// Every read validates the remaining byte budget first and fails with a
/// ParseError naming the field and offset — a truncated or corrupt payload
/// can never read out of bounds or allocate an absurd amount.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* v, const char* what);
  Status ReadBool(bool* v, const char* what);
  Status ReadU32(uint32_t* v, const char* what);
  Status ReadU64(uint64_t* v, const char* what);
  Status ReadI64(int64_t* v, const char* what);
  Status ReadDouble(double* v, const char* what);
  Status ReadString(std::string* s, const char* what);

  /// Reads a u64 element count and validates it against the bytes left:
  /// `n * min_elem_bytes` may not exceed the remaining payload, so a corrupt
  /// count fails here instead of driving a multi-gigabyte allocation.
  Status ReadCount(uint64_t* n, uint64_t min_elem_bytes, const char* what);

  /// Fails unless every payload byte has been consumed — catches payload /
  /// engine-version drift that happens to parse.
  Status ExpectEnd() const;

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n, const char* what);

  std::string_view data_;
  size_t pos_ = 0;
};

// ---- Serialization of common engine-state building blocks. ----

void WriteValue(Writer* w, const Value& v);
Status ReadValue(Reader* r, Value* v);

void WriteEvent(Writer* w, const Event& e);
Status ReadEvent(Reader* r, Event* e);

void WritePartitionKey(Writer* w, const PartitionKey& key);
Status ReadPartitionKey(Reader* r, PartitionKey* key);

/// EngineStats round-trip. Engines write their stats alongside the state
/// that produced them and restore them wholesale *after* rebuilding the
/// structures (whose constructors would otherwise double-count objects).
void WriteStats(Writer* w, const EngineStats& s);
Status ReadStats(Reader* r, EngineStats* s);

/// \brief Read access to a priority_queue's underlying heap array.
///
/// Heaps whose comparator is not a total order (e.g. expiry heaps keyed on
/// timestamp alone) pop equal keys in an order determined by the internal
/// array layout. Serializing a drained copy and re-pushing re-heapifies,
/// which can permute those ties — observable wherever pop order drives
/// floating-point accumulation (windowed SUM retractions). Such heaps must
/// snapshot the raw array and restore it verbatim via
/// MutableHeapContainer, reproducing pop order bit-for-bit.
template <typename T, typename Container, typename Compare>
const Container& HeapContainer(
    const std::priority_queue<T, Container, Compare>& q) {
  struct Access : std::priority_queue<T, Container, Compare> {
    static const Container& Get(
        const std::priority_queue<T, Container, Compare>& q) {
      return q.*&Access::c;
    }
  };
  return Access::Get(q);
}

/// Mutable counterpart of HeapContainer for restore: append the serialized
/// elements in array order (the array was a valid heap when written, so no
/// re-heapify is needed or wanted).
template <typename T, typename Container, typename Compare>
Container& MutableHeapContainer(std::priority_queue<T, Container, Compare>& q) {
  struct Access : std::priority_queue<T, Container, Compare> {
    static Container& Get(std::priority_queue<T, Container, Compare>& q) {
      return q.*&Access::c;
    }
  };
  return Access::Get(q);
}

}  // namespace ckpt
}  // namespace aseq

#endif  // ASEQ_CKPT_CKPT_H_
