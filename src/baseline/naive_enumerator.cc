#include "baseline/naive_enumerator.h"

#include <map>

#include "aseq/aggregate.h"
#include "plan/admission.h"

namespace aseq {

namespace {

struct MatchOperand {
  const CompiledQuery* query;
  const std::vector<const Event*>* match;
  const std::vector<int>* elem_to_pos;

  const Value& Get(const Operand& op) const {
    static const Value kNull;
    if (!op.is_attr_ref()) return op.literal;
    int pos = (*elem_to_pos)[op.elem_index];
    if (pos < 0) return kNull;
    return (*match)[pos]->GetAttr(op.attr);
  }
};

}  // namespace

std::vector<Output> NaiveEnumerator::Aggregate(const std::vector<Event>& events,
                                               size_t upto,
                                               Timestamp now) const {
  const size_t L = query_.num_positive();
  const auto& elems = query_.pattern().elements();

  // Positive element index per position; negation roles.
  std::vector<size_t> pos_elem;
  std::vector<Role> neg_roles;
  for (size_t i = 0; i < elems.size(); ++i) {
    if (elems[i].negated) {
      const std::vector<Role>* roles = query_.FindRoles(elems[i].type);
      for (const Role& r : *roles) {
        if (r.negated && r.elem_index == i) neg_roles.push_back(r);
      }
    } else {
      pos_elem.push_back(i);
    }
  }
  std::vector<int> elem_to_pos(elems.size(), -1);
  for (size_t p = 0; p < pos_elem.size(); ++p) {
    elem_to_pos[pos_elem[p]] = static_cast<int>(p);
  }

  // Admission runs through the compiled program — the oracle exercises the
  // same lowering the engines execute, and the differential fuzz suite pins
  // the program against the interpreted QualifiesFor/PartitionKeyFor pair.
  const plan::AdmissionProgram program(query_);
  plan::AdmissionRecord rec;

  // Candidate instances per position.
  std::vector<std::vector<const Event*>> candidates(L);
  for (size_t i = 0; i <= upto && i < events.size(); ++i) {
    const Event& e = events[i];
    for (size_t p = 0; p < L; ++p) {
      if (e.type() != elems[pos_elem[p]].type) continue;
      const plan::RoleProgram* rp = program.FindRole(e.type(), pos_elem[p]);
      if (rp == nullptr || !program.AdmitRole(e, *rp, &rec, nullptr)) {
        continue;
      }
      candidates[p].push_back(&e);
    }
  }

  const PartitionSpec& spec = query_.partition_spec();
  std::map<Value, AggAccum, ValueTotalLess> groups;
  std::vector<const Event*> match(L, nullptr);

  // Checks a fully chosen match; accumulates if valid.
  auto check_and_accumulate = [&]() {
    // Window: the match is live iff its START has not expired.
    if (query_.has_window() &&
        match[0]->ts() + query_.window_ms() <= now) {
      return;
    }
    // Partition agreement across all positive elements.
    for (const PartitionSpec::Part& part : spec.parts) {
      const Value& v0 = match[0]->GetAttr(part.attr);
      for (size_t p = 1; p < L; ++p) {
        if (!match[p]->GetAttr(part.attr).Equals(v0)) return;
      }
    }
    // Negation post-check.
    for (const Role& role : neg_roles) {
      const SeqNum lo = match[role.position - 1]->seq();
      const SeqNum hi = match[role.position]->seq();
      for (size_t i = 0; i <= upto && i < events.size(); ++i) {
        const Event& x = events[i];
        if (x.seq() <= lo) continue;
        if (x.seq() >= hi) break;
        if (x.type() != elems[role.elem_index].type) continue;
        const plan::RoleProgram* nrp =
            program.FindRole(x.type(), role.elem_index);
        if (nrp == nullptr || !program.AdmitRole(x, *nrp, &rec, nullptr)) {
          continue;
        }
        PartitionKey key;
        std::vector<bool> covered;
        program.MaterializeKey(rec, &key, &covered);
        bool applies = true;
        for (size_t p = 0; p < spec.parts.size(); ++p) {
          if (covered[p] &&
              !key.parts[p].Equals(match[0]->GetAttr(spec.parts[p].attr))) {
            applies = false;
            break;
          }
        }
        if (applies) return;  // invalidated
      }
    }
    // Join predicates.
    MatchOperand ctx{&query_, &match, &elem_to_pos};
    for (const Comparison& cmp : query_.join_predicates()) {
      if (!EvalCmp(cmp.op, ctx.Get(cmp.lhs), ctx.Get(cmp.rhs))) return;
    }
    // Accumulate.
    Value group;  // null when ungrouped
    if (spec.per_group_output) {
      group = match[0]->GetAttr(spec.parts[spec.group_part].attr);
    }
    AggAccum& acc = groups[group];
    AggAccum one;
    one.count = 1;
    if (query_.agg_positive_pos() >= 0) {
      double v = match[query_.agg_positive_pos()]
                     ->GetAttr(query_.agg().attr)
                     .ToDouble();
      one.sum = v;
      one.has_ext = true;
      one.ext = v;
    }
    acc.Merge(one, query_.agg().func);
  };

  // Recursive enumeration with strictly increasing seq numbers.
  auto recurse = [&](auto&& self, size_t p, SeqNum min_seq) -> void {
    if (p == L) {
      check_and_accumulate();
      return;
    }
    for (const Event* e : candidates[p]) {
      if (e->seq() < min_seq) continue;
      match[p] = e;
      self(self, p + 1, e->seq() + 1);
    }
  };
  recurse(recurse, 0, 0);

  std::vector<Output> outputs;
  if (!spec.per_group_output) {
    Output output;
    output.ts = now;
    output.value = groups.count(Value())
                       ? groups[Value()].Finalize(query_.agg().func)
                       : AggAccum{}.Finalize(query_.agg().func);
    outputs.push_back(std::move(output));
    return outputs;
  }
  for (const auto& [group, acc] : groups) {
    Output output;
    output.ts = now;
    output.group = group;
    output.value = acc.Finalize(query_.agg().func);
    outputs.push_back(std::move(output));
  }
  return outputs;
}

uint64_t NaiveEnumerator::CountMatches(const std::vector<Event>& events,
                                       size_t upto, Timestamp now) const {
  uint64_t total = 0;
  for (const Output& output : Aggregate(events, upto, now)) {
    if (query_.agg().func == AggFunc::kCount &&
        output.value.type() == ValueType::kInt64) {
      total += static_cast<uint64_t>(output.value.AsInt64());
    }
  }
  return total;
}

}  // namespace aseq
