#include "baseline/ecube_engine.h"

#include <algorithm>
#include <cassert>

#include "ckpt/ckpt.h"

namespace aseq {

namespace {

/// Finds the unique contiguous occurrence of `sub` in `full`; -1 if absent
/// or ambiguous (-2).
int FindSubstringOnce(const std::vector<EventTypeId>& full,
                      const std::vector<EventTypeId>& sub) {
  if (sub.empty() || sub.size() > full.size()) return -1;
  int found = -1;
  for (size_t i = 0; i + sub.size() <= full.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < sub.size(); ++j) {
      if (full[i + j] != sub[j]) {
        match = false;
        break;
      }
    }
    if (match) {
      if (found >= 0) return -2;
      found = static_cast<int>(i);
    }
  }
  return found;
}

}  // namespace

Result<std::unique_ptr<EcubeEngine>> EcubeEngine::Create(
    std::vector<CompiledQuery> queries, std::vector<EventTypeId> shared_types) {
  if (queries.empty()) {
    return Status::InvalidArgument("ECube needs at least one query");
  }
  if (shared_types.empty()) {
    return Status::InvalidArgument("ECube needs a non-empty shared substring");
  }
  Timestamp window = queries[0].window_ms();
  for (const CompiledQuery& q : queries) {
    if (q.agg().func != AggFunc::kCount || q.partitioned() ||
        q.has_join_predicates() || q.pattern().has_negation()) {
      return Status::Unsupported(
          "ECube baseline supports COUNT over positive-only unpartitioned "
          "patterns: " +
          q.ToString());
    }
    for (const auto& preds : q.local_predicates()) {
      if (!preds.empty()) {
        return Status::Unsupported("ECube baseline does not support WHERE: " +
                                   q.ToString());
      }
    }
    if (q.window_ms() != window || window <= 0) {
      return Status::InvalidArgument(
          "ECube workload queries must share one positive window");
    }
    // All types within a query must be distinct.
    const auto& types = q.positive_types();
    for (size_t i = 0; i < types.size(); ++i) {
      for (size_t j = i + 1; j < types.size(); ++j) {
        if (types[i] == types[j]) {
          return Status::Unsupported(
              "ECube baseline requires distinct event types per pattern: " +
              q.ToString());
        }
      }
    }
    int at = FindSubstringOnce(types, shared_types);
    if (at < 0) {
      return Status::InvalidArgument(
          "shared substring must occur contiguously exactly once in " +
          q.ToString());
    }
  }
  return std::unique_ptr<EcubeEngine>(
      new EcubeEngine(std::move(queries), std::move(shared_types)));
}

EcubeEngine::EcubeEngine(std::vector<CompiledQuery> queries,
                         std::vector<EventTypeId> shared_types)
    : queries_(std::move(queries)), shared_types_(std::move(shared_types)) {
  window_ms_ = queries_[0].window_ms();
  for (const CompiledQuery& q : queries_) {
    plan::AdmissionProgram program(q);
    for (EventTypeId t : q.positive_types()) {
      if (t >= type_relevant_.size()) type_relevant_.resize(t + 1, 0);
      if (program.Relevant(t)) type_relevant_[t] = 1;
    }
    programs_.push_back(std::move(program));
  }
  shared_stacks_.resize(shared_types_.size());
  shared_dfs_.resize(shared_types_.size());
  states_.resize(queries_.size());
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const auto& types = queries_[qi].positive_types();
    int at = FindSubstringOnce(types, shared_types_);
    assert(at >= 0);
    QueryState& state = states_[qi];
    state.prefix_len = static_cast<size_t>(at);
    state.tail_len = types.size() - state.prefix_len - shared_types_.size();
    state.prefix_stacks.resize(state.prefix_len);
    state.tail_stacks.resize(state.tail_len);
  }
}

void EcubeEngine::Purge(Timestamp now) {
  auto purge_stack = [&](PosStack* stack) {
    while (!stack->entries.empty() &&
           stack->entries.front().ts + window_ms_ <= now) {
      stack->entries.pop_front();
      ++stack->base;
      stats_.objects.Remove(2);
    }
  };
  for (PosStack& stack : shared_stacks_) purge_stack(&stack);
  for (QueryState& state : states_) {
    for (PosStack& stack : state.prefix_stacks) purge_stack(&stack);
    for (PosStack& stack : state.tail_stacks) purge_stack(&stack);
    while (!state.composites.empty() &&
           state.composites.front().match.start_ts + window_ms_ <= now) {
      state.composites.pop_front();
      ++state.composites_base;
      stats_.objects.Remove(1);
    }
    while (!state.expiry.empty() && state.expiry.top() <= now) {
      state.expiry.pop();
      --state.live_count;
      stats_.objects.Remove(1);
    }
  }
  next_expiry_ = ComputeNextExpiry();
}

Timestamp EcubeEngine::ComputeNextExpiry() const {
  Timestamp min_exp = std::numeric_limits<Timestamp>::max();
  if (window_ms_ <= 0) return min_exp;
  auto scan_stack = [&](const PosStack& stack) {
    if (!stack.entries.empty()) {
      min_exp = std::min(min_exp, stack.entries.front().ts + window_ms_);
    }
  };
  for (const PosStack& stack : shared_stacks_) scan_stack(stack);
  for (const QueryState& state : states_) {
    for (const PosStack& stack : state.prefix_stacks) scan_stack(stack);
    for (const PosStack& stack : state.tail_stacks) scan_stack(stack);
    if (!state.composites.empty()) {
      min_exp = std::min(
          min_exp, state.composites.front().match.start_ts + window_ms_);
    }
    if (!state.expiry.empty()) {
      min_exp = std::min(min_exp, state.expiry.top());
    }
  }
  return min_exp;
}

void EcubeEngine::ConstructShared(Timestamp now,
                                  std::vector<Composite>* created) {
  const size_t k = shared_types_.size();
  assert(!shared_stacks_[k - 1].entries.empty());
  const StackEntry& trig = shared_stacks_[k - 1].entries.back();
  shared_dfs_[k - 1] = trig.seq;

  // DFS over positions k-2..0 along adjacency pointers.
  auto recurse = [&](auto&& self, int pos, uint64_t hi,
                     Timestamp* start_ts) -> void {
    if (pos < 0) {
      created->push_back(Composite{/*start_seq=*/shared_dfs_[0],
                                   /*start_ts=*/*start_ts,
                                   /*end_seq=*/trig.seq,
                                   /*end_ts=*/trig.ts});
      ++stats_.work_units;
      stats_.objects.Add(1);
      return;
    }
    PosStack& stack = shared_stacks_[pos];
    uint64_t bound = std::min<uint64_t>(hi, stack.total_pushed());
    for (uint64_t abs = bound; abs > stack.base; --abs) {
      const StackEntry& cand = stack.entries[abs - 1 - stack.base];
      ++stats_.work_units;
      shared_dfs_[pos] = cand.seq;
      Timestamp st = cand.ts;
      self(self, pos - 1, cand.ptr, pos == 0 ? &st : start_ts);
    }
  };
  if (k == 1) {
    created->push_back(
        Composite{trig.seq, trig.ts, trig.seq, trig.ts});
    stats_.objects.Add(1);
    ++stats_.work_units;
    return;
  }
  // start_ts is filled at position 0; pass a scratch for deeper levels.
  Timestamp scratch = 0;
  recurse(recurse, static_cast<int>(k) - 2, trig.ptr, &scratch);
  (void)now;
}

void EcubeEngine::RecordMatch(size_t qi, Timestamp start_ts, Timestamp now) {
  QueryState& state = states_[qi];
  if (start_ts + window_ms_ <= now) return;  // already expired
  ++state.live_count;
  state.expiry.push(start_ts + window_ms_);
  stats_.objects.Add(1);
  ++stats_.work_units;
}

void EcubeEngine::DfsPrefix(size_t qi, int pos, uint64_t hi, SeqNum max_seq,
                            Timestamp now) {
  QueryState& state = states_[qi];
  if (pos < 0) return;  // handled by caller
  PosStack& stack = state.prefix_stacks[pos];
  uint64_t bound = std::min<uint64_t>(hi, stack.total_pushed());
  for (uint64_t abs = bound; abs > stack.base; --abs) {
    const StackEntry& cand = stack.entries[abs - 1 - stack.base];
    ++stats_.work_units;
    // Prefix events must precede the composite's START (the adjacency
    // pointer only bounds by the composite's construction time).
    if (cand.seq >= max_seq) continue;
    if (pos == 0) {
      RecordMatch(qi, cand.ts, now);
    } else {
      DfsPrefix(qi, pos - 1, cand.ptr, cand.seq, now);
    }
  }
}

void EcubeEngine::CountNewMatches(size_t qi, Timestamp now) {
  QueryState& state = states_[qi];
  const size_t b = state.tail_len;
  if (b == 0) {
    // New matches = fresh composites (x prefix combinations).
    for (const Composite& c : created_scratch_) {
      if (c.start_ts + window_ms_ <= now) continue;
      if (state.prefix_len == 0) {
        RecordMatch(qi, c.start_ts, now);
      } else {
        DfsPrefix(qi, static_cast<int>(state.prefix_len) - 1,
                  state.prefix_stacks[state.prefix_len - 1].total_pushed(),
                  c.start_seq, now);
      }
    }
    return;
  }
  // New matches root at the fresh last-tail entry.
  assert(!state.tail_stacks[b - 1].entries.empty());
  const StackEntry& trig = state.tail_stacks[b - 1].entries.back();

  auto composite_level = [&](uint64_t hi) {
    uint64_t bound = std::min<uint64_t>(hi, state.composites_base +
                                                state.composites.size());
    for (uint64_t abs = bound; abs > state.composites_base; --abs) {
      const CompositeEntry& centry =
          state.composites[abs - 1 - state.composites_base];
      ++stats_.work_units;
      if (centry.match.start_ts + window_ms_ <= now) continue;
      if (state.prefix_len == 0) {
        RecordMatch(qi, centry.match.start_ts, now);
      } else {
        DfsPrefix(qi, static_cast<int>(state.prefix_len) - 1,
                  centry.prefix_ptr, centry.match.start_seq, now);
      }
    }
  };

  auto recurse = [&](auto&& self, int pos, uint64_t hi) -> void {
    if (pos < 0) {
      composite_level(hi);
      return;
    }
    PosStack& stack = state.tail_stacks[pos];
    uint64_t bound = std::min<uint64_t>(hi, stack.total_pushed());
    for (uint64_t abs = bound; abs > stack.base; --abs) {
      const StackEntry& cand = stack.entries[abs - 1 - stack.base];
      ++stats_.work_units;
      self(self, pos - 1, cand.ptr);
    }
  };
  recurse(recurse, static_cast<int>(b) - 2, trig.ptr);
}

void EcubeEngine::OnEvent(const Event& e, std::vector<MultiOutput>* out) {
  Purge(e.ts());
  ProcessEvent(e, out);
  // Keep the cached bound valid for a subsequent OnBatch (new stack
  // entries expire at e.ts() + window; composites and retained matches
  // inherit a live entry's expiry, already covered by the bound).
  if (window_ms_ > 0) {
    next_expiry_ = std::min(next_expiry_, e.ts() + window_ms_);
  }
}

void EcubeEngine::OnBatch(std::span<const Event> batch,
                          std::vector<MultiOutput>* out) {
  if (batch.empty()) return;
  const bool windowed = window_ms_ > 0;
  for (const Event& e : batch) {
    if (e.ts() >= next_expiry_) Purge(e.ts());
    ProcessEvent(e, out);
    if (windowed) next_expiry_ = std::min(next_expiry_, e.ts() + window_ms_);
  }
  stats_.NoteBatch(batch.size());
}

void EcubeEngine::ProcessEvent(const Event& e, std::vector<MultiOutput>* out) {
  ++stats_.events_processed;
  // Type-level early-out: a type outside every query's pattern touches no
  // stack and cannot trigger (the caller's purge already ran).
  if (e.type() >= type_relevant_.size() || !type_relevant_[e.type()]) return;

  // Shared stacks (descending position order).
  bool shared_trigger = false;
  for (int j = static_cast<int>(shared_types_.size()) - 1; j >= 0; --j) {
    if (shared_types_[j] != e.type()) continue;
    StackEntry entry{e.seq(), e.ts(),
                     j == 0 ? 0 : shared_stacks_[j - 1].total_pushed()};
    shared_stacks_[j].entries.push_back(entry);
    stats_.objects.Add(2);
    ++stats_.work_units;
    if (j + 1 == static_cast<int>(shared_types_.size())) shared_trigger = true;
  }
  created_scratch_.clear();
  if (shared_trigger) {
    ConstructShared(e.ts(), &created_scratch_);
  }

  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    QueryState& state = states_[qi];
    const auto& types = queries_[qi].positive_types();

    // Private prefix stacks.
    for (int j = static_cast<int>(state.prefix_len) - 1; j >= 0; --j) {
      if (types[j] != e.type()) continue;
      StackEntry entry{e.seq(), e.ts(),
                       j == 0 ? 0 : state.prefix_stacks[j - 1].total_pushed()};
      state.prefix_stacks[j].entries.push_back(entry);
      stats_.objects.Add(2);
      ++stats_.work_units;
    }
    // Append freshly shared-constructed composites (the shared step):
    // each query receives the match by reference-copy, not by
    // re-construction — this is the computation ECube shares.
    for (const Composite& c : created_scratch_) {
      uint64_t ptr = state.prefix_len == 0
                         ? 0
                         : state.prefix_stacks[state.prefix_len - 1]
                               .total_pushed();
      state.composites.push_back(CompositeEntry{c, ptr});
      ++state.composites_pushed;
      stats_.objects.Add(1);
      ++stats_.work_units;
    }
    // Private tail stacks.
    bool tail_trigger = false;
    const size_t tail_off = state.prefix_len + shared_types_.size();
    for (int j = static_cast<int>(state.tail_len) - 1; j >= 0; --j) {
      if (types[tail_off + j] != e.type()) continue;
      uint64_t ptr = j == 0 ? state.composites_base + state.composites.size()
                            : state.tail_stacks[j - 1].total_pushed();
      state.tail_stacks[j].entries.push_back(StackEntry{e.seq(), e.ts(), ptr});
      stats_.objects.Add(2);
      ++stats_.work_units;
      if (j + 1 == static_cast<int>(state.tail_len)) tail_trigger = true;
    }

    const bool trigger =
        state.tail_len > 0 ? tail_trigger : shared_trigger;
    if (!trigger) continue;
    CountNewMatches(qi, e.ts());
    MultiOutput mo;
    mo.query_index = qi;
    mo.output.ts = e.ts();
    mo.output.seq = e.seq();
    mo.output.value = Value(static_cast<int64_t>(state.live_count));
    out->push_back(std::move(mo));
    ++stats_.outputs;
  }
}

Status EcubeEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  writer->WriteI64(next_expiry_);
  auto write_stacks = [writer](const std::vector<PosStack>& stacks) {
    writer->WriteU64(stacks.size());
    for (const PosStack& stack : stacks) {
      writer->WriteU64(stack.base);
      writer->WriteU64(stack.entries.size());
      for (const StackEntry& entry : stack.entries) {
        writer->WriteU64(entry.seq);
        writer->WriteI64(entry.ts);
        writer->WriteU64(entry.ptr);
      }
    }
  };
  write_stacks(shared_stacks_);
  writer->WriteU64(states_.size());
  for (const QueryState& state : states_) {
    write_stacks(state.prefix_stacks);
    writer->WriteU64(state.composites.size());
    for (const CompositeEntry& entry : state.composites) {
      writer->WriteU64(entry.match.start_seq);
      writer->WriteI64(entry.match.start_ts);
      writer->WriteU64(entry.match.end_seq);
      writer->WriteI64(entry.match.end_ts);
      writer->WriteU64(entry.prefix_ptr);
    }
    writer->WriteU64(state.composites_pushed);
    writer->WriteU64(state.composites_base);
    write_stacks(state.tail_stacks);
    writer->WriteU64(state.live_count);
    auto expiry_copy = state.expiry;
    writer->WriteU64(expiry_copy.size());
    while (!expiry_copy.empty()) {
      writer->WriteI64(expiry_copy.top());
      expiry_copy.pop();
    }
  }
  return Status::OK();
}

Status EcubeEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  ASEQ_RETURN_NOT_OK(reader->ReadI64(&next_expiry_, "ecube next expiry"));
  auto read_stacks = [reader](std::vector<PosStack>* stacks,
                              const char* what) -> Status {
    uint64_t n_stacks = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_stacks, 16, what));
    if (n_stacks != stacks->size()) {
      return Status::ParseError(
          std::string("snapshot corrupt: ") + std::to_string(n_stacks) + " " +
          what + " but the workload builds " + std::to_string(stacks->size()));
    }
    for (PosStack& stack : *stacks) {
      stack.entries.clear();
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&stack.base, "stack base"));
      uint64_t n_entries = 0;
      ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_entries, 24, "stack entries"));
      for (uint64_t i = 0; i < n_entries; ++i) {
        StackEntry entry;
        ASEQ_RETURN_NOT_OK(reader->ReadU64(&entry.seq, "entry seq"));
        ASEQ_RETURN_NOT_OK(reader->ReadI64(&entry.ts, "entry ts"));
        ASEQ_RETURN_NOT_OK(reader->ReadU64(&entry.ptr, "entry ptr"));
        stack.entries.push_back(entry);
      }
    }
    return Status::OK();
  };
  ASEQ_RETURN_NOT_OK(read_stacks(&shared_stacks_, "shared stacks"));
  uint64_t n_states = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_states, 8, "query states"));
  if (n_states != states_.size()) {
    return Status::ParseError(
        "snapshot corrupt: " + std::to_string(n_states) +
        " query states but the workload has " + std::to_string(states_.size()));
  }
  for (QueryState& state : states_) {
    ASEQ_RETURN_NOT_OK(read_stacks(&state.prefix_stacks, "prefix stacks"));
    uint64_t n_composites = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_composites, 40, "composites"));
    state.composites.clear();
    for (uint64_t i = 0; i < n_composites; ++i) {
      CompositeEntry entry;
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&entry.match.start_seq, "start seq"));
      ASEQ_RETURN_NOT_OK(reader->ReadI64(&entry.match.start_ts, "start ts"));
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&entry.match.end_seq, "end seq"));
      ASEQ_RETURN_NOT_OK(reader->ReadI64(&entry.match.end_ts, "end ts"));
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&entry.prefix_ptr, "prefix ptr"));
      state.composites.push_back(entry);
    }
    ASEQ_RETURN_NOT_OK(
        reader->ReadU64(&state.composites_pushed, "composites pushed"));
    ASEQ_RETURN_NOT_OK(
        reader->ReadU64(&state.composites_base, "composites base"));
    ASEQ_RETURN_NOT_OK(read_stacks(&state.tail_stacks, "tail stacks"));
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&state.live_count, "live matches"));
    state.expiry = {};
    uint64_t n_expiry = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_expiry, 8, "match expirations"));
    for (uint64_t i = 0; i < n_expiry; ++i) {
      Timestamp exp = 0;
      ASEQ_RETURN_NOT_OK(reader->ReadI64(&exp, "match expiry"));
      state.expiry.push(exp);
    }
  }
  stats_ = stats;
  return Status::OK();
}

}  // namespace aseq
