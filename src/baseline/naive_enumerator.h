#ifndef ASEQ_BASELINE_NAIVE_ENUMERATOR_H_
#define ASEQ_BASELINE_NAIVE_ENUMERATOR_H_

#include <vector>

#include "engine/engine.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief Brute-force ground-truth oracle.
///
/// Enumerates every sequence match of the query over a stream prefix by
/// exhaustive search — O(|E|^n) — and aggregates the matches directly. Used
/// by the property-based tests to validate every engine (A-Seq DPC/SEM/HPC,
/// the stack baseline, and the multi-query engines) on small randomized
/// streams. Implements the exact query semantics the engines target:
///
///  * sequence order is arrival order (strictly increasing seq numbers);
///  * a match is live at time `now` iff its START instance has not expired
///    (start.ts + window > now) — Lemma 3 semantics;
///  * a negated-type instance invalidates a match iff it qualifies for the
///    negated element, arrived strictly between the two adjacent positive
///    match events, and agrees with the match on every partition-key part
///    that constrains the negated element;
///  * all positive elements agree on every partition-key part;
///  * local predicates filter instances; join predicates filter matches.
class NaiveEnumerator {
 public:
  explicit NaiveEnumerator(CompiledQuery query) : query_(std::move(query)) {}

  /// Aggregates over events[0..upto] (inclusive; events must carry assigned
  /// seq numbers) at time `now`. Grouped queries return one Output per group
  /// that has at least one live match; ungrouped queries return exactly one
  /// Output. Outputs are ordered by group for determinism.
  std::vector<Output> Aggregate(const std::vector<Event>& events, size_t upto,
                                Timestamp now) const;

  /// Total number of live matches (convenience for tests).
  uint64_t CountMatches(const std::vector<Event>& events, size_t upto,
                        Timestamp now) const;

  const CompiledQuery& query() const { return query_; }

 private:
  CompiledQuery query_;
};

}  // namespace aseq

#endif  // ASEQ_BASELINE_NAIVE_ENUMERATOR_H_
