#ifndef ASEQ_BASELINE_ECUBE_ENGINE_H_
#define ASEQ_BASELINE_ECUBE_ENGINE_H_

#include <deque>
#include <limits>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "plan/admission.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief ECube-style multi-query baseline (Liu et al., SIGMOD 2011; the
/// paper's Fig. 15 competitor): the matches of a sub-pattern common to the
/// workload are *constructed once* and pipelined into every query; each
/// query still materializes its full matches and counts them independently.
///
/// Sharing construction saves the 2-3x the paper reports, but the
/// per-query match materialization remains — which is exactly the gap
/// A-Seq's match-free counting closes.
///
/// Supported workload shape (what the paper's multi-query experiments use):
/// COUNT aggregates over positive-only patterns of the form
/// `private-prefix + shared-substring + private-tail` with one common
/// sliding window; no predicates, negation, or grouping.
class EcubeEngine : public MultiQueryEngine {
 public:
  /// Validates the workload shape and builds the engine. `shared_types`
  /// is the common substring as event type ids (length >= 1); every query's
  /// positive pattern must contain it contiguously exactly once.
  static Result<std::unique_ptr<EcubeEngine>> Create(
      std::vector<CompiledQuery> queries, std::vector<EventTypeId> shared_types);

  void OnEvent(const Event& e, std::vector<MultiOutput>* out) override;
  /// Batched path: skips per-event purge scans that a cached next-expiry
  /// lower bound proves are no-ops.
  void OnBatch(std::span<const Event> batch,
               std::vector<MultiOutput>* out) override;
  const EngineStats& stats() const override { return stats_; }
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override { return "ECube"; }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  struct StackEntry {
    SeqNum seq;
    Timestamp ts;
    uint64_t ptr;  // entries ever pushed to the previous stack at push time
  };

  struct PosStack {
    std::deque<StackEntry> entries;
    uint64_t base = 0;
    uint64_t total_pushed() const { return base + entries.size(); }
  };

  /// A constructed match of the shared substring.
  struct Composite {
    SeqNum start_seq;
    Timestamp start_ts;
    SeqNum end_seq;
    Timestamp end_ts;
  };

  /// Per-query composite-stack entry: a Composite plus the query-local
  /// adjacency pointer into the query's last prefix stack.
  struct CompositeEntry {
    Composite match;
    uint64_t prefix_ptr;
  };

  struct QueryState {
    size_t prefix_len = 0;  // private positions before the shared substring
    size_t tail_len = 0;    // private positions after it
    std::vector<PosStack> prefix_stacks;
    std::deque<CompositeEntry> composites;
    uint64_t composites_pushed = 0;
    uint64_t composites_base = 0;
    std::vector<PosStack> tail_stacks;
    // Retained full matches: running count + expiry by match start.
    uint64_t live_count = 0;
    std::priority_queue<Timestamp, std::vector<Timestamp>,
                        std::greater<Timestamp>>
        expiry;
  };

  EcubeEngine(std::vector<CompiledQuery> queries,
              std::vector<EventTypeId> shared_types);

  void Purge(Timestamp now);
  /// Exact earliest expiration over all retained state, or Timestamp max.
  Timestamp ComputeNextExpiry() const;
  /// Stack maintenance + triggers for one event (caller already purged).
  void ProcessEvent(const Event& e, std::vector<MultiOutput>* out);
  /// DFS over the shared stacks; appends new composites.
  void ConstructShared(Timestamp now, std::vector<Composite>* created);
  /// Counts new full matches of query q rooted at a new tail entry /
  /// freshly created composites.
  void CountNewMatches(size_t qi, Timestamp now);
  void DfsPrefix(size_t qi, int pos, uint64_t hi, SeqNum max_seq,
                 Timestamp now);
  void RecordMatch(size_t qi, Timestamp start_ts, Timestamp now);

  EngineStats stats_;
  std::vector<CompiledQuery> queries_;
  /// Per-query compiled admission programs (src/plan/). ECube's workload
  /// shape has no predicates, so the programs serve as the dense type-level
  /// relevance test; borrow queries_'s storage — declared after it.
  std::vector<plan::AdmissionProgram> programs_;
  /// Union of the programs' relevance, EventTypeId-indexed: an event whose
  /// type is outside every query's pattern touches no stack and is skipped
  /// after the event count.
  std::vector<uint8_t> type_relevant_;
  std::vector<EventTypeId> shared_types_;
  Timestamp window_ms_;

  std::vector<PosStack> shared_stacks_;
  std::vector<QueryState> states_;
  /// Lower bound on the earliest live expiration (see StackEngine).
  Timestamp next_expiry_ = std::numeric_limits<Timestamp>::max();

  // DFS scratch.
  std::vector<SeqNum> shared_dfs_;
  size_t dfs_qi_ = 0;
  Timestamp dfs_comp_start_ts_ = 0;
  // Newly created composites this event (for b==0 triggers and appends).
  std::vector<Composite> created_scratch_;
};

}  // namespace aseq

#endif  // ASEQ_BASELINE_ECUBE_ENGINE_H_
