#ifndef ASEQ_BASELINE_COST_MODEL_H_
#define ASEQ_BASELINE_COST_MODEL_H_

#include <cstddef>
#include <vector>

namespace aseq {

/// \brief The paper's analytical cost model for stack-based execution
/// (Sec. 2.2, Eq. 3):
///
///   C_q = sum_{i=0}^{n-1} |E_{i+1}| * prod_{j=0}^{i} |E_j| * Pt_{E_j,E_{j+1}}
///
/// where |E_i| is the number of instances of type E_i live in a window and
/// Pt is the selectivity of the implicit time predicate between adjacent
/// positions. In the uniform case (equal |E_i| = N, equal Pt) this reduces
/// to O(N^n): exponential in pattern length, polynomial in the live-event
/// count — the blow-up Figs. 12/13 measure and A-Seq eliminates.
struct StackCostModel {
  /// Live instances per window for each of the n pattern positions.
  std::vector<double> type_counts;
  /// Time-predicate selectivity between positions j and j+1 (size n-1).
  /// For uniformly interleaved arrivals within one window, the probability
  /// that one instance precedes another is ~0.5.
  std::vector<double> time_selectivities;

  /// Evaluates Eq. 3: expected per-window construction work.
  double Cost() const {
    double total = 0;
    double partial = 1;  // prod_{j<=i} |E_j| * Pt_{j,j+1}
    for (size_t i = 0; i + 1 <= type_counts.size(); ++i) {
      if (i > 0) {
        partial *= type_counts[i - 1] *
                   (i - 1 < time_selectivities.size()
                        ? time_selectivities[i - 1]
                        : 0.5);
      }
      total += type_counts[i] * partial;
    }
    return total;
  }

  /// The uniform-rate instance: n positions, N instances each, equal Pt.
  static StackCostModel Uniform(size_t n, double instances_per_window,
                                double selectivity = 0.5) {
    StackCostModel m;
    m.type_counts.assign(n, instances_per_window);
    m.time_selectivities.assign(n > 0 ? n - 1 : 0, selectivity);
    return m;
  }

  /// A-Seq's per-window cost for contrast (Sec. 3.2): every arrival updates
  /// each live START counter once — linear, window-bounded, independent of
  /// the pattern length.
  static double ASeqCost(double events_per_window, double live_starts) {
    return events_per_window * live_starts;
  }
};

}  // namespace aseq

#endif  // ASEQ_BASELINE_COST_MODEL_H_
