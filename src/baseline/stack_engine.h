#ifndef ASEQ_BASELINE_STACK_ENGINE_H_
#define ASEQ_BASELINE_STACK_ENGINE_H_

#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "plan/admission.h"
#include "query/compiled_query.h"

namespace aseq {

/// \brief The state-of-the-art two-step baseline (Sec. 2.2): SASE-style
/// stack-based sequence construction followed by post-aggregation.
///
/// One stack per positive pattern position. Each arriving instance is
/// appended to the stacks of the positions it qualifies for (descending
/// position order, so an instance never matches itself) and is augmented
/// with a pointer to the most recent entry of the previous stack — the DFS
/// adjacency pointer `ptr_i` of the paper. An instance of the last type
/// triggers a depth-first search along the pointers that constructs every
/// new sequence match; matches are retained (that is the memory cost the
/// paper measures) and aggregated, with negation applied as a post-filter
/// over the constructed matches and expired matches purged as the window
/// slides.
///
/// Negation is handled the way the paper describes the state of the art
/// (Sec. 3.3): every *positive* match is materialized and retained, and the
/// negation check runs as a **post-filter** when results are produced —
/// "an obvious problem with this later-filter-step solution is that it
/// generates a potentially huge number of intermediate results". This is
/// what Fig. 14(b) measures.
///
/// Unlike A-Seq this engine also supports arbitrary join predicates, since
/// it has the full match in hand; it doubles as the correctness oracle for
/// large streams.
class StackEngine : public QueryEngine {
 public:
  explicit StackEngine(CompiledQuery query);

  void OnEvent(const Event& e, std::vector<Output>* out) override;
  /// Batched path: skips per-event purge calls that a cached next-expiry
  /// lower bound proves are no-ops (state and stats stay byte-identical to
  /// the per-event path).
  void OnBatch(std::span<const Event> batch, std::vector<Output>* out) override;
  std::vector<Output> Poll(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  Status Checkpoint(ckpt::Writer* writer) const override;
  Status Restore(ckpt::Reader* reader) override;
  std::string name() const override { return "StackBased"; }

  const CompiledQuery& query() const { return query_; }

  /// Number of currently retained (non-expired) matches (testing hook).
  size_t num_live_matches() const { return live_matches_; }

 protected:
  EngineStats* mutable_stats() override { return &stats_; }

 private:
  struct StackEntry {
    Event event;
    /// Number of entries ever inserted into the previous stack at the time
    /// this entry was pushed; the DFS explores previous-stack entries with
    /// absolute index < ptr.
    uint64_t ptr;
  };

  struct PosStack {
    std::deque<StackEntry> entries;
    /// Absolute index of entries.front(); grows as expired entries pop.
    uint64_t base = 0;
    uint64_t total_pushed() const { return base + entries.size(); }
  };

  /// A retained negated instance (for the post-filter).
  struct NegEvent {
    SeqNum seq;
    Timestamp ts;
    /// Partition-part values covering the negated element (null when the
    /// part does not constrain it).
    PartitionKey key;
    std::vector<bool> covered;
  };

  /// Aggregation bookkeeping for one group (or the single global group).
  struct GroupAgg {
    uint64_t count = 0;
    double sum = 0;
    std::multiset<double> values;  // MIN/MAX only
  };

  struct ExpiryItem {
    Timestamp exp;
    Value group;  // null Value when ungrouped
    double value;
    bool operator>(const ExpiryItem& other) const { return exp > other.exp; }
  };

  /// A retained positive match awaiting the late negation filter: per
  /// negation role the (lo, hi) sequence bounds of the adjacent positive
  /// instances, plus what the final aggregation needs.
  struct LazyMatch {
    Timestamp exp;  // INT64_MAX when unbounded
    double value;
    Value group;
    PartitionKey key;  // trigger key for negation partition coverage
    std::vector<std::pair<SeqNum, SeqNum>> bounds;
  };

  struct LazyExpiry {
    Timestamp exp;
    uint64_t id;
    bool operator>(const LazyExpiry& other) const { return exp > other.exp; }
  };

  void PurgeExpired(Timestamp now);
  /// Exact earliest expiration over all retained state (stack entries,
  /// negated instances, retained matches), or Timestamp max when nothing
  /// can expire.
  Timestamp ComputeNextExpiry() const;
  /// Role dispatch, stack pushes, and trigger handling for one event; the
  /// caller has already purged expired state as of e.ts().
  void ProcessEvent(const Event& e, std::vector<Output>* out);
  /// DFS from a freshly pushed trigger entry; records every valid match.
  void ConstructMatches(Timestamp now);
  void RecordMatch(Timestamp now);
  /// Late filter: does the retained match survive the negated instances?
  bool LazyMatchValid(const LazyMatch& match) const;
  bool PassesJoinPredicates() const;
  Output MakeOutput(Timestamp ts, SeqNum seq, const Value* group);
  /// Negation-query output path: scans and post-filters retained matches.
  Output MakeLazyOutput(Timestamp ts, SeqNum seq, const Value* group);

  CompiledQuery query_;
  EngineStats stats_;
  size_t length_;        // L
  int carrier_pos_;      // 0-based positive carrier position; -1 for COUNT
  bool grouped_;
  /// Compiled admission program (src/plan/): dense role dispatch + typed
  /// local-predicate opcodes; AdmitRole fails exactly when the interpreted
  /// QualifiesFor/PartitionKeyFor pair rejected the instance. Borrows
  /// query_'s predicate storage — declared after it.
  plan::AdmissionProgram program_;
  std::vector<PosStack> stacks_;  // per positive position
  /// Negated roles in pattern order; parallel retained-instance deques.
  std::vector<Role> neg_roles_;
  std::vector<std::deque<NegEvent>> neg_events_;
  /// Retained matches (positive-only queries): running aggregates per group
  /// + expiry heap.
  std::map<Value, GroupAgg, ValueTotalLess> groups_;
  std::priority_queue<ExpiryItem, std::vector<ExpiryItem>,
                      std::greater<ExpiryItem>>
      expiry_;
  /// Retained matches (negation queries): materialized positive matches,
  /// post-filtered at output time.
  bool lazy_ = false;
  std::unordered_map<uint64_t, LazyMatch> lazy_matches_;
  uint64_t next_lazy_id_ = 0;
  std::priority_queue<LazyExpiry, std::vector<LazyExpiry>,
                      std::greater<LazyExpiry>>
      lazy_expiry_;
  uint64_t live_matches_ = 0;
  /// Lower bound on the earliest live expiration; PurgeExpired(now) is a
  /// no-op for now < next_expiry_, letting OnBatch skip the purge scan.
  /// PurgeExpired recomputes it exactly; event processing tightens it with
  /// min(next_expiry_, e.ts() + window).
  Timestamp next_expiry_ = std::numeric_limits<Timestamp>::max();

  /// DFS scratch: the partially built match, positions L-1 down to 0.
  std::vector<const StackEntry*> dfs_match_;
};

}  // namespace aseq

#endif  // ASEQ_BASELINE_STACK_ENGINE_H_
