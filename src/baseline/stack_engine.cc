#include "baseline/stack_engine.h"

#include <algorithm>
#include <cassert>

#include "ckpt/ckpt.h"

namespace aseq {

namespace {

/// Operand value against a constructed match (`events` indexed by 0-based
/// positive position).
const Value& MatchOperandValue(const Operand& op,
                               const std::vector<int>& elem_to_pos,
                               const std::vector<const Event*>& events) {
  static const Value kNull;
  if (!op.is_attr_ref()) return op.literal;
  int pos = elem_to_pos[op.elem_index];
  if (pos < 0) return kNull;
  return events[pos]->GetAttr(op.attr);
}

}  // namespace

StackEngine::StackEngine(CompiledQuery query)
    : query_(std::move(query)),
      length_(query_.num_positive()),
      carrier_pos_(query_.agg_positive_pos()),
      grouped_(query_.partition_spec().per_group_output),
      program_(query_) {
  stacks_.resize(length_);
  for (size_t i = 0; i < query_.pattern().size(); ++i) {
    if (!query_.pattern().elements()[i].negated) continue;
    const std::vector<Role>* roles =
        query_.FindRoles(query_.pattern().elements()[i].type);
    assert(roles != nullptr);
    for (const Role& role : *roles) {
      if (role.negated && role.elem_index == i) {
        neg_roles_.push_back(role);
      }
    }
  }
  neg_events_.resize(neg_roles_.size());
  lazy_ = !neg_roles_.empty();
  dfs_match_.resize(length_, nullptr);
}

void StackEngine::PurgeExpired(Timestamp now) {
  if (!query_.has_window()) return;
  const Timestamp win = query_.window_ms();
  for (PosStack& stack : stacks_) {
    while (!stack.entries.empty() &&
           stack.entries.front().event.ts() + win <= now) {
      stack.entries.pop_front();
      ++stack.base;
      stats_.objects.Remove(2);  // event reference + adjacency pointer
    }
  }
  for (std::deque<NegEvent>& events : neg_events_) {
    while (!events.empty() && events.front().ts + win <= now) {
      events.pop_front();
      stats_.objects.Remove(1);
    }
  }
  // Expire retained matches whose START left the window.
  while (!expiry_.empty() && expiry_.top().exp <= now) {
    const ExpiryItem& item = expiry_.top();
    auto it = groups_.find(item.group);
    assert(it != groups_.end());
    GroupAgg& agg = it->second;
    assert(agg.count > 0);
    --agg.count;
    agg.sum -= item.value;
    if (!agg.values.empty()) {
      auto vit = agg.values.find(item.value);
      if (vit != agg.values.end()) agg.values.erase(vit);
    }
    if (agg.count == 0) groups_.erase(it);
    expiry_.pop();
    --live_matches_;
    stats_.objects.Remove(1);
  }
  while (!lazy_expiry_.empty() && lazy_expiry_.top().exp <= now) {
    lazy_matches_.erase(lazy_expiry_.top().id);
    lazy_expiry_.pop();
    --live_matches_;
    stats_.objects.Remove(1);
  }
  next_expiry_ = ComputeNextExpiry();
}

Timestamp StackEngine::ComputeNextExpiry() const {
  Timestamp min_exp = std::numeric_limits<Timestamp>::max();
  if (!query_.has_window()) return min_exp;
  const Timestamp win = query_.window_ms();
  for (const PosStack& stack : stacks_) {
    if (!stack.entries.empty()) {
      min_exp = std::min(min_exp, stack.entries.front().event.ts() + win);
    }
  }
  for (const std::deque<NegEvent>& events : neg_events_) {
    if (!events.empty()) min_exp = std::min(min_exp, events.front().ts + win);
  }
  if (!expiry_.empty()) min_exp = std::min(min_exp, expiry_.top().exp);
  if (!lazy_expiry_.empty()) {
    min_exp = std::min(min_exp, lazy_expiry_.top().exp);
  }
  return min_exp;
}

void StackEngine::OnEvent(const Event& e, std::vector<Output>* out) {
  PurgeExpired(e.ts());
  ProcessEvent(e, out);
  // Keep the cached bound valid for a subsequent OnBatch: state created
  // here expires at e.ts() + window or later (retained matches inherit
  // their start entry's expiry, which the bound already covers).
  if (query_.has_window()) {
    next_expiry_ = std::min(next_expiry_, e.ts() + query_.window_ms());
  }
}

void StackEngine::OnBatch(std::span<const Event> batch,
                          std::vector<Output>* out) {
  if (batch.empty()) return;
  const bool windowed = query_.has_window();
  const Timestamp win = query_.window_ms();
  for (const Event& e : batch) {
    if (e.ts() >= next_expiry_) PurgeExpired(e.ts());
    ProcessEvent(e, out);
    if (windowed) next_expiry_ = std::min(next_expiry_, e.ts() + win);
  }
  stats_.NoteBatch(batch.size());
}

void StackEngine::ProcessEvent(const Event& e, std::vector<Output>* out) {
  ++stats_.events_processed;

  bool trigger = false;
  plan::AdmissionRecord rec;
  for (const plan::RoleProgram& rp : program_.RolesFor(e.type())) {
    // Fused qualify + key extraction: AdmitRole rejects exactly when the
    // interpreted QualifiesFor/PartitionKeyFor pair did (failed local
    // predicate, or a covering partition attribute missing/null).
    if (!program_.AdmitRole(e, rp, &rec, &stats_)) continue;
    const Role& role = rp.role;
    if (role.negated) {
      // Retain the instance for the post-filter over constructed matches.
      NegEvent neg;
      neg.seq = e.seq();
      neg.ts = e.ts();
      program_.MaterializeKey(rec, &neg.key, &neg.covered);
      for (size_t r = 0; r < neg_roles_.size(); ++r) {
        if (neg_roles_[r].elem_index == role.elem_index) {
          neg_events_[r].push_back(neg);
          stats_.objects.Add(1);
          ++stats_.work_units;
        }
      }
      continue;
    }
    // Positive role: push onto the position's stack (roles arrive in
    // descending position order, so an instance never pairs with itself).
    size_t pos = role.position - 1;  // 0-based
    StackEntry entry;
    entry.event = e;
    entry.ptr = pos == 0 ? 0 : stacks_[pos - 1].total_pushed();
    stacks_[pos].entries.push_back(std::move(entry));
    stats_.objects.Add(2);
    ++stats_.work_units;
    if (role.position == length_) trigger = true;
  }

  if (trigger) {
    // The freshly pushed entry of the last stack roots the DFS.
    ConstructMatches(e.ts());
    const Value* group = nullptr;
    Value group_value;
    if (grouped_) {
      group_value =
          e.GetAttr(query_.partition_spec()
                        .parts[query_.partition_spec().group_part]
                        .attr);
      group = &group_value;
    }
    out->push_back(lazy_ ? MakeLazyOutput(e.ts(), e.seq(), group)
                         : MakeOutput(e.ts(), e.seq(), group));
    ++stats_.outputs;
  }
}

void StackEngine::ConstructMatches(Timestamp now) {
  assert(!stacks_[length_ - 1].entries.empty());
  dfs_match_[length_ - 1] = &stacks_[length_ - 1].entries.back();
  if (length_ == 1) {
    RecordMatch(now);
    return;
  }
  // DFS over positions length_-2 .. 0 along the adjacency pointers.
  struct Recurse {
    StackEngine* self;
    Timestamp now;
    void operator()(int pos) {
      if (pos < 0) {
        self->RecordMatch(now);
        return;
      }
      const StackEntry& next = *self->dfs_match_[pos + 1];
      PosStack& stack = self->stacks_[pos];
      uint64_t hi = std::min<uint64_t>(next.ptr, stack.total_pushed());
      for (uint64_t abs = hi; abs > stack.base; --abs) {
        const StackEntry& cand = stack.entries[abs - 1 - stack.base];
        ++self->stats_.work_units;
        if (self->query_.partitioned()) {
          // Equivalence check against the trigger's partition key.
          bool match = true;
          const auto& parts = self->query_.partition_spec().parts;
          const Event& trig = self->dfs_match_[self->length_ - 1]->event;
          for (const auto& part : parts) {
            if (!cand.event.GetAttr(part.attr).Equals(
                    trig.GetAttr(part.attr))) {
              match = false;
              break;
            }
          }
          if (!match) continue;
        }
        self->dfs_match_[pos] = &cand;
        (*this)(pos - 1);
      }
    }
  };
  Recurse recurse{this, now};
  recurse(static_cast<int>(length_) - 2);
}

bool StackEngine::LazyMatchValid(const LazyMatch& match) const {
  for (size_t r = 0; r < neg_roles_.size(); ++r) {
    const SeqNum lo = match.bounds[r].first;
    const SeqNum hi = match.bounds[r].second;
    const std::deque<NegEvent>& events = neg_events_[r];
    auto it = std::lower_bound(
        events.begin(), events.end(), lo,
        [](const NegEvent& n, SeqNum s) { return n.seq <= s; });
    for (; it != events.end() && it->seq < hi; ++it) {
      // Partition coverage: the negated instance invalidates only matches
      // agreeing on the key parts that constrain it.
      bool applies = true;
      for (size_t p = 0; p < it->covered.size(); ++p) {
        if (it->covered[p] &&
            !it->key.parts[p].Equals(match.key.parts[p])) {
          applies = false;
          break;
        }
      }
      if (applies) return false;
    }
  }
  return true;
}

bool StackEngine::PassesJoinPredicates() const {
  if (!query_.has_join_predicates()) return true;
  // Map pattern element index -> positive position.
  std::vector<int> elem_to_pos(query_.pattern().size(), -1);
  int pos = 0;
  for (size_t i = 0; i < query_.pattern().size(); ++i) {
    if (!query_.pattern().elements()[i].negated) {
      elem_to_pos[i] = pos++;
    }
  }
  std::vector<const Event*> events;
  events.reserve(length_);
  for (size_t i = 0; i < length_; ++i) events.push_back(&dfs_match_[i]->event);
  for (const Comparison& cmp : query_.join_predicates()) {
    if (!EvalCmp(cmp.op, MatchOperandValue(cmp.lhs, elem_to_pos, events),
                 MatchOperandValue(cmp.rhs, elem_to_pos, events))) {
      return false;
    }
  }
  return true;
}

void StackEngine::RecordMatch(Timestamp now) {
  ++stats_.work_units;
  if (!PassesJoinPredicates()) return;

  const Event& trig = dfs_match_[length_ - 1]->event;
  Value group;  // null when ungrouped
  if (grouped_) {
    group = trig.GetAttr(
        query_.partition_spec().parts[query_.partition_spec().group_part]
            .attr);
  }
  double value = 0;
  if (carrier_pos_ >= 0) {
    value = dfs_match_[carrier_pos_]->event.GetAttr(query_.agg().attr)
                .ToDouble();
  }

  if (lazy_) {
    // The paper's late-filter architecture: materialize the positive match;
    // the negation check happens only when results are produced.
    LazyMatch match;
    match.exp = query_.has_window()
                    ? dfs_match_[0]->event.ts() + query_.window_ms()
                    : INT64_MAX;
    match.value = value;
    match.group = group;
    if (query_.partitioned()) {
      const auto& parts = query_.partition_spec().parts;
      match.key.parts.reserve(parts.size());
      for (const auto& part : parts) {
        match.key.parts.push_back(trig.GetAttr(part.attr));
      }
    }
    match.bounds.reserve(neg_roles_.size());
    for (const Role& role : neg_roles_) {
      match.bounds.emplace_back(dfs_match_[role.position - 1]->event.seq(),
                                dfs_match_[role.position]->event.seq());
    }
    uint64_t id = next_lazy_id_++;
    if (query_.has_window()) {
      lazy_expiry_.push(LazyExpiry{match.exp, id});
    }
    lazy_matches_.emplace(id, std::move(match));
    ++live_matches_;
    stats_.objects.Add(1);
    return;
  }

  GroupAgg& agg = groups_[group];
  ++agg.count;
  agg.sum += value;
  if (query_.agg().func == AggFunc::kMin ||
      query_.agg().func == AggFunc::kMax) {
    agg.values.insert(value);
  }
  if (query_.has_window()) {
    expiry_.push(ExpiryItem{dfs_match_[0]->event.ts() + query_.window_ms(),
                            group, value});
  }
  ++live_matches_;
  stats_.objects.Add(1);
  (void)now;
}

Output StackEngine::MakeOutput(Timestamp ts, SeqNum seq, const Value* group) {
  Output output;
  output.ts = ts;
  output.seq = seq;
  const GroupAgg* agg = nullptr;
  if (group != nullptr) {
    output.group = *group;
    auto it = groups_.find(*group);
    if (it != groups_.end()) agg = &it->second;
  } else {
    auto it = groups_.find(Value());
    if (it != groups_.end()) agg = &it->second;
  }
  uint64_t count = agg != nullptr ? agg->count : 0;
  double sum = agg != nullptr ? agg->sum : 0;
  switch (query_.agg().func) {
    case AggFunc::kCount:
      output.value = Value(static_cast<int64_t>(count));
      break;
    case AggFunc::kSum:
      output.value = Value(sum);
      break;
    case AggFunc::kAvg:
      output.value = count == 0
                         ? Value()
                         : Value(sum / static_cast<double>(count));
      break;
    case AggFunc::kMin:
      output.value = (agg == nullptr || agg->values.empty())
                         ? Value()
                         : Value(*agg->values.begin());
      break;
    case AggFunc::kMax:
      output.value = (agg == nullptr || agg->values.empty())
                         ? Value()
                         : Value(*agg->values.rbegin());
      break;
  }
  return output;
}

Output StackEngine::MakeLazyOutput(Timestamp ts, SeqNum seq,
                                   const Value* group) {
  Output output;
  output.ts = ts;
  output.seq = seq;
  if (group != nullptr) output.group = *group;
  uint64_t count = 0;
  double sum = 0;
  bool has_ext = false;
  double ext = 0;
  const bool want_min = query_.agg().func == AggFunc::kMin;
  for (const auto& [id, match] : lazy_matches_) {
    ++stats_.work_units;  // the post-filter pass the paper charges
    if (group != nullptr && !match.group.Equals(*group)) continue;
    if (!LazyMatchValid(match)) continue;
    ++count;
    sum += match.value;
    if (!has_ext || (want_min ? match.value < ext : match.value > ext)) {
      has_ext = true;
      ext = match.value;
    }
  }
  switch (query_.agg().func) {
    case AggFunc::kCount:
      output.value = Value(static_cast<int64_t>(count));
      break;
    case AggFunc::kSum:
      output.value = Value(sum);
      break;
    case AggFunc::kAvg:
      output.value =
          count == 0 ? Value() : Value(sum / static_cast<double>(count));
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      output.value = has_ext ? Value(ext) : Value();
      break;
  }
  return output;
}

Status StackEngine::Checkpoint(ckpt::Writer* writer) const {
  ckpt::WriteStats(writer, stats_);
  writer->WriteI64(next_expiry_);
  writer->WriteU64(stacks_.size());
  for (const PosStack& stack : stacks_) {
    writer->WriteU64(stack.base);
    writer->WriteU64(stack.entries.size());
    for (const StackEntry& entry : stack.entries) {
      ckpt::WriteEvent(writer, entry.event);
      writer->WriteU64(entry.ptr);
    }
  }
  writer->WriteU64(neg_events_.size());
  for (const std::deque<NegEvent>& events : neg_events_) {
    writer->WriteU64(events.size());
    for (const NegEvent& neg : events) {
      writer->WriteU64(neg.seq);
      writer->WriteI64(neg.ts);
      ckpt::WritePartitionKey(writer, neg.key);
      writer->WriteU64(neg.covered.size());
      for (bool covered : neg.covered) writer->WriteBool(covered);
    }
  }
  writer->WriteU64(groups_.size());
  for (const auto& [group, agg] : groups_) {
    ckpt::WriteValue(writer, group);
    writer->WriteU64(agg.count);
    writer->WriteDouble(agg.sum);
    writer->WriteU64(agg.values.size());
    for (double v : agg.values) writer->WriteDouble(v);
  }
  // Expiry heaps serialize their underlying array verbatim, not a drained
  // copy: the comparator keys on exp alone, so equal expirations pop in
  // array-layout order, and PurgeExpired retracts match values from agg.sum
  // in that order — a floating-point sum the pop order must reproduce
  // exactly (see ckpt::HeapContainer).
  const auto& expiry_heap = ckpt::HeapContainer(expiry_);
  writer->WriteU64(expiry_heap.size());
  for (const ExpiryItem& item : expiry_heap) {
    writer->WriteI64(item.exp);
    ckpt::WriteValue(writer, item.group);
    writer->WriteDouble(item.value);
  }
  writer->WriteU64(next_lazy_id_);
  writer->WriteU64(live_matches_);
  // Bucket count pins lazy_matches_' iteration order, which MakeLazyOutput's
  // floating-point merge order observes (see HpcEngine::Restore).
  writer->WriteU64(lazy_matches_.bucket_count());
  writer->WriteU64(lazy_matches_.size());
  for (const auto& [id, match] : lazy_matches_) {
    writer->WriteU64(id);
    writer->WriteI64(match.exp);
    writer->WriteDouble(match.value);
    ckpt::WriteValue(writer, match.group);
    ckpt::WritePartitionKey(writer, match.key);
    writer->WriteU64(match.bounds.size());
    for (const auto& [lo, hi] : match.bounds) {
      writer->WriteU64(lo);
      writer->WriteU64(hi);
    }
  }
  const auto& lazy_heap = ckpt::HeapContainer(lazy_expiry_);
  writer->WriteU64(lazy_heap.size());
  for (const LazyExpiry& item : lazy_heap) {
    writer->WriteI64(item.exp);
    writer->WriteU64(item.id);
  }
  return Status::OK();
}

Status StackEngine::Restore(ckpt::Reader* reader) {
  EngineStats stats;
  ASEQ_RETURN_NOT_OK(ckpt::ReadStats(reader, &stats));
  ASEQ_RETURN_NOT_OK(reader->ReadI64(&next_expiry_, "stack next expiry"));
  uint64_t n_stacks = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_stacks, 16, "position stacks"));
  if (n_stacks != stacks_.size()) {
    return Status::ParseError(
        "snapshot corrupt: " + std::to_string(n_stacks) +
        " position stacks but the query has " + std::to_string(stacks_.size()));
  }
  for (PosStack& stack : stacks_) {
    stack.entries.clear();
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&stack.base, "stack base"));
    uint64_t n_entries = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_entries, 28, "stack entries"));
    for (uint64_t i = 0; i < n_entries; ++i) {
      StackEntry entry;
      ASEQ_RETURN_NOT_OK(ckpt::ReadEvent(reader, &entry.event));
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&entry.ptr, "stack entry ptr"));
      stack.entries.push_back(std::move(entry));
    }
  }
  uint64_t n_neg = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_neg, 8, "negation deques"));
  if (n_neg != neg_events_.size()) {
    return Status::ParseError(
        "snapshot corrupt: " + std::to_string(n_neg) +
        " negation deques but the query has " +
        std::to_string(neg_events_.size()));
  }
  for (std::deque<NegEvent>& events : neg_events_) {
    events.clear();
    uint64_t n_events = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_events, 24, "negated instances"));
    for (uint64_t i = 0; i < n_events; ++i) {
      NegEvent neg;
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&neg.seq, "negated seq"));
      ASEQ_RETURN_NOT_OK(reader->ReadI64(&neg.ts, "negated ts"));
      ASEQ_RETURN_NOT_OK(ckpt::ReadPartitionKey(reader, &neg.key));
      uint64_t n_covered = 0;
      ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_covered, 1, "coverage flags"));
      neg.covered.resize(n_covered);
      for (uint64_t j = 0; j < n_covered; ++j) {
        bool covered = false;
        ASEQ_RETURN_NOT_OK(reader->ReadBool(&covered, "coverage flag"));
        neg.covered[j] = covered;
      }
      events.push_back(std::move(neg));
    }
  }
  groups_.clear();
  uint64_t n_groups = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_groups, 25, "aggregation groups"));
  for (uint64_t i = 0; i < n_groups; ++i) {
    Value group;
    ASEQ_RETURN_NOT_OK(ckpt::ReadValue(reader, &group));
    GroupAgg agg;
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&agg.count, "group count"));
    ASEQ_RETURN_NOT_OK(reader->ReadDouble(&agg.sum, "group sum"));
    uint64_t n_values = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_values, 8, "group values"));
    for (uint64_t j = 0; j < n_values; ++j) {
      double v = 0;
      ASEQ_RETURN_NOT_OK(reader->ReadDouble(&v, "group value"));
      agg.values.insert(v);
    }
    groups_[std::move(group)] = std::move(agg);
  }
  expiry_ = {};
  uint64_t n_expiry = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_expiry, 17, "match expirations"));
  auto& expiry_heap = ckpt::MutableHeapContainer(expiry_);
  expiry_heap.reserve(n_expiry);
  for (uint64_t i = 0; i < n_expiry; ++i) {
    ExpiryItem item;
    ASEQ_RETURN_NOT_OK(reader->ReadI64(&item.exp, "match expiry"));
    ASEQ_RETURN_NOT_OK(ckpt::ReadValue(reader, &item.group));
    ASEQ_RETURN_NOT_OK(reader->ReadDouble(&item.value, "match value"));
    expiry_heap.push_back(std::move(item));
  }
  ASEQ_RETURN_NOT_OK(reader->ReadU64(&next_lazy_id_, "next lazy id"));
  ASEQ_RETURN_NOT_OK(reader->ReadU64(&live_matches_, "live match count"));
  uint64_t lazy_buckets = 0;
  uint64_t n_lazy = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadU64(&lazy_buckets, "lazy bucket count"));
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_lazy, 49, "retained matches"));
  std::vector<std::pair<uint64_t, LazyMatch>> parsed;
  parsed.reserve(n_lazy);
  for (uint64_t i = 0; i < n_lazy; ++i) {
    uint64_t id = 0;
    LazyMatch match;
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&id, "lazy match id"));
    ASEQ_RETURN_NOT_OK(reader->ReadI64(&match.exp, "lazy match expiry"));
    ASEQ_RETURN_NOT_OK(reader->ReadDouble(&match.value, "lazy match value"));
    ASEQ_RETURN_NOT_OK(ckpt::ReadValue(reader, &match.group));
    ASEQ_RETURN_NOT_OK(ckpt::ReadPartitionKey(reader, &match.key));
    uint64_t n_bounds = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_bounds, 16, "lazy match bounds"));
    for (uint64_t j = 0; j < n_bounds; ++j) {
      uint64_t lo = 0, hi = 0;
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&lo, "bound lo"));
      ASEQ_RETURN_NOT_OK(reader->ReadU64(&hi, "bound hi"));
      match.bounds.emplace_back(lo, hi);
    }
    parsed.emplace_back(id, std::move(match));
  }
  lazy_matches_.clear();
  lazy_matches_.rehash(lazy_buckets);
  for (auto it = parsed.rbegin(); it != parsed.rend(); ++it) {
    if (!lazy_matches_.emplace(it->first, std::move(it->second)).second) {
      return Status::ParseError(
          "snapshot corrupt: duplicate retained-match id");
    }
  }
  lazy_expiry_ = {};
  uint64_t n_lazy_expiry = 0;
  ASEQ_RETURN_NOT_OK(
      reader->ReadCount(&n_lazy_expiry, 16, "lazy expirations"));
  auto& lazy_heap = ckpt::MutableHeapContainer(lazy_expiry_);
  lazy_heap.reserve(n_lazy_expiry);
  for (uint64_t i = 0; i < n_lazy_expiry; ++i) {
    LazyExpiry item;
    ASEQ_RETURN_NOT_OK(reader->ReadI64(&item.exp, "lazy expiry ts"));
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&item.id, "lazy expiry id"));
    lazy_heap.push_back(item);
  }
  stats_ = stats;
  return Status::OK();
}

std::vector<Output> StackEngine::Poll(Timestamp now) {
  PurgeExpired(now);
  std::vector<Output> outputs;
  if (lazy_) {
    if (!grouped_) {
      outputs.push_back(MakeLazyOutput(now, 0, nullptr));
      return outputs;
    }
    // One output per group with any retained match.
    std::map<Value, bool, ValueTotalLess> groups;
    for (const auto& [id, match] : lazy_matches_) {
      groups[match.group] = true;
    }
    for (const auto& [group, unused] : groups) {
      outputs.push_back(MakeLazyOutput(now, 0, &group));
    }
    return outputs;
  }
  if (!grouped_) {
    outputs.push_back(MakeOutput(now, 0, nullptr));
    return outputs;
  }
  for (const auto& [group, agg] : groups_) {
    outputs.push_back(MakeOutput(now, 0, &group));
  }
  return outputs;
}

}  // namespace aseq
