#ifndef ASEQ_METRICS_SHARD_STATS_H_
#define ASEQ_METRICS_SHARD_STATS_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "metrics/metrics.h"

namespace aseq {

/// \brief Folds the additive EngineStats fields of `shard` into `merged`.
///
/// Every bulk counter is charged on exactly one shard per serial event
/// (events_processed, outputs, dropped) or is purge-timing-independent
/// (work_units: counter mutations are always preceded by a purge to the
/// event's timestamp, so the live-entry counts they observe match the
/// serial engine's), so plain sums reproduce the serial values exactly.
/// The object counters are NOT summed here — live/peak object accounting
/// needs the seq-ordered timeline merge below, because the sum of
/// per-shard peaks overestimates the serial global peak (shards do not
/// peak at the same instant).
inline void MergeBulkStats(const EngineStats& shard, EngineStats* merged) {
  merged->events_processed += shard.events_processed;
  merged->outputs += shard.outputs;
  merged->work_units += shard.work_units;
  merged->batches_processed += shard.batches_processed;
  if (shard.max_batch_events > merged->max_batch_events) {
    merged->max_batch_events = shard.max_batch_events;
  }
  merged->dropped_events += shard.dropped_events;
  // Flat-store diagnostics: sums over shards (each shard owns its own
  // tables). Diagnostic-only — per-shard probe lengths legitimately differ
  // from a serial run's, so these are outside the equivalence contract.
  merged->ht_probes += shard.ht_probes;
  merged->ht_probe_steps += shard.ht_probe_steps;
  merged->ht_slots += shard.ht_slots;
  merged->ht_entries += shard.ht_entries;
  // Admission counters: each serial event is admitted on exactly one owner
  // shard (the router's purge markers never reach admission), so sums
  // reproduce the serial engine's admission counts exactly.
  merged->adm_admitted += shard.adm_admitted;
  merged->adm_rejected_local += shard.adm_rejected_local;
  merged->adm_missing_attr += shard.adm_missing_attr;
  merged->adm_generic_cmps += shard.adm_generic_cmps;
  // Fault/overload counters: owned by the sharded coordinator, which folds
  // its own totals into the merged view after this sum — shard engines
  // always carry zeros here, so the sums are inert but keep the merge
  // total-preserving if that ever changes.
  merged->fault_injected += shard.fault_injected;
  merged->fault_restarts += shard.fault_restarts;
  merged->fault_replayed_events += shard.fault_replayed_events;
  merged->shed_partitions += shard.shed_partitions;
  merged->shed_events += shard.shed_events;
  merged->overload_stalls += shard.overload_stalls;
  // Dataplane counters: owned by the coordinator/workers, folded in after
  // this sum like the fault counters above — shard engines carry zeros.
  merged->pub_batches += shard.pub_batches;
  merged->ring_full_waits += shard.ring_full_waits;
  merged->ring_spins += shard.ring_spins;
}

/// \brief Reconstructs the serial engine's global live/peak object counts
/// from per-shard, per-event observations.
///
/// Each shard records, for every event (or purge marker) that changed its
/// object count, a Record with the event's global sequence number, the
/// shard's live count after the event, and the maximum the count reached
/// *during* the event (ObjectCounter::window_peak — a probe can add
/// counters and then purge others, so the peak may fall mid-event).
///
/// The merge replays records in global seq order. In the serial engine,
/// event k's object Adds all happen while every other shard's slice still
/// holds its pre-k count (cross-shard purges happen in the trigger phase,
/// after the probes' Adds, and are replicated on the other shards as
/// purge markers *at the same seq*), so
///
///   candidate_peak(k, s) = total_before_k - current[s] + window_peak(k, s)
///
/// is exactly the maximum global live count during event k's Adds on shard
/// s, and max over events/shards of these candidates (plus every
/// between-events boundary total) is exactly the serial peak.
class StatsTimelineMerger {
 public:
  struct Record {
    uint64_t seq = 0;
    /// Shard-local live object count after the event fully executed.
    int64_t current_after = 0;
    /// Maximum the shard-local count reached during the event.
    int64_t window_peak = 0;
  };

  /// Starts a merge with the shards' initial live counts (all zero for a
  /// fresh run; the restored per-shard counts after a snapshot restore)
  /// and the peak observed so far (0, or the restored merged peak).
  void Reset(std::span<const int64_t> initial_currents, int64_t initial_peak) {
    current_.assign(initial_currents.begin(), initial_currents.end());
    total_ = 0;
    for (int64_t c : current_) total_ += c;
    peak_ = initial_peak > total_ ? initial_peak : total_;
  }

  /// Consumes one batch of per-shard record runs (lanes[s] = shard s's
  /// not-yet-consumed records, seq-ascending). All records for any seq in
  /// the consumed range must be present — call only while every shard is
  /// quiescent (at a checkpoint barrier or after the run drained).
  void Consume(std::span<const std::span<const Record>> lanes) {
    assert(lanes.size() == current_.size());
    cursor_.assign(lanes.size(), 0);
    for (;;) {
      // Next global seq with pending records across all lanes.
      uint64_t seq = UINT64_MAX;
      for (size_t s = 0; s < lanes.size(); ++s) {
        if (cursor_[s] < lanes[s].size() && lanes[s][cursor_[s]].seq < seq) {
          seq = lanes[s][cursor_[s]].seq;
        }
      }
      if (seq == UINT64_MAX) break;
      // Phase 1: peak candidates — each lane's mid-event maximum against
      // the other lanes' pre-event counts.
      for (size_t s = 0; s < lanes.size(); ++s) {
        if (cursor_[s] < lanes[s].size() && lanes[s][cursor_[s]].seq == seq) {
          const int64_t candidate =
              total_ - current_[s] + lanes[s][cursor_[s]].window_peak;
          if (candidate > peak_) peak_ = candidate;
        }
      }
      // Phase 2: apply the post-event counts, then check the boundary.
      for (size_t s = 0; s < lanes.size(); ++s) {
        if (cursor_[s] < lanes[s].size() && lanes[s][cursor_[s]].seq == seq) {
          total_ += lanes[s][cursor_[s]].current_after - current_[s];
          current_[s] = lanes[s][cursor_[s]].current_after;
          ++cursor_[s];
        }
      }
      if (total_ > peak_) peak_ = total_;
    }
  }

  int64_t merged_current() const { return total_; }
  int64_t merged_peak() const { return peak_; }

 private:
  std::vector<int64_t> current_;
  std::vector<size_t> cursor_;
  int64_t total_ = 0;
  int64_t peak_ = 0;
};

}  // namespace aseq

#endif  // ASEQ_METRICS_SHARD_STATS_H_
