#ifndef ASEQ_METRICS_METRICS_H_
#define ASEQ_METRICS_METRICS_H_

#include <cassert>
#include <chrono>
#include <cstdint>

namespace aseq {

/// \brief Live/peak object accounting.
///
/// Reproduces the paper's memory metric (Sec. 6.1): "the maximum number of
/// active Java objects or references". Engines report every unit of live
/// state through this counter — the stack-based baseline counts stacked
/// event references, adjacency pointers, and retained (partial) matches;
/// A-Seq engines count live prefix-counter cells.
class ObjectCounter {
 public:
  void Add(int64_t n) {
    current_ += n;
    if (current_ > peak_) peak_ = current_;
    if (current_ > window_peak_) window_peak_ = current_;
  }
  void Remove(int64_t n) {
    current_ -= n;
    // Live-object accounting must never go negative: a negative count means
    // an engine removed state it never added (double-purge, lost Add).
    assert(current_ >= 0 &&
           "ObjectCounter::Remove drove the live count negative");
  }

  int64_t current() const { return current_; }
  int64_t peak() const { return peak_; }

  /// Opens a peak-observation window: window_peak() then reports the
  /// maximum the live count reaches from this point on. The sharded
  /// executor opens one window per event so the cross-shard stats merge
  /// can reconstruct the serial global peak exactly — a shard's peak may
  /// occur mid-event, between an Add and the purges a later probe runs.
  void BeginPeakWindow() { window_peak_ = current_; }
  int64_t window_peak() const { return window_peak_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
    window_peak_ = 0;
  }

  /// Overwrites both counters from a checkpoint. Engines restore stats
  /// wholesale after rebuilding their state structures, whose constructors
  /// would otherwise have double-counted the rebuilt objects.
  void RestoreCounts(int64_t current, int64_t peak) {
    assert(current >= 0 && peak >= current &&
           "restored object counters are inconsistent");
    current_ = current;
    peak_ = peak;
    window_peak_ = current;
  }

 private:
  int64_t current_ = 0;
  int64_t peak_ = 0;
  /// Maximum since the last BeginPeakWindow (see above); transient — not
  /// checkpointed, not compared by the equivalence tests.
  int64_t window_peak_ = 0;
};

/// \brief Per-engine execution statistics.
struct EngineStats {
  /// Events consumed (== window slides, since the window slides on every
  /// arrival per the paper's window semantics).
  uint64_t events_processed = 0;
  /// Aggregation results delivered (TRIG outputs, per group).
  uint64_t outputs = 0;
  /// Elementary work units: counter updates for A-Seq, stack pushes +
  /// DFS edge visits + match constructions for the baseline. A
  /// hardware-independent CPU-cost proxy.
  uint64_t work_units = 0;
  /// Live/peak state objects (see ObjectCounter).
  ObjectCounter objects;
  /// Batches consumed through OnBatch (a per-event OnEvent feed leaves
  /// these at zero; batched and per-event runs are otherwise stat-identical).
  uint64_t batches_processed = 0;
  /// Largest batch seen by OnBatch.
  uint64_t max_batch_events = 0;
  /// Events discarded before reaching the engine — today that is late
  /// arrivals past the K-slack bound in the reordering layer. Anything
  /// dropped must be visible here, never silently swallowed.
  uint64_t dropped_events = 0;

  // ---- Flat partition-store diagnostics (src/container/) ----
  //
  // Transient performance counters, like ObjectCounter::window_peak: they
  // are not checkpointed and are NOT part of the equivalence contract —
  // probe lengths depend on the physical table layout, which a restore
  // rebuilds from the canonical snapshot order rather than replaying the
  // original insert/erase history.
  /// Lookups issued against the engine's open-addressing tables.
  uint64_t ht_probes = 0;
  /// Total probe steps across those lookups (1 step = a direct hit; the
  /// average ht_probe_steps / ht_probes is the probe-length health metric).
  uint64_t ht_probe_steps = 0;
  /// Current slot capacity across the engine's flat tables (load factor =
  /// ht_entries / ht_slots).
  uint64_t ht_slots = 0;
  /// Current live entries across the engine's flat tables.
  uint64_t ht_entries = 0;

  // ---- Admission diagnostics (src/plan/) ----
  //
  // Transient like the ht_* gauges above: not checkpointed, not part of
  // the equivalence contract, summed additively across shards (each event
  // is admitted on exactly one owner shard).
  /// (event, role) pairs admitted: qualified, carrier-valid, and with a
  /// complete partition key.
  uint64_t adm_admitted = 0;
  /// (event, role) pairs rejected by a local predicate (including a
  /// missing/non-numeric aggregate-carrier attribute).
  uint64_t adm_rejected_local = 0;
  /// (event, role) pairs dropped because a covering partition part's
  /// attribute was missing or null.
  uint64_t adm_missing_attr = 0;
  /// Comparisons that took the generic EvalCmp fallback instead of a typed
  /// opcode (mixed-type operands, attr-vs-attr terms, missing attributes).
  uint64_t adm_generic_cmps = 0;

  // ---- Supervised-runtime fault/overload counters (src/fault/, exec/) ----
  //
  // Transient like the diagnostics above: not checkpointed and outside the
  // equivalence contract. The sharded coordinator owns them (workers never
  // touch them); serial runs leave them zero. shed_events is deliberately
  // separate from dropped_events: dropped_events is part of the durable
  // equivalence contract, while shedding is a live-overload response whose
  // accounting must not perturb checkpointed state.
  /// Faults fired by the process-wide fault::Injector during the run.
  uint64_t fault_injected = 0;
  /// Shard workers restarted by the supervisor after a crash or stall.
  uint64_t fault_restarts = 0;
  /// Events re-executed from supervisor replay logs during restarts.
  uint64_t fault_replayed_events = 0;
  /// Partitions (GROUP BY keys) dropped by the shed overload policy.
  uint64_t shed_partitions = 0;
  /// Events discarded because their partition was shed.
  uint64_t shed_events = 0;
  /// Full-drain stalls taken by the degrade-serial overload policy.
  uint64_t overload_stalls = 0;

  // ---- Sharded dataplane counters (src/exec/, docs/internals.md §16) ----
  //
  // Transient diagnostics like the groups above: not checkpointed, outside
  // the equivalence contract, owned by the sharded coordinator/workers and
  // folded into the merged view at the end of the run (serial runs leave
  // them zero).
  /// Chunked route publications: one per shard per batch that had ops for
  /// that shard (the unit of coordinator→worker synchronization).
  uint64_t pub_batches = 0;
  /// Publications that found the lane's ring full and had to wait for the
  /// worker (the dataplane's backpressure signal).
  uint64_t ring_full_waits = 0;
  /// Spin iterations burned in the rings' spin-then-park protocols before
  /// parking, summed over the coordinator and every worker.
  uint64_t ring_spins = 0;

  /// Records one OnBatch call of `n` events.
  void NoteBatch(size_t n) {
    ++batches_processed;
    if (n > max_batch_events) max_batch_events = n;
  }

  void Reset() {
    events_processed = 0;
    outputs = 0;
    work_units = 0;
    objects.Reset();
    batches_processed = 0;
    max_batch_events = 0;
    dropped_events = 0;
    ht_probes = 0;
    ht_probe_steps = 0;
    ht_slots = 0;
    ht_entries = 0;
    adm_admitted = 0;
    adm_rejected_local = 0;
    adm_missing_attr = 0;
    adm_generic_cmps = 0;
    fault_injected = 0;
    fault_restarts = 0;
    fault_replayed_events = 0;
    shed_partitions = 0;
    shed_events = 0;
    overload_stalls = 0;
    pub_batches = 0;
    ring_full_waits = 0;
    ring_spins = 0;
  }
};

/// \brief Wall-clock stopwatch (steady clock).
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed whole nanoseconds since construction/restart — the integral
  /// form the telemetry histograms record (src/obs/), avoiding a
  /// double round-trip on the dataplane hot path.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Construction/restart instant on the steady-clock epoch — the same
  /// time base as obs::MonotonicNanos(), so StartNanos() + ElapsedNanos()
  /// reconstructs an absolute end timestamp without a third clock read.
  uint64_t StartNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start_.time_since_epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aseq

#endif  // ASEQ_METRICS_METRICS_H_
