#ifndef ASEQ_ENGINE_REORDERING_ENGINE_H_
#define ASEQ_ENGINE_REORDERING_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ckpt/ckpt.h"
#include "engine/engine.h"
#include "stream/reorder.h"

namespace aseq {

/// \brief Adapter that makes any in-order QueryEngine consume boundedly
/// out-of-order streams (the paper's Sec. 8 future work).
///
/// Arriving events pass through a KSlackReorderer; released events are
/// re-sequenced and fed to the wrapped engine. Results are therefore
/// delayed by up to the slack bound — the price of disorder tolerance.
/// Call Finish() at end of stream to drain the buffer.
///
/// Late events past the slack bound are dropped by the reorderer, but never
/// silently: stats() folds the drop count into EngineStats::dropped_events.
class ReorderingEngine : public QueryEngine {
 public:
  ReorderingEngine(std::unique_ptr<QueryEngine> inner, Timestamp slack_ms)
      : inner_(std::move(inner)), reorderer_(slack_ms) {}

  void OnEvent(const Event& e, std::vector<Output>* out) override {
    released_.clear();
    reorderer_.Push(e, &released_);
    for (Event& r : released_) {
      r.set_seq(next_seq_++);
      inner_->OnEvent(r, out);
    }
  }

  /// Batched path: pushes the whole batch through the reorder buffer,
  /// then feeds everything released — in the same release order as the
  /// per-event path — to the inner engine as one batch.
  void OnBatch(std::span<const Event> batch,
               std::vector<Output>* out) override {
    if (batch.empty()) return;
    released_.clear();
    for (const Event& e : batch) reorderer_.Push(e, &released_);
    for (Event& r : released_) r.set_seq(next_seq_++);
    inner_->OnBatch(released_, out);
  }

  /// Drains the reorder buffer into the wrapped engine through OnBatch —
  /// the same code path as steady-state batches, so the drain cannot
  /// diverge from normal processing.
  void Finish(std::vector<Output>* out) {
    released_.clear();
    reorderer_.Flush(&released_);
    for (Event& r : released_) r.set_seq(next_seq_++);
    inner_->OnBatch(released_, out);
  }

  /// Current value as of the *released* stream time; buffered events are
  /// not yet reflected.
  std::vector<Output> Poll(Timestamp now) override {
    return inner_->Poll(now);
  }

  /// Inner engine stats with the reorderer's drop count folded into
  /// dropped_events.
  const EngineStats& stats() const override {
    stats_cache_ = inner_->stats();
    stats_cache_.dropped_events += reorderer_.dropped();
    return stats_cache_;
  }

  Status Checkpoint(ckpt::Writer* writer) const override {
    reorderer_.Checkpoint(writer);
    writer->WriteU64(next_seq_);
    return inner_->Checkpoint(writer);
  }

  Status Restore(ckpt::Reader* reader) override {
    ASEQ_RETURN_NOT_OK(reorderer_.Restore(reader));
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&next_seq_, "reorder next seq"));
    return inner_->Restore(reader);
  }

  std::string name() const override {
    return inner_->name() + "+KSlack";
  }

  uint64_t dropped_events() const { return reorderer_.dropped(); }
  size_t buffered_events() const { return reorderer_.buffered(); }
  QueryEngine* inner() { return inner_.get(); }

 private:
  std::unique_ptr<QueryEngine> inner_;
  KSlackReorderer reorderer_;
  SeqNum next_seq_ = 0;
  std::vector<Event> released_;
  /// stats() composes inner stats + drop count on demand; mutable because
  /// the interface returns a reference.
  mutable EngineStats stats_cache_;
};

/// \brief Multi-query counterpart of ReorderingEngine: one shared K-slack
/// buffer in front of a MultiQueryEngine.
class ReorderingMultiEngine : public MultiQueryEngine {
 public:
  ReorderingMultiEngine(std::unique_ptr<MultiQueryEngine> inner,
                        Timestamp slack_ms)
      : inner_(std::move(inner)), reorderer_(slack_ms) {}

  void OnEvent(const Event& e, std::vector<MultiOutput>* out) override {
    released_.clear();
    reorderer_.Push(e, &released_);
    for (Event& r : released_) {
      r.set_seq(next_seq_++);
      inner_->OnEvent(r, out);
    }
  }

  /// Batched path (see ReorderingEngine::OnBatch).
  void OnBatch(std::span<const Event> batch,
               std::vector<MultiOutput>* out) override {
    if (batch.empty()) return;
    released_.clear();
    for (const Event& e : batch) reorderer_.Push(e, &released_);
    for (Event& r : released_) r.set_seq(next_seq_++);
    inner_->OnBatch(released_, out);
  }

  /// Drains the reorder buffer into the wrapped engine through OnBatch
  /// (see ReorderingEngine::Finish).
  void Finish(std::vector<MultiOutput>* out) {
    released_.clear();
    reorderer_.Flush(&released_);
    for (Event& r : released_) r.set_seq(next_seq_++);
    inner_->OnBatch(released_, out);
  }

  /// Inner engine stats with the reorderer's drop count folded into
  /// dropped_events.
  const EngineStats& stats() const override {
    stats_cache_ = inner_->stats();
    stats_cache_.dropped_events += reorderer_.dropped();
    return stats_cache_;
  }

  Status Checkpoint(ckpt::Writer* writer) const override {
    reorderer_.Checkpoint(writer);
    writer->WriteU64(next_seq_);
    return inner_->Checkpoint(writer);
  }

  Status Restore(ckpt::Reader* reader) override {
    ASEQ_RETURN_NOT_OK(reorderer_.Restore(reader));
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&next_seq_, "reorder next seq"));
    return inner_->Restore(reader);
  }

  std::string name() const override { return inner_->name() + "+KSlack"; }

  uint64_t dropped_events() const { return reorderer_.dropped(); }
  size_t buffered_events() const { return reorderer_.buffered(); }

 private:
  std::unique_ptr<MultiQueryEngine> inner_;
  KSlackReorderer reorderer_;
  SeqNum next_seq_ = 0;
  std::vector<Event> released_;
  mutable EngineStats stats_cache_;
};

}  // namespace aseq

#endif  // ASEQ_ENGINE_REORDERING_ENGINE_H_
