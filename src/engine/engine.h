#ifndef ASEQ_ENGINE_ENGINE_H_
#define ASEQ_ENGINE_ENGINE_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/status.h"
#include "common/value.h"
#include "metrics/metrics.h"

namespace aseq {

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

/// \brief One aggregation result delivered by an engine.
struct Output {
  /// Arrival time of the TRIG event that produced the result (or the poll
  /// time for polled snapshots).
  Timestamp ts = 0;
  /// Sequence number of the producing event.
  SeqNum seq = 0;
  /// GROUP BY key; empty for ungrouped queries.
  std::optional<Value> group;
  /// The aggregate value: int64 for COUNT, double for SUM/AVG/MIN/MAX.
  /// Null when the match set is empty and the aggregate is undefined
  /// (AVG/MIN/MAX of nothing).
  Value value;

  std::string ToString() const;
};

/// \brief Single-query evaluation engine interface.
///
/// Implemented by the A-Seq engines (DPC / SEM / HPC) and by the
/// stack-based baseline. The window slides on every arrival (the paper's
/// window semantics), so OnEvent both expires state and processes the
/// event; TRIG arrivals append results to `out`.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Processes one event in arrival order; appends any results to `out`
  /// (left untouched otherwise). Events must have non-decreasing
  /// timestamps and strictly increasing sequence numbers.
  virtual void OnEvent(const Event& e, std::vector<Output>* out) = 0;

  /// Processes a batch of events in arrival order. Exactly equivalent to
  /// calling OnEvent once per event — byte-identical Output sequences and
  /// identical EngineStats (modulo the batch counters) — but engines
  /// override it to amortize per-event overheads: window-expiry checks,
  /// role/hash lookups, and (HpcEngine) software-prefetched partition
  /// probes. The default implementation is the per-event loop.
  virtual void OnBatch(std::span<const Event> batch,
                       std::vector<Output>* out) {
    if (batch.empty()) return;
    for (const Event& e : batch) OnEvent(e, out);
    if (EngineStats* stats = mutable_stats()) stats->NoteBatch(batch.size());
  }

  /// Reports the current aggregation value(s) as of time `now` (expired
  /// state excluded), without consuming an event — SEM step (4): "if an
  /// output result were to be required at this time". Grouped queries
  /// report one Output per group with a non-zero/defined value.
  virtual std::vector<Output> Poll(Timestamp now) = 0;

  /// Execution statistics (object accounting per DESIGN.md).
  virtual const EngineStats& stats() const = 0;

  /// Serializes the engine's complete dynamic state — everything that is
  /// not rebuilt by constructing the engine for the same query — so that
  /// Restore() on a freshly constructed twin reproduces byte-identical
  /// outputs and stats for the remainder of the stream. Engines write only
  /// fixed-width, length-prefixed primitives through the Writer (see
  /// docs/internals.md §10 for the per-engine payloads).
  virtual Status Checkpoint(ckpt::Writer* writer) const {
    (void)writer;
    return Status::Unsupported(name() + " does not support checkpointing");
  }

  /// Inverse of Checkpoint: loads the serialized state into this engine.
  /// Must be called on a freshly constructed engine for the same query; a
  /// malformed payload fails with a descriptive Status (the engine is then
  /// in an unspecified state and must be discarded, but no UB occurs).
  virtual Status Restore(ckpt::Reader* reader) {
    (void)reader;
    return Status::Unsupported(name() + " does not support checkpointing");
  }

  /// Human-readable engine name ("A-Seq(SEM)", "StackBased", ...).
  virtual std::string name() const = 0;

 protected:
  /// Hook for the default OnBatch to record batch counters. Engines that
  /// own an EngineStats return it here; wrappers that merely forward
  /// stats() to an inner engine leave it null so the inner engine's own
  /// OnBatch (or fallback loop) does the accounting exactly once.
  virtual EngineStats* mutable_stats() { return nullptr; }
};

/// \brief Optional capability interface for engines whose grouped state
/// can be hash-partitioned across independent twin instances (see
/// exec::ShardedExecutor). Engines opt in by also deriving from this; the
/// executor discovers support with a dynamic_cast and falls back to serial
/// execution when the cast fails (wrappers and baselines never shard).
///
/// A shardable engine promises that events whose GROUP BY key values
/// differ touch disjoint state *except* for window expiry: a trigger
/// event purges expired state across every partition, not only its own.
/// SyncPurgeTo replicates exactly that cross-partition purge — no output,
/// no work-unit charge, only object expiry — so a shard that observes a
/// purge marker for a trigger it does not own ends up byte-identical to
/// its slice of the serial engine.
class ShardableEngine {
 public:
  virtual ~ShardableEngine() = default;

  /// Applies the cross-partition purges a trigger event with timestamp
  /// `now` performs on state the trigger's own key does not cover.
  virtual void SyncPurgeTo(Timestamp now) = 0;

  /// Mutable stats access for the executor's per-event object-peak
  /// windows (ObjectCounter::BeginPeakWindow) — the merge needs mid-event
  /// maxima, which const stats() cannot expose.
  virtual EngineStats* shard_mutable_stats() = 0;
};

/// \brief An Output attributed to one query of a multi-query workload.
struct MultiOutput {
  size_t query_index = 0;
  Output output;
};

/// \brief Optional capability interface for multi-query engines whose
/// shared state can be hash-partitioned by a common GROUP BY key across
/// independent twin instances (the multi-query counterpart of
/// ShardableEngine; see exec::ShardedExecutor).
///
/// The promise generalizes the single-query one: events whose group key
/// values differ touch disjoint state, *except* that a trigger event
/// purges expired state across every partition of the engines owning the
/// triggered queries. SyncPurgeTo replicates exactly that cross-partition
/// purge for the queries that actually triggered — no output, no
/// work-unit charge, only object expiry.
class MultiShardableEngine {
 public:
  virtual ~MultiShardableEngine() = default;

  /// True when this instance's workload actually supports partitioned
  /// execution (e.g. every query groups by one shared attribute). Engines
  /// implement the interface unconditionally and answer per workload, so
  /// the execution policy can probe with one dynamic_cast plus this call.
  virtual bool shardable() const = 0;

  /// Applies the cross-partition purges that the trigger event at `now`
  /// performs for the given triggered workload query indexes (ascending)
  /// on state the trigger's own key does not cover.
  virtual void SyncPurgeTo(Timestamp now,
                           std::span<const size_t> trigger_queries) = 0;

  /// True when this engine's object counter advances once per event (a
  /// single Add of the combined delta, as the wrapper engines do), so its
  /// window_peak never carries a real intra-event maximum. The sharded
  /// executor then merges boundary totals only — a per-shard mid-event
  /// high would be a point the serial engine never observed.
  virtual bool objects_sampled_at_boundaries() const { return false; }

  /// See ShardableEngine::shard_mutable_stats.
  virtual EngineStats* shard_mutable_stats() = 0;
};

/// \brief Multi-query evaluation engine interface (Sec. 4): processes every
/// workload query against the shared stream in one pass.
class MultiQueryEngine {
 public:
  virtual ~MultiQueryEngine() = default;

  /// Processes one event for all queries; appends results to `out`.
  virtual void OnEvent(const Event& e, std::vector<MultiOutput>* out) = 0;

  /// Batched counterpart of OnEvent with the same exact-equivalence
  /// contract as QueryEngine::OnBatch. Default: per-event loop.
  virtual void OnBatch(std::span<const Event> batch,
                       std::vector<MultiOutput>* out) {
    if (batch.empty()) return;
    for (const Event& e : batch) OnEvent(e, out);
    if (EngineStats* stats = mutable_stats()) stats->NoteBatch(batch.size());
  }

  /// Reports the current aggregation value(s) of every query as of time
  /// `now` without consuming an event (see QueryEngine::Poll). Outputs are
  /// ordered by query index, grouped queries reporting one Output per live
  /// group. Engines without a poll surface report nothing.
  virtual std::vector<MultiOutput> Poll(Timestamp now) {
    (void)now;
    return {};
  }

  /// Per-workload statistics.
  virtual const EngineStats& stats() const = 0;

  /// See QueryEngine::Checkpoint / QueryEngine::Restore.
  virtual Status Checkpoint(ckpt::Writer* writer) const {
    (void)writer;
    return Status::Unsupported(name() + " does not support checkpointing");
  }
  virtual Status Restore(ckpt::Reader* reader) {
    (void)reader;
    return Status::Unsupported(name() + " does not support checkpointing");
  }

  virtual std::string name() const = 0;

 protected:
  /// See QueryEngine::mutable_stats.
  virtual EngineStats* mutable_stats() { return nullptr; }
};

}  // namespace aseq

#endif  // ASEQ_ENGINE_ENGINE_H_
