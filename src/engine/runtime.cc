#include "engine/runtime.h"

#include "exec/serial_executor.h"
#include "metrics/metrics.h"

namespace aseq {

std::string Output::ToString() const {
  std::string out = "@" + std::to_string(ts);
  if (group.has_value()) {
    out += " [" + group->ToString() + "]";
  }
  out += " " + value.ToString();
  return out;
}

void AssignSeqNums(std::vector<Event>* events) {
  SeqNum seq = 0;
  for (Event& e : *events) e.set_seq(seq++);
}

RunResult BatchRunner::Run(StreamSource* source, QueryEngine* engine) {
  return exec::RunSerialStream(options_, &buffers_, source, engine);
}

RunResult BatchRunner::RunEvents(const std::vector<Event>& events,
                                 QueryEngine* engine) {
  return exec::RunSerialEvents(options_, &buffers_, events, engine);
}

MultiRunResult BatchRunner::RunMulti(StreamSource* source,
                                     MultiQueryEngine* engine) {
  return exec::RunSerialMultiStream(options_, &buffers_, source, engine);
}

MultiRunResult BatchRunner::RunMultiEvents(const std::vector<Event>& events,
                                           MultiQueryEngine* engine) {
  return exec::RunSerialMultiEvents(options_, &buffers_, events, engine);
}

RunResult Runtime::Run(StreamSource* source, QueryEngine* engine,
                       bool collect_outputs) {
  RunResult result;
  std::vector<Output> scratch;
  Event e;
  SeqNum seq = 0;
  StopWatch watch;
  while (source->Next(&e)) {
    e.set_seq(seq++);
    scratch.clear();
    engine->OnEvent(e, &scratch);
    if (collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch.begin(),
                            scratch.end());
    }
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq;
  return result;
}

RunResult Runtime::RunEvents(const std::vector<Event>& events,
                             QueryEngine* engine, bool collect_outputs) {
  RunResult result;
  std::vector<Output> scratch;
  StopWatch watch;
  SeqNum seq = 0;
  for (const Event& e : events) {
    Event copy = e;
    copy.set_seq(seq++);
    scratch.clear();
    engine->OnEvent(copy, &scratch);
    if (collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch.begin(),
                            scratch.end());
    }
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq;
  return result;
}

MultiRunResult Runtime::RunMulti(StreamSource* source, MultiQueryEngine* engine,
                                 bool collect_outputs) {
  MultiRunResult result;
  std::vector<MultiOutput> scratch;
  Event e;
  SeqNum seq = 0;
  StopWatch watch;
  while (source->Next(&e)) {
    e.set_seq(seq++);
    scratch.clear();
    engine->OnEvent(e, &scratch);
    if (collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch.begin(),
                            scratch.end());
    }
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq;
  return result;
}

MultiRunResult Runtime::RunMultiEvents(const std::vector<Event>& events,
                                       MultiQueryEngine* engine,
                                       bool collect_outputs) {
  MultiRunResult result;
  std::vector<MultiOutput> scratch;
  StopWatch watch;
  SeqNum seq = 0;
  for (const Event& e : events) {
    Event copy = e;
    copy.set_seq(seq++);
    scratch.clear();
    engine->OnEvent(copy, &scratch);
    if (collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch.begin(),
                            scratch.end());
    }
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq;
  return result;
}

}  // namespace aseq
