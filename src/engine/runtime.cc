#include "engine/runtime.h"

#include <algorithm>
#include <span>
#include <utility>

#include "ckpt/snapshot.h"
#include "metrics/metrics.h"

namespace aseq {

namespace {

/// Writes a snapshot when the stream offset crosses the next checkpoint
/// threshold. `save` is called with (path, offset); shared between the
/// single- and multi-query loops. After the first I/O failure the status
/// is latched and no further snapshots are attempted.
template <typename ResultT, typename SaveFn>
void MaybeCheckpoint(const RunOptions& options, uint64_t offset,
                     uint64_t* next_due, ResultT* result, SaveFn&& save) {
  if (options.checkpoint_every == 0 || !result->checkpoint_status.ok() ||
      offset < *next_due) {
    return;
  }
  Status s = save(ckpt::SnapshotPathForOffset(options.checkpoint_dir, offset),
                  offset);
  if (s.ok()) {
    ++result->checkpoints_written;
    result->last_checkpoint_offset = offset;
  } else {
    result->checkpoint_status = std::move(s);
  }
  while (*next_due <= offset) *next_due += options.checkpoint_every;
}

}  // namespace

std::string Output::ToString() const {
  std::string out = "@" + std::to_string(ts);
  if (group.has_value()) {
    out += " [" + group->ToString() + "]";
  }
  out += " " + value.ToString();
  return out;
}

void AssignSeqNums(std::vector<Event>* events) {
  SeqNum seq = 0;
  for (Event& e : *events) e.set_seq(seq++);
}

RunResult BatchRunner::Run(StreamSource* source, QueryEngine* engine) {
  RunResult result;
  result.batch_size = options_.batch_size;
  SeqNum seq = options_.start_offset;
  uint64_t next_ckpt = options_.start_offset + options_.checkpoint_every;
  StopWatch watch;
  while (source->NextBatch(options_.batch_size, &batch_buf_) > 0) {
    for (Event& e : batch_buf_) e.set_seq(seq++);
    scratch_.clear();
    engine->OnBatch(batch_buf_, &scratch_);
    if (options_.collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch_.begin(),
                            scratch_.end());
    }
    MaybeCheckpoint(options_, seq, &next_ckpt, &result,
                    [&](const std::string& path, uint64_t offset) {
                      return ckpt::SaveEngineSnapshot(path, *engine, offset);
                    });
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq - options_.start_offset;
  return result;
}

RunResult BatchRunner::RunEvents(const std::vector<Event>& events,
                                 QueryEngine* engine) {
  RunResult result;
  result.batch_size = options_.batch_size;
  SeqNum seq = options_.start_offset;
  uint64_t next_ckpt = options_.start_offset + options_.checkpoint_every;
  StopWatch watch;
  for (size_t pos = 0; pos < events.size(); pos += options_.batch_size) {
    const size_t n = std::min(options_.batch_size, events.size() - pos);
    batch_buf_.assign(events.begin() + static_cast<ptrdiff_t>(pos),
                      events.begin() + static_cast<ptrdiff_t>(pos + n));
    for (Event& e : batch_buf_) e.set_seq(seq++);
    scratch_.clear();
    engine->OnBatch(batch_buf_, &scratch_);
    if (options_.collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch_.begin(),
                            scratch_.end());
    }
    MaybeCheckpoint(options_, seq, &next_ckpt, &result,
                    [&](const std::string& path, uint64_t offset) {
                      return ckpt::SaveEngineSnapshot(path, *engine, offset);
                    });
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq - options_.start_offset;
  return result;
}

MultiRunResult BatchRunner::RunMulti(StreamSource* source,
                                     MultiQueryEngine* engine) {
  MultiRunResult result;
  result.batch_size = options_.batch_size;
  SeqNum seq = options_.start_offset;
  uint64_t next_ckpt = options_.start_offset + options_.checkpoint_every;
  StopWatch watch;
  while (source->NextBatch(options_.batch_size, &batch_buf_) > 0) {
    for (Event& e : batch_buf_) e.set_seq(seq++);
    multi_scratch_.clear();
    engine->OnBatch(batch_buf_, &multi_scratch_);
    if (options_.collect_outputs) {
      result.outputs.insert(result.outputs.end(), multi_scratch_.begin(),
                            multi_scratch_.end());
    }
    MaybeCheckpoint(options_, seq, &next_ckpt, &result,
                    [&](const std::string& path, uint64_t offset) {
                      return ckpt::SaveMultiSnapshot(path, *engine, offset);
                    });
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq - options_.start_offset;
  return result;
}

MultiRunResult BatchRunner::RunMultiEvents(const std::vector<Event>& events,
                                           MultiQueryEngine* engine) {
  MultiRunResult result;
  result.batch_size = options_.batch_size;
  SeqNum seq = options_.start_offset;
  uint64_t next_ckpt = options_.start_offset + options_.checkpoint_every;
  StopWatch watch;
  for (size_t pos = 0; pos < events.size(); pos += options_.batch_size) {
    const size_t n = std::min(options_.batch_size, events.size() - pos);
    batch_buf_.assign(events.begin() + static_cast<ptrdiff_t>(pos),
                      events.begin() + static_cast<ptrdiff_t>(pos + n));
    for (Event& e : batch_buf_) e.set_seq(seq++);
    multi_scratch_.clear();
    engine->OnBatch(batch_buf_, &multi_scratch_);
    if (options_.collect_outputs) {
      result.outputs.insert(result.outputs.end(), multi_scratch_.begin(),
                            multi_scratch_.end());
    }
    MaybeCheckpoint(options_, seq, &next_ckpt, &result,
                    [&](const std::string& path, uint64_t offset) {
                      return ckpt::SaveMultiSnapshot(path, *engine, offset);
                    });
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq - options_.start_offset;
  return result;
}

RunResult Runtime::Run(StreamSource* source, QueryEngine* engine,
                       bool collect_outputs) {
  RunResult result;
  std::vector<Output> scratch;
  Event e;
  SeqNum seq = 0;
  StopWatch watch;
  while (source->Next(&e)) {
    e.set_seq(seq++);
    scratch.clear();
    engine->OnEvent(e, &scratch);
    if (collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch.begin(),
                            scratch.end());
    }
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq;
  return result;
}

RunResult Runtime::RunEvents(const std::vector<Event>& events,
                             QueryEngine* engine, bool collect_outputs) {
  RunResult result;
  std::vector<Output> scratch;
  StopWatch watch;
  SeqNum seq = 0;
  for (const Event& e : events) {
    Event copy = e;
    copy.set_seq(seq++);
    scratch.clear();
    engine->OnEvent(copy, &scratch);
    if (collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch.begin(),
                            scratch.end());
    }
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq;
  return result;
}

MultiRunResult Runtime::RunMulti(StreamSource* source, MultiQueryEngine* engine,
                                 bool collect_outputs) {
  MultiRunResult result;
  std::vector<MultiOutput> scratch;
  Event e;
  SeqNum seq = 0;
  StopWatch watch;
  while (source->Next(&e)) {
    e.set_seq(seq++);
    scratch.clear();
    engine->OnEvent(e, &scratch);
    if (collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch.begin(),
                            scratch.end());
    }
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq;
  return result;
}

MultiRunResult Runtime::RunMultiEvents(const std::vector<Event>& events,
                                       MultiQueryEngine* engine,
                                       bool collect_outputs) {
  MultiRunResult result;
  std::vector<MultiOutput> scratch;
  StopWatch watch;
  SeqNum seq = 0;
  for (const Event& e : events) {
    Event copy = e;
    copy.set_seq(seq++);
    scratch.clear();
    engine->OnEvent(copy, &scratch);
    if (collect_outputs) {
      result.outputs.insert(result.outputs.end(), scratch.begin(),
                            scratch.end());
    }
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  result.events = seq;
  return result;
}

}  // namespace aseq
