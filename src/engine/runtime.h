#ifndef ASEQ_ENGINE_RUNTIME_H_
#define ASEQ_ENGINE_RUNTIME_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "stream/stream_source.h"

namespace aseq {

namespace obs {
class Telemetry;
}  // namespace obs

/// Default ingestion batch size for the batched execution pipeline (CLI
/// `--batch-size`, BatchRunner, and the bench harnesses). 256 events keeps
/// the refill buffer well inside L2 while amortizing per-event overheads.
inline constexpr size_t kDefaultBatchSize = 256;

/// \brief What the sharded coordinator does when a shard's bounded queue
/// reaches its high-watermark (or the fault injector simulates that).
///
/// Exactness per policy (docs/internals.md §14): block and degrade-serial
/// are lossless — outputs and stats stay bit-exact with the serial run;
/// shed preserves bit-exact outputs for every surviving partition and
/// accounts all drops in the shed_* counters (whole-run stats are then
/// intentionally not comparable to any serial oracle).
enum class OverloadPolicy : uint8_t {
  /// Park the router until the queue drains (the default bounded-queue
  /// backpressure behavior).
  kBlock,
  /// Stop routing ahead: after the overloaded batch, drain every shard
  /// queue to empty before feeding the next batch — pipelining is
  /// sacrificed while the overload lasts, nothing is lost.
  kDegradeSerial,
  /// Deterministically drop whole partitions: the overloaded event's
  /// GROUP BY key joins a shed set, and every current and future event of
  /// that key is discarded before routing.
  kShed,
};

/// \brief Knobs for a batched run.
struct RunOptions {
  /// Collect engine outputs into the result (benchmarks turn this off to
  /// avoid measuring vector growth — the scratch buffer is still reused,
  /// clear-not-shrink, between batches).
  bool collect_outputs = true;
  /// Events pulled from the source and handed to OnBatch per refill.
  /// A batch size of 1 degenerates to the per-event path (one OnBatch
  /// call per event).
  size_t batch_size = kDefaultBatchSize;
  /// Number of execution shards (1 = serial). Values > 1 request the
  /// partition-parallel policy (exec::MakePolicy): events are hash-routed
  /// by GROUP BY key to per-shard engine twins on worker threads, with
  /// results and stats merged back byte-identical to the serial run.
  /// Queries that cannot shard safely fall back to serial execution.
  size_t num_shards = 1;
  /// Checkpoint the engine every N events (0 disables). Snapshots land at
  /// the first batch boundary at or past each multiple of N, named by the
  /// stream offset they cover (ckpt::SnapshotPathForOffset), so a resumed
  /// run knows exactly where to replay from.
  size_t checkpoint_every = 0;
  /// Directory snapshots are written to; must be set (and exist) when
  /// checkpoint_every > 0.
  std::string checkpoint_dir;
  /// Sequence number assigned to the first event fed this run. A restored
  /// run passes the snapshot's stream offset here and feeds only the trace
  /// tail, so replayed events carry the same seq numbers they would have
  /// had in the uninterrupted run.
  uint64_t start_offset = 0;
  /// Supervise sharded workers (sharded runs only): per-shard heartbeats,
  /// a watchdog that quarantines dead/stalled workers, and
  /// checkpoint-backed single-shard restart with routed-slice replay —
  /// results stay bit-exact with an unfailed run.
  bool supervise = false;
  /// Supervised runs capture an in-memory recovery point (per-shard engine
  /// snapshot + replay-log truncation) at the first batch boundary at or
  /// past each multiple of N events. Disk checkpoints (checkpoint_every)
  /// piggyback on the same barriers.
  size_t recovery_every = 4096;
  /// A worker with queued work is declared stalled after this long without
  /// heartbeat progress; the supervisor then quarantines and restarts it.
  double watchdog_timeout_ms = 1000;
  /// Restart budget per shard between recovery points (each recovery point
  /// resets it). Exceeding the budget aborts the run with
  /// RunResultBase::fault_status.
  size_t max_restarts = 4;
  /// Bounded-queue overload response (sharded runs only).
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Queue depth (in queued items, not events) at which a lane counts as
  /// overloaded and the non-blocking overload policies engage. Values
  /// above the bounded queue capacity mean depth alone never triggers the
  /// policy — only an injected overload signal
  /// (--fault-spec router.route:...:overload) does.
  size_t overload_high_watermark = 12;
  /// Cooperative stop flag (graceful SIGTERM/SIGINT): when non-null and
  /// set, the run stops at the next batch boundary, drains in-flight work,
  /// writes a final checkpoint when checkpoint_dir is set, and returns
  /// with RunResultBase::interrupted. A stop while the coordinator is
  /// parked on a full lane ring also exits cleanly: the run is marked
  /// interrupted and the final checkpoint is skipped (queued work could
  /// not drain, so a snapshot at the stop offset would be inconsistent).
  const std::atomic<bool>* stop_requested = nullptr;
  /// Pin each shard worker to a core (sharded runs, Linux
  /// pthread_setaffinity_np): worker s gets core s. No-op with a warning
  /// when the machine has fewer cores than the run has shards (pinning
  /// would then serialize workers that could share cores) or on platforms
  /// without affinity support. Serial runs ignore it.
  bool pin_threads = false;
  /// Optional telemetry registry (src/obs/): when non-null, executors
  /// record per-shard counters/histograms into its cells and emit trace
  /// spans through its attached TraceWriter. Null (the default) disables
  /// every record site — outputs and EngineStats are bit-exact either way;
  /// telemetry observes the run, it never steers it. The registry must be
  /// built for at least `num_shards` shards and must outlive the run.
  obs::Telemetry* telemetry = nullptr;
};

/// \brief Fields common to every run result (single- and multi-query).
struct RunResultBase {
  uint64_t events = 0;
  /// Wall-clock seconds spent inside the engine (for sharded runs: the
  /// whole route/execute/merge pipeline).
  double elapsed_seconds = 0;
  /// Ingestion batch size used for the run (1 for the per-event path).
  size_t batch_size = 1;
  /// Execution shards the run actually used (1 = serial, including
  /// serial fallback of an unshardable query).
  size_t num_shards = 1;
  /// First checkpoint I/O failure, or OK. Checkpointing stops after the
  /// first failure (the run itself continues), so a full disk does not
  /// spam one error per batch.
  Status checkpoint_status = Status::OK();
  /// Snapshots successfully written this run.
  uint64_t checkpoints_written = 0;
  /// Stream offset of the newest snapshot (meaningful when
  /// checkpoints_written > 0).
  uint64_t last_checkpoint_offset = 0;
  /// True when the run stopped early because RunOptions::stop_requested
  /// was set: `events` counts only what was consumed before the stop, and
  /// in-flight work was drained, so engine state is resumable.
  bool interrupted = false;
  /// First unrecoverable supervisor failure (a shard's restart budget
  /// exhausted, or a worker that cannot be rebuilt), or OK. A non-OK
  /// status means the run aborted early and its results are partial.
  Status fault_status = Status::OK();

  /// Average execution time per window slide in milliseconds — the paper's
  /// primary metric (the window slides once per event).
  double MillisPerSlide() const {
    return events == 0 ? 0 : elapsed_seconds * 1e3 / static_cast<double>(events);
  }
};

/// \brief Result of driving a stream through an engine.
struct RunResult : RunResultBase {
  std::vector<Output> outputs;
};

/// Result of a multi-query run.
struct MultiRunResult : RunResultBase {
  std::vector<MultiOutput> outputs;
};

/// \brief Reusable buffers of the serial execution core (refill batch plus
/// output scratch), owned by the caller and reused clear-not-shrink across
/// batches and across runs — a harness that loops a run per benchmark
/// iteration allocates only on the first pass. BatchRunner and
/// exec::SerialExecutor each own one.
struct SerialBuffers {
  std::vector<Event> batch;
  std::vector<Output> scratch;
  std::vector<MultiOutput> multi_scratch;
};

/// Assigns strictly increasing sequence numbers (0, 1, ...) to events in
/// place. Engines require them; sources that replay pre-built vectors use
/// this before feeding.
void AssignSeqNums(std::vector<Event>* events);

/// \brief Batched pipeline driver: pulls event batches from a source,
/// assigns sequence numbers, and feeds them to an engine through OnBatch.
///
/// The loops themselves live in the execution layer (exec::RunSerial*);
/// BatchRunner binds them to a caller-owned engine and its reusable
/// buffers. Sharded execution (RunOptions::num_shards > 1) needs one
/// engine per shard and therefore an engine factory — use
/// exec::MakePolicy; the engine-pointer entry points here always run the
/// serial policy.
class BatchRunner {
 public:
  BatchRunner() = default;
  explicit BatchRunner(RunOptions options) : options_(options) {}

  void set_options(RunOptions options) { options_ = options; }
  const RunOptions& options() const { return options_; }

  /// Runs the whole source through `engine` in batches.
  RunResult Run(StreamSource* source, QueryEngine* engine);

  /// Runs pre-built events through `engine` in batches, assigning
  /// sequence numbers start_offset..start_offset+n-1 to the fed copies
  /// (start_offset is 0 unless the run resumes from a snapshot).
  RunResult RunEvents(const std::vector<Event>& events, QueryEngine* engine);

  /// Multi-query variants.
  MultiRunResult RunMulti(StreamSource* source, MultiQueryEngine* engine);
  MultiRunResult RunMultiEvents(const std::vector<Event>& events,
                                MultiQueryEngine* engine);

 private:
  RunOptions options_;
  SerialBuffers buffers_;
};

/// \brief Per-event compatibility driver.
///
/// The static methods preserve the original one-event-per-OnEvent shape
/// (batch size 1 through OnEvent directly, not OnBatch) — tests use them
/// as the reference path the batched pipeline must match exactly.
class Runtime {
 public:
  /// Runs the whole source through `engine`; collects outputs if
  /// `collect_outputs` (benchmarks turn it off to avoid measuring vector
  /// growth).
  static RunResult Run(StreamSource* source, QueryEngine* engine,
                       bool collect_outputs = true);

  /// Runs pre-sequenced events through `engine`.
  static RunResult RunEvents(const std::vector<Event>& events,
                             QueryEngine* engine,
                             bool collect_outputs = true);

  /// Multi-query variants.
  static MultiRunResult RunMulti(StreamSource* source,
                                 MultiQueryEngine* engine,
                                 bool collect_outputs = true);
  static MultiRunResult RunMultiEvents(const std::vector<Event>& events,
                                       MultiQueryEngine* engine,
                                       bool collect_outputs = true);
};

}  // namespace aseq

#endif  // ASEQ_ENGINE_RUNTIME_H_
