#ifndef ASEQ_ENGINE_RUNTIME_H_
#define ASEQ_ENGINE_RUNTIME_H_

#include <vector>

#include "engine/engine.h"
#include "stream/stream_source.h"

namespace aseq {

/// \brief Result of driving a stream through an engine.
struct RunResult {
  std::vector<Output> outputs;
  uint64_t events = 0;
  /// Wall-clock seconds spent inside the engine.
  double elapsed_seconds = 0;

  /// Average execution time per window slide in milliseconds — the paper's
  /// primary metric (the window slides once per event).
  double MillisPerSlide() const {
    return events == 0 ? 0 : elapsed_seconds * 1e3 / static_cast<double>(events);
  }
};

/// Result of a multi-query run.
struct MultiRunResult {
  std::vector<MultiOutput> outputs;
  uint64_t events = 0;
  double elapsed_seconds = 0;

  double MillisPerSlide() const {
    return events == 0 ? 0 : elapsed_seconds * 1e3 / static_cast<double>(events);
  }
};

/// Assigns strictly increasing sequence numbers (0, 1, ...) to events in
/// place. Engines require them; sources that replay pre-built vectors use
/// this before feeding.
void AssignSeqNums(std::vector<Event>* events);

/// \brief Drives streams through engines, assigning sequence numbers and
/// timing the engine work.
class Runtime {
 public:
  /// Runs the whole source through `engine`; collects outputs if
  /// `collect_outputs` (benchmarks turn it off to avoid measuring vector
  /// growth).
  static RunResult Run(StreamSource* source, QueryEngine* engine,
                       bool collect_outputs = true);

  /// Runs pre-sequenced events through `engine`.
  static RunResult RunEvents(const std::vector<Event>& events,
                             QueryEngine* engine,
                             bool collect_outputs = true);

  /// Multi-query variants.
  static MultiRunResult RunMulti(StreamSource* source,
                                 MultiQueryEngine* engine,
                                 bool collect_outputs = true);
  static MultiRunResult RunMultiEvents(const std::vector<Event>& events,
                                       MultiQueryEngine* engine,
                                       bool collect_outputs = true);
};

}  // namespace aseq

#endif  // ASEQ_ENGINE_RUNTIME_H_
