#ifndef ASEQ_ENGINE_CHANGE_DETECTOR_H_
#define ASEQ_ENGINE_CHANGE_DETECTOR_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/ckpt.h"
#include "common/value.h"
#include "engine/engine.h"

namespace aseq {

/// \brief Adapter implementing the paper's output contract literally:
/// "query results are output whenever the aggregation result changes as
/// the window slides" (Sec. 2.1).
///
/// The wrapped engine emits on TRIG arrivals; expirations silently lower
/// the current value (Example 1: when b6 purges a1, "the count is updated
/// to zero"). This adapter polls the wrapped engine after every event and
/// emits an Output whenever any (group's) value differs from the last
/// reported one — including drops caused purely by expiration.
///
/// Cost: one Poll per event — O(live state) rather than A-Seq's O(1)
/// amortized; use it when change-driven output is genuinely required.
class ChangeDetectingEngine : public QueryEngine {
 public:
  explicit ChangeDetectingEngine(std::unique_ptr<QueryEngine> inner)
      : inner_(std::move(inner)) {}

  void OnEvent(const Event& e, std::vector<Output>* out) override {
    if (!primed_) {
      // The empty-state value (0 / null) is the baseline, not a change.
      for (const Output& output : inner_->Poll(e.ts())) {
        last_[output.group.has_value() ? *output.group : Value()] =
            output.value;
      }
      primed_ = true;
    }
    scratch_.clear();
    inner_->OnEvent(e, &scratch_);
    for (const Output& output : inner_->Poll(e.ts())) {
      Value key = output.group.has_value() ? *output.group : Value();
      auto it = last_.find(key);
      if (it == last_.end()) {
        // A key seen for the first time was implicitly at the empty value
        // (0 / null) before; only a non-empty value is a change.
        last_[key] = output.value;
        if (IsEmptyValue(output.value)) continue;
      } else if (it->second.Equals(output.value)) {
        continue;
      } else {
        it->second = output.value;
      }
      Output changed = output;
      changed.ts = e.ts();
      changed.seq = e.seq();
      out->push_back(std::move(changed));
    }
  }

  // OnBatch deliberately keeps the base-class per-event loop: the change
  // contract requires one Poll of the inner engine after *every* event,
  // so there is no per-event work to hoist. mutable_stats() stays null
  // (stats forward to the inner engine, whose own OnBatch does the batch
  // accounting when driven batched directly).

  std::vector<Output> Poll(Timestamp now) override {
    return inner_->Poll(now);
  }

  const EngineStats& stats() const override { return inner_->stats(); }

  Status Checkpoint(ckpt::Writer* writer) const override {
    writer->WriteBool(primed_);
    writer->WriteU64(last_.size());
    for (const auto& [key, value] : last_) {
      ckpt::WriteValue(writer, key);
      ckpt::WriteValue(writer, value);
    }
    return inner_->Checkpoint(writer);
  }

  Status Restore(ckpt::Reader* reader) override {
    ASEQ_RETURN_NOT_OK(reader->ReadBool(&primed_, "change detector primed"));
    uint64_t n = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n, 2, "last reported values"));
    last_.clear();
    for (uint64_t i = 0; i < n; ++i) {
      Value key, value;
      ASEQ_RETURN_NOT_OK(ckpt::ReadValue(reader, &key));
      ASEQ_RETURN_NOT_OK(ckpt::ReadValue(reader, &value));
      last_[std::move(key)] = std::move(value);
    }
    return inner_->Restore(reader);
  }

  std::string name() const override {
    return inner_->name() + "+OnChange";
  }

  QueryEngine* inner() { return inner_.get(); }

 private:
  /// The value an aggregate has over the empty match set: 0 for COUNT,
  /// 0.0 for SUM, null for AVG/MIN/MAX.
  static bool IsEmptyValue(const Value& v) {
    if (v.is_null()) return true;
    if (v.type() == ValueType::kInt64) return v.AsInt64() == 0;
    if (v.type() == ValueType::kDouble) return v.AsDouble() == 0.0;
    return false;
  }

  std::unique_ptr<QueryEngine> inner_;
  bool primed_ = false;
  std::map<Value, Value, ValueTotalLess> last_;
  std::vector<Output> scratch_;
};

}  // namespace aseq

#endif  // ASEQ_ENGINE_CHANGE_DETECTOR_H_
