#ifndef ASEQ_OBS_TELEMETRY_H_
#define ASEQ_OBS_TELEMETRY_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace aseq {
namespace obs {

class TraceWriter;
class MetricsEmitter;

/// Monotonic nanoseconds since an arbitrary process-local epoch — the one
/// time base every telemetry record and trace span uses, so intervals
/// subtract directly.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief Log-bucketed HDR-style histogram with a lock-free single-writer
/// record path and a concurrent snapshot reader.
///
/// Bucketing: values below kSubBuckets are exact (one bucket per value);
/// above that, each power-of-two octave is split into kSubBuckets linear
/// sub-buckets, so the relative quantization error is bounded by
/// 1/kSubBuckets (6.25%) at every magnitude — the right trade for latency
/// distributions spanning nanoseconds to seconds.
///
/// Concurrency contract (deliberately narrower than a general-purpose
/// concurrent histogram, so the record path stays at a handful of
/// non-RMW atomic stores):
///   - Exactly ONE thread may call Record() at a time (each dataplane cell
///     is owned by its shard worker or by the coordinator).
///   - Any thread may call SnapshotInto() concurrently with the writer.
///     All fields are relaxed atomics: the reader sees a near-point-in-time
///     view (counts may trail the total by in-flight records), which the
///     emitter tolerates — every counter it derives is still monotonic
///     because the underlying cells only grow.
/// Merge() and Reset() require the writer quiescent.
class LogHistogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 16
  /// Values are clamped to 2^kMaxValueBits - 1 (~78 hours in ns): keeps the
  /// bucket array compact while covering any latency this runtime can see.
  static constexpr int kMaxValueBits = 48;
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxValueBits - kSubBucketBits + 1) * kSubBuckets;

  /// Bucket index for a value (exact below kSubBuckets, log-linear above).
  static size_t BucketFor(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    if (v >> kMaxValueBits) v = (uint64_t{1} << kMaxValueBits) - 1;
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBucketBits;
    const size_t sub = static_cast<size_t>(v >> shift) & (kSubBuckets - 1);
    return static_cast<size_t>(msb - kSubBucketBits + 1) * kSubBuckets + sub;
  }

  /// Smallest value mapping to `bucket` (the bucket's lower bound);
  /// BucketFor(BucketLowerBound(i)) == i for every valid index.
  static uint64_t BucketLowerBound(size_t bucket) {
    if (bucket < kSubBuckets) return bucket;
    const size_t block = bucket / kSubBuckets;       // msb - kSubBucketBits + 1
    const size_t sub = bucket % kSubBuckets;
    const int msb = static_cast<int>(block) + kSubBucketBits - 1;
    return (uint64_t{1} << msb) |
           (static_cast<uint64_t>(sub) << (msb - kSubBucketBits));
  }

  /// Largest value mapping to `bucket` (inclusive upper bound) — what the
  /// percentile readout reports, so a quantile never under-states.
  static uint64_t BucketUpperBound(size_t bucket) {
    return bucket + 1 < kNumBuckets ? BucketLowerBound(bucket + 1) - 1
                                    : (uint64_t{1} << kMaxValueBits) - 1;
  }

  LogHistogram() : counts_(new std::atomic<uint64_t>[kNumBuckets]{}) {}

  /// Single-writer record: plain add + relaxed store per field (no RMW —
  /// see the class contract), so a record is a few nanoseconds. The total
  /// count is not stored separately; SnapshotInto derives it from the
  /// bucket sum, which also guarantees a reader's quantile ranks always
  /// land inside a bucket.
  void Record(uint64_t value) {
    const size_t b = BucketFor(value);
    StoreAdd(counts_[b], 1);
    StoreAdd(sum_, value);
    if (value > max_.load(std::memory_order_relaxed)) {
      max_.store(value, std::memory_order_relaxed);
    }
  }

  /// Point-in-time copy for readout; safe against a concurrent writer.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::vector<uint64_t> counts;  // kNumBuckets entries

    /// Value at quantile q in [0, 1]: upper bound of the bucket holding the
    /// ceil(q * count)-th observation (max-exact: q = 1 reports the bucket
    /// containing the true maximum). Zero when empty.
    uint64_t ValueAtQuantile(double q) const;
    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };
  void SnapshotInto(Snapshot* snap) const;

  /// Folds `other` into this histogram. Both writers must be quiescent.
  void Merge(const LogHistogram& other);

  /// Writer-quiescent reset.
  void Reset();

 private:
  static void StoreAdd(std::atomic<uint64_t>& a, uint64_t n) {
    a.store(a.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// \brief Single-writer monotonic counter with concurrent relaxed readers
/// (the same non-RMW store protocol as LogHistogram).
class Counter {
 public:
  void Add(uint64_t n) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Last-value gauge, same writer/reader contract as Counter.
class Gauge {
 public:
  void Set(uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief One shard worker's metric cell. Cache-line-aligned and padded so
/// two workers (or a worker and the coordinator) never share a line.
/// Writer: the owning shard worker only. Readers: the emitter thread and
/// the end-of-run summary.
struct alignas(64) ShardCell {
  /// Ops executed (events + purge markers).
  Counter ops;
  /// Events executed (ops minus markers).
  Counter events;
  /// Outputs produced.
  Counter outputs;
  /// LaneItems (publications) drained.
  Counter items;
  /// Times the worker gave up its spin budget and parked idle.
  Counter parks;
  /// Wall nanoseconds spent executing ops (the busy time).
  Counter busy_ns;
  /// Wall nanoseconds spent parked waiting for work.
  Counter park_ns;
  /// Ring occupancy (queued items) observed by the worker after each drain.
  Gauge ring_occupancy;
  /// Per-op service time: each drained item records its elapsed / op count
  /// once, so the record cost amortizes over the item (the clock reads
  /// already exist for busy-time accounting).
  LogHistogram op_service_ns;
  /// Park durations (idle waits; supervised waits poll, so one park can
  /// span several poll rounds).
  LogHistogram park_wait_ns;
  /// Trigger-to-output latency: publication of an op's batch to the
  /// completion of the drained item that produced the outputs (the point
  /// where the outputs are visible to the collector). Recorded once per
  /// output-producing item, from timing the busy accounting already pays
  /// for — no extra clock read on the hot path.
  LogHistogram trigger_latency_ns;
  char pad_[64];
};

/// \brief The coordinator's metric cell (router/admission + barriers +
/// ring publication). Writer: the coordinator thread only.
struct alignas(64) CoordCell {
  /// Batches routed.
  Counter batches;
  /// Events admitted into routing.
  Counter events;
  /// Publications pushed (one per shard per batch with ops).
  Counter publications;
  /// Barriers completed (checkpoints + recovery points).
  Counter barriers;
  /// Checkpoints flushed through the snapshot layer.
  Counter checkpoints;
  /// Batch-admission latency: RouteBatch (vectorized prefilter + compiled
  /// admission + hash routing) per batch. For serial runs this is the whole
  /// OnBatch call (admission + execution are fused there).
  LogHistogram admit_ns;
  /// Barrier durations (first token enqueued to all workers parked).
  LogHistogram barrier_ns;
  /// Ring occupancy observed at each publication, per-shard values folded
  /// into one distribution (the backpressure profile of the dataplane).
  LogHistogram ring_occupancy;
  char pad_[64];
};

/// \brief The run's telemetry registry: per-shard cells plus the
/// coordinator cell, allocated once per run setup (cells are stable for
/// the registry's lifetime — threads keep raw references).
///
/// Ownership: the CLI (or a test/bench harness) builds one, hangs the
/// optional TraceWriter/MetricsEmitter off it, and passes it through
/// RunOptions::telemetry; executors treat a null pointer as "telemetry
/// off" and skip every record site.
class Telemetry {
 public:
  explicit Telemetry(size_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards),
        shards_(new ShardCell[num_shards == 0 ? 1 : num_shards]),
        start_ns_(MonotonicNanos()) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  size_t num_shards() const { return num_shards_; }
  ShardCell& shard(size_t i) { return shards_[i < num_shards_ ? i : 0]; }
  const ShardCell& shard(size_t i) const {
    return shards_[i < num_shards_ ? i : 0];
  }
  CoordCell& coord() { return coord_; }
  const CoordCell& coord() const { return coord_; }

  /// The run's telemetry epoch; trace timestamps and emitter intervals are
  /// offsets from it.
  uint64_t start_ns() const { return start_ns_; }

  /// Optional sinks, wired by the owner. Executors and the checkpoint
  /// observer null-check before use.
  TraceWriter* trace() const { return trace_; }
  void set_trace(TraceWriter* t) { trace_ = t; }
  MetricsEmitter* emitter() const { return emitter_; }
  void set_emitter(MetricsEmitter* e) { emitter_ = e; }

 private:
  size_t num_shards_;
  std::unique_ptr<ShardCell[]> shards_;
  CoordCell coord_;
  uint64_t start_ns_;
  TraceWriter* trace_ = nullptr;
  MetricsEmitter* emitter_ = nullptr;
};

}  // namespace obs
}  // namespace aseq

#endif  // ASEQ_OBS_TELEMETRY_H_
