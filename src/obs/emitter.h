#ifndef ASEQ_OBS_EMITTER_H_
#define ASEQ_OBS_EMITTER_H_

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "obs/telemetry.h"

namespace aseq {
namespace obs {

/// \brief Periodic JSON-lines metrics emitter.
///
/// A background thread wakes every `every_ms`, snapshots every telemetry
/// cell WITHOUT pausing workers (cells are single-writer / any-reader, see
/// LogHistogram), and appends one row per shard plus one coordinator row.
/// All counter fields are cumulative since run start, so consumers get
/// monotonic series and can difference adjacent intervals for rates.
///
/// File schema (one JSON object per line):
///   {"type":"header", "version":1, "shards":N, "every_ms":M, ...}
///   {"type":"shard", "interval":k, "t_ms":T, "shard":s, <counters>,
///    "ring_occupancy":g, "op_service_ns":{count,mean,p50,p95,p99,max}, ...}
///   {"type":"coord", "interval":k, "t_ms":T, <counters>,
///    "admit_ns":{...}, "barrier_ns":{...}, "ring_occupancy":{...}}
///   ... caller-appended summary lines (e.g. "utilization") ...
///
/// Flush() emits an interval immediately from the calling thread and
/// flushes the stream — wired to the checkpoint observer so metrics hit
/// disk at every durability point. Stop() emits one final interval and
/// joins the thread.
class MetricsEmitter {
 public:
  /// Opens `path` (truncating) and writes the header line. The thread does
  /// not start until Start(). `header_extra` is spliced verbatim into the
  /// header object (e.g. "\"engine\":\"hash\",\"queries\":3"); empty for
  /// none.
  MetricsEmitter(const std::string& path, uint64_t every_ms, Telemetry* tel,
                 const std::string& header_extra = std::string());
  ~MetricsEmitter();

  MetricsEmitter(const MetricsEmitter&) = delete;
  MetricsEmitter& operator=(const MetricsEmitter&) = delete;

  bool ok() const { return ok_; }

  /// Launches the periodic thread. No-op if the file failed to open.
  void Start();

  /// Emits an interval now (from the calling thread) and flushes to disk.
  /// Safe from any thread, including before Start() and after Stop().
  void Flush();

  /// Emits one final interval, flushes, and joins the thread. Idempotent.
  void Stop();

  /// Appends a raw pre-formatted JSON line (caller-owned schema, e.g. the
  /// end-of-run utilization summary). Thread-safe.
  void AppendLine(const std::string& json);

  /// Intervals emitted so far (periodic + forced).
  uint64_t intervals() const { return intervals_; }

 private:
  void ThreadMain();
  void EmitIntervalLocked();
  void WriteHistogramLocked(const char* key, const LogHistogram& h,
                            bool trailing_comma);

  Telemetry* tel_;
  uint64_t every_ms_;
  std::ofstream out_;
  bool ok_ = false;

  std::mutex mu_;  // guards out_, intervals_, and stop_ handshake
  std::condition_variable cv_;
  std::thread thread_;
  bool started_ = false;
  bool stop_ = false;
  uint64_t intervals_ = 0;
};

}  // namespace obs
}  // namespace aseq

#endif  // ASEQ_OBS_EMITTER_H_
