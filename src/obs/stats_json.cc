#include "obs/stats_json.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace aseq {
namespace obs {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string EngineStatsToJson(const EngineStats& stats) {
  std::ostringstream os;
  os << "{"
     << "\"events_processed\":" << stats.events_processed
     << ",\"outputs\":" << stats.outputs
     << ",\"work_units\":" << stats.work_units
     << ",\"objects_current\":" << stats.objects.current()
     << ",\"objects_peak\":" << stats.objects.peak()
     << ",\"batches_processed\":" << stats.batches_processed
     << ",\"max_batch_events\":" << stats.max_batch_events
     << ",\"dropped_events\":" << stats.dropped_events
     << ",\"ht_probes\":" << stats.ht_probes
     << ",\"ht_probe_steps\":" << stats.ht_probe_steps
     << ",\"ht_slots\":" << stats.ht_slots
     << ",\"ht_entries\":" << stats.ht_entries
     << ",\"adm_admitted\":" << stats.adm_admitted
     << ",\"adm_rejected_local\":" << stats.adm_rejected_local
     << ",\"adm_missing_attr\":" << stats.adm_missing_attr
     << ",\"adm_generic_cmps\":" << stats.adm_generic_cmps
     << ",\"fault_injected\":" << stats.fault_injected
     << ",\"fault_restarts\":" << stats.fault_restarts
     << ",\"fault_replayed_events\":" << stats.fault_replayed_events
     << ",\"shed_partitions\":" << stats.shed_partitions
     << ",\"shed_events\":" << stats.shed_events
     << ",\"overload_stalls\":" << stats.overload_stalls
     << ",\"pub_batches\":" << stats.pub_batches
     << ",\"ring_full_waits\":" << stats.ring_full_waits
     << ",\"ring_spins\":" << stats.ring_spins << "}";
  return os.str();
}

std::string UtilizationJson(const std::vector<double>& busy_seconds) {
  std::ostringstream os;
  os << "{\"busy_seconds\":[";
  for (size_t i = 0; i < busy_seconds.size(); ++i) {
    if (i) os << ",";
    os << FormatDouble(busy_seconds[i]);
  }
  double max_busy = 0.0, min_busy = 0.0;
  if (!busy_seconds.empty()) {
    max_busy = *std::max_element(busy_seconds.begin(), busy_seconds.end());
    min_busy = *std::min_element(busy_seconds.begin(), busy_seconds.end());
  }
  const double imbalance = min_busy > 0.0 ? max_busy / min_busy : 1.0;
  os << "],\"max_busy\":" << FormatDouble(max_busy)
     << ",\"min_busy\":" << FormatDouble(min_busy)
     << ",\"imbalance\":" << FormatDouble(imbalance) << "}";
  return os.str();
}

bool WriteStatsJson(const std::string& path, const std::string& engine,
                    size_t shards, double elapsed_ms,
                    const std::vector<double>& busy_seconds,
                    const std::vector<StatsJsonEntry>& entries) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return false;
  out << "{\"engine\":\"" << EscapeJson(engine) << "\",\"shards\":" << shards
      << ",\"elapsed_ms\":" << FormatDouble(elapsed_ms)
      << ",\"utilization\":" << UtilizationJson(busy_seconds)
      << ",\"queries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i) out << ",";
    out << "{\"label\":\"" << EscapeJson(entries[i].label)
        << "\",\"results\":" << entries[i].results << ",\"stats\":"
        << (entries[i].stats ? EngineStatsToJson(*entries[i].stats) : "{}")
        << "}";
  }
  out << "]}\n";
  return out.good();
}

}  // namespace obs
}  // namespace aseq
