#include "obs/trace_writer.h"

#include <sstream>

namespace aseq {
namespace obs {
namespace {

// JSON string escaping for names and string arg values.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Raw-number sentinel: values prefixed with '\x01' are emitted unquoted.
constexpr char kRawNumber = '\x01';

}  // namespace

TraceWriter::TraceWriter(const std::string& path, uint64_t epoch_ns,
                         size_t num_shards)
    : out_(path, std::ios::out | std::ios::trunc), epoch_ns_(epoch_ns) {
  ok_ = out_.is_open();
  if (!ok_) return;
  out_ << "[";
  // Thread metadata makes lanes readable in the viewer: shard workers sort
  // first, the coordinator row last.
  for (size_t s = 0; s < num_shards; ++s) {
    std::ostringstream meta;
    meta << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << s
         << ",\"args\":{\"name\":\"shard " << s << "\"}}";
    EmitLocked(meta.str());
  }
  std::ostringstream meta;
  meta << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << kCoordTid << ",\"args\":{\"name\":\"coordinator\"}}";
  EmitLocked(meta.str());
}

TraceWriter::~TraceWriter() { Close(); }

std::pair<std::string, std::string> TraceWriter::NumArg(const std::string& key,
                                                        uint64_t value) {
  return {key, std::string(1, kRawNumber) + std::to_string(value)};
}

void TraceWriter::EmitLocked(const std::string& json) {
  if (!first_) out_ << ",\n";
  first_ = false;
  out_ << json;
}

void TraceWriter::WriteArgsLocked(const Args& args) {
  out_ << ",\"args\":{";
  bool first = true;
  for (const auto& [k, v] : args) {
    if (!first) out_ << ",";
    first = false;
    out_ << "\"" << Escape(k) << "\":";
    if (!v.empty() && v[0] == kRawNumber) {
      out_ << v.substr(1);
    } else {
      out_ << "\"" << Escape(v) << "\"";
    }
  }
  out_ << "}";
}

void TraceWriter::Span(const char* name, int64_t tid, uint64_t begin_ns,
                       uint64_t end_ns, const Args& args) {
  if (!ok_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  const uint64_t rel = begin_ns >= epoch_ns_ ? begin_ns - epoch_ns_ : 0;
  const uint64_t dur = end_ns >= begin_ns ? end_ns - begin_ns : 0;
  if (!first_) out_ << ",\n";
  first_ = false;
  out_ << "{\"name\":\"" << Escape(name) << "\",\"ph\":\"X\",\"pid\":1"
       << ",\"tid\":" << tid << ",\"ts\":" << rel / 1000 << "."
       << (rel % 1000) / 100 << ",\"dur\":" << dur / 1000 << "."
       << (dur % 1000) / 100;
  if (!args.empty()) WriteArgsLocked(args);
  out_ << "}";
}

void TraceWriter::Instant(const char* name, int64_t tid, uint64_t at_ns,
                          const Args& args) {
  if (!ok_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  const uint64_t rel = at_ns >= epoch_ns_ ? at_ns - epoch_ns_ : 0;
  if (!first_) out_ << ",\n";
  first_ = false;
  out_ << "{\"name\":\"" << Escape(name) << "\",\"ph\":\"i\",\"s\":\"p\""
       << ",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << rel / 1000 << "."
       << (rel % 1000) / 100;
  if (!args.empty()) WriteArgsLocked(args);
  out_ << "}";
}

void TraceWriter::Flush() {
  if (!ok_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!closed_) out_.flush();
}

void TraceWriter::Close() {
  if (!ok_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  out_ << "]\n";
  out_.close();
}

}  // namespace obs
}  // namespace aseq
