#ifndef ASEQ_OBS_TRACE_WRITER_H_
#define ASEQ_OBS_TRACE_WRITER_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace aseq {
namespace obs {

/// \brief Streams chrome://tracing "JSON array format" events to a file.
///
/// The file is a single JSON array of event objects; the trace viewer
/// tolerates a missing closing bracket, but Close() writes one anyway so
/// the output is also valid JSON for generic tooling. Span() emits a
/// complete-duration event ("ph":"X"), Instant() a process-scoped instant
/// ("ph":"i").
///
/// Thread safety: all emit calls take an internal mutex. Trace emission
/// happens on cold paths only (batch granularity, barriers, supervisor
/// actions), so the lock is never on the per-op hot path.
///
/// Timestamps are microseconds relative to the telemetry epoch, which the
/// owner passes as `epoch_ns`; callers hand in absolute MonotonicNanos()
/// values and the writer rebases them.
class TraceWriter {
 public:
  /// Opens `path` for writing and emits process/thread metadata for
  /// `num_shards` worker lanes plus the coordinator. Check ok() after.
  TraceWriter(const std::string& path, uint64_t epoch_ns, size_t num_shards);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  bool ok() const { return ok_; }

  /// Tid used for coordinator-side events (router, barriers, checkpoints,
  /// supervisor actions). Worker lanes use tid = shard index.
  static constexpr int64_t kCoordTid = 1000;

  using Args = std::vector<std::pair<std::string, std::string>>;

  /// Complete span [begin_ns, end_ns] (absolute MonotonicNanos values).
  /// String arg values are JSON-escaped; pass numbers pre-formatted via
  /// NumArg to emit them unquoted.
  void Span(const char* name, int64_t tid, uint64_t begin_ns, uint64_t end_ns,
            const Args& args = {});

  /// Instant event at `at_ns` (absolute), rendered as a vertical tick.
  void Instant(const char* name, int64_t tid, uint64_t at_ns,
               const Args& args = {});

  /// Marks an arg value as a raw JSON number (emitted unquoted).
  static std::pair<std::string, std::string> NumArg(const std::string& key,
                                                    uint64_t value);

  /// Flushes buffered events to the OS. Called by the checkpoint observer
  /// so a crash right after a checkpoint still leaves the trace on disk.
  void Flush();

  /// Writes the closing bracket and closes the file. Idempotent.
  void Close();

 private:
  void EmitLocked(const std::string& json);
  void WriteArgsLocked(const Args& args);

  std::ofstream out_;
  std::mutex mu_;
  uint64_t epoch_ns_;
  bool ok_ = false;
  bool first_ = true;
  bool closed_ = false;
};

}  // namespace obs
}  // namespace aseq

#endif  // ASEQ_OBS_TRACE_WRITER_H_
