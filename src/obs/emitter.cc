#include "obs/emitter.h"

#include <chrono>

namespace aseq {
namespace obs {

MetricsEmitter::MetricsEmitter(const std::string& path, uint64_t every_ms,
                               Telemetry* tel,
                               const std::string& header_extra)
    : tel_(tel),
      every_ms_(every_ms == 0 ? 1 : every_ms),
      out_(path, std::ios::out | std::ios::trunc) {
  ok_ = out_.is_open();
  if (!ok_) return;
  out_ << "{\"type\":\"header\",\"version\":1,\"shards\":"
       << tel_->num_shards() << ",\"every_ms\":" << every_ms_;
  if (!header_extra.empty()) out_ << "," << header_extra;
  out_ << "}\n";
}

MetricsEmitter::~MetricsEmitter() { Stop(); }

void MetricsEmitter::Start() {
  if (!ok_ || started_) return;
  started_ = true;
  thread_ = std::thread(&MetricsEmitter::ThreadMain, this);
}

void MetricsEmitter::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(every_ms_),
                     [this] { return stop_; })) {
      break;  // Stop() emits the final interval itself.
    }
    EmitIntervalLocked();
  }
}

void MetricsEmitter::Flush() {
  if (!ok_) return;
  std::lock_guard<std::mutex> lock(mu_);
  EmitIntervalLocked();
  out_.flush();
}

void MetricsEmitter::Stop() {
  if (!ok_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    EmitIntervalLocked();
    out_.flush();
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsEmitter::AppendLine(const std::string& json) {
  if (!ok_) return;
  std::lock_guard<std::mutex> lock(mu_);
  out_ << json << "\n";
}

void MetricsEmitter::WriteHistogramLocked(const char* key,
                                          const LogHistogram& h,
                                          bool trailing_comma) {
  LogHistogram::Snapshot snap;
  h.SnapshotInto(&snap);
  out_ << "\"" << key << "\":{\"count\":" << snap.count
       << ",\"mean\":" << static_cast<uint64_t>(snap.Mean())
       << ",\"p50\":" << snap.ValueAtQuantile(0.50)
       << ",\"p95\":" << snap.ValueAtQuantile(0.95)
       << ",\"p99\":" << snap.ValueAtQuantile(0.99) << ",\"max\":" << snap.max
       << "}";
  if (trailing_comma) out_ << ",";
}

void MetricsEmitter::EmitIntervalLocked() {
  const uint64_t k = intervals_++;
  const uint64_t t_ms = (MonotonicNanos() - tel_->start_ns()) / 1000000;
  for (size_t s = 0; s < tel_->num_shards(); ++s) {
    const ShardCell& c = tel_->shard(s);
    out_ << "{\"type\":\"shard\",\"interval\":" << k << ",\"t_ms\":" << t_ms
         << ",\"shard\":" << s << ",\"ops\":" << c.ops.value()
         << ",\"events\":" << c.events.value()
         << ",\"outputs\":" << c.outputs.value()
         << ",\"items\":" << c.items.value()
         << ",\"parks\":" << c.parks.value()
         << ",\"busy_ns\":" << c.busy_ns.value()
         << ",\"park_ns\":" << c.park_ns.value()
         << ",\"ring_occupancy\":" << c.ring_occupancy.value() << ",";
    WriteHistogramLocked("op_service_ns", c.op_service_ns, true);
    WriteHistogramLocked("park_wait_ns", c.park_wait_ns, true);
    WriteHistogramLocked("trigger_latency_ns", c.trigger_latency_ns, false);
    out_ << "}\n";
  }
  const CoordCell& c = tel_->coord();
  out_ << "{\"type\":\"coord\",\"interval\":" << k << ",\"t_ms\":" << t_ms
       << ",\"batches\":" << c.batches.value()
       << ",\"events\":" << c.events.value()
       << ",\"publications\":" << c.publications.value()
       << ",\"barriers\":" << c.barriers.value()
       << ",\"checkpoints\":" << c.checkpoints.value() << ",";
  WriteHistogramLocked("admit_ns", c.admit_ns, true);
  WriteHistogramLocked("barrier_ns", c.barrier_ns, true);
  WriteHistogramLocked("ring_occupancy", c.ring_occupancy, false);
  out_ << "}\n";
}

}  // namespace obs
}  // namespace aseq
