#include "obs/telemetry.h"

#include <cmath>

namespace aseq {
namespace obs {

uint64_t LogHistogram::Snapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= rank) {
      const uint64_t upper = BucketUpperBound(b);
      // The tracked exact max tightens the top bucket's upper bound.
      return upper < max || max == 0 ? upper : max;
    }
  }
  return max;
}

void LogHistogram::SnapshotInto(Snapshot* snap) const {
  // The total count is DERIVED from the bucket sum, not stored: the record
  // path saves a store, and quantile ranks computed from `count` land
  // inside a bucket by construction even against a concurrent writer
  // (whose in-flight record simply isn't in this snapshot yet).
  snap->counts.resize(kNumBuckets);
  uint64_t bucket_sum = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    snap->counts[b] = counts_[b].load(std::memory_order_relaxed);
    bucket_sum += snap->counts[b];
  }
  snap->count = bucket_sum;
  snap->sum = sum_.load(std::memory_order_relaxed);
  snap->max = max_.load(std::memory_order_relaxed);
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (size_t b = 0; b < kNumBuckets; ++b) {
    StoreAdd(counts_[b], other.counts_[b].load(std::memory_order_relaxed));
  }
  StoreAdd(sum_, other.sum_.load(std::memory_order_relaxed));
  const uint64_t om = other.max_.load(std::memory_order_relaxed);
  if (om > max_.load(std::memory_order_relaxed)) {
    max_.store(om, std::memory_order_relaxed);
  }
}

void LogHistogram::Reset() {
  for (size_t b = 0; b < kNumBuckets; ++b) {
    counts_[b].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace aseq
