#ifndef ASEQ_OBS_STATS_JSON_H_
#define ASEQ_OBS_STATS_JSON_H_

#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace aseq {
namespace obs {

/// \brief One engine's end-of-run record for the --stats-json dump.
struct StatsJsonEntry {
  std::string label;  // query name, or "run" for single-query runs
  const EngineStats* stats = nullptr;
  uint64_t results = 0;
};

/// Renders EngineStats as a JSON object (no trailing newline). Field names
/// mirror the struct members; every counter group is present even when
/// zero so consumers get a stable schema.
std::string EngineStatsToJson(const EngineStats& stats);

/// Writes the one-shot end-of-run JSON document:
///   {"engine":..., "shards":N, "elapsed_ms":..., "utilization":{...},
///    "queries":[{"label":...,"results":...,"stats":{...}}, ...]}
/// `busy_seconds` may be empty (serial run: no per-shard spans).
/// Returns false if the file could not be written.
bool WriteStatsJson(const std::string& path, const std::string& engine,
                    size_t shards, double elapsed_ms,
                    const std::vector<double>& busy_seconds,
                    const std::vector<StatsJsonEntry>& entries);

/// Formats the per-shard utilization object used by both WriteStatsJson and
/// the metrics emitter's end-of-run summary line:
///   {"busy_seconds":[...],"max_busy":...,"min_busy":...,"imbalance":R}
/// where R = max/min busy (1.0 when min is zero or single-shard).
std::string UtilizationJson(const std::vector<double>& busy_seconds);

}  // namespace obs
}  // namespace aseq

#endif  // ASEQ_OBS_STATS_JSON_H_
