#include "state/window_clock.h"

namespace aseq {
namespace state {

void WindowClock::Checkpoint(ckpt::Writer* writer) const {
  const auto& heap = ckpt::HeapContainer(heap_);
  writer->WriteU64(heap.size());
  for (const Entry& entry : heap) {
    writer->WriteI64(entry.exp);
    writer->WriteU64(entry.hash);
    for (uint32_t id : entry.key.ids) writer->WriteU32(id);
  }
}

Status WindowClock::Restore(ckpt::Reader* reader, uint32_t interner_size) {
  heap_ = {};
  uint64_t n = 0;
  ASEQ_RETURN_NOT_OK(reader->ReadCount(&n, 48, "expiry heap"));
  // The array was a valid heap when written, so it is appended without
  // re-heapify (ckpt::MutableHeapContainer) and pops replay in exactly the
  // original order.
  auto& heap = ckpt::MutableHeapContainer(heap_);
  heap.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Entry entry;
    ASEQ_RETURN_NOT_OK(reader->ReadI64(&entry.exp, "expiry deadline"));
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&entry.hash, "expiry key hash"));
    for (size_t p = 0; p < container::kMaxKeyParts; ++p) {
      ASEQ_RETURN_NOT_OK(reader->ReadU32(&entry.key.ids[p], "expiry key id"));
      if (entry.key.ids[p] != container::kNoId &&
          entry.key.ids[p] >= interner_size) {
        return Status::ParseError(
            "snapshot corrupt: expiry key id out of interner range");
      }
    }
    heap.push_back(std::move(entry));
  }
  return Status::OK();
}

}  // namespace state
}  // namespace aseq
