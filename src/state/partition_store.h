#ifndef ASEQ_STATE_PARTITION_STORE_H_
#define ASEQ_STATE_PARTITION_STORE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/ckpt.h"
#include "common/status.h"
#include "container/flat_map.h"
#include "container/key_interner.h"
#include "container/slab_pool.h"

namespace aseq {
namespace state {

/// "No partition" sentinel in the dense slot index.
inline constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

/// Dense-index position for an interned id. Ids map to id+1 and the kNoId
/// sentinel wraps to 0, so wildcard keys (a key part no spec part covers)
/// get a reserved bucket instead of an out-of-range access.
constexpr uint32_t DenseIdx(uint32_t id) { return id + 1u; }

/// \brief The partition-state spine shared by every partitioned engine:
/// interned keys, a slab of per-partition entries, and the index that
/// resolves a sealed key to its slab slot.
///
/// Extracted from HpcEngine (PR 4 built it in place; this layer makes it
/// reusable by the sharing engines). The pieces and their contracts:
///
///  - a SlabPool of `P` entries — the *iteration authority*: every
///    observable sweep walks ascending slot order, and checkpoints carry
///    the exact slab geometry so restores reproduce it byte-for-byte;
///  - a partition index with no ordering obligations, rebuilt fresh on
///    restore: single-part keys (the common GROUP BY case) use a dense
///    direct-mapped slot array — interned ids index it outright, no
///    hashing — and wider keys use an open-addressing FlatMap from
///    InternedKey to slab slot;
///  - a KeyInterner mapping distinct key Values to dense ids, append-only
///    and serialized in id order.
///
/// `P` must expose `container::InternedKey key` and `uint64_t hash`
/// members (pinned at creation so erase/expiry paths never rehash).
///
/// The store serializes everything *structural* (interner table, slab
/// geometry, per-entry keys and slots, freelist); the per-entry dynamic
/// payload is delegated to caller callbacks, so one checkpoint format
/// serves HPC counter sets and the sharing engines' segment/trie state
/// alike. Entries are written in canonical interned-id key order (not
/// history-dependent slot order), so two logically identical states
/// produce identical payload bytes.
template <typename P>
class PartitionStore {
 public:
  explicit PartitionStore(bool single_part = true)
      : single_part_(single_part) {}

  bool single_part() const { return single_part_; }

  container::KeyInterner& interner() { return interner_; }
  const container::KeyInterner& interner() const { return interner_; }

  size_t size() const { return slab_.size(); }
  uint32_t end() const { return slab_.end(); }
  bool live(uint32_t slot) const { return slab_.live(slot); }
  P& at(uint32_t slot) { return slab_.at(slot); }
  const P& at(uint32_t slot) const { return slab_.at(slot); }

  /// Resolves a sealed probe key to its partition's slab slot, or kNoSlot.
  /// Single-part keys are a direct array access; wider keys probe the
  /// hash index.
  uint32_t Lookup(uint64_t hash, const container::InternedKey& key) const {
    if (single_part_) {
      const uint32_t idx = DenseIdx(key.ids[0]);
      return idx < slot_by_id_.size() ? slot_by_id_[idx] : kNoSlot;
    }
    const uint32_t* slot = index_.FindHashed(hash, key);
    return slot == nullptr ? kNoSlot : *slot;
  }

  /// Index entry for a new partition: returns the slot cell (holding
  /// kNoSlot if the entry was just created) and whether it was created.
  /// The caller follows an insertion with Emplace and stores the slot.
  std::pair<uint32_t*, bool> Upsert(uint64_t hash,
                                    const container::InternedKey& key) {
    if (single_part_) {
      const uint32_t idx = DenseIdx(key.ids[0]);
      if (idx >= slot_by_id_.size()) {
        slot_by_id_.resize(interner_.size() + 1, kNoSlot);
      }
      uint32_t* slot = &slot_by_id_[idx];
      return {slot, *slot == kNoSlot};
    }
    return index_.TryEmplaceHashed(hash, key, kNoSlot);
  }

  /// Slab-allocates a new entry (freelist LIFO, else append).
  template <typename... Args>
  uint32_t Emplace(Args&&... args) {
    return slab_.Emplace(std::forward<Args>(args)...);
  }

  /// Removes the entry at `slot` from the index and the slab.
  void Erase(uint32_t slot) {
    P& entry = slab_.at(slot);
    if (single_part_) {
      slot_by_id_[DenseIdx(entry.key.ids[0])] = kNoSlot;
    } else {
      index_.EraseHashed(entry.hash, entry.key);
    }
    slab_.Free(slot);
  }

  /// Warms the index (or dense-array) line a Lookup for this key will
  /// touch.
  void PrefetchLookup(uint64_t hash, const container::InternedKey& key) const {
    if (single_part_) {
      const uint32_t idx = DenseIdx(key.ids[0]);
      if (idx < slot_by_id_.size()) {
        __builtin_prefetch(&slot_by_id_[idx], /*rw=*/0, /*locality=*/3);
      }
    } else {
      index_.PrefetchSlot(hash);
    }
  }

  /// Resolves the key now and pulls the slab entry itself into cache
  /// (DRAMHiT-style). Purely a cache warmer: the result is deliberately
  /// not returned, since executing earlier batch events can create or
  /// erase partitions and a cached slot must never be trusted.
  void PrefetchEntry(uint64_t hash, const container::InternedKey& key) const {
    const uint32_t slot = Lookup(hash, key);
    if (slot != kNoSlot) {
      __builtin_prefetch(&slab_.at(slot), /*rw=*/0, /*locality=*/3);
    }
  }

  // ---- Probe accounting + occupancy (EngineStats::ht_* gauges). ----
  uint64_t probes() const { return index_.probes() + interner_.probes(); }
  uint64_t probe_steps() const {
    return index_.probe_steps() + interner_.probe_steps();
  }
  size_t table_capacity() const {
    return index_.capacity() + interner_.capacity();
  }
  size_t table_entries() const { return index_.size() + interner_.size(); }

  /// Serializes the interner table (values in id order) and the slab —
  /// entries in canonical interned-id key order, each with its slot index
  /// and the payload `entry_fn(entry, writer)` emits, plus the freelist
  /// and high-water mark, pinning the slab's observable iteration order
  /// exactly. The index is *not* serialized: its layout is never
  /// observable, so Restore() rebuilds it fresh.
  template <typename EntryFn>
  Status Checkpoint(ckpt::Writer* writer, EntryFn&& entry_fn) const {
    writer->WriteU64(interner_.size());
    for (const Value& v : interner_.values()) ckpt::WriteValue(writer, v);
    writer->WriteU64(slab_.end());
    writer->WriteU64(slab_.size());
    std::vector<uint32_t> order;
    order.reserve(slab_.size());
    for (uint32_t s = 0; s < slab_.end(); ++s) {
      if (slab_.live(s)) order.push_back(s);
    }
    std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
      return slab_.at(a).key.ids < slab_.at(b).key.ids;
    });
    for (uint32_t s : order) {
      const P& entry = slab_.at(s);
      for (uint32_t id : entry.key.ids) writer->WriteU32(id);
      writer->WriteU32(s);
      ASEQ_RETURN_NOT_OK(entry_fn(entry, writer));
    }
    writer->WriteU64(slab_.freelist().size());
    for (uint32_t s : slab_.freelist()) writer->WriteU32(s);
    return Status::OK();
  }

  /// Inverse of Checkpoint. `emplace_fn(slot, key, hash, reader)` must
  /// construct the entry via RestoreEmplaceAt(slot, ...) and read its
  /// payload; the store validates geometry, rebuilds the index, and
  /// restores the freelist around it.
  template <typename EmplaceFn>
  Status Restore(ckpt::Reader* reader, EmplaceFn&& emplace_fn) {
    uint64_t n_values = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_values, 1, "interned values"));
    std::vector<Value> values;
    values.reserve(n_values);
    for (uint64_t i = 0; i < n_values; ++i) {
      Value v;
      ASEQ_RETURN_NOT_OK(ckpt::ReadValue(reader, &v));
      values.push_back(std::move(v));
    }
    if (!interner_.RestoreFromValues(std::move(values))) {
      return Status::ParseError(
          "snapshot corrupt: duplicate value in interner table");
    }
    // Slab geometry: every slot below the high-water mark must come back
    // either live (a partition entry names it) or on the freelist.
    uint64_t slab_end = 0;
    uint64_t n_entries = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadU64(&slab_end, "partition slab end"));
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_entries, 40, "partitions"));
    if (slab_end > 0xFFFFFFFFull) {
      return Status::ParseError("snapshot corrupt: partition slab end " +
                                std::to_string(slab_end) +
                                " exceeds the 32-bit slot space");
    }
    if (n_entries > slab_end) {
      return Status::ParseError(
          "snapshot corrupt: more partitions than slab slots");
    }
    slab_.ResetGeometry(static_cast<uint32_t>(slab_end));
    index_ = Index();
    if (single_part_) {
      slot_by_id_.assign(interner_.size() + 1, kNoSlot);
    } else {
      slot_by_id_.clear();
      index_.Reserve(n_entries);
    }
    container::InternedKey prev_key;
    for (uint64_t i = 0; i < n_entries; ++i) {
      container::InternedKey key;
      for (size_t p = 0; p < container::kMaxKeyParts; ++p) {
        ASEQ_RETURN_NOT_OK(reader->ReadU32(&key.ids[p], "partition key id"));
        if (key.ids[p] != container::kNoId &&
            key.ids[p] >= interner_.size()) {
          return Status::ParseError(
              "snapshot corrupt: partition key id out of interner range");
        }
      }
      // Canonical order doubles as the duplicate-key check.
      if (i > 0 && !(prev_key.ids < key.ids)) {
        return Status::ParseError(
            "snapshot corrupt: partitions not in canonical interned-id "
            "order");
      }
      prev_key = key;
      uint32_t slot = 0;
      ASEQ_RETURN_NOT_OK(reader->ReadU32(&slot, "partition slot"));
      if (slot >= slab_end || slab_.live(slot)) {
        return Status::ParseError(
            "snapshot corrupt: partition slot out of range or duplicated");
      }
      const uint64_t hash = container::InternedKeyHash{}(key);
      ASEQ_RETURN_NOT_OK(emplace_fn(slot, key, hash, reader));
      if (!slab_.live(slot)) {
        return Status::Internal(
            "PartitionStore::Restore callback did not emplace its entry");
      }
      if (single_part_) {
        slot_by_id_[DenseIdx(key.ids[0])] = slot;
      } else {
        index_.TryEmplaceHashed(hash, key, slot);
      }
    }
    uint64_t n_free = 0;
    ASEQ_RETURN_NOT_OK(reader->ReadCount(&n_free, 4, "slab freelist"));
    if (n_entries + n_free != slab_end) {
      return Status::ParseError(
          "snapshot corrupt: slab geometry mismatch (live " +
          std::to_string(n_entries) + " + free " + std::to_string(n_free) +
          " != end " + std::to_string(slab_end) + ")");
    }
    std::vector<uint32_t> freelist;
    freelist.reserve(n_free);
    std::vector<uint8_t> freed(slab_end, 0);
    for (uint64_t i = 0; i < n_free; ++i) {
      uint32_t slot = 0;
      ASEQ_RETURN_NOT_OK(reader->ReadU32(&slot, "freelist slot"));
      if (slot >= slab_end || slab_.live(slot) || freed[slot]) {
        return Status::ParseError(
            "snapshot corrupt: freelist slot out of range, live, or "
            "duplicated");
      }
      freed[slot] = 1;
      freelist.push_back(slot);
    }
    slab_.RestoreFreelist(std::move(freelist));
    return Status::OK();
  }

  /// Constructs an entry in a specific checkpointed slot (Restore
  /// callbacks only).
  template <typename... Args>
  P& RestoreEmplaceAt(uint32_t slot, Args&&... args) {
    return slab_.EmplaceAt(slot, std::forward<Args>(args)...);
  }

 private:
  using Index = container::FlatMap<container::InternedKey, uint32_t,
                                   container::InternedKeyHash>;

  bool single_part_;
  container::KeyInterner interner_;
  /// Hash index, used only when the key has several parts.
  Index index_;
  /// Dense index for single-part keys: slot_by_id_[DenseIdx(id)] is the
  /// entry's slab slot (kNoSlot = none). Interned ids are dense, so this
  /// stays as small as the key cardinality itself and a probe is one
  /// array read — no hashing, no collisions.
  std::vector<uint32_t> slot_by_id_;
  container::SlabPool<P> slab_;
};

}  // namespace state
}  // namespace aseq

#endif  // ASEQ_STATE_PARTITION_STORE_H_
