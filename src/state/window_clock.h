#ifndef ASEQ_STATE_WINDOW_CLOCK_H_
#define ASEQ_STATE_WINDOW_CLOCK_H_

#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "ckpt/ckpt.h"
#include "common/event.h"
#include "common/status.h"
#include "container/key_interner.h"

namespace aseq {
namespace state {

/// \brief Lazy per-partition expiry schedule: the amortized-O(expired)
/// purge driver behind O(1) triggers.
///
/// Extracted from HpcEngine's COUNT fast path. Each entry names a
/// partition (by interned key, carried by value with its pinned hash) and
/// the earliest time something inside it expires. Advancing the clock pops
/// every due entry and hands it to a revisit callback, which purges the
/// partition and answers with its *next* earliest expiration — or "never"
/// (max()), dropping the entry. Stale entries (the partition was purged
/// further by a direct hit, or erased entirely) resolve naturally: the
/// revisit sees the real state and reschedules or drops.
///
/// The heap is checkpointed verbatim in array order: the pop order of
/// equal deadlines depends on the internal layout, and revisit-driven
/// purge-then-erase order feeds the slab freelist — observable through
/// later slot assignment (see ckpt::HeapContainer).
class WindowClock {
 public:
  static constexpr Timestamp kNever = std::numeric_limits<Timestamp>::max();

  struct Entry {
    Timestamp exp = 0;
    uint64_t hash = 0;
    container::InternedKey key;
  };

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Schedules a revisit of `key`'s partition at `exp` (kNever = no-op).
  void Schedule(Timestamp exp, uint64_t hash,
                const container::InternedKey& key) {
    if (exp == kNever) return;
    heap_.push(Entry{exp, hash, key});
  }

  /// Pops every entry due at `now`, invoking `revisit(entry)` for each.
  /// The callback purges the named partition and returns its next
  /// earliest expiration; kNever drops the entry, anything else
  /// reschedules it.
  template <typename RevisitFn>
  void AdvanceTo(Timestamp now, RevisitFn&& revisit) {
    while (!heap_.empty() && heap_.top().exp <= now) {
      Entry top = heap_.top();
      heap_.pop();
      const Timestamp next = revisit(top);
      if (next == kNever) continue;
      top.exp = next;
      heap_.push(std::move(top));
    }
  }

  void Clear() { heap_ = {}; }

  /// Heap round-trip, verbatim array order (see class comment).
  void Checkpoint(ckpt::Writer* writer) const;
  /// `interner_size` bounds the key ids a valid entry can carry.
  Status Restore(ckpt::Reader* reader, uint32_t interner_size);

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.exp > b.exp;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace state
}  // namespace aseq

#endif  // ASEQ_STATE_WINDOW_CLOCK_H_
