#!/usr/bin/env python3
"""Reshapes the WPI stock trade trace into the aseq CSV trace format.

The paper evaluates on the real trace at
    http://davis.wpi.edu/dsrg/stockData/eventstream3.txt
whose rows are whitespace- or comma-separated `ticker timestamp [price
[volume]]` records. This script converts them into the format read by
`src/stream/trace_io.h` / `aseq run --trace`:

    DELL,1001,price=24.5,volume=300

Usage:
    scripts/convert_wpi_trace.py eventstream3.txt > stock_trace.csv
    ./build/src/cli/aseq run --query "PATTERN SEQ(DELL, IPIX, AMAT) \
        AGG COUNT WITHIN 1s" --trace stock_trace.csv

Rows that cannot be parsed are skipped with a note on stderr; out-of-order
rows are dropped (the engines require in-order streams — alternatively run
with --slack to reorder at ingest).
"""

import re
import sys

SPLIT_RE = re.compile(r"[,\s]+")


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    skipped = 0
    dropped = 0
    emitted = 0
    last_ts = None
    with open(sys.argv[1], encoding="utf-8", errors="replace") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = [x for x in SPLIT_RE.split(line) if x]
            if len(fields) < 2:
                skipped += 1
                continue
            ticker = fields[0]
            try:
                ts = int(float(fields[1]))
            except ValueError:
                skipped += 1
                continue
            if last_ts is not None and ts < last_ts:
                dropped += 1
                continue
            last_ts = ts
            attrs = []
            for name, raw in zip(("price", "volume"), fields[2:4]):
                try:
                    float(raw)
                except ValueError:
                    continue
                attrs.append(f"{name}={raw}")
            row = ",".join([ticker, str(ts)] + attrs)
            print(row)
            emitted += 1
    print(
        f"emitted {emitted} events; skipped {skipped} unparseable, "
        f"dropped {dropped} out-of-order rows",
        file=sys.stderr,
    )
    return 0 if emitted > 0 else 1


if __name__ == "__main__":
    sys.exit(main())
