#!/usr/bin/env python3
"""Validates the telemetry artifacts an aseq run emits (docs/internals.md §17).

Usage:
    scripts/check_metrics.py METRICS.jsonl [--trace TRACE.json]
        [--stats STATS.json] [--require-event NAME ...] [--shards N]

Checks, in order:

  * every metrics line parses as a JSON object with a known "type"
    (header / shard / coord / utilization);
  * the first line is the header and agrees with --shards when given;
  * per-shard and coordinator cumulative counters are monotonic across
    intervals (the emitter snapshots grow-only cells, so a decrease means
    a torn read or a broken snapshot);
  * histogram summaries are internally ordered (p50 <= p95 <= p99 <= max,
    count 0 iff all quantiles 0);
  * the final utilization line carries one busy-seconds entry per shard;
  * --trace: the file is a valid chrome://tracing JSON array containing
    thread-name metadata, at least one complete span, and every
    --require-event name among its event names;
  * --stats: the one-shot stats dump parses and echoes the shard count.

Exits 0 silently-ish on success (one summary line), 1 with a diagnostic on
the first failure — cheap enough to run in the CI perf-smoke job after the
telemetry smoke run.
"""

import argparse
import json
import sys

SHARD_COUNTERS = ("ops", "events", "outputs", "items", "parks", "busy_ns",
                  "park_ns")
COORD_COUNTERS = ("batches", "events", "publications", "barriers",
                  "checkpoints")
SHARD_HISTOGRAMS = ("op_service_ns", "park_wait_ns", "trigger_latency_ns")
COORD_HISTOGRAMS = ("admit_ns", "barrier_ns", "ring_occupancy")
HIST_FIELDS = ("count", "mean", "p50", "p95", "p99", "max")


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_histogram(where, name, h):
    if not isinstance(h, dict):
        fail(f"{where}: {name} is not an object")
    for f in HIST_FIELDS:
        if f not in h:
            fail(f"{where}: {name} missing '{f}'")
    if not h["p50"] <= h["p95"] <= h["p99"] <= h["max"]:
        fail(f"{where}: {name} quantiles out of order: {h}")
    if h["count"] == 0 and (h["max"] != 0 or h["p99"] != 0):
        fail(f"{where}: {name} empty but nonzero quantiles: {h}")


def check_metrics(path, shards):
    lines = []
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not JSON ({e})")
            if not isinstance(obj, dict) or "type" not in obj:
                fail(f"{path}:{lineno}: no 'type' field")
            lines.append((lineno, obj))
    if not lines:
        fail(f"{path}: empty")
    first = lines[0][1]
    if first["type"] != "header":
        fail(f"{path}: first line is '{first['type']}', expected header")
    for field in ("version", "shards", "every_ms", "label"):
        if field not in first:
            fail(f"{path}: header missing '{field}'")
    if shards is not None and first["shards"] != shards:
        fail(f"{path}: header shards {first['shards']} != expected {shards}")
    n_shards = first["shards"]

    last_shard = {}  # shard -> counters
    last_coord = None
    utilization = None
    seen = {"shard": 0, "coord": 0}
    for lineno, obj in lines[1:]:
        where = f"{path}:{lineno}"
        t = obj["type"]
        if t == "shard":
            seen["shard"] += 1
            s = obj.get("shard")
            if not isinstance(s, int) or not 0 <= s < n_shards:
                fail(f"{where}: bad shard index {s!r}")
            prev = last_shard.get(s)
            for c in SHARD_COUNTERS:
                if c not in obj:
                    fail(f"{where}: shard line missing '{c}'")
                if prev is not None and obj[c] < prev[c]:
                    fail(f"{where}: shard {s} counter '{c}' went backwards "
                         f"({prev[c]} -> {obj[c]})")
            for h in SHARD_HISTOGRAMS:
                check_histogram(where, h, obj.get(h))
            last_shard[s] = obj
        elif t == "coord":
            seen["coord"] += 1
            for c in COORD_COUNTERS:
                if c not in obj:
                    fail(f"{where}: coord line missing '{c}'")
                if last_coord is not None and obj[c] < last_coord[c]:
                    fail(f"{where}: coord counter '{c}' went backwards "
                         f"({last_coord[c]} -> {obj[c]})")
            for h in COORD_HISTOGRAMS:
                check_histogram(where, h, obj.get(h))
            last_coord = obj
        elif t == "utilization":
            utilization = (where, obj)
        elif t == "header":
            fail(f"{where}: duplicate header")
        else:
            fail(f"{where}: unknown type '{t}'")
    if seen["shard"] == 0 or seen["coord"] == 0:
        fail(f"{path}: no shard/coord interval lines ({seen})")
    if utilization is None:
        fail(f"{path}: no final utilization line")
    where, obj = utilization
    busy = obj.get("data", {}).get("busy_seconds")
    if not isinstance(busy, list) or len(busy) != n_shards:
        fail(f"{where}: utilization busy_seconds is not a list of "
             f"{n_shards} entries: {busy!r}")
    if last_coord is None or last_coord["events"] == 0:
        fail(f"{path}: coordinator admitted zero events")
    if all(last_shard[s]["ops"] == 0 for s in last_shard):
        fail(f"{path}: every shard executed zero ops")
    return n_shards, seen


def check_trace(path, required):
    with open(path) as f:
        try:
            events = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not a JSON array ({e})")
    if not isinstance(events, list) or not events:
        fail(f"{path}: empty trace")
    names = set()
    spans = 0
    metadata = 0
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            metadata += 1
            continue
        names.add(e.get("name"))
        if ph == "X":
            if e.get("dur", -1) < 0 or e.get("ts", -1) < 0:
                fail(f"{path}: span with bad ts/dur: {e}")
            spans += 1
        elif ph == "i":
            if e.get("ts", -1) < 0:
                fail(f"{path}: instant with bad ts: {e}")
        else:
            fail(f"{path}: unexpected phase {ph!r} in {e}")
    if metadata == 0:
        fail(f"{path}: no thread-name metadata events")
    if spans == 0:
        fail(f"{path}: no complete spans")
    for name in required:
        if name not in names:
            fail(f"{path}: required event '{name}' absent "
                 f"(saw: {sorted(n for n in names if n)})")
    return len(events), sorted(n for n in names if n)


def check_stats(path, shards):
    with open(path) as f:
        try:
            stats = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not JSON ({e})")
    for field in ("engine", "shards", "queries", "elapsed_ms"):
        if field not in stats:
            fail(f"{path}: stats missing '{field}'")
    if shards is not None and stats["shards"] != shards:
        fail(f"{path}: stats shards {stats['shards']} != expected {shards}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("metrics", help="metrics JSONL file (--metrics-out)")
    ap.add_argument("--trace", help="chrome://tracing JSON file (--trace-out)")
    ap.add_argument("--stats", help="one-shot stats JSON file (--stats-json)")
    ap.add_argument("--shards", type=int, help="expected shard count")
    ap.add_argument("--require-event", action="append", default=[],
                    metavar="NAME",
                    help="trace event name that must be present (repeatable)")
    args = ap.parse_args()

    n_shards, seen = check_metrics(args.metrics, args.shards)
    summary = (f"{args.metrics}: ok ({n_shards} shards, "
               f"{seen['shard']} shard lines, {seen['coord']} coord lines)")
    if args.trace:
        count, names = check_trace(args.trace, args.require_event)
        summary += f"; {args.trace}: ok ({count} events: {', '.join(names)})"
    if args.stats:
        check_stats(args.stats, args.shards)
        summary += f"; {args.stats}: ok"
    print(f"check_metrics: {summary}")


if __name__ == "__main__":
    main()
