#!/usr/bin/env python3
"""Converts aseq benchmark output into tidy CSV for plotting.

Usage:
    for b in build/bench/bench_*; do $b; done | scripts/bench_to_csv.py > results.csv
    scripts/bench_to_csv.py bench_output.txt > results.csv

Each google-benchmark result line like

    BM_StackBased/5/iterations:1  3557 ms  3523 ms  1  batch_size=256 events=4k ms_per_slide=0.889 peak_objects=1070.9k

becomes a CSV row:  figure,series,arg,batch_size,ms_per_slide,peak_objects

Counters are parsed generically as name=value pairs, so the columns do not
depend on the order google-benchmark prints them in. The `figure` column is
taken from the preceding "Fig. ..." banner line.
"""

import csv
import re
import sys

BANNER_RE = re.compile(r"^(Fig\.\s*\S+|Ablation[^——]*|Batch sweep)\s*[—-]")
BENCH_RE = re.compile(r"^BM_(?P<series>[A-Za-z0-9_]+)(?:/(?P<arg>\d+))?/iterations:\d+\s")
COUNTER_RE = re.compile(r"(\w+)=([\d.e+-]+)([munk]?)\b")

UNIT = {"": 1.0, "m": 1e-3, "u": 1e-6, "n": 1e-9, "k": 1e3}


def scale(value: str, unit: str) -> float:
    return float(value) * UNIT.get(unit, 1.0)


def main() -> None:
    if len(sys.argv) > 1:
        lines = open(sys.argv[1], encoding="utf-8").read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()

    writer = csv.writer(sys.stdout)
    writer.writerow(
        ["figure", "series", "arg", "batch_size", "ms_per_slide", "peak_objects"]
    )
    figure = ""
    for line in lines:
        banner = BANNER_RE.match(line.strip())
        if banner:
            figure = banner.group(1).strip()
            continue
        m = BENCH_RE.match(line.strip())
        if not m:
            continue
        counters = {
            name: scale(value, unit)
            for name, value, unit in COUNTER_RE.findall(line)
        }
        if "ms_per_slide" not in counters:
            continue
        writer.writerow(
            [
                figure,
                m.group("series"),
                m.group("arg") or "",
                f'{counters.get("batch_size", 1):.0f}',
                f'{counters["ms_per_slide"]:.9f}',
                f'{counters.get("peak_objects", 0):.0f}',
            ]
        )


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
