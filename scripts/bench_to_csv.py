#!/usr/bin/env python3
"""Converts aseq benchmark output into tidy CSV for plotting.

Usage:
    for b in build/bench/bench_*; do $b; done | scripts/bench_to_csv.py > results.csv
    scripts/bench_to_csv.py bench_output.txt > results.csv

Each google-benchmark result line like

    BM_StackBased/5/iterations:1  3557 ms  3523 ms  1  events=4k ms_per_slide=0.889 peak_objects=1070.9k

becomes a CSV row:  figure,series,arg,ms_per_slide,peak_objects

The `figure` column is taken from the preceding "Fig. ..." banner line.
"""

import csv
import re
import sys

BANNER_RE = re.compile(r"^(Fig\.\s*\S+|Ablation[^——]*)\s*[—-]")
BENCH_RE = re.compile(
    r"^BM_(?P<series>[A-Za-z0-9_]+)(?:/(?P<arg>\d+))?/iterations:\d+\s+"
    r".*?ms_per_slide=(?P<mps>[\d.e+-]+)(?P<mps_unit>[munk]?)\s+"
    r".*?peak_objects=(?P<peak>[\d.]+)(?P<peak_unit>[munk]?)"
)

UNIT = {"": 1.0, "m": 1e-3, "u": 1e-6, "n": 1e-9, "k": 1e3}


def scale(value: str, unit: str) -> float:
    return float(value) * UNIT.get(unit, 1.0)


def main() -> None:
    if len(sys.argv) > 1:
        lines = open(sys.argv[1], encoding="utf-8").read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()

    writer = csv.writer(sys.stdout)
    writer.writerow(["figure", "series", "arg", "ms_per_slide", "peak_objects"])
    figure = ""
    for line in lines:
        banner = BANNER_RE.match(line.strip())
        if banner:
            figure = banner.group(1).strip()
            continue
        m = BENCH_RE.match(line.strip())
        if not m:
            continue
        writer.writerow(
            [
                figure,
                m.group("series"),
                m.group("arg") or "",
                f'{scale(m.group("mps"), m.group("mps_unit")):.9f}',
                f'{scale(m.group("peak"), m.group("peak_unit")):.0f}',
            ]
        )


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
